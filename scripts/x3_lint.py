#!/usr/bin/env python3
"""Repo lint for project invariants clang-tidy cannot know about.

Rules (see docs/STATIC_ANALYSIS.md for the rationale):

  void-cast-status   No discarding a function call via a void cast
                     ("(void)Foo()" / "static_cast<void>(Foo())"). Status
                     and Result are [[nodiscard]]; a deliberate discard
                     must be spelled `.IgnoreError()` (Status) or
                     testutil::Consume(...) (tests) so it stays grep-able.
  raw-new-delete     No raw `new` / `delete` outside src/storage/ (the
                     only layer that manages raw memory). A `new`
                     immediately wrapped in std::unique_ptr<...>(new ...)
                     is allowed: it is the standard factory idiom for
                     classes with private constructors.
  banned-random      No rand()/srand()/time() in src/: every code path is
                     deterministic and seeded (util/random.h) so results
                     and tests reproduce bit-for-bit.
  bare-assert        No bare assert() in src/: invariants that guard
                     memory accesses (page boundaries, slot indexes) must
                     use X3_CHECK (active in release builds); debug-only
                     sanity checks use X3_DCHECK.
  include-hygiene    Project includes are quoted "dir/file.h" paths from
                     the src/ root: no "../" escapes, no <bits/...>, and
                     headers carry an X3_*_H_ include guard.
  raw-thread         No raw std::thread/std::jthread in src/ outside
                     src/util/thread_pool.*: all engine concurrency goes
                     through ThreadPool/TaskGroup so shutdown, draining
                     and error propagation live in one audited place.
                     (Tests may spawn threads directly to hammer the
                     primitives.)
  raw-stdio          No stdio file I/O (fopen/fread/fwrite/...) and no
                     direct file removal (remove(x.c_str())) in src/
                     outside src/util/env.*: every byte of file I/O goes
                     through the Env seam so fault injection sees it and
                     checksums/retries apply uniformly. The std::remove
                     *algorithm* (erase-remove over iterators) is fine:
                     the removal rule only fires on remove taking a
                     c_str() argument.
  raw-clock          No raw clock reads (steady_clock::now() and friends,
                     Clock::now()) in src/ outside src/util/timer.h and
                     src/util/trace.cc: all timing goes through
                     Timer/MonotonicNow so stage timings and trace
                     timestamps share one time base behind one seam.
  raw-fact-set       No std::set/std::unordered_set of raw integer fact
                     ids in src/cube/: fact-id sets are FactIdSet
                     (util/fact_id_set.h), the compressed roaring-style
                     representation, so cardinality/union/intersection
                     stay O(words) and the memory budget stays honest.
  raw-mutex          No bare std::mutex / std::condition_variable /
                     std::lock_guard / std::unique_lock (or their timed/
                     recursive/shared cousins) in src/ outside
                     src/util/thread_annotations.*: every lock is an
                     annotated x3::Mutex so clang -Wthread-safety sees
                     it and the debug lock-order detector ranks it.
                     (Tests may use raw primitives to build fixtures.)
  raw-page-write     No direct page/catalog mutation (WritePage,
                     AllocatePage, FlushAll, RenameFile) in src/xdb/
                     outside the WAL-commit/checkpoint path: every
                     durable state change must be WAL-logged first so
                     crash recovery replays it. The designated sites
                     (Database::Checkpoint, the OpenExisting tail-page
                     repair) carry an explicit allow comment naming why
                     they are exempt.
  server-compute-cube  No direct ComputeCube(...) calls in src/server/:
                     the serving layer answers from the materialized-
                     cuboid cache (CubeViewStore::AnswerFromViews) and
                     falls back to compute only on the single designated
                     cache-miss path in X3Server::RunQuery, which fills
                     the cache afterwards. Any other call site would
                     silently bypass admission accounting and caching.
  server-raw-log     No ad-hoc logging (printf/puts/perror, std::cout/
                     cerr/clog) in src/server/ outside query_log.*: a
                     serving-layer event either belongs in the
                     structured query log (QueryLog), a metric, or an
                     X3_LOG line (which carries the qid prefix) — text
                     printed anywhere else is invisible to the statusz/
                     JSONL consumers and unattributable to a query.
                     (fprintf is already banned repo-wide by raw-stdio.)

A finding can be suppressed with a trailing comment naming the rule:
    some_call();  // x3-lint: allow(raw-new-delete) -- justification
Run from the repo root (or pass --root). Exit status 1 on findings.
"""

import argparse
import os
import re
import sys

CC_EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")

VOID_CAST_CALL = re.compile(
    r"(?:\(\s*void\s*\)|static_cast<\s*void\s*>\s*\()\s*[A-Za-z_][\w:]*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*\s*\(")
RAW_NEW = re.compile(r"(?<![\w.])new\s+[A-Za-z_][\w:<>, ]*")
UNIQUE_PTR_NEW = re.compile(r"unique_ptr\s*<[^;]*>\s*\(\s*new\b")
RAW_DELETE = re.compile(r"(?<![\w.])delete(?:\s*\[\s*\])?\s+[A-Za-z_(]")
BANNED_RANDOM = re.compile(r"(?<![\w:.>])(?:std\s*::\s*)?(rand|srand|time)\s*\(")
BARE_ASSERT = re.compile(r"(?<![\w:.])assert\s*\(")
PARENT_INCLUDE = re.compile(r'#\s*include\s+"[^"]*\.\.')
BITS_INCLUDE = re.compile(r"#\s*include\s+<bits/")
GUARD = re.compile(r"#ifndef\s+(X3_\w+_H_)")
# Matches std::thread / std::jthread as a type use. std::this_thread
# does not match: after "std::" the literal "thread" fails against
# "this_thread" at its third character.
RAW_THREAD = re.compile(r"std\s*::\s*j?thread\b")
RAW_STDIO = re.compile(
    r"(?<![\w:.>])(?:std\s*::\s*)?"
    r"(fopen|freopen|fdopen|fread|fwrite|fclose|fseeko?|ftello?|fflush|"
    r"tmpfile|fputs|fgets|fprintf|fscanf)\s*\(")
# Distinguishes file removal (remove(p.c_str())) from the std::remove
# algorithm: iterator arguments never involve a c_str() call.
REMOVE_FILE = re.compile(
    r"(?<![\w.])(?:std\s*::\s*)?remove\s*\((?:[^;()]|\([^()]*\))*c_str\s*\(")
# Raw clock reads: any std::chrono clock's now(), or a Clock::now()
# through a type alias. MonotonicNow/Timer (util/timer.h) are the seam.
RAW_CLOCK = re.compile(
    r"(?:steady_clock|system_clock|high_resolution_clock|\bClock)\s*::\s*"
    r"now\s*\(")
# Raw locking primitives. x3::Mutex/MutexLock/CondVar
# (util/thread_annotations.h) are the only lock types allowed in src/:
# they carry the capability annotations and the lock-order rank.
# A set of raw integer ids in cube code is a fact-id set by another
# name; FactIdSet is the one blessed representation.
RAW_FACT_SET = re.compile(
    r"std\s*::\s*(?:unordered_)?set\s*<\s*(?:std\s*::\s*)?"
    r"(?:uint32_t|uint64_t|size_t|unsigned(?:\s+(?:int|long(?:\s+long)?))?)"
    r"\s*>")
RAW_MUTEX = re.compile(
    r"std\s*::\s*(?:(?:timed_|recursive_|recursive_timed_|shared_)?mutex\b|"
    r"condition_variable(?:_any)?\b|"
    r"(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b)")
# The serving layer must answer through the cuboid cache; ComputeCube is
# reserved for the one annotated cache-miss fallback.
SERVER_COMPUTE_CUBE = re.compile(r"(?<![\w:.])ComputeCube\s*\(")
# Ad-hoc logging in the serving layer: serving events go through
# QueryLog, metrics, or X3_LOG (qid-prefixed), never bare stdio streams.
SERVER_RAW_LOG = re.compile(
    r"(?<![\w:.>])(?:std\s*::\s*)?(?:printf|puts|putchar|perror)\s*\(|"
    r"std\s*::\s*(?:cout|cerr|clog)\b")
# Direct page/catalog mutation in src/xdb/ bypasses the WAL: only the
# checkpoint path and the recovery repair path may do it, and each such
# site must carry an allow comment justifying why.
RAW_PAGE_WRITE = re.compile(
    r"\b(?:WritePage|AllocatePage|FlushAll|RenameFile)\s*\(")
ALLOW = re.compile(r"x3-lint:\s*allow\(([\w-]+)\)")


def strip_comments_and_strings(line):
    """Blanks out string/char literals and // comments (keeps length).

    Good enough for line-based lint rules; block comments are handled by
    the caller via in_block state.
    """
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []

    def report(self, path, lineno, rule, message, raw_line):
        allow = ALLOW.search(raw_line)
        if allow and allow.group(1) == rule:
            return
        rel = os.path.relpath(path, self.root)
        self.findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    def lint_file(self, path):
        rel = os.path.relpath(path, self.root).replace(os.sep, "/")
        in_storage = rel.startswith("src/storage/")
        in_src = rel.startswith("src/")
        is_logging_h = rel == "src/util/logging.h"
        is_thread_pool = rel.startswith("src/util/thread_pool.")
        is_env = rel.startswith("src/util/env.")
        is_clock_seam = rel in ("src/util/timer.h", "src/util/trace.cc")
        is_lock_seam = rel.startswith("src/util/thread_annotations.")
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.readlines()

        in_block = False
        has_guard = False
        for lineno, raw in enumerate(lines, start=1):
            line = raw
            if in_block:
                end = line.find("*/")
                if end < 0:
                    continue
                line = " " * (end + 2) + line[end + 2:]
                in_block = False
            # Strip block comments opening on this line.
            while True:
                start = line.find("/*")
                if start < 0:
                    break
                end = line.find("*/", start + 2)
                if end < 0:
                    line = line[:start]
                    in_block = True
                    break
                line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
            code = strip_comments_and_strings(line)

            if GUARD.search(code):
                has_guard = True

            if VOID_CAST_CALL.search(code):
                self.report(path, lineno, "void-cast-status",
                            "discarding a call via void cast; handle the "
                            "Status or use .IgnoreError()", raw)
            if in_src and not in_storage:
                stripped = code.strip()
                is_deleted_member = re.search(r"=\s*delete\s*[;,)]", code)
                if RAW_NEW.search(code) and not UNIQUE_PTR_NEW.search(code):
                    self.report(path, lineno, "raw-new-delete",
                                "raw `new` outside src/storage/ (wrap in "
                                "std::make_unique or unique_ptr<T>(new ...))",
                                raw)
                if (RAW_DELETE.search(code) and not is_deleted_member
                        and not stripped.startswith("///")):
                    self.report(path, lineno, "raw-new-delete",
                                "raw `delete` outside src/storage/", raw)
            if in_src and BANNED_RANDOM.search(code):
                self.report(path, lineno, "banned-random",
                            "rand()/srand()/time() in deterministic code; "
                            "use util/random.h with an explicit seed", raw)
            if in_src and not is_thread_pool and RAW_THREAD.search(code):
                self.report(path, lineno, "raw-thread",
                            "raw std::thread outside src/util/thread_pool.*; "
                            "use ThreadPool/TaskGroup", raw)
            if in_src and not is_env:
                if RAW_STDIO.search(code):
                    self.report(path, lineno, "raw-stdio",
                                "stdio file I/O in src/; route it through "
                                "the Env/File seam (util/env.h)", raw)
                if REMOVE_FILE.search(code):
                    self.report(path, lineno, "raw-stdio",
                                "direct file removal in src/; use "
                                "Env::RemoveFile so fault tests observe it",
                                raw)
            if in_src and not is_clock_seam and RAW_CLOCK.search(code):
                self.report(path, lineno, "raw-clock",
                            "raw clock read in src/; use Timer or "
                            "MonotonicNow (util/timer.h)", raw)
            if rel.startswith("src/cube/") and RAW_FACT_SET.search(code):
                self.report(path, lineno, "raw-fact-set",
                            "raw integer set in src/cube/; fact-id sets "
                            "use FactIdSet (util/fact_id_set.h)", raw)
            if in_src and not is_lock_seam and RAW_MUTEX.search(code):
                self.report(path, lineno, "raw-mutex",
                            "raw std::mutex/condition_variable/lock in src/; "
                            "use x3::Mutex/MutexLock/CondVar "
                            "(util/thread_annotations.h)", raw)
            if rel.startswith("src/xdb/") and RAW_PAGE_WRITE.search(code):
                self.report(path, lineno, "raw-page-write",
                            "direct page/catalog mutation in src/xdb/; "
                            "durable changes go through the WAL-commit/"
                            "checkpoint path (annotate designated sites)",
                            raw)
            if rel.startswith("src/server/") and SERVER_COMPUTE_CUBE.search(code):
                self.report(path, lineno, "server-compute-cube",
                            "direct ComputeCube in src/server/; serve from "
                            "the cuboid cache and leave compute to the "
                            "annotated cache-miss path in X3Server::RunQuery",
                            raw)
            if (rel.startswith("src/server/")
                    and not rel.startswith("src/server/query_log.")
                    and SERVER_RAW_LOG.search(code)):
                self.report(path, lineno, "server-raw-log",
                            "ad-hoc logging in src/server/; use the "
                            "structured QueryLog, a metric, or X3_LOG "
                            "(qid-prefixed)", raw)
            if in_src and not is_logging_h and BARE_ASSERT.search(code):
                self.report(path, lineno, "bare-assert",
                            "bare assert(); use X3_CHECK (always on) or "
                            "X3_DCHECK (debug-only)", raw)
            # Include rules look at the raw line: string stripping blanks
            # out the quoted path the rule needs to see.
            if PARENT_INCLUDE.search(line):
                self.report(path, lineno, "include-hygiene",
                            '"../" in include path; include from the src/ '
                            "root instead", raw)
            if BITS_INCLUDE.search(line):
                self.report(path, lineno, "include-hygiene",
                            "non-portable <bits/...> include", raw)

        if rel.endswith(".h") and in_src and not has_guard:
            self.report(path, 1, "include-hygiene",
                        "header missing X3_*_H_ include guard", "")

    def run(self, dirs):
        for d in dirs:
            top = os.path.join(self.root, d)
            if not os.path.isdir(top):
                continue
            for dirpath, dirnames, filenames in os.walk(top):
                dirnames[:] = [x for x in dirnames if x != "build"]
                for name in sorted(filenames):
                    if name.endswith(CC_EXTENSIONS):
                        self.lint_file(os.path.join(dirpath, name))
        return self.findings


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=os.getcwd(),
                        help="repository root (default: cwd)")
    args = parser.parse_args()

    linter = Linter(os.path.abspath(args.root))
    findings = linter.run(["src", "tests", "bench", "examples"])
    for finding in findings:
        print(finding)
    if findings:
        print(f"\nx3_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("x3_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
