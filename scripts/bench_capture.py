#!/usr/bin/env python3
"""Captures the perf trajectory of the figure benchmarks (ROADMAP item 4).

Runs the fig5/fig6 figure benchmarks in two memory configurations (an
ample budget of 2x the fact table, and a constrained budget of 0.25x
that forces the external-sort spill path), and records wall-clock plus
the machine-independent footprint counters the bench harness exports
(cells, factKB, peakMemKB, spillKB) into a BENCH_<n>.json snapshot.

A snapshot holds up to two sides, `before` and `after`, so a refactor
PR can capture the pre-change tree first and the post-change tree
second and the delta is reviewable in one file (see BENCH_1.json: the
row-major -> columnar FactTable refactor).

Commands:
  capture  --build-dir DIR --out FILE --side {before,after} --label TXT
           [--trees N] [--compress-spill]
      Runs the benchmarks and writes/updates one side of the snapshot.
      --compress-spill runs the TD family with block-compressed spill
      runs; the flag is recorded in the side so `check` replays the
      same configuration.
  check    --baseline FILE --build-dir DIR [--tolerance PCT]
      CI regression gate: re-runs the benchmarks at the scale recorded
      in the baseline's `after` (or only) side and fails if any
      machine-independent counter regressed: cells must match exactly,
      factKB / peakMemKB / spillKB must not exceed the recorded value
      by more than the tolerance (default 10%, plus a small absolute
      slack for near-zero values). Wall-clock is reported but not
      gated: CI machines vary too much for cross-machine time gates,
      and the counters are what the refactor actually promises.
  report   --baseline FILE
      Prints the before/after footprint table (EXPERIMENTS.md source).
  capture-delta  --build-dir DIR --out FILE --label TXT [--trees N]
                 [--min-time T]
      Runs bench_delta (delta cube maintenance vs full rematerialize vs
      budget-constrained TDCUST recompute over a committed small batch)
      and writes a BENCH_<n>.json snapshot with per-batch-size wall
      times, speedups and the spill delta. Cell-exactness of the delta
      path against the rebuild is asserted inside the binary at startup
      (X3_CHECK), so every recorded row compares provably identical
      cells.
  capture-server  --build-dir DIR --out FILE --label TXT [--queries N]
                  [--seed S] [--trees N] [--articles N]
      Runs the bench_server serving-layer driver single-client (so the
      cache outcome of the seeded query mix is deterministic) and
      writes a BENCH_<n>.json snapshot of the machine-independent
      serving counters: queries, cache exact hits / roll-ups / misses /
      served, evictions, stuck queries. Wall-clock and latency
      percentiles are recorded informationally.
  check-server  --baseline FILE --build-dir DIR
      CI regression gate for the serving layer: re-runs bench_server at
      the scale recorded in the baseline and fails if any deterministic
      counter (queries, ok, failed, exact_hits, rollup_answers,
      cache_misses, cache_served, evictions, stuck_queries) changed —
      the cache/admission/observability wiring must answer the same
      seeded workload exactly the same way. Wall-clock and percentiles
      are reported but not gated.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

FIGURES = ["fig5_sparse", "fig6_dense"]
BINARY = {"fig5_sparse": "bench_fig5_sparse", "fig6_dense": "bench_fig6_dense"}
CONFIGS = {"ample": 2.0, "constrained": 0.25}
COUNTERS = ["cells", "factKB", "peakMemKB", "spillKB"]
DEFAULT_TREES = 5000

DELTA_BINARY = "bench_delta"
DELTA_COUNTERS = COUNTERS + ["facts", "newFacts", "viewsPatched",
                             "viewsRecomputed"]
DELTA_PATHS = ["DeltaMaintain", "FullRematerialize", "FullRecomputeTD"]
DELTA_DEFAULT_TREES = 2000


def run_figure(build_dir, figure, trees, budget_factor, compress_spill):
    """Runs one figure binary, returns {benchmark_name: metrics dict}."""
    binary = os.path.join(build_dir, "bench", BINARY[figure])
    if not os.path.exists(binary):
        sys.exit(f"bench binary not found: {binary} (build it first)")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    env = dict(os.environ)
    env["X3_BENCH_TREES"] = str(trees)
    env["X3_BENCH_BUDGET_FACTOR"] = repr(budget_factor)
    env["X3_BENCH_COMPRESS_SPILL"] = "1" if compress_spill else "0"
    try:
        subprocess.run(
            [binary, "--benchmark_min_time=1x",
             f"--benchmark_out={out_path}", "--benchmark_out_format=json"],
            env=env, check=True, stdout=subprocess.DEVNULL)
        with open(out_path) as f:
            raw = json.load(f)
    finally:
        os.unlink(out_path)
    results = {}
    for bench in raw.get("benchmarks", []):
        name = bench["name"]
        entry = {"real_ms": round(bench["real_time"], 3)}
        for counter in COUNTERS:
            if counter in bench:
                entry[counter] = round(bench[counter], 3)
        results[name] = entry
    return results


def summarize(figures):
    """Aggregates one side's per-benchmark metrics for the report table."""
    total_ms = 0.0
    peak_kb = 0.0
    spill_kb = 0.0
    fact_kb = 0.0
    for config_results in figures.values():
        for benchmarks in config_results.values():
            for metrics in benchmarks.values():
                total_ms += metrics["real_ms"]
                peak_kb = max(peak_kb, metrics.get("peakMemKB", 0.0))
                spill_kb += metrics.get("spillKB", 0.0)
                fact_kb = max(fact_kb, metrics.get("factKB", 0.0))
    return {
        "wall_ms_total": round(total_ms, 1),
        "peak_mem_kb_max": round(peak_kb, 1),
        "spill_kb_total": round(spill_kb, 1),
        "fact_kb_max": round(fact_kb, 1),
    }


def git_commit():
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], capture_output=True,
            text=True, check=True).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def capture_side(build_dir, trees, compress_spill):
    figures = {}
    for figure in FIGURES:
        figures[figure] = {}
        for config, factor in CONFIGS.items():
            print(f"  running {figure} ({config}, factor {factor}, "
                  f"{trees} trees, compress_spill={compress_spill})...",
                  flush=True)
            figures[figure][config] = run_figure(
                build_dir, figure, trees, factor, compress_spill)
    return figures


def cmd_capture(args):
    snapshot = {"schema": 1, "trees": args.trees, "figures": FIGURES,
                "configs": CONFIGS}
    if os.path.exists(args.out):
        with open(args.out) as f:
            snapshot = json.load(f)
        if snapshot.get("trees") != args.trees:
            sys.exit(f"{args.out} was captured at trees={snapshot.get('trees')},"
                     f" refusing to mix with trees={args.trees}")
    side = {
        "label": args.label,
        "commit": git_commit(),
        "compress_spill": args.compress_spill,
        "figures": capture_side(args.build_dir, args.trees,
                                args.compress_spill),
    }
    side["summary"] = summarize(side["figures"])
    snapshot[args.side] = side
    with open(args.out, "w") as f:
        json.dump(snapshot, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.side} side of {args.out}: {side['summary']}")


def cmd_check(args):
    with open(args.baseline) as f:
        snapshot = json.load(f)
    side = snapshot.get("after") or snapshot.get("before")
    if side is None:
        sys.exit(f"{args.baseline} has no captured side")
    trees = snapshot["trees"]
    tolerance = 1.0 + args.tolerance / 100.0
    slack_kb = 16.0  # absolute slack so near-zero baselines don't gate noise
    compress_spill = side.get("compress_spill", False)
    print(f"re-running capture at trees={trees} against "
          f"'{side['label']}' ({side['commit']})")
    current = capture_side(args.build_dir, trees, compress_spill)
    failures = []
    wall_base = 0.0
    wall_now = 0.0
    for figure, config_results in side["figures"].items():
        for config, benchmarks in config_results.items():
            for name, base in benchmarks.items():
                now = current.get(figure, {}).get(config, {}).get(name)
                if now is None:
                    failures.append(f"{name} [{config}]: benchmark vanished")
                    continue
                wall_base += base["real_ms"]
                wall_now += now["real_ms"]
                if now.get("cells") != base.get("cells"):
                    failures.append(
                        f"{name} [{config}]: cells {now.get('cells')} != "
                        f"baseline {base.get('cells')}")
                for counter in ("factKB", "peakMemKB", "spillKB"):
                    b = base.get(counter, 0.0)
                    n = now.get(counter, 0.0)
                    if n > b * tolerance + slack_kb:
                        failures.append(
                            f"{name} [{config}]: {counter} {n:.1f} > "
                            f"baseline {b:.1f} (+{args.tolerance}% + "
                            f"{slack_kb}KB slack)")
    print(f"wall-clock (informational): baseline {wall_base:.0f} ms, "
          f"now {wall_now:.0f} ms")
    if failures:
        print(f"REGRESSION: {len(failures)} counter(s) regressed vs "
              f"{args.baseline}:")
        for failure in failures:
            print(f"  {failure}")
        sys.exit(1)
    print(f"OK: all footprint counters within {args.tolerance}% of "
          f"{args.baseline}")


def run_delta(build_dir, trees, min_time):
    """Runs bench_delta, returns {benchmark_name: metrics dict}."""
    binary = os.path.join(build_dir, "bench", DELTA_BINARY)
    if not os.path.exists(binary):
        sys.exit(f"bench binary not found: {binary} (build it first)")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    env = dict(os.environ)
    env["X3_BENCH_TREES"] = str(trees)
    try:
        subprocess.run(
            [binary, f"--benchmark_min_time={min_time}",
             f"--benchmark_out={out_path}", "--benchmark_out_format=json"],
            env=env, check=True, stdout=subprocess.DEVNULL)
        with open(out_path) as f:
            raw = json.load(f)
    finally:
        os.unlink(out_path)
    results = {}
    for bench in raw.get("benchmarks", []):
        entry = {"real_ms": round(bench["real_time"], 3)}
        for counter in DELTA_COUNTERS:
            if counter in bench:
                entry[counter] = round(bench[counter], 3)
        results[bench["name"]] = entry
    return results


def summarize_delta(results):
    """Per batch size: the three paths' wall times, speedups, spill."""
    per_batch = {}
    for name, metrics in results.items():
        path, _, batch = name.partition("/")
        per_batch.setdefault(batch, {})[path.split("BM_", 1)[-1]] = metrics
    summary = {}
    for batch, paths in sorted(per_batch.items(), key=lambda kv: int(kv[0])):
        if any(p not in paths for p in DELTA_PATHS):
            sys.exit(f"batch size {batch}: missing one of {DELTA_PATHS}")
        delta = paths["DeltaMaintain"]
        remat = paths["FullRematerialize"]
        recompute = paths["FullRecomputeTD"]
        summary[batch] = {
            "delta_ms": delta["real_ms"],
            "rematerialize_ms": remat["real_ms"],
            "recompute_td_ms": recompute["real_ms"],
            "speedup_vs_rematerialize": round(
                remat["real_ms"] / delta["real_ms"], 2),
            "speedup_vs_recompute": round(
                recompute["real_ms"] / delta["real_ms"], 2),
            "spill_kb_saved": round(
                recompute.get("spillKB", 0.0) - delta.get("spillKB", 0.0), 1),
            "cells": delta.get("cells"),
        }
    return summary


def cmd_capture_delta(args):
    print(f"  running {DELTA_BINARY} ({args.trees} trees, "
          f"min_time={args.min_time})...", flush=True)
    results = run_delta(args.build_dir, args.trees, args.min_time)
    snapshot = {
        "schema": 1,
        "benchmark": "delta_maintenance",
        "trees": args.trees,
        "paths": DELTA_PATHS,
        "label": args.label,
        "commit": git_commit(),
        "exactness": "asserted in-binary at startup: delta-maintained "
                     "views answer every cuboid with exactly the cells "
                     "of a from-scratch rebuild",
        "results": results,
        "summary": summarize_delta(results),
    }
    with open(args.out, "w") as f:
        json.dump(snapshot, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}:")
    for batch, s in snapshot["summary"].items():
        print(f"  batch {batch:>3}: delta {s['delta_ms']:.2f} ms vs "
              f"rematerialize {s['rematerialize_ms']:.2f} ms "
              f"({s['speedup_vs_rematerialize']}x) vs recompute "
              f"{s['recompute_td_ms']:.2f} ms "
              f"({s['speedup_vs_recompute']}x), spill saved "
              f"{s['spill_kb_saved']} KB")


SERVER_BINARY = "bench_server"
# Deterministic under --clients=1 with a fixed seed: gated exactly.
SERVER_GATED = ["queries", "ok", "failed", "exact_hits", "rollup_answers",
                "cache_misses", "cache_served", "evictions", "stuck_queries"]
# Machine/timing dependent: recorded for the report, never gated.
SERVER_INFORMATIONAL = ["wall_seconds", "achieved_qps", "p50_ms", "p95_ms",
                        "p99_ms", "mean_ms", "cache_hit_rate",
                        "slow_queries"]
SERVER_DEFAULTS = {"queries": 200, "seed": 1, "trees": 200, "articles": 300}


def run_server(build_dir, config):
    """Runs the serving-layer driver once, returns its JSON report."""
    binary = os.path.join(build_dir, "bench", SERVER_BINARY)
    if not os.path.exists(binary):
        sys.exit(f"bench binary not found: {binary} (build it first)")
    cmd = [binary, "--clients=1", "--qps=0", "--threads=1",
           f"--queries={config['queries']}", f"--seed={config['seed']}",
           f"--trees={config['trees']}", f"--articles={config['articles']}"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode not in (0, 2):
        print(proc.stderr, file=sys.stderr)
        sys.exit(f"{' '.join(cmd)} exited {proc.returncode}")
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        print(proc.stdout, file=sys.stderr)
        sys.exit(f"unparseable bench_server output: {e}")


def cmd_capture_server(args):
    config = {"queries": args.queries, "seed": args.seed,
              "trees": args.trees, "articles": args.articles}
    print(f"  running {SERVER_BINARY} (single client, {config})...",
          flush=True)
    report = run_server(args.build_dir, config)
    snapshot = {
        "schema": 1,
        "benchmark": "server_workload",
        "config": config,
        "label": args.label,
        "commit": git_commit(),
        "gated_counters": {k: report[k] for k in SERVER_GATED},
        "informational": {k: report[k] for k in SERVER_INFORMATIONAL},
    }
    with open(args.out, "w") as f:
        json.dump(snapshot, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}: {snapshot['gated_counters']}")


def cmd_check_server(args):
    with open(args.baseline) as f:
        snapshot = json.load(f)
    if snapshot.get("benchmark") != "server_workload":
        sys.exit(f"{args.baseline} is not a capture-server snapshot")
    config = snapshot["config"]
    print(f"re-running {SERVER_BINARY} at {config} against "
          f"'{snapshot['label']}' ({snapshot['commit']})")
    report = run_server(args.build_dir, config)
    failures = []
    for counter in SERVER_GATED:
        base = snapshot["gated_counters"].get(counter)
        now = report.get(counter)
        if now != base:
            failures.append(f"{counter}: {now} != baseline {base}")
    base_wall = snapshot["informational"]["wall_seconds"]
    print(f"wall-clock (informational): baseline {base_wall:.3f} s, "
          f"now {report['wall_seconds']:.3f} s; p99 "
          f"{snapshot['informational']['p99_ms']:.3f} -> "
          f"{report['p99_ms']:.3f} ms")
    if failures:
        print(f"REGRESSION: {len(failures)} serving counter(s) changed vs "
              f"{args.baseline}:")
        for failure in failures:
            print(f"  {failure}")
        sys.exit(1)
    print(f"OK: all deterministic serving counters match {args.baseline}")


def cmd_report(args):
    with open(args.baseline) as f:
        snapshot = json.load(f)
    print(f"| side | label | commit | wall ms | peak mem KB "
          f"| spill KB | fact KB |")
    print("|---|---|---|---|---|---|---|")
    for side_name in ("before", "after"):
        side = snapshot.get(side_name)
        if side is None:
            continue
        s = side["summary"]
        print(f"| {side_name} | {side['label']} | {side['commit']} "
              f"| {s['wall_ms_total']} | {s['peak_mem_kb_max']} "
              f"| {s['spill_kb_total']} | {s['fact_kb_max']} |")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("capture")
    p.add_argument("--build-dir", default="build")
    p.add_argument("--out", required=True)
    p.add_argument("--side", choices=["before", "after"], required=True)
    p.add_argument("--label", required=True)
    p.add_argument("--trees", type=int, default=DEFAULT_TREES)
    p.add_argument("--compress-spill", action="store_true",
                   help="run the TD family with block-compressed spill "
                        "runs (recorded in the side; check replays it)")
    p.set_defaults(func=cmd_capture)

    p = sub.add_parser("check")
    p.add_argument("--baseline", required=True)
    p.add_argument("--build-dir", default="build")
    p.add_argument("--tolerance", type=float, default=10.0)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("report")
    p.add_argument("--baseline", required=True)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("capture-delta")
    p.add_argument("--build-dir", default="build")
    p.add_argument("--out", required=True)
    p.add_argument("--label", required=True)
    p.add_argument("--trees", type=int, default=DELTA_DEFAULT_TREES)
    p.add_argument("--min-time", default="1x",
                   help="--benchmark_min_time value; the packaged "
                        "library in CI accepts the '1x' iteration form, "
                        "older local builds need a plain double")
    p.set_defaults(func=cmd_capture_delta)

    p = sub.add_parser("capture-server")
    p.add_argument("--build-dir", default="build")
    p.add_argument("--out", required=True)
    p.add_argument("--label", required=True)
    p.add_argument("--queries", type=int, default=SERVER_DEFAULTS["queries"])
    p.add_argument("--seed", type=int, default=SERVER_DEFAULTS["seed"])
    p.add_argument("--trees", type=int, default=SERVER_DEFAULTS["trees"])
    p.add_argument("--articles", type=int,
                   default=SERVER_DEFAULTS["articles"])
    p.set_defaults(func=cmd_capture_server)

    p = sub.add_parser("check-server")
    p.add_argument("--baseline", required=True)
    p.add_argument("--build-dir", default="build")
    p.set_defaults(func=cmd_check_server)

    args = parser.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
