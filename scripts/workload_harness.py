#!/usr/bin/env python3
"""Closed-loop multi-tenant workload harness for the X3Server layer.

Wraps the bench_server driver (bench/bench_server.cc): runs one or more
(clients, qps) settings against a server holding both tenant corpora
(Treebank + DBLP), collects the JSON report each run prints — p50/p99
latency interpolated from the x3_server_query_latency_seconds histogram
and cache hit rates from the x3_server_* counters — and renders a table.

Usage:
  workload_harness.py --bin build/bench/bench_server
      [--clients 1,4,8] [--qps 200] [--queries 400] [--seed 1]
      [--cache-kb 256] [--trace out.json] [--metrics out.txt]
      [--statusz out.json] [--query-log out.jsonl]
      [--slow-ms N] [--stall-ms N] [--check]

With --trace/--metrics the first run exports the Chrome trace and the
Prometheus text (via the X3_TRACE / X3_METRICS env hooks); --statusz
and --query-log add the Statusz() snapshot and the per-query JSONL
lifecycle log (first run only) so check_observability.py can validate
all four together. --slow-ms arms the server's slow-query lane;
--stall-ms injects one deliberately stalled query with the watchdog
armed. With --check the harness fails (exit 1) unless every query
succeeded, the cache actually served part of the load, and the
watchdog flagged exactly the injected stall (one stuck query with
--stall-ms, zero without — the false-positive gate) — the CI
server-smoke gate.
"""

import argparse
import json
import os
import subprocess
import sys


def run_once(args, clients, env_extra=None, artifacts=False):
    cmd = [
        args.bin,
        f"--clients={clients}",
        f"--qps={args.qps}",
        f"--queries={args.queries}",
        f"--seed={args.seed}",
        f"--threads={args.threads}",
        f"--cache-kb={args.cache_kb}",
        f"--trees={args.trees}",
        f"--articles={args.articles}",
    ]
    if args.slow_ms > 0:
        cmd.append(f"--slow-ms={args.slow_ms}")
    if args.stall_ms > 0:
        cmd.append(f"--stall-ms={args.stall_ms}")
    if artifacts and args.statusz:
        cmd.append(f"--statusz-out={args.statusz}")
    if artifacts and args.query_log:
        cmd.append(f"--query-log-out={args.query_log}")
    env = dict(os.environ)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.run(cmd, capture_output=True, text=True, env=env)
    if proc.returncode not in (0, 2):
        print(proc.stderr, file=sys.stderr)
        sys.exit(f"workload_harness: {' '.join(cmd)} exited "
                 f"{proc.returncode}")
    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        print(proc.stdout, file=sys.stderr)
        sys.exit(f"workload_harness: unparseable driver output: {e}")
    return report


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bin", required=True,
                        help="path to the bench_server binary")
    parser.add_argument("--clients", default="4",
                        help="comma-separated client-thread counts")
    parser.add_argument("--qps", type=float, default=200)
    parser.add_argument("--queries", type=int, default=400)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--threads", type=int, default=0,
                        help="server worker threads (0 = hardware)")
    parser.add_argument("--cache-kb", type=int, default=256)
    parser.add_argument("--trees", type=int, default=300)
    parser.add_argument("--articles", type=int, default=400)
    parser.add_argument("--trace", help="export Chrome trace JSON here "
                        "(first run only)")
    parser.add_argument("--metrics", help="export Prometheus text here "
                        "(first run only)")
    parser.add_argument("--statusz", help="export the Statusz() JSON "
                        "snapshot here (first run only)")
    parser.add_argument("--query-log", help="export the per-query JSONL "
                        "lifecycle log here (first run only)")
    parser.add_argument("--slow-ms", type=float, default=0,
                        help="slow-query lane threshold (0 = disabled)")
    parser.add_argument("--stall-ms", type=float, default=0,
                        help="inject one stalled query of this length "
                        "with the watchdog armed (0 = disabled)")
    parser.add_argument("--check", action="store_true",
                        help="CI gate: fail unless all queries succeeded, "
                        "the cache served part of the load, and the "
                        "watchdog flagged exactly the injected stall")
    args = parser.parse_args()

    client_counts = [int(c) for c in args.clients.split(",")]
    reports = []
    for i, clients in enumerate(client_counts):
        env_extra = {}
        if i == 0 and args.trace:
            env_extra["X3_TRACE"] = args.trace
        if i == 0 and args.metrics:
            env_extra["X3_METRICS"] = args.metrics
        reports.append(run_once(args, clients, env_extra, artifacts=(i == 0)))

    header = (f"{'clients':>8} {'qps*':>8} {'qps':>8} {'p50 ms':>9} "
              f"{'p95 ms':>9} {'p99 ms':>9} {'mean ms':>9} {'hit rate':>9} "
              f"{'rollups':>8} {'evict':>6} {'slow':>5} {'stuck':>6} "
              f"{'failed':>7}")
    print(header)
    print("-" * len(header))
    for r in reports:
        print(f"{r['clients']:>8} {r['target_qps']:>8.0f} "
              f"{r['achieved_qps']:>8.1f} {r['p50_ms']:>9.3f} "
              f"{r['p95_ms']:>9.3f} "
              f"{r['p99_ms']:>9.3f} {r['mean_ms']:>9.3f} "
              f"{r['cache_hit_rate']:>9.3f} {r['rollup_answers']:>8} "
              f"{r['evictions']:>6} {r['slow_queries']:>5} "
              f"{r['stuck_queries']:>6} {r['failed']:>7}")

    if args.check:
        # The injected stall is one extra query on top of --queries.
        expected_ok = args.queries + (1 if args.stall_ms > 0 else 0)
        expected_stuck = 1 if args.stall_ms > 0 else 0
        for r in reports:
            if r["failed"] != 0:
                sys.exit(f"workload_harness: {r['failed']} queries failed "
                         f"at {r['clients']} clients")
            if r["ok"] != expected_ok:
                sys.exit(f"workload_harness: expected {expected_ok} "
                         f"answers, got {r['ok']}")
            if r["cache_served"] == 0:
                sys.exit("workload_harness: cache never served a query "
                         "(cache wiring broken?)")
            if not (0 < r["p50_ms"] <= r["p95_ms"] <= r["p99_ms"]):
                sys.exit(f"workload_harness: implausible percentiles "
                         f"p50={r['p50_ms']} p95={r['p95_ms']} "
                         f"p99={r['p99_ms']}")
            if r["stuck_queries"] != expected_stuck:
                sys.exit(f"workload_harness: watchdog flagged "
                         f"{r['stuck_queries']} stuck queries, expected "
                         f"{expected_stuck} (false "
                         f"{'negative' if expected_stuck else 'positive'})")
            if args.stall_ms > 0 and args.slow_ms > 0 \
                    and r["slow_queries"] == 0:
                sys.exit("workload_harness: the injected stall never hit "
                         "the slow-query lane")
        print("workload_harness: check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
