#!/usr/bin/env python3
"""Render the benchmark output as per-figure ASCII charts / CSV.

Parses the google-benchmark console output captured in bench_output.txt
and prints, for each figure, the running-time-vs-axes series per
algorithm (the series the paper plots), plus a quick ASCII chart so the
shape is visible without leaving the terminal.

Usage:
    python3 scripts/plot_figures.py [bench_output.txt] [--csv]
"""

import re
import sys
from collections import defaultdict

ROW = re.compile(
    r"^(?P<name>\S+)\s+(?P<time>[0-9.]+)\s+ms\s+[0-9.]+\s+ms\s+\d+"
)


def parse(path):
    # figures[figure][algo] -> list of (x_label, ms)
    figures = defaultdict(lambda: defaultdict(list))
    with open(path) as f:
        for line in f:
            m = ROW.match(line.strip())
            if not m:
                continue
            name = m.group("name")
            ms = float(m.group("time"))
            parts = name.split("/")
            figure = parts[0]
            algo = parts[1] if len(parts) > 1 else ""
            x = ""
            for part in parts[2:]:
                if part.startswith(("axes:", "trees:", "threads:")):
                    x = part.split(":", 1)[1]
            figures[figure][algo].append((x, ms))
    return figures


def ascii_chart(series, width=50):
    """One bar row per (algo, x) pair, log-free linear scaling."""
    peak = max(ms for points in series.values() for _, ms in points)
    lines = []
    for algo in sorted(series):
        for x, ms in series[algo]:
            bar = "#" * max(1, int(ms / peak * width))
            label = f"{algo}{'/' + x if x else ''}"
            lines.append(f"  {label:<22} {ms:>10.2f} ms  {bar}")
    return "\n".join(lines)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    csv = "--csv" in sys.argv
    path = args[0] if args else "bench_output.txt"
    figures = parse(path)
    if not figures:
        print(f"no benchmark rows found in {path}", file=sys.stderr)
        return 1
    for figure in sorted(figures):
        series = figures[figure]
        print(f"\n=== {figure} ===")
        if csv:
            xs = sorted({x for pts in series.values() for x, _ in pts},
                        key=lambda v: (len(v), v))
            print("algorithm," + ",".join(xs))
            for algo in sorted(series):
                by_x = dict(series[algo])
                print(algo + "," +
                      ",".join(str(by_x.get(x, "")) for x in xs))
        else:
            print(ascii_chart(series))
    return 0


if __name__ == "__main__":
    sys.exit(main())
