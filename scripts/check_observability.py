#!/usr/bin/env python3
"""Validates the observability exports a bench run produces.

Usage: check_observability.py <trace.json> <metrics.txt>

Checks (the CI bench-smoke gate; see DESIGN.md §9):
  - the trace file is non-empty, valid JSON, has a traceEvents list with
    at least one span event, and every 'B'/'E' pair matches per thread
    with non-decreasing per-thread timestamps;
  - the metrics file is non-empty Prometheus text: every metric has
    exactly one # HELP and one # TYPE line, names obey the Prometheus
    charset, and at least one x3_* sample is present.

Exit status 1 with a message on any violation.
"""

import json
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_LINE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{[^}]*\})? ")


def fail(msg):
    print(f"check_observability: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    if not text.strip():
        fail(f"{path}: empty trace file")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        fail(f"{path}: invalid JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: no traceEvents list")
    spans = [e for e in events if e.get("ph") in ("B", "E")]
    if not spans:
        fail(f"{path}: no span events (was the tracer enabled?)")
    open_stacks = {}
    last_ts = {}
    for e in spans:
        tid, ts = e["tid"], e["ts"]
        if tid in last_ts and ts < last_ts[tid]:
            fail(f"{path}: timestamps regress on tid {tid}")
        last_ts[tid] = ts
        stack = open_stacks.setdefault(tid, [])
        if e["ph"] == "B":
            stack.append(e["name"])
        else:
            if not stack or stack.pop() != e["name"]:
                fail(f"{path}: unmatched E '{e['name']}' on tid {tid}")
    for tid, stack in open_stacks.items():
        if stack:
            fail(f"{path}: unclosed span(s) {stack} on tid {tid}")
    print(f"check_observability: {path}: {len(spans)} span events, "
          f"{len(open_stacks)} thread(s)")


def check_metrics(path):
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        fail(f"{path}: empty metrics file")
    help_counts = {}
    type_counts = {}
    samples = 0
    for line in lines:
        if line.startswith("# HELP "):
            name = line.split()[2]
            help_counts[name] = help_counts.get(name, 0) + 1
        elif line.startswith("# TYPE "):
            name = line.split()[2]
            type_counts[name] = type_counts.get(name, 0) + 1
        elif line and not line.startswith("#"):
            m = SAMPLE_LINE.match(line)
            if not m:
                fail(f"{path}: unparseable sample line: {line!r}")
            if not METRIC_NAME.match(m.group("name")):
                fail(f"{path}: bad metric name: {m.group('name')!r}")
            samples += 1
    for name, count in list(help_counts.items()) + list(type_counts.items()):
        if count != 1:
            fail(f"{path}: metric {name} has {count} HELP/TYPE lines")
    if set(help_counts) != set(type_counts):
        fail(f"{path}: HELP/TYPE sets differ")
    if not any(n.startswith("x3_") for n in type_counts):
        fail(f"{path}: no x3_* metrics exported")
    if samples == 0:
        fail(f"{path}: no samples")
    print(f"check_observability: {path}: {len(type_counts)} metrics, "
          f"{samples} samples")


def main():
    if len(sys.argv) != 3:
        fail("usage: check_observability.py <trace.json> <metrics.txt>")
    check_trace(sys.argv[1])
    check_metrics(sys.argv[2])
    return 0


if __name__ == "__main__":
    sys.exit(main())
