#!/usr/bin/env python3
"""Validates the observability exports a bench run produces.

Usage: check_observability.py <trace.json> <metrics.txt>
           [--statusz statusz.json] [--query-log query_log.jsonl]

Checks (the CI bench-smoke / server-smoke gates; see DESIGN.md §9, §13):
  - the trace file is non-empty, valid JSON, has a traceEvents list with
    at least one span event, and every 'B'/'E' pair matches per thread
    with non-decreasing per-thread timestamps;
  - the metrics file is non-empty Prometheus text: every metric has
    exactly one # HELP and one # TYPE line, names obey the Prometheus
    charset, and at least one x3_* sample is present;
  - with --statusz: the X3Server::Statusz() JSON snapshot has every
    schema field with the right type, plausible internal consistency
    (ratio in [0,1], ordered latency percentiles), and no in-flight
    queries left behind after a drained run;
  - with --query-log: the query-lifecycle JSONL has one well-formed
    record per line, the qids are unique AND dense (1..N — exactly one
    record per submitted query, none dropped), every record's stage
    list is well-formed, and slow records carry their flag honestly;
  - with both trace and --query-log: every qid a trace span carries
    references a logged query (spans never invent query ids).

Exit status 1 with a message on any violation.
"""

import argparse
import json
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_LINE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{[^}]*\})? ")

# Field -> type(s) of the X3Server::Statusz() JSON schema.
STATUSZ_SCHEMA = {
    "uptime_seconds": (int, float),
    "num_threads": int,
    "queries_submitted": int,
    "queue_depth": int,
    "inflight": list,
    "shapes": list,
    "last_commit_lsn": int,
    "durable_lsn": int,
    "cache_bytes": int,
    "cache_views": int,
    "cache_evictions": int,
    "cache_hits": int,
    "rollup_answers": int,
    "cache_misses": int,
    "cache_hit_ratio": (int, float),
    "budget_capacity_bytes": int,
    "budget_used_bytes": int,
    "budget_peak_bytes": int,
    "admission_denied": int,
    "stuck_queries": int,
    "latency_p50_ms": (int, float),
    "latency_p95_ms": (int, float),
    "latency_p99_ms": (int, float),
}

# Field -> type(s) of one query-log JSONL record.
QUERY_LOG_SCHEMA = {
    "qid": int,
    "tenant": str,
    "shape_key": str,
    "queue_ms": (int, float),
    "latency_ms": (int, float),
    "exact_hits": int,
    "rollup_answers": int,
    "computed": bool,
    "cache_bypassed": bool,
    "algorithm_requested": str,
    "algorithm_used": str,
    "downgraded": bool,
    "budget_peak_bytes": int,
    "spill_bytes": int,
    "stages": list,
    "status": str,
    "error": str,
    "slow": bool,
    "slow_explain": str,
}


def fail(msg):
    print(f"check_observability: {msg}", file=sys.stderr)
    sys.exit(1)


def check_schema(obj, schema, where):
    for field, types in schema.items():
        if field not in obj:
            fail(f"{where}: missing field {field!r}")
        value = obj[field]
        # bool is an int subclass in Python; don't let True pass as int.
        if isinstance(value, bool) and types is not bool:
            fail(f"{where}: field {field!r} is bool, expected {types}")
        if not isinstance(value, types):
            fail(f"{where}: field {field!r} has type "
                 f"{type(value).__name__}, expected {types}")


def check_trace(path):
    """Returns the set of qids referenced by span args."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    if not text.strip():
        fail(f"{path}: empty trace file")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        fail(f"{path}: invalid JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: no traceEvents list")
    spans = [e for e in events if e.get("ph") in ("B", "E")]
    if not spans:
        fail(f"{path}: no span events (was the tracer enabled?)")
    open_stacks = {}
    last_ts = {}
    qids = set()
    for e in spans:
        tid, ts = e["tid"], e["ts"]
        if tid in last_ts and ts < last_ts[tid]:
            fail(f"{path}: timestamps regress on tid {tid}")
        last_ts[tid] = ts
        stack = open_stacks.setdefault(tid, [])
        if e["ph"] == "B":
            stack.append(e["name"])
        else:
            if not stack or stack.pop() != e["name"]:
                fail(f"{path}: unmatched E '{e['name']}' on tid {tid}")
        qid = e.get("args", {}).get("qid")
        if qid is not None:
            if not isinstance(qid, int) or qid <= 0:
                fail(f"{path}: span '{e['name']}' has bad qid {qid!r}")
            qids.add(qid)
    for tid, stack in open_stacks.items():
        if stack:
            fail(f"{path}: unclosed span(s) {stack} on tid {tid}")
    print(f"check_observability: {path}: {len(spans)} span events, "
          f"{len(open_stacks)} thread(s), {len(qids)} distinct qids")
    return qids


def check_metrics(path):
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    if not lines:
        fail(f"{path}: empty metrics file")
    help_counts = {}
    type_counts = {}
    samples = 0
    for line in lines:
        if line.startswith("# HELP "):
            name = line.split()[2]
            help_counts[name] = help_counts.get(name, 0) + 1
        elif line.startswith("# TYPE "):
            name = line.split()[2]
            type_counts[name] = type_counts.get(name, 0) + 1
        elif line and not line.startswith("#"):
            m = SAMPLE_LINE.match(line)
            if not m:
                fail(f"{path}: unparseable sample line: {line!r}")
            if not METRIC_NAME.match(m.group("name")):
                fail(f"{path}: bad metric name: {m.group('name')!r}")
            samples += 1
    for name, count in list(help_counts.items()) + list(type_counts.items()):
        if count != 1:
            fail(f"{path}: metric {name} has {count} HELP/TYPE lines")
    if set(help_counts) != set(type_counts):
        fail(f"{path}: HELP/TYPE sets differ")
    if not any(n.startswith("x3_") for n in type_counts):
        fail(f"{path}: no x3_* metrics exported")
    if samples == 0:
        fail(f"{path}: no samples")
    print(f"check_observability: {path}: {len(type_counts)} metrics, "
          f"{samples} samples")


def check_statusz(path):
    """Returns the parsed statusz snapshot."""
    with open(path, encoding="utf-8") as f:
        text = f.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        fail(f"{path}: invalid JSON: {e}")
    check_schema(doc, STATUSZ_SCHEMA, path)
    for i, q in enumerate(doc["inflight"]):
        check_schema(q, {"qid": int, "tenant": str, "stage": str,
                         "age_seconds": (int, float), "stuck": bool},
                     f"{path}: inflight[{i}]")
    for i, s in enumerate(doc["shapes"]):
        check_schema(s, {"key": str, "built_lsn": int, "fact_rows": int},
                     f"{path}: shapes[{i}]")
    if not 0 <= doc["cache_hit_ratio"] <= 1:
        fail(f"{path}: cache_hit_ratio {doc['cache_hit_ratio']} not in [0,1]")
    if not (0 <= doc["latency_p50_ms"] <= doc["latency_p95_ms"]
            <= doc["latency_p99_ms"]):
        fail(f"{path}: latency percentiles out of order: "
             f"p50={doc['latency_p50_ms']} p95={doc['latency_p95_ms']} "
             f"p99={doc['latency_p99_ms']}")
    if doc["durable_lsn"] > doc["last_commit_lsn"]:
        fail(f"{path}: durable_lsn {doc['durable_lsn']} ahead of "
             f"last_commit_lsn {doc['last_commit_lsn']}")
    if doc["inflight"]:
        fail(f"{path}: {len(doc['inflight'])} queries still in flight in a "
             f"post-drain snapshot")
    print(f"check_observability: {path}: {doc['queries_submitted']} queries, "
          f"{len(doc['shapes'])} shapes, hit ratio "
          f"{doc['cache_hit_ratio']:.3f}")
    return doc


def check_query_log(path, statusz=None):
    """Returns the set of logged qids."""
    with open(path, encoding="utf-8") as f:
        lines = [l for l in f.read().splitlines() if l.strip()]
    if not lines:
        fail(f"{path}: empty query log")
    qids = set()
    for n, line in enumerate(lines, 1):
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{n}: invalid JSON: {e}")
        check_schema(rec, QUERY_LOG_SCHEMA, f"{path}:{n}")
        for i, stage in enumerate(rec["stages"]):
            check_schema(stage, {"label": str, "ms": (int, float),
                                 "rows": int, "bytes": int},
                         f"{path}:{n}: stages[{i}]")
        if rec["qid"] in qids:
            fail(f"{path}:{n}: duplicate qid {rec['qid']}")
        qids.add(rec["qid"])
        if rec["status"] == "OK" and rec["error"]:
            fail(f"{path}:{n}: OK record carries error {rec['error']!r}")
        if rec["slow_explain"] and not rec["slow"]:
            fail(f"{path}:{n}: slow_explain on a record not marked slow")
    # Dense qids: exactly one record per submitted query. (Holds as long
    # as the ring capacity covered the run, which the harness ensures.)
    if qids != set(range(1, len(qids) + 1)):
        missing = sorted(set(range(1, max(qids) + 1)) - qids)[:10]
        fail(f"{path}: qids not dense 1..{len(qids)} "
             f"(first missing: {missing})")
    if statusz is not None and statusz["queries_submitted"] != len(qids):
        fail(f"{path}: {len(qids)} records but statusz reports "
             f"{statusz['queries_submitted']} submitted queries")
    print(f"check_observability: {path}: {len(qids)} records, "
          f"qids dense 1..{len(qids)}")
    return qids


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace JSON")
    parser.add_argument("metrics", help="Prometheus text file")
    parser.add_argument("--statusz", help="X3Server Statusz() JSON snapshot")
    parser.add_argument("--query-log", help="query-lifecycle JSONL file")
    args = parser.parse_args()

    trace_qids = check_trace(args.trace)
    check_metrics(args.metrics)
    statusz = check_statusz(args.statusz) if args.statusz else None
    if args.query_log:
        logged = check_query_log(args.query_log, statusz)
        stray = trace_qids - logged
        if stray:
            fail(f"{args.trace}: span qids with no query-log record: "
                 f"{sorted(stray)[:10]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
