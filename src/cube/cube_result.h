#ifndef X3_CUBE_CUBE_RESULT_H_
#define X3_CUBE_CUBE_RESULT_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "cube/aggregate.h"
#include "cube/fact_table.h"
#include "relax/cube_lattice.h"
#include "util/result.h"
#include "xml/xml_node.h"

namespace x3 {

/// A packed group key: the present axes' ValueIds, big-endian 4 bytes
/// each, in axis order. Packing keeps hash-map keys compact and makes
/// bytewise sort order usable for grouping.
using GroupKey = std::string;

GroupKey PackGroupKey(std::span<const ValueId> values);
std::vector<ValueId> UnpackGroupKey(const GroupKey& key);

/// The computed cube: one cell map per cuboid of the lattice.
///
/// Not internally synchronized, but safe under the parallel executor's
/// discipline: each cuboid's cell map is a distinct object touched by
/// exactly one plan task (MutableCell/mutable_cuboid on different
/// cuboids never share state), and a task reading another cuboid
/// (roll-up) is ordered after its producer by the scheduler. Whole-
/// result reads (Equals, ApplyIcebergFilter, TotalCells) require
/// quiescence — they run after the execution's join point.
class CubeResult {
 public:
  CubeResult(uint64_t num_cuboids, AggregateFunction fn);

  CubeResult(CubeResult&&) = default;
  CubeResult& operator=(CubeResult&&) = default;
  CubeResult(const CubeResult&) = delete;
  CubeResult& operator=(const CubeResult&) = delete;

  AggregateFunction function() const { return fn_; }
  uint64_t num_cuboids() const { return cells_.size(); }

  /// The cell for `key` in `cuboid`, created empty on first touch.
  AggregateState* MutableCell(CuboidId cuboid, const GroupKey& key);

  /// Read access; nullptr when the cell does not exist.
  const AggregateState* FindCell(CuboidId cuboid, const GroupKey& key) const;

  const std::unordered_map<GroupKey, AggregateState>& cuboid(
      CuboidId id) const {
    return cells_[id];
  }
  std::unordered_map<GroupKey, AggregateState>* mutable_cuboid(CuboidId id) {
    return &cells_[id];
  }

  /// Total number of non-empty cells across all cuboids (the paper's
  /// "cube result size").
  uint64_t TotalCells() const;

  /// Exact equality of all cells of all cuboids. On mismatch, when
  /// `diff` is non-null a short human-readable description of the first
  /// difference is stored there.
  bool Equals(const CubeResult& other, std::string* diff = nullptr) const;

  /// Writes "cuboid_id,axis values...,value" rows (values rendered via
  /// the fact table's dictionaries; absent axes print "-"). `env` =
  /// nullptr uses Env::Default().
  Status WriteCsv(const std::string& path, const CubeLattice& lattice,
                  const FactTable& facts, Env* env = nullptr) const;

  /// Drops every cell whose distinct-fact count is below `min_count`
  /// (iceberg filter). No-op for min_count <= 1.
  void ApplyIcebergFilter(int64_t min_count);

  /// Renders the cube as an XML document:
  ///   <cube function="COUNT">
  ///     <cuboid id="..." spec="...">
  ///       <cell value="..."><n>John</n><y>2003</y></cell>
  ///   ...
  /// Axis element names come from the lattice's axis names; absent axes
  /// are omitted from the cell. Deterministic (cells sorted by key).
  XmlDocument ToXml(const CubeLattice& lattice, const FactTable& facts) const;

 private:
  AggregateFunction fn_;
  std::vector<std::unordered_map<GroupKey, AggregateState>> cells_;
};

}  // namespace x3

#endif  // X3_CUBE_CUBE_RESULT_H_
