#include "cube/delta.h"

#include <algorithm>

#include "cube/plan.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace x3 {

namespace {

Counter* PatchedCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_delta_views_patched_total",
      "Materialized views updated in place by delta maintenance");
  return c;
}

Counter* RecomputedCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_delta_views_recomputed_total",
      "Materialized views fully rebuilt because a delta was unsafe");
  return c;
}

Counter* FactsAppliedCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_delta_facts_applied_total",
      "Delta facts folded into patched views (facts x views)");
  return c;
}

Counter* CellsTouchedCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_delta_cells_touched_total",
      "View cells created or updated by delta maintenance");
  return c;
}

}  // namespace

const char* DeltaActionToString(DeltaAction action) {
  switch (action) {
    case DeltaAction::kMergeWithIds:
      return "merge+ids";
    case DeltaAction::kMerge:
      return "merge";
    case DeltaAction::kRecompute:
      return "recompute";
  }
  return "?";
}

DeltaPlan PlanViewDeltas(const CubeViewStore& store, const FactTable& facts,
                         const CubeLattice& lattice,
                         const LatticeProperties& properties,
                         size_t first_new_fact) {
  DeltaPlan plan;
  plan.first_new_fact = first_new_fact;
  plan.new_facts = facts.size() - first_new_fact;

  std::vector<CuboidId> ids = store.MaterializedIds();
  std::sort(ids.begin(), ids.end());
  std::vector<ValueId> admitted;
  for (CuboidId id : ids) {
    ViewDeltaStep step;
    step.cuboid = id;
    if (store.ViewHasFactIds(id)) {
      // Fact ids repair any disjointness/coverage violation at roll-up
      // time, so folding new facts in is unconditionally exact.
      step.action = DeltaAction::kMergeWithIds;
      plan.steps.push_back(std::move(step));
      continue;
    }

    // Id-less view: downstream id-less roll-ups trust the properties
    // computed over the OLD facts. The merge is safe only if (a) each
    // present axis was provably disjoint+covered at the view's state
    // and (b) every delta fact keeps it that way (exactly one admitted
    // value). Otherwise the view must be rebuilt — with ids, so it is
    // safe no matter what the batch did to the properties.
    step.action = DeltaAction::kMerge;
    std::vector<size_t> present = lattice.PresentAxes(id);
    std::vector<AxisStateId> states = lattice.Decode(id);
    for (size_t axis : present) {
      internal::LatticeEdge edge{axis, states[axis], 0, /*to_absent=*/true};
      if (!internal::EdgeRollupSafe(properties, edge)) {
        step.action = DeltaAction::kRecompute;
        step.reason = StringPrintf(
            "axis %zu not disjoint+covered at state %u",
            axis, static_cast<unsigned>(states[axis]));
        break;
      }
      for (size_t f = first_new_fact; f < facts.size(); ++f) {
        facts.AdmittedValues(axis, f, states[axis], &admitted);
        if (admitted.size() != 1) {
          step.action = DeltaAction::kRecompute;
          step.reason = StringPrintf(
              "delta fact %zu has %zu values on axis %zu",
              f, admitted.size(), axis);
          break;
        }
      }
      if (step.action == DeltaAction::kRecompute) break;
    }
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

std::string ExplainDeltaPlan(const DeltaPlan& plan,
                             const CubeLattice& lattice) {
  std::string out = StringPrintf("delta plan: %zu new facts from index %zu\n",
                                 plan.new_facts, plan.first_new_fact);
  for (const ViewDeltaStep& step : plan.steps) {
    out += "  ";
    out += lattice.DescribeCuboid(step.cuboid);
    out += ": ";
    out += DeltaActionToString(step.action);
    if (!step.reason.empty()) {
      out += " (";
      out += step.reason;
      out += ")";
    }
    out += "\n";
  }
  return out;
}

Status ApplyViewDeltas(const CubeViewStore& source, CubeViewStore* target,
                       const DeltaPlan& plan, DeltaStats* stats) {
  X3_TRACE_SPAN(&Tracer::Global(), "delta/apply");
  DeltaStats local;
  DeltaStats* st = stats != nullptr ? stats : &local;
  for (const ViewDeltaStep& step : plan.steps) {
    if (step.action == DeltaAction::kRecompute) {
      // Upgrade to an id-carrying view: exact for this batch and immune
      // to whatever future batches do to the axis properties.
      X3_RETURN_IF_ERROR(
          target->Materialize(step.cuboid, /*with_fact_ids=*/true));
      ++st->views_recomputed;
      continue;
    }
    if (target != &source) {
      X3_RETURN_IF_ERROR(target->CloneViewFrom(source, step.cuboid));
    }
    X3_RETURN_IF_ERROR(target->ApplyDelta(step.cuboid, plan.first_new_fact,
                                          &st->cells_touched));
    ++st->views_patched;
    st->facts_applied += plan.new_facts;
  }
  PatchedCounter()->Increment(st->views_patched);
  RecomputedCounter()->Increment(st->views_recomputed);
  FactsAppliedCounter()->Increment(st->facts_applied);
  CellsTouchedCounter()->Increment(st->cells_touched);
  return Status::OK();
}

}  // namespace x3
