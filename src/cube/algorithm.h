#ifndef X3_CUBE_ALGORITHM_H_
#define X3_CUBE_ALGORITHM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "cube/cube_result.h"
#include "cube/fact_table.h"
#include "cube/plan.h"
#include "relax/cube_lattice.h"
#include "schema/summarizability.h"
#include "storage/temp_file.h"
#include "util/exec.h"
#include "util/memory_budget.h"
#include "util/result.h"

namespace x3 {

/// The cube-computation algorithms evaluated in the paper (§4).
enum class CubeAlgorithm : uint8_t {
  /// Trusted per-cuboid evaluator used as the correctness oracle (not
  /// in the paper; unbounded memory).
  kReference,
  /// Counter-based single/multi-pass algorithm (§3.3).
  kCounter,
  /// XML-aware bottom-up with overlap handling (§3.4, BUC).
  kBUC,
  /// Bottom-up assuming disjointness globally (BUCOPT). Produces wrong
  /// results when the assumption fails — as in the paper's Fig. 9 runs.
  kBUCOpt,
  /// Bottom-up exploiting disjointness only where the property map
  /// proves it (BUCCUST, §4.5) — always correct.
  kBUCCust,
  /// Top-down, every cuboid recomputed from base with fact ids (§3.5).
  kTD,
  /// Top-down assuming disjointness globally (TDOPT): shared sort
  /// pipes, no fact-id tracking. Wrong under overlap.
  kTDOpt,
  /// Top-down assuming disjointness AND total coverage (TDOPTALL):
  /// true roll-up from finer cuboids. Wrong when either fails.
  kTDOptAll,
  /// Top-down using roll-up / no-dedup paths only where the property
  /// map proves them safe (TDCUST, §4.5) — always correct.
  kTDCust,
};

const char* CubeAlgorithmToString(CubeAlgorithm algo);
Result<CubeAlgorithm> ParseCubeAlgorithm(std::string_view name);

/// Execution environment for a cube computation.
struct CubeComputeOptions {
  AggregateFunction aggregate = AggregateFunction::kCount;
  /// Bounds working memory (counter tables, sort buffers, partition
  /// copies). nullptr = unlimited.
  MemoryBudget* budget = nullptr;
  /// Required whenever sorts may spill (TD family under a budget).
  TempFileManager* temp_files = nullptr;
  /// Per-(axis,state) summarizability; used by the CUST variants and,
  /// in tests, to predict which algorithms are safe. nullptr means
  /// "assume nothing" for CUST variants.
  const LatticeProperties* properties = nullptr;
  /// Iceberg threshold: cells whose distinct-fact count is below this
  /// are dropped from every cuboid (HAVING COUNT >= min_count). The
  /// bottom-up family additionally prunes recursion below the threshold
  /// (the iceberg-cube optimization BUC was designed for); the others
  /// filter on output. 0 or 1 disables.
  int64_t min_count = 0;
  /// Execution context carrying cancellation, deadline and the stage
  /// stats sink. nullptr = ComputeCube builds an uncancellable context
  /// from `budget`/`temp_files`. When set, its non-null budget and
  /// temp-file manager take precedence over the fields above.
  ExecutionContext* exec = nullptr;
  /// Worker threads for plan execution. 1 (the default) runs every step
  /// on the calling thread — exactly the pre-parallel behavior. 0 means
  /// "use the hardware concurrency". Values > 1 run independent plan
  /// steps concurrently on a worker pool; the result is bit-identical
  /// to parallelism 1 for every algorithm (each cuboid is written by
  /// exactly one task, roll-ups wait on their producers, and the
  /// aggregates are commutative). The bottom-up family executes its
  /// single recursive partition walk sequentially regardless.
  size_t parallelism = 1;
  /// Block-compress sort spill runs (TD family). Cuts spill bytes at
  /// some CPU cost; results are bit-identical either way.
  bool compress_spill = false;
};

/// Cost counters exposed by every algorithm (machine-independent
/// complements to wall-clock time).
struct CubeComputeStats {
  /// Scans over the fact table.
  uint64_t base_scans = 0;
  /// COUNTER: passes over the input (>1 means it did not fit).
  uint64_t passes = 0;
  /// Number of sorts started (TD family).
  uint64_t sorts = 0;
  /// Records fed into sorts.
  uint64_t records_sorted = 0;
  /// Spilled runs and bytes (external sorts).
  uint64_t spilled_runs = 0;
  uint64_t spill_bytes = 0;
  /// BUC: partitions materialized.
  uint64_t partitions = 0;
  /// BUC: total rows placed into partitions (>= facts when overlapping).
  uint64_t partition_rows = 0;
  /// TDOPTALL/TDCUST: cuboids computed by roll-up or copy instead of
  /// from base.
  uint64_t rollups = 0;
  /// Peak tracked memory (bytes) if a budget was supplied.
  uint64_t peak_memory = 0;

  /// Merges the counters of `other` into this (sum everywhere, max for
  /// peak_memory). The parallel executor gives each task its own stats
  /// and absorbs them at the join point in task order, so the merged
  /// totals are deterministic.
  void Absorb(const CubeComputeStats& other);
};

/// Computes the full cube of `facts` over `lattice` with `algo`.
///
/// Plan-then-execute: builds the CubePlan for `algo` (see cube/plan.h),
/// then dispatches to the executor registered for the algorithm (see
/// cube/executor.h) — no per-algorithm switch on the execution path.
/// When `options.exec` carries a cancellation token or deadline, a
/// cancelled / expired run returns kCancelled / kDeadlineExceeded with
/// all budget charges released.
///
/// Correctness contract: kReference, kCounter, kBUC, kBUCCust, kTD and
/// kTDCust always produce the exact cube. kBUCOpt/kTDOpt additionally
/// require disjointness, kTDOptAll requires disjointness and total
/// coverage; when their assumptions are violated by the data they run
/// to completion but their output is wrong (the paper times them anyway
/// in Fig. 9 — so do our benchmarks).
Result<CubeResult> ComputeCube(CubeAlgorithm algo, const FactTable& facts,
                               const CubeLattice& lattice,
                               const CubeComputeOptions& options,
                               CubeComputeStats* stats = nullptr);

/// EXPLAIN ANALYZE: runs `algo` end to end (same cost as ComputeCube)
/// and renders its plan with every pipe and step annotated with the
/// actual wall-clock time, output rows and spill I/O of this execution.
/// The run gets a private stats sink so the actuals cover exactly this
/// computation; the caller's budget, temp files, cancellation, deadline
/// and tracer (from `options` / `options.exec`) still apply.
Result<std::string> ExplainAnalyzeCube(CubeAlgorithm algo,
                                       const FactTable& facts,
                                       const CubeLattice& lattice,
                                       const CubeComputeOptions& options,
                                       CubeComputeStats* stats = nullptr);

namespace internal {

/// Enumerates, for one fact and one cuboid, every distinct group tuple
/// the fact belongs to, invoking `fn(packed key)`. Returns false iff
/// the fact belongs to no group of this cuboid (a coverage drop-out).
/// `scratch` must have at least one vector per axis.
bool ForEachGroupOfFact(
    const FactTable& facts, const CubeLattice& lattice, CuboidId cuboid,
    size_t fact, std::vector<std::vector<ValueId>>* scratch,
    const std::function<void(const GroupKey&)>& fn);

}  // namespace internal
}  // namespace x3

#endif  // X3_CUBE_ALGORITHM_H_
