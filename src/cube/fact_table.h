#ifndef X3_CUBE_FACT_TABLE_H_
#define X3_CUBE_FACT_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "relax/cube_lattice.h"
#include "util/result.h"
#include "xdb/database.h"
#include "xdb/value_dictionary.h"

namespace x3 {

/// The materialized input of cube computation: per fact, per axis, the
/// list of bindings with admission masks. This is the paper's
/// "pre-evaluated query tree pattern materialized into a file" (§4) —
/// the most relaxed fully instantiated pattern is matched once, and all
/// cube algorithms consume this table.
///
/// Storage is structure-of-arrays: each axis keeps two contiguous
/// columns — the admission masks (bit s = admitted at state s of the
/// AxisLattice) and the dictionary-encoded grouping values — sharing
/// one per-fact offset index:
///
///   axis a:  masks_  [m0 m1 | m2 | m3 m4 m5 | ...]   uint64 column
///            values_ [v0 v1 | v2 | v3 v4 v5 | ...]   uint32 column
///            offsets_[0, 2, 3, 6, ...]               facts + 1 entries
///
/// The executors' inner loops (COUNTER's admitted-value cache fills,
/// BUC's partition scans, topdown's sort-record emission) scan these
/// columns sequentially; a scan that only needs values — or only masks
/// — touches nothing else. There is no row-major (array-of-structs)
/// path.
///
/// A fact with no binding on an axis simply has an empty binding range
/// there (the coverage-violation case); a fact with several distinct
/// values (the disjointness-violation case) has several entries.
/// Values are interned per axis through an xdb::ValueDictionary.
class FactTable {
 public:
  explicit FactTable(size_t num_axes);

  FactTable(FactTable&&) = default;
  FactTable& operator=(FactTable&&) = default;
  FactTable(const FactTable&) = delete;
  FactTable& operator=(const FactTable&) = delete;

  // --- Building (BeginFact / AddBinding / ... / Finish) ---

  /// Starts a new fact.
  void BeginFact(uint64_t fact_id, int64_t measure);

  /// Interns an axis value string to its per-axis ValueId.
  ValueId InternAxisValue(size_t axis, std::string_view value);

  /// Adds one binding for the current fact. Duplicate (mask, value)
  /// pairs within a fact are collapsed.
  void AddBinding(size_t axis, AxisStateMask mask, ValueId value);

  /// Seals the table; required before any read access.
  void Finish();

  /// Reopens a finished table for appending more facts (delta ingest):
  /// BeginFact/AddBinding work again until the next Finish(). Existing
  /// fact indices, ValueIds and column contents are untouched, so
  /// views and fact-id sets built over the old prefix stay valid.
  void ReopenForAppend();

  /// Deep copy (copy construction stays deleted so accidental copies
  /// never compile). The serving layer clones a snapshot's table to
  /// append a committed batch's facts while the old snapshot keeps
  /// serving readers.
  FactTable Clone() const;

  // --- Access ---

  size_t num_axes() const { return num_axes_; }
  size_t size() const { return fact_ids_.size(); }
  bool finished() const { return finished_; }

  uint64_t fact_id(size_t fact) const { return fact_ids_[fact]; }
  int64_t measure(size_t fact) const { return measures_[fact]; }

  /// Number of bindings of `axis` for `fact`.
  size_t NumBindings(size_t axis, size_t fact) const {
    return axis_offsets_[axis][fact + 1] - axis_offsets_[axis][fact];
  }

  /// The admission-mask column slice of `axis` for `fact`. Parallel to
  /// BindingValues: entry i of both describes binding i.
  std::span<const AxisStateMask> BindingMasks(size_t axis,
                                              size_t fact) const;

  /// The value column slice of `axis` for `fact`.
  std::span<const ValueId> BindingValues(size_t axis, size_t fact) const;

  /// Whole-column access for executor inner loops: the full mask /
  /// value columns of one axis plus the per-fact offset index (size
  /// facts + 1). Fact f's bindings live at [offsets[f], offsets[f+1]).
  /// Scanning these directly avoids per-fact span construction in
  /// loops that touch every fact.
  std::span<const AxisStateMask> AxisMaskColumn(size_t axis) const {
    return axis_masks_[axis];
  }
  std::span<const ValueId> AxisValueColumn(size_t axis) const {
    return axis_value_cols_[axis];
  }
  std::span<const uint32_t> AxisOffsets(size_t axis) const {
    return axis_offsets_[axis];
  }

  /// True when binding `mask` admits `state`.
  static bool AdmittedAt(AxisStateMask mask, AxisStateId state) {
    return (mask >> state) & 1u;
  }

  /// Distinct values of `axis` for `fact` admitted at `state`, appended
  /// to `*out` (cleared first). Order is first-seen.
  void AdmittedValues(size_t axis, size_t fact, AxisStateId state,
                      std::vector<ValueId>* out) const;

  /// First admitted value at `state`, or kInvalidValueId. (The value a
  /// disjointness-assuming algorithm uses without checking for more.)
  ValueId FirstAdmittedValue(size_t axis, size_t fact,
                             AxisStateId state) const;

  const std::string& AxisValueName(size_t axis, ValueId value) const {
    return axis_dicts_[axis].Value(value);
  }
  /// Number of distinct values seen on `axis`.
  size_t AxisCardinality(size_t axis) const {
    return axis_dicts_[axis].size();
  }

  /// Rough in-memory footprint, for budget-aware callers.
  size_t ApproxBytes() const;

  // --- Persistence (binary, versioned) ---

  /// `env` = nullptr uses Env::Default().
  Status Save(const std::string& path, Env* env = nullptr) const;
  static Result<FactTable> Load(const std::string& path, Env* env = nullptr);

 private:
  size_t num_axes_;
  bool finished_ = false;

  std::vector<uint64_t> fact_ids_;
  std::vector<int64_t> measures_;
  /// Per axis, the two binding columns plus the shared per-fact offset
  /// index (size facts+1 once finished). masks/values are parallel.
  std::vector<std::vector<AxisStateMask>> axis_masks_;
  std::vector<std::vector<ValueId>> axis_value_cols_;
  std::vector<std::vector<uint32_t>> axis_offsets_;
  /// Per axis value dictionaries.
  std::vector<ValueDictionary> axis_dicts_;
};

}  // namespace x3

#endif  // X3_CUBE_FACT_TABLE_H_
