#ifndef X3_CUBE_FACT_TABLE_H_
#define X3_CUBE_FACT_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "relax/cube_lattice.h"
#include "util/result.h"
#include "xdb/database.h"

namespace x3 {

/// One axis binding of a fact: the transformed grouping value plus the
/// admission mask recording at which of the axis's relaxation states
/// this binding is a valid match (bit s = state s of the AxisLattice).
struct AxisBinding {
  AxisStateMask mask = 0;
  ValueId value = kInvalidValueId;

  bool AdmittedAt(AxisStateId state) const {
    return (mask >> state) & 1u;
  }
  bool operator==(const AxisBinding& other) const {
    return mask == other.mask && value == other.value;
  }
};

/// The materialized input of cube computation: per fact, per axis, the
/// list of bindings with admission masks. This is the paper's
/// "pre-evaluated query tree pattern materialized into a file" (§4) —
/// the most relaxed fully instantiated pattern is matched once, and all
/// cube algorithms consume this table.
///
/// A fact with no binding on an axis simply has an empty binding list
/// there (the coverage-violation case); a fact with several distinct
/// values (the disjointness-violation case) has several bindings.
/// Values are dictionary-encoded per axis.
class FactTable {
 public:
  explicit FactTable(size_t num_axes);

  FactTable(FactTable&&) = default;
  FactTable& operator=(FactTable&&) = default;
  FactTable(const FactTable&) = delete;
  FactTable& operator=(const FactTable&) = delete;

  // --- Building (BeginFact / AddBinding / ... / Finish) ---

  /// Starts a new fact.
  void BeginFact(uint64_t fact_id, int64_t measure);

  /// Interns an axis value string to its per-axis ValueId.
  ValueId InternAxisValue(size_t axis, std::string_view value);

  /// Adds one binding for the current fact. Duplicate (mask, value)
  /// pairs within a fact are collapsed.
  void AddBinding(size_t axis, AxisStateMask mask, ValueId value);

  /// Seals the table; required before any read access.
  void Finish();

  // --- Access ---

  size_t num_axes() const { return num_axes_; }
  size_t size() const { return fact_ids_.size(); }
  bool finished() const { return finished_; }

  uint64_t fact_id(size_t fact) const { return fact_ids_[fact]; }
  int64_t measure(size_t fact) const { return measures_[fact]; }

  /// Bindings of `axis` for `fact`.
  std::span<const AxisBinding> bindings(size_t axis, size_t fact) const;

  /// Distinct values of `axis` for `fact` admitted at `state`, appended
  /// to `*out` (cleared first). Order is first-seen.
  void AdmittedValues(size_t axis, size_t fact, AxisStateId state,
                      std::vector<ValueId>* out) const;

  /// First admitted value at `state`, or kInvalidValueId. (The value a
  /// disjointness-assuming algorithm uses without checking for more.)
  ValueId FirstAdmittedValue(size_t axis, size_t fact,
                             AxisStateId state) const;

  const std::string& AxisValueName(size_t axis, ValueId value) const {
    return axis_values_[axis][value];
  }
  /// Number of distinct values seen on `axis`.
  size_t AxisCardinality(size_t axis) const {
    return axis_values_[axis].size();
  }

  /// Rough in-memory footprint, for budget-aware callers.
  size_t ApproxBytes() const;

  // --- Persistence (binary, versioned) ---

  /// `env` = nullptr uses Env::Default().
  Status Save(const std::string& path, Env* env = nullptr) const;
  static Result<FactTable> Load(const std::string& path, Env* env = nullptr);

 private:
  size_t num_axes_;
  bool finished_ = false;

  std::vector<uint64_t> fact_ids_;
  std::vector<int64_t> measures_;
  /// Per axis: flat binding array + per-fact offsets (size facts+1 once
  /// finished).
  std::vector<std::vector<AxisBinding>> axis_bindings_;
  std::vector<std::vector<uint32_t>> axis_offsets_;
  /// Per axis value dictionaries.
  std::vector<std::vector<std::string>> axis_values_;
  std::vector<std::unordered_map<std::string, ValueId>> axis_value_ids_;
};

}  // namespace x3

#endif  // X3_CUBE_FACT_TABLE_H_
