#include <algorithm>
#include <cstring>
#include <optional>

#include "cube/executor.h"
#include "storage/external_sorter.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace x3 {
namespace internal {
namespace {

/// Null sentinel for "axis value missing" in sort records. 0xFFFFFFFF
/// can never be a real ValueId here because dictionaries are dense.
constexpr uint32_t kNullField = 0xFFFFFFFFu;

void AppendBE32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>(v & 0xFF));
}

uint32_t ReadBE32(const char* p) {
  return (static_cast<uint32_t>(static_cast<uint8_t>(p[0])) << 24) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 8) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3]));
}

void AppendMeasure(std::string* out, int64_t measure) {
  uint64_t u = static_cast<uint64_t>(measure);
  // uint64_t -> const char* byte view of an aligned local: char aliases
  // anything, so no strict-aliasing or alignment UB (audited). The bytes
  // are native-endian, but the field is an opaque trailer that never
  // participates in sort-key comparison and is read back via memcpy in
  // ReadMeasure, so the encoding round-trips on any host.
  out->append(reinterpret_cast<const char*>(&u), 8);
}

int64_t ReadMeasure(const char* p) {
  uint64_t u;
  std::memcpy(&u, p, 8);
  return static_cast<int64_t>(u);
}

ExternalSorter::Options SorterOptions(const CubeComputeOptions& options,
                                      ExecutionContext* ctx) {
  ExternalSorter::Options sort_options;
  sort_options.budget = options.budget;
  sort_options.temp_files = options.temp_files;
  sort_options.exec = ctx;
  sort_options.compress_spill = options.compress_spill;
  return sort_options;
}

void AbsorbSortStats(const SortStats& sort_stats, CubeComputeStats* stats) {
  ++stats->sorts;
  stats->records_sorted += sort_stats.records;
  stats->spilled_runs += sort_stats.runs_spilled;
  stats->spill_bytes += sort_stats.spill_bytes;
}

/// Computes one cuboid from the base fact table by sorting its group
/// tuples. Record layout: [values BE, 4*k] [fact index BE, 4 | absent]
/// [measure, 8]. Fact indices are carried when `with_ids` (the honest
/// §3.5 version that must be able to eliminate duplicates); the sorted
/// stream is aggregated by tuple prefix with adjacent (tuple, fact)
/// duplicates collapsed.
Status CuboidFromBase(const FactTable& facts, const CubeLattice& lattice,
                      CuboidId cuboid, bool with_ids,
                      const CubeComputeOptions& options, ExecutionContext* ctx,
                      CubeResult* result, CubeComputeStats* stats) {
  ScopedStageTimer stage(
      ctx->stats(),
      StringPrintf("cuboid/%llu", static_cast<unsigned long long>(cuboid)),
      ctx->tracer());
  std::vector<size_t> present = lattice.PresentAxes(cuboid);
  size_t key_len = present.size() * 4;
  ExternalSorter sorter(SorterOptions(options, ctx));
  ++stats->base_scans;

  std::vector<std::vector<ValueId>> scratch(lattice.num_axes());
  std::string record;
  for (size_t f = 0; f < facts.size(); ++f) {
    X3_RETURN_IF_ERROR(ctx->Poll());
    int64_t measure = facts.measure(f);
    Status add_status = Status::OK();
    ForEachGroupOfFact(facts, lattice, cuboid, f, &scratch,
                       [&](const GroupKey& key) {
                         if (!add_status.ok()) return;
                         record.assign(key);
                         if (with_ids) {
                           AppendBE32(&record, static_cast<uint32_t>(f));
                         }
                         AppendMeasure(&record, measure);
                         add_status = sorter.Add(record);
                       });
    X3_RETURN_IF_ERROR(add_status);
  }

  X3_ASSIGN_OR_RETURN(std::unique_ptr<SortedStream> stream, sorter.Finish());
  AbsorbSortStats(sorter.stats(), stats);
  stage.AddBytes(sorter.stats().spill_bytes);
  if (options.budget != nullptr) {
    stats->peak_memory =
        std::max<uint64_t>(stats->peak_memory, options.budget->peak());
  }

  std::string current_group;
  std::string last_dedup_key;
  bool have_group = false;
  AggregateState state;
  auto flush = [&]() {
    if (have_group) {
      result->MutableCell(cuboid, current_group)->Merge(state);
      stage.AddRows(1);
    }
    state = AggregateState{};
  };
  std::string rec;
  Status s;
  while (stream->Next(&rec, &s)) {
    X3_RETURN_IF_ERROR(ctx->Poll());
    std::string_view group(rec.data(), key_len);
    size_t dedup_len = with_ids ? key_len + 4 : rec.size();
    std::string_view dedup_key(rec.data(), dedup_len);
    if (!have_group || group != current_group) {
      flush();
      current_group.assign(group);
      have_group = true;
      last_dedup_key.clear();
    } else if (with_ids && dedup_key == last_dedup_key) {
      continue;  // duplicate (group, fact) — eliminate
    }
    last_dedup_key.assign(dedup_key);
    state.Update(ReadMeasure(rec.data() + rec.size() - 8));
  }
  X3_RETURN_IF_ERROR(s);
  flush();
  return Status::OK();
}

/// TDOPT: runs one pipe — a single sort of one record per fact (value
/// or null per sort-order entry), then simultaneous prefix aggregation
/// for every covered cuboid. Correct only under disjointness (the
/// first admitted value is THE value).
Status RunPipe(const FactTable& facts, const CubePlanPipe& pipe,
               size_t pipe_index, const CubeComputeOptions& options,
               ExecutionContext* ctx, CubeResult* result,
               CubeComputeStats* stats) {
  ScopedStageTimer stage(ctx->stats(), StringPrintf("pipe/%zu", pipe_index),
                         ctx->tracer());
  ExternalSorter sorter(SorterOptions(options, ctx));
  ++stats->base_scans;
  // Columnar scan state: one (mask column, value column, offsets, state)
  // tuple per sort-order entry, so the record-building loop below walks
  // the axis columns directly instead of calling back into the table.
  struct FieldCols {
    std::span<const AxisStateMask> masks;
    std::span<const ValueId> values;
    std::span<const uint32_t> offsets;
    AxisStateId state;
  };
  std::vector<FieldCols> fields;
  fields.reserve(pipe.sort_order.size());
  for (const auto& [axis, state] : pipe.sort_order) {
    fields.push_back(FieldCols{facts.AxisMaskColumn(axis),
                               facts.AxisValueColumn(axis),
                               facts.AxisOffsets(axis), state});
  }
  std::string record;
  for (size_t f = 0; f < facts.size(); ++f) {
    X3_RETURN_IF_ERROR(ctx->Poll());
    record.clear();
    for (const FieldCols& col : fields) {
      uint32_t field = kNullField;
      uint32_t hi = col.offsets[f + 1];
      for (uint32_t i = col.offsets[f]; i < hi; ++i) {
        if (FactTable::AdmittedAt(col.masks[i], col.state)) {
          field = col.values[i];  // disjointness: first admitted value
          break;
        }
      }
      AppendBE32(&record, field);
    }
    AppendMeasure(&record, facts.measure(f));
    X3_RETURN_IF_ERROR(sorter.Add(record));
  }
  X3_ASSIGN_OR_RETURN(std::unique_ptr<SortedStream> stream, sorter.Finish());
  AbsorbSortStats(sorter.stats(), stats);
  stage.AddBytes(sorter.stats().spill_bytes);
  if (options.budget != nullptr) {
    stats->peak_memory =
        std::max<uint64_t>(stats->peak_memory, options.budget->peak());
  }

  struct PrefixAgg {
    size_t k;
    CuboidId cuboid;
    /// Record-field indices of the first k sort-order axes in ascending
    /// axis order — group keys are always packed in axis order, while
    /// the pipe's sort order is a chain-friendly permutation.
    std::vector<size_t> field_order;
    std::string current;
    bool have = false;
    AggregateState state;
  };
  std::vector<PrefixAgg> aggs;
  for (const auto& [k, cuboid] : pipe.covered) {
    PrefixAgg agg;
    agg.k = k;
    agg.cuboid = cuboid;
    agg.field_order.resize(k);
    for (size_t i = 0; i < k; ++i) agg.field_order[i] = i;
    std::sort(agg.field_order.begin(), agg.field_order.end(),
              [&](size_t a, size_t b) {
                return pipe.sort_order[a].first < pipe.sort_order[b].first;
              });
    aggs.push_back(std::move(agg));
  }
  auto flush = [&](PrefixAgg* agg) {
    if (agg->have && agg->state.count > 0) {
      GroupKey key;
      key.reserve(agg->k * 4);
      for (size_t field : agg->field_order) {
        key.append(agg->current, field * 4, 4);
      }
      result->MutableCell(agg->cuboid, key)->Merge(agg->state);
      stage.AddRows(1);
    }
    agg->state = AggregateState{};
  };

  std::string rec;
  Status s;
  while (stream->Next(&rec, &s)) {
    X3_RETURN_IF_ERROR(ctx->Poll());
    int64_t measure = ReadMeasure(rec.data() + rec.size() - 8);
    for (PrefixAgg& agg : aggs) {
      std::string_view prefix(rec.data(), agg.k * 4);
      if (!agg.have || prefix != agg.current) {
        flush(&agg);
        agg.current.assign(prefix);
        agg.have = true;
      }
      // The row contributes only when all k fields are non-null.
      bool has_null = false;
      for (size_t i = 0; i < agg.k; ++i) {
        if (ReadBE32(rec.data() + i * 4) == kNullField) {
          has_null = true;
          break;
        }
      }
      if (!has_null) agg.state.Update(measure);
    }
  }
  X3_RETURN_IF_ERROR(s);
  for (PrefixAgg& agg : aggs) flush(&agg);
  return Status::OK();
}

/// Computes cuboid `c` from already-computed less-relaxed neighbour `p`
/// along `edge`: LND edges aggregate the dropped axis away; structural
/// edges copy cells verbatim (valid under the coverage+disjointness
/// preconditions the planner established).
Status RollUp(const CubeLattice& lattice, CuboidId p, CuboidId c,
              const LatticeEdge& edge, ExecutionContext* ctx,
              CubeResult* result, CubeComputeStats* stats) {
  ScopedStageTimer stage(
      ctx->stats(),
      StringPrintf("cuboid/%llu", static_cast<unsigned long long>(c)),
      ctx->tracer());
  ++stats->rollups;
  const auto& parent_cells = result->cuboid(p);
  if (!edge.to_absent) {
    // Structural relaxation: identical groups.
    for (const auto& [key, state] : parent_cells) {
      X3_RETURN_IF_ERROR(ctx->Poll());
      result->MutableCell(c, key)->Merge(state);
    }
    stage.AddRows(result->cuboid(c).size());
    return Status::OK();
  }
  // LND: drop the axis's field from each key and merge.
  std::vector<size_t> parent_present = lattice.PresentAxes(p);
  size_t drop_pos = 0;
  for (size_t i = 0; i < parent_present.size(); ++i) {
    if (parent_present[i] == edge.axis) {
      drop_pos = i;
      break;
    }
  }
  for (const auto& [key, state] : parent_cells) {
    X3_RETURN_IF_ERROR(ctx->Poll());
    GroupKey child_key;
    child_key.reserve(key.size() - 4);
    child_key.append(key, 0, drop_pos * 4);
    child_key.append(key, drop_pos * 4 + 4, std::string::npos);
    result->MutableCell(c, child_key)->Merge(state);
  }
  stage.AddRows(result->cuboid(c).size());
  return Status::OK();
}

/// Top-down family: pure plan interpreter. The four TD variants differ
/// only in the plans they produce (cube/plan.cc); execution is the same
/// loop over pipes and steps for all of them.
class TopDownExecutor final : public CuboidExecutor {
 public:
  const char* name() const override { return "top-down"; }

  Result<CubeResult> Execute(const CubePlan& plan, const FactTable& facts,
                             const CubeLattice& lattice,
                             const CubeComputeOptions& options,
                             ExecutionContext* ctx,
                             CubeComputeStats* stats) const override {
    CubeResult result(lattice.num_cuboids(), options.aggregate);
    // Task layout per PlanStepDependencies: pipes first, then steps.
    // Pipes and base sorts are independent; a roll-up / copy step waits
    // on whichever task produces its source cuboid; a kSharedSort step
    // is a marker waiting on its pipe (the pipe writes its cells). At
    // parallelism 1 RunPlanTasks walks this list in index order, which
    // is byte-for-byte the old pipes-then-steps loop.
    const std::vector<std::vector<size_t>> deps = PlanStepDependencies(plan);
    std::vector<PlanTask> tasks;
    tasks.reserve(deps.size());
    for (size_t p = 0; p < plan.pipes.size(); ++p) {
      tasks.push_back(PlanTask{
          [&, p](CubeComputeStats* task_stats) {
            return RunPipe(facts, plan.pipes[p], p, options, ctx, &result,
                           task_stats);
          },
          deps[p]});
    }
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      const CuboidPlanStep& step = plan.steps[i];
      PlanTask task;
      task.deps = deps[plan.pipes.size() + i];
      switch (step.kind) {
        case CuboidPlanStep::Kind::kBaseWithIds:
        case CuboidPlanStep::Kind::kBaseNoIds:
          task.run = [&, step](CubeComputeStats* task_stats) {
            return CuboidFromBase(
                facts, lattice, step.cuboid,
                step.kind == CuboidPlanStep::Kind::kBaseWithIds, options, ctx,
                &result, task_stats);
          };
          break;
        case CuboidPlanStep::Kind::kRollup:
        case CuboidPlanStep::Kind::kCopy:
          task.run = [&, step](CubeComputeStats* task_stats) -> Status {
            std::optional<LatticeEdge> edge =
                EdgeBetween(lattice, step.source, step.cuboid);
            X3_CHECK(edge.has_value());
            return RollUp(lattice, step.source, step.cuboid, *edge, ctx,
                          &result, task_stats);
          };
          break;
        case CuboidPlanStep::Kind::kSharedSort:
          // Cells come from the pipe this task depends on; the task
          // itself is a scheduling marker so transitive readers (none
          // today, but the DAG allows them) wait correctly.
          task.run = [](CubeComputeStats*) { return Status::OK(); };
          break;
        default:
          return Status::Internal(
              StringPrintf("step kind %s not executable by the top-down "
                           "family",
                           CuboidPlanStepKindToString(step.kind)));
      }
      tasks.push_back(std::move(task));
    }
    X3_RETURN_IF_ERROR(
        RunPlanTasks(std::move(tasks), options.parallelism, stats,
                     ctx->query_id()));
    return result;
  }
};

}  // namespace

std::unique_ptr<CuboidExecutor> MakeTopDownExecutor() {
  return std::make_unique<TopDownExecutor>();
}

}  // namespace internal
}  // namespace x3
