#include "cube/algorithm.h"

#include <algorithm>
#include <cstring>
#include <optional>

#include "storage/external_sorter.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace x3 {
namespace internal {
namespace {

/// Null sentinel for "axis value missing" in sort records. 0xFFFFFFFF
/// can never be a real ValueId here because dictionaries are dense.
constexpr uint32_t kNullField = 0xFFFFFFFFu;

void AppendBE32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>(v & 0xFF));
}

uint32_t ReadBE32(const char* p) {
  return (static_cast<uint32_t>(static_cast<uint8_t>(p[0])) << 24) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 8) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3]));
}

void AppendMeasure(std::string* out, int64_t measure) {
  uint64_t u = static_cast<uint64_t>(measure);
  // uint64_t -> const char* byte view of an aligned local: char aliases
  // anything, so no strict-aliasing or alignment UB (audited). The bytes
  // are native-endian, but the field is an opaque trailer that never
  // participates in sort-key comparison and is read back via memcpy in
  // ReadMeasure, so the encoding round-trips on any host.
  out->append(reinterpret_cast<const char*>(&u), 8);
}

int64_t ReadMeasure(const char* p) {
  uint64_t u;
  std::memcpy(&u, p, 8);
  return static_cast<int64_t>(u);
}

ExternalSorter::Options SorterOptions(const CubeComputeOptions& options) {
  ExternalSorter::Options sort_options;
  sort_options.budget = options.budget;
  sort_options.temp_files = options.temp_files;
  return sort_options;
}

void AbsorbSortStats(const SortStats& sort_stats, CubeComputeStats* stats) {
  ++stats->sorts;
  stats->records_sorted += sort_stats.records;
  stats->spilled_runs += sort_stats.runs_spilled;
  stats->spill_bytes += sort_stats.spill_bytes;
}

/// Computes one cuboid from the base fact table by sorting its group
/// tuples. Record layout: [values BE, 4*k] [fact index BE, 4 | absent]
/// [measure, 8]. Fact indices are carried when `with_ids` (the honest
/// §3.5 version that must be able to eliminate duplicates); the sorted
/// stream is aggregated by tuple prefix with adjacent (tuple, fact)
/// duplicates collapsed.
Status CuboidFromBase(const FactTable& facts, const CubeLattice& lattice,
                      CuboidId cuboid, bool with_ids,
                      const CubeComputeOptions& options, CubeResult* result,
                      CubeComputeStats* stats) {
  std::vector<size_t> present = lattice.PresentAxes(cuboid);
  size_t key_len = present.size() * 4;
  ExternalSorter sorter(SorterOptions(options));
  ++stats->base_scans;

  std::vector<std::vector<ValueId>> scratch(lattice.num_axes());
  std::string record;
  for (size_t f = 0; f < facts.size(); ++f) {
    int64_t measure = facts.measure(f);
    Status add_status = Status::OK();
    ForEachGroupOfFact(facts, lattice, cuboid, f, &scratch,
                       [&](const GroupKey& key) {
                         if (!add_status.ok()) return;
                         record.assign(key);
                         if (with_ids) {
                           AppendBE32(&record, static_cast<uint32_t>(f));
                         }
                         AppendMeasure(&record, measure);
                         add_status = sorter.Add(record);
                       });
    X3_RETURN_IF_ERROR(add_status);
  }

  X3_ASSIGN_OR_RETURN(std::unique_ptr<SortedStream> stream, sorter.Finish());
  AbsorbSortStats(sorter.stats(), stats);
  if (options.budget != nullptr) {
    stats->peak_memory =
        std::max<uint64_t>(stats->peak_memory, options.budget->peak());
  }

  std::string current_group;
  std::string last_dedup_key;
  bool have_group = false;
  AggregateState state;
  auto flush = [&]() {
    if (have_group) {
      result->MutableCell(cuboid, current_group)->Merge(state);
    }
    state = AggregateState{};
  };
  std::string rec;
  Status s;
  while (stream->Next(&rec, &s)) {
    std::string_view group(rec.data(), key_len);
    size_t dedup_len = with_ids ? key_len + 4 : rec.size();
    std::string_view dedup_key(rec.data(), dedup_len);
    if (!have_group || group != current_group) {
      flush();
      current_group.assign(group);
      have_group = true;
      last_dedup_key.clear();
    } else if (with_ids && dedup_key == last_dedup_key) {
      continue;  // duplicate (group, fact) — eliminate
    }
    last_dedup_key.assign(dedup_key);
    state.Update(ReadMeasure(rec.data() + rec.size() - 8));
  }
  X3_RETURN_IF_ERROR(s);
  flush();
  return Status::OK();
}

/// A shared-sort "pipe" (TDOPT): the signature of a maximal cuboid plus
/// the list of prefix cuboids computed from one sort of the base.
struct Pipe {
  /// (axis, state) per present axis, ascending axis order.
  std::vector<std::pair<size_t, AxisStateId>> signature;
  /// (prefix length, cuboid) pairs served by this pipe.
  std::vector<std::pair<size_t, CuboidId>> covered;
};

/// Signature of a cuboid: its present axes with their states.
std::vector<std::pair<size_t, AxisStateId>> SignatureOf(
    const CubeLattice& lattice, CuboidId cuboid) {
  std::vector<std::pair<size_t, AxisStateId>> sig;
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    AxisStateId s = lattice.StateOf(cuboid, a);
    if (lattice.axis(a).state(s).grouping_present()) {
      sig.emplace_back(a, s);
    }
  }
  return sig;
}

/// The cuboid obtained by keeping the first `k` signature entries and
/// setting every other axis to its absent state; nullopt when an axis
/// outside the prefix has no absent state.
std::optional<CuboidId> PrefixCuboid(
    const CubeLattice& lattice,
    const std::vector<std::pair<size_t, AxisStateId>>& signature, size_t k) {
  std::vector<AxisStateId> states(lattice.num_axes());
  std::vector<bool> in_prefix(lattice.num_axes(), false);
  for (size_t i = 0; i < k; ++i) {
    states[signature[i].first] = signature[i].second;
    in_prefix[signature[i].first] = true;
  }
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    if (in_prefix[a]) continue;
    std::optional<AxisStateId> absent = lattice.axis(a).absent_state();
    if (!absent.has_value()) return std::nullopt;
    states[a] = *absent;
  }
  return lattice.Encode(states);
}

/// Greedy pipe cover: repeatedly take the largest uncovered cuboid and
/// let one sort in a well-chosen axis order serve a whole chain of
/// prefix cuboids. This is the PipeSort/MemoryCube-style sort sharing
/// that disjointness unlocks (one record per fact, prefix aggregation
/// from base).
///
/// The axis order within a pipe matters: prefixes of the sort order are
/// the cuboids the pipe computes for free, so we build the order
/// back-to-front, at each level preferring to drop an axis whose
/// remaining subset is still uncovered (a greedy symmetric-chain
/// decomposition; for a d-dimensional LND lattice this yields about
/// C(d, d/2) pipes instead of one sort per cuboid).
std::vector<Pipe> BuildPipes(const CubeLattice& lattice) {
  std::vector<CuboidId> order(lattice.num_cuboids());
  for (CuboidId c = 0; c < lattice.num_cuboids(); ++c) order[c] = c;
  std::stable_sort(order.begin(), order.end(), [&](CuboidId a, CuboidId b) {
    return SignatureOf(lattice, a).size() > SignatureOf(lattice, b).size();
  });
  std::vector<bool> covered(lattice.num_cuboids(), false);
  std::vector<Pipe> pipes;
  for (CuboidId c : order) {
    if (covered[c]) continue;
    std::vector<std::pair<size_t, AxisStateId>> remaining =
        SignatureOf(lattice, c);
    // Build the sort order back to front: the axis dropped first comes
    // last in the sort order.
    std::vector<std::pair<size_t, AxisStateId>> sort_order(remaining.size());
    size_t fill = remaining.size();
    while (!remaining.empty()) {
      size_t choice = 0;
      for (size_t i = 0; i < remaining.size(); ++i) {
        std::vector<std::pair<size_t, AxisStateId>> without = remaining;
        without.erase(without.begin() + static_cast<ptrdiff_t>(i));
        // Does dropping axis i leave an uncovered, constructible cuboid?
        std::optional<CuboidId> sub =
            PrefixCuboid(lattice, without, without.size());
        if (sub.has_value() && !covered[*sub]) {
          choice = i;
          break;
        }
      }
      sort_order[--fill] = remaining[choice];
      remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(choice));
    }
    Pipe pipe;
    pipe.signature = std::move(sort_order);
    for (size_t k = pipe.signature.size() + 1; k-- > 0;) {
      std::optional<CuboidId> prefix =
          PrefixCuboid(lattice, pipe.signature, k);
      if (!prefix.has_value()) continue;
      if (k < pipe.signature.size() && covered[*prefix]) continue;
      covered[*prefix] = true;
      pipe.covered.emplace_back(k, *prefix);
    }
    pipes.push_back(std::move(pipe));
  }
  return pipes;
}

/// TDOPT: runs one pipe — a single sort of one record per fact (value
/// or null per signature entry), then simultaneous prefix aggregation
/// for every covered cuboid. Correct only under disjointness (the
/// first admitted value is THE value).
Status RunPipe(const FactTable& facts, const CubeLattice& /*lattice*/,
               const Pipe& pipe, const CubeComputeOptions& options,
               CubeResult* result, CubeComputeStats* stats) {
  ExternalSorter sorter(SorterOptions(options));
  ++stats->base_scans;
  std::string record;
  for (size_t f = 0; f < facts.size(); ++f) {
    record.clear();
    for (const auto& [axis, state] : pipe.signature) {
      ValueId v = facts.FirstAdmittedValue(axis, f, state);
      AppendBE32(&record, v == kInvalidValueId ? kNullField : v);
    }
    AppendMeasure(&record, facts.measure(f));
    X3_RETURN_IF_ERROR(sorter.Add(record));
  }
  X3_ASSIGN_OR_RETURN(std::unique_ptr<SortedStream> stream, sorter.Finish());
  AbsorbSortStats(sorter.stats(), stats);
  if (options.budget != nullptr) {
    stats->peak_memory =
        std::max<uint64_t>(stats->peak_memory, options.budget->peak());
  }

  struct PrefixAgg {
    size_t k;
    CuboidId cuboid;
    /// Record-field indices of the first k signature axes in ascending
    /// axis order — group keys are always packed in axis order, while
    /// the pipe's sort order is a chain-friendly permutation.
    std::vector<size_t> field_order;
    std::string current;
    bool have = false;
    AggregateState state;
  };
  std::vector<PrefixAgg> aggs;
  for (const auto& [k, cuboid] : pipe.covered) {
    PrefixAgg agg;
    agg.k = k;
    agg.cuboid = cuboid;
    agg.field_order.resize(k);
    for (size_t i = 0; i < k; ++i) agg.field_order[i] = i;
    std::sort(agg.field_order.begin(), agg.field_order.end(),
              [&](size_t a, size_t b) {
                return pipe.signature[a].first < pipe.signature[b].first;
              });
    aggs.push_back(std::move(agg));
  }
  auto flush = [&](PrefixAgg* agg) {
    if (agg->have && agg->state.count > 0) {
      GroupKey key;
      key.reserve(agg->k * 4);
      for (size_t field : agg->field_order) {
        key.append(agg->current, field * 4, 4);
      }
      result->MutableCell(agg->cuboid, key)->Merge(agg->state);
    }
    agg->state = AggregateState{};
  };

  std::string rec;
  Status s;
  while (stream->Next(&rec, &s)) {
    int64_t measure = ReadMeasure(rec.data() + rec.size() - 8);
    for (PrefixAgg& agg : aggs) {
      std::string_view prefix(rec.data(), agg.k * 4);
      if (!agg.have || prefix != agg.current) {
        flush(&agg);
        agg.current.assign(prefix);
        agg.have = true;
      }
      // The row contributes only when all k fields are non-null.
      bool has_null = false;
      for (size_t i = 0; i < agg.k; ++i) {
        if (ReadBE32(rec.data() + i * 4) == kNullField) {
          has_null = true;
          break;
        }
      }
      if (!has_null) agg.state.Update(measure);
    }
  }
  X3_RETURN_IF_ERROR(s);
  for (PrefixAgg& agg : aggs) flush(&agg);
  return Status::OK();
}

/// Differing axis of a lattice edge (p -> c one-step relaxation).
struct EdgeInfo {
  size_t axis;
  AxisStateId from_state;
  AxisStateId to_state;
  bool to_absent;
};

std::optional<EdgeInfo> EdgeBetween(const CubeLattice& lattice, CuboidId p,
                                    CuboidId c) {
  std::optional<EdgeInfo> info;
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    AxisStateId sp = lattice.StateOf(p, a);
    AxisStateId sc = lattice.StateOf(c, a);
    if (sp == sc) continue;
    if (info.has_value()) return std::nullopt;  // differs in 2+ axes
    info = EdgeInfo{a, sp, sc,
                    !lattice.axis(a).state(sc).grouping_present()};
  }
  return info;
}

/// Computes cuboid `c` from already-computed less-relaxed neighbour `p`
/// along `edge`: LND edges aggregate the dropped axis away; structural
/// edges copy cells verbatim (valid under the coverage+disjointness
/// preconditions the caller established).
void RollUp(const CubeLattice& lattice, CuboidId p, CuboidId c,
            const EdgeInfo& edge, CubeResult* result,
            CubeComputeStats* stats) {
  ++stats->rollups;
  const auto& parent_cells = result->cuboid(p);
  if (!edge.to_absent) {
    // Structural relaxation: identical groups.
    for (const auto& [key, state] : parent_cells) {
      result->MutableCell(c, key)->Merge(state);
    }
    return;
  }
  // LND: drop the axis's field from each key and merge.
  std::vector<size_t> parent_present = lattice.PresentAxes(p);
  size_t drop_pos = 0;
  for (size_t i = 0; i < parent_present.size(); ++i) {
    if (parent_present[i] == edge.axis) {
      drop_pos = i;
      break;
    }
  }
  for (const auto& [key, state] : parent_cells) {
    GroupKey child_key;
    child_key.reserve(key.size() - 4);
    child_key.append(key, 0, drop_pos * 4);
    child_key.append(key, drop_pos * 4 + 4, std::string::npos);
    result->MutableCell(c, child_key)->Merge(state);
  }
}

/// TDCUST's per-edge safety test (see DESIGN.md §5): an LND roll-up is
/// safe iff the dropped axis is disjoint and covered at the parent's
/// state; a structural copy is safe iff the axis is covered at the
/// tighter state and disjoint at the more relaxed one (then both states
/// bind exactly the same single value for every fact).
bool EdgeRollupSafe(const LatticeProperties& props, const EdgeInfo& edge) {
  if (edge.to_absent) {
    const SummarizabilityFlags& f = props.At(edge.axis, edge.from_state);
    return f.disjoint && f.covered;
  }
  return props.At(edge.axis, edge.from_state).covered &&
         props.At(edge.axis, edge.to_state).disjoint;
}

}  // namespace

Result<CubeResult> ComputeTopDown(CubeAlgorithm variant,
                                  const FactTable& facts,
                                  const CubeLattice& lattice,
                                  const CubeComputeOptions& options,
                                  CubeComputeStats* stats) {
  CubeResult result(lattice.num_cuboids(), options.aggregate);

  if (variant == CubeAlgorithm::kTD) {
    // Unoptimized: every cuboid from base, carrying fact identifiers.
    for (CuboidId c = 0; c < lattice.num_cuboids(); ++c) {
      X3_RETURN_IF_ERROR(CuboidFromBase(facts, lattice, c, /*with_ids=*/true,
                                        options, &result, stats));
    }
    return result;
  }

  if (variant == CubeAlgorithm::kTDOpt) {
    std::vector<Pipe> pipes = BuildPipes(lattice);
    for (const Pipe& pipe : pipes) {
      X3_RETURN_IF_ERROR(
          RunPipe(facts, lattice, pipe, options, &result, stats));
    }
    return result;
  }

  if (variant == CubeAlgorithm::kTDOptAll) {
    // Finest cuboid from one base sort, everything else by roll-up /
    // copy along lattice edges (valid under global coverage +
    // disjointness, which this variant assumes).
    std::vector<CuboidId> topo = lattice.TopoOrder();
    X3_CHECK(!topo.empty() && topo.front() == lattice.FinestCuboid());
    X3_RETURN_IF_ERROR(CuboidFromBase(facts, lattice, topo.front(),
                                      /*with_ids=*/false, options, &result,
                                      stats));
    for (size_t i = 1; i < topo.size(); ++i) {
      CuboidId c = topo[i];
      std::vector<CuboidId> parents = lattice.LessRelaxedNeighbors(c);
      X3_CHECK(!parents.empty());
      CuboidId p = parents.front();
      std::optional<EdgeInfo> edge = EdgeBetween(lattice, p, c);
      X3_CHECK(edge.has_value());
      RollUp(lattice, p, c, *edge, &result, stats);
    }
    return result;
  }

  // TDCUST: per cuboid, the cheapest strategy the property map proves
  // safe; otherwise the full TD path.
  X3_CHECK(variant == CubeAlgorithm::kTDCust);
  LatticeProperties assume_nothing =
      LatticeProperties::AssumeNothing(lattice);
  const LatticeProperties& props =
      options.properties != nullptr ? *options.properties : assume_nothing;
  for (const CuboidPlanStep& step : PlanCustomTopDown(lattice, props)) {
    switch (step.kind) {
      case CuboidPlanStep::Kind::kBaseWithIds:
      case CuboidPlanStep::Kind::kBaseNoIds:
        X3_RETURN_IF_ERROR(CuboidFromBase(
            facts, lattice, step.cuboid,
            step.kind == CuboidPlanStep::Kind::kBaseWithIds, options,
            &result, stats));
        break;
      case CuboidPlanStep::Kind::kRollup:
      case CuboidPlanStep::Kind::kCopy: {
        std::optional<EdgeInfo> edge =
            EdgeBetween(lattice, step.source, step.cuboid);
        X3_CHECK(edge.has_value());
        RollUp(lattice, step.source, step.cuboid, *edge, &result, stats);
        break;
      }
    }
  }
  return result;
}

}  // namespace internal

std::vector<CuboidPlanStep> PlanCustomTopDown(
    const CubeLattice& lattice, const LatticeProperties& properties) {
  using internal::EdgeBetween;
  using internal::EdgeRollupSafe;
  using EdgeInfo = internal::EdgeInfo;
  std::vector<CuboidPlanStep> plan;
  std::vector<CuboidId> topo = lattice.TopoOrder();
  plan.reserve(topo.size());
  for (size_t i = 0; i < topo.size(); ++i) {
    CuboidId c = topo[i];
    CuboidPlanStep step;
    step.cuboid = c;
    bool rolled = false;
    if (i > 0) {
      for (CuboidId p : lattice.LessRelaxedNeighbors(c)) {
        std::optional<EdgeInfo> edge = EdgeBetween(lattice, p, c);
        if (!edge.has_value()) continue;
        if (EdgeRollupSafe(properties, *edge)) {
          step.kind = edge->to_absent ? CuboidPlanStep::Kind::kRollup
                                      : CuboidPlanStep::Kind::kCopy;
          step.source = p;
          rolled = true;
          break;
        }
      }
    }
    if (!rolled) {
      step.kind = properties.ForCuboid(lattice, c).disjoint
                      ? CuboidPlanStep::Kind::kBaseNoIds
                      : CuboidPlanStep::Kind::kBaseWithIds;
    }
    plan.push_back(step);
  }
  return plan;
}

std::string ExplainCustomTopDown(const CubeLattice& lattice,
                                 const LatticeProperties& properties) {
  std::string out;
  for (const CuboidPlanStep& step : PlanCustomTopDown(lattice, properties)) {
    out += StringPrintf("cuboid %4llu %s  <- ",
                        static_cast<unsigned long long>(step.cuboid),
                        lattice.DescribeCuboid(step.cuboid).c_str());
    switch (step.kind) {
      case CuboidPlanStep::Kind::kBaseWithIds:
        out += "base scan + sort (fact ids retained: disjointness unproven)";
        break;
      case CuboidPlanStep::Kind::kBaseNoIds:
        out += "base scan + sort (no fact ids: disjoint)";
        break;
      case CuboidPlanStep::Kind::kRollup:
        out += StringPrintf(
            "roll-up from cuboid %llu (dropped axis disjoint+covered)",
            static_cast<unsigned long long>(step.source));
        break;
      case CuboidPlanStep::Kind::kCopy:
        out += StringPrintf(
            "copy of cuboid %llu (structural edge with equal bindings)",
            static_cast<unsigned long long>(step.source));
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace x3
