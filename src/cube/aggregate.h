#ifndef X3_CUBE_AGGREGATE_H_
#define X3_CUBE_AGGREGATE_H_

#include <cstdint>
#include <limits>
#include <string>

#include "util/result.h"

namespace x3 {

/// Aggregate functions the cube operator supports. COUNT counts
/// *distinct facts* per group (the paper's publication count); the
/// others aggregate each fact's measure once per group it belongs to.
/// COUNT/SUM/MIN/MAX are distributive, AVG is algebraic — all roll up
/// via AggregateState::Merge when summarizability permits.
enum class AggregateFunction : uint8_t {
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
};

const char* AggregateFunctionToString(AggregateFunction fn);
Result<AggregateFunction> ParseAggregateFunction(std::string_view name);

/// Running state of one cube cell. Holds all components so any of the
/// supported functions can be finalized from it, and so roll-up merges
/// stay exact (AVG merges as (sum, count)).
struct AggregateState {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = std::numeric_limits<int64_t>::max();
  int64_t max = std::numeric_limits<int64_t>::min();

  /// Accumulates one fact's measure.
  void Update(int64_t measure) {
    ++count;
    sum += measure;
    if (measure < min) min = measure;
    if (measure > max) max = measure;
  }

  /// Combines two partial states (coarser-from-finer roll-up).
  void Merge(const AggregateState& other) {
    count += other.count;
    sum += other.sum;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }

  /// Finalized value under `fn`. AVG of an empty state is 0.
  double Value(AggregateFunction fn) const;

  bool operator==(const AggregateState& other) const {
    return count == other.count && sum == other.sum && min == other.min &&
           max == other.max;
  }
};

}  // namespace x3

#endif  // X3_CUBE_AGGREGATE_H_
