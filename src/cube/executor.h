#ifndef X3_CUBE_EXECUTOR_H_
#define X3_CUBE_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cube/algorithm.h"
#include "cube/plan.h"
#include "util/exec.h"

namespace x3 {

/// Executes a CubePlan for one algorithm family. Implementations live
/// with their algorithm (reference.cc, counter.cc, buc.cc, topdown.cc)
/// and are looked up through the registry — ComputeCube's hot path has
/// no per-algorithm switch.
///
/// Contract: `ctx` is never null; long loops must Poll() it and unwind
/// with kCancelled / kDeadlineExceeded, releasing every budget charge on
/// the way out. Executors read budget/temp_files from `options` (already
/// reconciled with the context by ComputeCube) and record stage timings
/// into ctx->stats().
class CuboidExecutor {
 public:
  virtual ~CuboidExecutor() = default;

  virtual const char* name() const = 0;

  virtual Result<CubeResult> Execute(const CubePlan& plan,
                                     const FactTable& facts,
                                     const CubeLattice& lattice,
                                     const CubeComputeOptions& options,
                                     ExecutionContext* ctx,
                                     CubeComputeStats* stats) const = 0;
};

/// Maps CubeAlgorithm -> executor. One executor instance may serve
/// several algorithms of a family (registered once per algorithm).
class CuboidExecutorRegistry {
 public:
  /// Fails with kAlreadyExists when `algo` is already registered.
  Status Register(CubeAlgorithm algo,
                  std::unique_ptr<CuboidExecutor> executor);

  /// nullptr when `algo` has no registered executor.
  const CuboidExecutor* Find(CubeAlgorithm algo) const;

  /// Registered algorithms in enum order (tests sweep this instead of
  /// hard-coding the nine variants).
  std::vector<CubeAlgorithm> Algorithms() const;

 private:
  std::map<CubeAlgorithm, std::unique_ptr<CuboidExecutor>> executors_;
};

/// The process-wide registry, seeded with all built-in families on first
/// use (explicit seeding, not static initializers: a static library must
/// not rely on the linker keeping registration objects alive).
CuboidExecutorRegistry& GlobalCuboidExecutorRegistry();

/// One schedulable unit of a plan execution: a closure producing one
/// cuboid (or one shared-sort pipe) plus the indices of the tasks that
/// must complete first. Tasks write into disjoint parts of the shared
/// CubeResult (each cuboid's cell map has exactly one producer), so
/// they need no locking of their own; the scheduler's mutex provides
/// the happens-before edge between a producer and its readers.
struct PlanTask {
  /// Must *accumulate* into the passed stats (increment counters, max
  /// the peaks) rather than assign: at parallelism 1 every task shares
  /// the caller's stats object; in parallel each task gets a zeroed
  /// one, absorbed at the join point.
  std::function<Status(CubeComputeStats*)> run;
  /// Indices into the task vector; every dep must be < this task's own
  /// index (dependency order), which RunPlanTasks checks.
  std::vector<size_t> deps;
};

/// Runs `tasks` respecting dependencies, with at most `parallelism`
/// worker threads, and merges per-task stats into `stats`.
///
/// parallelism <= 1 runs every task on the calling thread in index
/// order against `stats` directly, stopping at the first error —
/// byte-for-byte the pre-parallel behavior. parallelism > 1 schedules
/// ready tasks onto a worker pool; on any failure no new tasks are
/// submitted but in-flight ones drain (each task's own unwind releases
/// its budget charges), and the returned status is the first non-OK by
/// task index — not by completion time — so errors are deterministic.
/// Per-task stats are absorbed in task-index order either way.
///
/// `query_id` (usually ctx->query_id() at the call site) is
/// re-established on whichever thread runs each task (ScopedQueryId),
/// so pool workers' trace spans and log lines stay attributed to the
/// query that spawned them; 0 = unattributed.
Status RunPlanTasks(std::vector<PlanTask> tasks, size_t parallelism,
                    CubeComputeStats* stats, uint64_t query_id = 0);

namespace internal {

/// Built-in executor factories (one per family; exposed for white-box
/// tests that want an executor without the global registry).
std::unique_ptr<CuboidExecutor> MakeReferenceExecutor();
std::unique_ptr<CuboidExecutor> MakeCounterExecutor();
std::unique_ptr<CuboidExecutor> MakeBottomUpExecutor();
std::unique_ptr<CuboidExecutor> MakeTopDownExecutor();

}  // namespace internal
}  // namespace x3

#endif  // X3_CUBE_EXECUTOR_H_
