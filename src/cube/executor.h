#ifndef X3_CUBE_EXECUTOR_H_
#define X3_CUBE_EXECUTOR_H_

#include <map>
#include <memory>
#include <vector>

#include "cube/algorithm.h"
#include "cube/plan.h"
#include "util/exec.h"

namespace x3 {

/// Executes a CubePlan for one algorithm family. Implementations live
/// with their algorithm (reference.cc, counter.cc, buc.cc, topdown.cc)
/// and are looked up through the registry — ComputeCube's hot path has
/// no per-algorithm switch.
///
/// Contract: `ctx` is never null; long loops must Poll() it and unwind
/// with kCancelled / kDeadlineExceeded, releasing every budget charge on
/// the way out. Executors read budget/temp_files from `options` (already
/// reconciled with the context by ComputeCube) and record stage timings
/// into ctx->stats().
class CuboidExecutor {
 public:
  virtual ~CuboidExecutor() = default;

  virtual const char* name() const = 0;

  virtual Result<CubeResult> Execute(const CubePlan& plan,
                                     const FactTable& facts,
                                     const CubeLattice& lattice,
                                     const CubeComputeOptions& options,
                                     ExecutionContext* ctx,
                                     CubeComputeStats* stats) const = 0;
};

/// Maps CubeAlgorithm -> executor. One executor instance may serve
/// several algorithms of a family (registered once per algorithm).
class CuboidExecutorRegistry {
 public:
  /// Fails with kAlreadyExists when `algo` is already registered.
  Status Register(CubeAlgorithm algo,
                  std::unique_ptr<CuboidExecutor> executor);

  /// nullptr when `algo` has no registered executor.
  const CuboidExecutor* Find(CubeAlgorithm algo) const;

  /// Registered algorithms in enum order (tests sweep this instead of
  /// hard-coding the nine variants).
  std::vector<CubeAlgorithm> Algorithms() const;

 private:
  std::map<CubeAlgorithm, std::unique_ptr<CuboidExecutor>> executors_;
};

/// The process-wide registry, seeded with all built-in families on first
/// use (explicit seeding, not static initializers: a static library must
/// not rely on the linker keeping registration objects alive).
CuboidExecutorRegistry& GlobalCuboidExecutorRegistry();

namespace internal {

/// Built-in executor factories (one per family; exposed for white-box
/// tests that want an executor without the global registry).
std::unique_ptr<CuboidExecutor> MakeReferenceExecutor();
std::unique_ptr<CuboidExecutor> MakeCounterExecutor();
std::unique_ptr<CuboidExecutor> MakeBottomUpExecutor();
std::unique_ptr<CuboidExecutor> MakeTopDownExecutor();

}  // namespace internal
}  // namespace x3

#endif  // X3_CUBE_EXECUTOR_H_
