#ifndef X3_CUBE_CUBE_SPEC_H_
#define X3_CUBE_CUBE_SPEC_H_

#include <string>
#include <vector>

#include "cube/aggregate.h"
#include "cube/fact_table.h"
#include "relax/cube_lattice.h"
#include "util/result.h"
#include "xdb/database.h"

namespace x3 {

/// Transformation applied to a grouping value before dictionary
/// encoding. The paper's dense-cube experiments "grouped only the first
/// character of the marked-up text" — that is kPrefix with length 1.
struct ValueTransform {
  enum class Kind : uint8_t { kIdentity, kPrefix, kLowercase };

  Kind kind = Kind::kIdentity;
  size_t prefix_length = 1;

  static ValueTransform Identity() { return {}; }
  static ValueTransform Prefix(size_t n) {
    return {Kind::kPrefix, n};
  }
  static ValueTransform Lowercase() {
    return {Kind::kLowercase, 0};
  }

  std::string Apply(std::string_view value) const;
};

/// One grouping axis of an X^3 query: "$n in $b/author/name ...
/// X^3 ... by $n (LND, SP, PC-AD)".
struct AxisSpec {
  /// Display name (the variable, e.g. "n").
  std::string name;
  /// Path relative to the fact node, e.g. "/author/name" or
  /// "//publisher/@id". Must start with '/' or '//'.
  std::string path;
  /// Permitted relaxations for this axis.
  RelaxationSet relaxations;
  /// Value transform (dense/sparse control).
  ValueTransform transform;
};

/// A complete cube specification (the programmatic form of the X^3
/// query; the x3/ module parses the textual form into this).
struct CubeQuery {
  /// Pattern whose output node binds the fact variable, e.g.
  /// "//publication".
  std::string fact_path;
  std::vector<AxisSpec> axes;
  AggregateFunction aggregate = AggregateFunction::kCount;
  /// Optional path (relative to the fact) whose first match's numeric
  /// value is the fact's measure; empty => measure 1 (pure counting).
  std::string measure_path;
  /// Iceberg threshold from the query's HAVING clause; 0 = full cube.
  int64_t min_count = 0;
};

/// Builds the relaxed-cube lattice for `query` (per-axis relaxation
/// closures + product). Fails if an axis exceeds kMaxAxisStates.
Result<CubeLattice> BuildCubeLattice(const CubeQuery& query);

/// Evaluates the most relaxed fully instantiated pattern against `db`
/// and materializes the fact table: every fact-root match of
/// `query.fact_path`, with per-axis bindings and admission masks over
/// the lattice's states (§3.4's pre-evaluation step).
Result<FactTable> BuildFactTable(const Database& db, const CubeQuery& query,
                                 const CubeLattice& lattice);

/// Delta counterpart of BuildFactTable: re-evaluates the fact pattern
/// and appends only facts rooted at nodes >= `first_new_node` (the
/// database's node count before the committed batch) to `*table`, which
/// must be a finished table previously built by BuildFactTable for the
/// same (query, lattice). Returns the number of facts appended; the
/// table is finished again on return. Existing fact indices and
/// ValueIds are untouched, so views over the old prefix stay valid.
Result<size_t> AppendNewFacts(const Database& db, const CubeQuery& query,
                              const CubeLattice& lattice,
                              NodeId first_new_node, FactTable* table);

}  // namespace x3

#endif  // X3_CUBE_CUBE_SPEC_H_
