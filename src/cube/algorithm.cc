#include "cube/algorithm.h"

#include <algorithm>
#include <optional>

#include "cube/executor.h"
#include "cube/plan.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace x3 {

namespace {

Counter& ComputationsCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_cube_computations_total", "Completed cube computations");
  return *c;
}

Counter& ResultCellsCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_cube_result_cells_total",
      "Cells produced by completed cube computations");
  return *c;
}

}  // namespace

const char* CubeAlgorithmToString(CubeAlgorithm algo) {
  switch (algo) {
    case CubeAlgorithm::kReference:
      return "REFERENCE";
    case CubeAlgorithm::kCounter:
      return "COUNTER";
    case CubeAlgorithm::kBUC:
      return "BUC";
    case CubeAlgorithm::kBUCOpt:
      return "BUCOPT";
    case CubeAlgorithm::kBUCCust:
      return "BUCCUST";
    case CubeAlgorithm::kTD:
      return "TD";
    case CubeAlgorithm::kTDOpt:
      return "TDOPT";
    case CubeAlgorithm::kTDOptAll:
      return "TDOPTALL";
    case CubeAlgorithm::kTDCust:
      return "TDCUST";
  }
  return "?";
}

Result<CubeAlgorithm> ParseCubeAlgorithm(std::string_view name) {
  std::string upper;
  for (char c : name) {
    upper += (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
  }
  if (upper == "REFERENCE") return CubeAlgorithm::kReference;
  if (upper == "COUNTER") return CubeAlgorithm::kCounter;
  if (upper == "BUC") return CubeAlgorithm::kBUC;
  if (upper == "BUCOPT") return CubeAlgorithm::kBUCOpt;
  if (upper == "BUCCUST") return CubeAlgorithm::kBUCCust;
  if (upper == "TD") return CubeAlgorithm::kTD;
  if (upper == "TDOPT") return CubeAlgorithm::kTDOpt;
  if (upper == "TDOPTALL") return CubeAlgorithm::kTDOptAll;
  if (upper == "TDCUST") return CubeAlgorithm::kTDCust;
  return Status::InvalidArgument("unknown cube algorithm: " +
                                 std::string(name));
}

void CubeComputeStats::Absorb(const CubeComputeStats& other) {
  base_scans += other.base_scans;
  passes += other.passes;
  sorts += other.sorts;
  records_sorted += other.records_sorted;
  spilled_runs += other.spilled_runs;
  spill_bytes += other.spill_bytes;
  partitions += other.partitions;
  partition_rows += other.partition_rows;
  rollups += other.rollups;
  peak_memory = std::max(peak_memory, other.peak_memory);
}

Result<CubeResult> ComputeCube(CubeAlgorithm algo, const FactTable& facts,
                               const CubeLattice& lattice,
                               const CubeComputeOptions& options,
                               CubeComputeStats* stats) {
  if (!facts.finished()) {
    return Status::InvalidArgument("fact table not finished");
  }
  if (facts.num_axes() != lattice.num_axes()) {
    return Status::InvalidArgument(StringPrintf(
        "fact table has %zu axes but lattice has %zu", facts.num_axes(),
        lattice.num_axes()));
  }
  CubeComputeStats local;
  CubeComputeStats* st = stats != nullptr ? stats : &local;
  *st = CubeComputeStats{};

  // Reconcile the execution context with the per-call options: a
  // caller-supplied context wins for budget/temp_files; otherwise an
  // uncancellable local context wraps the option fields.
  ExecutionContext local_ctx(ExecutionContext::Options{
      options.budget, options.temp_files, nullptr, std::nullopt});
  ExecutionContext* ctx =
      options.exec != nullptr ? options.exec : &local_ctx;
  CubeComputeOptions effective = options;
  effective.exec = ctx;
  if (effective.parallelism == 0) {
    effective.parallelism = ThreadPool::DefaultConcurrency();
  }
  if (options.exec != nullptr) {
    if (ctx->budget() != nullptr) effective.budget = ctx->budget();
    if (ctx->temp_files() != nullptr) {
      effective.temp_files = ctx->temp_files();
    }
  }

  // Plan. CUST variants with no property map plan conservatively.
  std::optional<LatticeProperties> assume_nothing;
  const LatticeProperties* props = effective.properties;
  if (props == nullptr) {
    assume_nothing = LatticeProperties::AssumeNothing(lattice);
    props = &*assume_nothing;
  }
  CubePlan plan;
  {
    ScopedStageTimer timer(ctx->stats(), "plan", ctx->tracer());
    plan = BuildCubePlan(algo, lattice, *props);
  }

  // Execute through the registry — no per-algorithm switch here.
  const CuboidExecutor* executor = GlobalCuboidExecutorRegistry().Find(algo);
  if (executor == nullptr) {
    return Status::Internal(std::string("no executor registered for ") +
                            CubeAlgorithmToString(algo));
  }
  Result<CubeResult> result = [&]() -> Result<CubeResult> {
    ScopedStageTimer timer(ctx->stats(), "compute", ctx->tracer());
    X3_RETURN_IF_ERROR(ctx->CheckInterrupted());
    return executor->Execute(plan, facts, lattice, effective, ctx, st);
  }();
  if (result.ok() && options.min_count > 1) {
    // The bottom-up family prunes natively; this central filter makes
    // the iceberg semantics uniform (and is idempotent for BUC).
    result->ApplyIcebergFilter(options.min_count);
  }
  if (result.ok()) {
    ComputationsCounter().Increment();
    ResultCellsCounter().Increment(result->TotalCells());
  }
  return result;
}

Result<std::string> ExplainAnalyzeCube(CubeAlgorithm algo,
                                       const FactTable& facts,
                                       const CubeLattice& lattice,
                                       const CubeComputeOptions& options,
                                       CubeComputeStats* stats) {
  // A private context gives the run its own stats sink, so the rendered
  // actuals cover exactly this execution; the caller's budget, temp
  // files, cancellation, deadline and tracer still apply.
  ExecutionContext::Options ctx_options;
  if (options.exec != nullptr) {
    ctx_options.budget = options.exec->budget();
    ctx_options.temp_files = options.exec->temp_files();
    ctx_options.cancel = options.exec->cancellation();
    ctx_options.deadline = options.exec->deadline();
    ctx_options.tracer = options.exec->tracer();
  }
  ExecutionContext ctx(ctx_options);
  CubeComputeOptions effective = options;
  effective.exec = &ctx;
  CubeComputeStats local;
  CubeComputeStats* st = stats != nullptr ? stats : &local;
  X3_ASSIGN_OR_RETURN(CubeResult result,
                      ComputeCube(algo, facts, lattice, effective, st));
  // Re-derive the plan the execution followed (same property-map
  // defaulting as ComputeCube; planning is pure, so the steps match).
  std::optional<LatticeProperties> assume_nothing;
  const LatticeProperties* props = options.properties;
  if (props == nullptr) {
    assume_nothing = LatticeProperties::AssumeNothing(lattice);
    props = &*assume_nothing;
  }
  CubePlan plan = BuildCubePlan(algo, lattice, *props);
  return ExplainCubePlanWithActuals(plan, lattice, *ctx.stats(), result);
}

namespace internal {

bool ForEachGroupOfFact(
    const FactTable& facts, const CubeLattice& lattice, CuboidId cuboid,
    size_t fact, std::vector<std::vector<ValueId>>* scratch,
    const std::function<void(const GroupKey&)>& fn) {
  // Collect the distinct admitted value set per present axis.
  size_t num_present = 0;
  static thread_local std::vector<size_t> present_axes;
  present_axes.clear();
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    AxisStateId s = lattice.StateOf(cuboid, a);
    if (!lattice.axis(a).state(s).grouping_present()) continue;
    facts.AdmittedValues(a, fact, s, &(*scratch)[num_present]);
    if ((*scratch)[num_present].empty()) return false;  // coverage drop-out
    present_axes.push_back(a);
    ++num_present;
  }
  // Odometer over the cross product.
  static thread_local std::vector<size_t> idx;
  static thread_local std::vector<ValueId> tuple;
  idx.assign(num_present, 0);
  tuple.resize(num_present);
  for (;;) {
    for (size_t i = 0; i < num_present; ++i) {
      tuple[i] = (*scratch)[i][idx[i]];
    }
    fn(PackGroupKey(tuple));
    // Advance the odometer.
    size_t i = 0;
    for (; i < num_present; ++i) {
      if (++idx[i] < (*scratch)[i].size()) break;
      idx[i] = 0;
    }
    if (i == num_present) break;
  }
  return true;
}

}  // namespace internal
}  // namespace x3
