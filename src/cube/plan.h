#ifndef X3_CUBE_PLAN_H_
#define X3_CUBE_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "relax/cube_lattice.h"
#include "schema/summarizability.h"

namespace x3 {

enum class CubeAlgorithm : uint8_t;  // cube/algorithm.h
class CubeResult;                    // cube/cube_result.h
class StatsSink;                     // util/exec.h

/// One step of a cube execution plan: how one cuboid is produced.
///
/// Originally this described only the TDCUST strategy choice; it is now
/// the unit of the `CubePlan` built for *every* algorithm family, so
/// EXPLAIN can show — and executors can follow — the per-cuboid
/// strategy "dictated by the semantics of the cube being computed"
/// (§4.5) no matter which family runs.
struct CuboidPlanStep {
  enum class Kind : uint8_t {
    kBaseWithIds,      // full TD sort carrying fact ids
    kBaseNoIds,        // sort without ids (cuboid proven disjoint)
    kRollup,           // aggregate an LND axis away from `source`
    kCopy,             // structural edge: copy `source`'s cells
    kHashAggregate,    // counter family: hash cells off a shared scan
    kPartitionRecurse, // bottom-up family: cells emitted by the
                       // recursive partition walk
    kSharedSort,       // TDOPT: prefix aggregation of pipe `source`
  };
  CuboidId cuboid = 0;
  Kind kind = Kind::kBaseWithIds;
  /// kRollup/kCopy: source cuboid. kSharedSort: index into
  /// CubePlan::pipes. Unused otherwise.
  CuboidId source = 0;
  /// Safety annotation from the property map: true when the chosen
  /// strategy provably yields the exact cube for this cuboid. OPT
  /// variants plan unsafe steps when their global assumption is
  /// unproven — exactly the paper's Fig. 9 caveat, now visible in
  /// EXPLAIN before any cycles are spent.
  bool safe = true;
};

const char* CuboidPlanStepKindToString(CuboidPlanStep::Kind kind);

/// A shared-sort pipe (TDOPT): one sort of the base in `sort_order`
/// serves every prefix cuboid in `covered`.
struct CubePlanPipe {
  /// (axis, state) per present axis, in the pipe's sort order (a
  /// chain-friendly permutation, not axis order).
  std::vector<std::pair<size_t, AxisStateId>> sort_order;
  /// (prefix length, cuboid) pairs computed from this pipe's sort.
  std::vector<std::pair<size_t, CuboidId>> covered;
};

/// The execution plan for a whole cube: one step per cuboid (in
/// dependency order — roll-up sources always precede their readers)
/// plus, for the shared-sort family, the pipe definitions.
struct CubePlan {
  CubeAlgorithm algorithm{};
  std::vector<CuboidPlanStep> steps;
  std::vector<CubePlanPipe> pipes;
  /// Number of steps whose strategy is not proven safe by the property
  /// map (0 for the always-correct variants).
  size_t unsafe_steps = 0;
};

/// Builds the execution plan `algo` would follow over `lattice` given
/// the property map. Pure planning: no data is touched, so EXPLAIN is
/// free and the same plan object drives the executor afterwards.
CubePlan BuildCubePlan(CubeAlgorithm algo, const CubeLattice& lattice,
                       const LatticeProperties& properties);

/// The dependency DAG of a plan, in the task numbering the parallel
/// executor uses: tasks [0, pipes.size()) are the pipes, task
/// pipes.size() + i is steps[i]. Entry t lists the tasks that must
/// complete before task t may run: a kSharedSort step depends on its
/// pipe; a kRollup/kCopy step depends on the step that produces its
/// source cuboid. Every dependency index is smaller than its reader's
/// (steps are in dependency order), so the sequential schedule
/// "pipes, then steps in order" is always valid.
std::vector<std::vector<size_t>> PlanStepDependencies(const CubePlan& plan);

/// Human-readable rendering of a plan: a header line, then one line per
/// cuboid (and one per pipe for the shared-sort family). Unsafe steps
/// are flagged "UNSAFE".
std::string ExplainCubePlan(const CubePlan& plan, const CubeLattice& lattice);

/// ExplainCubePlan with per-line actuals: each pipe and step line is
/// annotated with the wall-clock time, output rows and spill I/O that
/// an execution of this plan recorded in `stats` (the executors' stage
/// labels: "cuboid/<id>", "pipe/<n>", "pass/<n>", "partition-walk"),
/// and with the cell count of each cuboid in `result`. Steps whose
/// label never got recorded render without an annotation. This is the
/// rendering half of ExplainAnalyzeCube (cube/algorithm.h), exposed so
/// callers holding a finished execution's sink can re-render for free.
std::string ExplainCubePlanWithActuals(const CubePlan& plan,
                                       const CubeLattice& lattice,
                                       const StatsSink& stats,
                                       const CubeResult& result);

/// Computes the strategy TDCUST would use per cuboid given the property
/// map. Equivalent to BuildCubePlan(kTDCust, ...).steps; kept as the
/// stable inspection API.
std::vector<CuboidPlanStep> PlanCustomTopDown(
    const CubeLattice& lattice, const LatticeProperties& properties);

/// Human-readable rendering of PlanCustomTopDown (one line per cuboid).
std::string ExplainCustomTopDown(const CubeLattice& lattice,
                                 const LatticeProperties& properties);

namespace internal {

/// Differing axis of a lattice edge (p -> c one-step relaxation).
struct LatticeEdge {
  size_t axis;
  AxisStateId from_state;
  AxisStateId to_state;
  bool to_absent;
};

/// The single differing axis between `p` and `c`, or nullopt when they
/// differ in zero or two-plus axes.
std::optional<LatticeEdge> EdgeBetween(const CubeLattice& lattice, CuboidId p,
                                       CuboidId c);

/// TDCUST's per-edge safety test (see DESIGN.md §5): an LND roll-up is
/// safe iff the dropped axis is disjoint and covered at the parent's
/// state; a structural copy is safe iff the axis is covered at the
/// tighter state and disjoint at the more relaxed one (then both states
/// bind exactly the same single value for every fact).
bool EdgeRollupSafe(const LatticeProperties& props, const LatticeEdge& edge);

}  // namespace internal
}  // namespace x3

#endif  // X3_CUBE_PLAN_H_
