#ifndef X3_CUBE_VIEW_STORE_H_
#define X3_CUBE_VIEW_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "cube/aggregate.h"
#include "cube/cube_result.h"
#include "cube/fact_table.h"
#include "relax/cube_lattice.h"
#include "schema/summarizability.h"
#include "util/fact_id_set.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace x3 {

/// How a cuboid request was answered by the view store.
enum class ViewStrategy : uint8_t {
  /// The cuboid itself was materialized: cells copied.
  kExact,
  /// Rolled up from a materialized LND-ancestor without fact ids
  /// (requires the dropped axes to be disjoint at the view's states).
  kRollup,
  /// Rolled up from a materialized LND-ancestor by unioning the
  /// tracked fact-id sets — correct even without summarizability
  /// (§3.6's "accompany intermediate results ... with the attributes to
  /// be aggregated, keeping track of fact items").
  kRollupWithIds,
  /// No usable view: computed from the base fact table.
  kBase,
};

const char* ViewStrategyToString(ViewStrategy s);

/// Statistics for one Answer() call.
struct ViewComputeStats {
  ViewStrategy strategy = ViewStrategy::kBase;
  CuboidId source_view = 0;
  uint64_t view_cells_scanned = 0;
  uint64_t facts_scanned = 0;
};

/// Materialized intermediate cube results (§3.6).
///
/// A view is one cuboid's cells *with null-value groups*: every fact
/// appears, facts missing an axis binding carried under a null key
/// field (the §3.5 "null value group" patch that repairs coverage), and
/// optionally with the contributing fact ids per cell (which repairs
/// disjointness for later roll-ups at the cost of keeping fact items
/// around — exactly the trade-off the paper describes).
///
/// Answer(target) picks the cheapest correct strategy: the exact view;
/// an LND-ancestor view rolled up without ids when the dropped axes are
/// provably disjoint; an id-carrying ancestor with fact-set union; or
/// the base table.
///
/// Thread safety: the view map is guarded by `mu_` (rank
/// lock_rank::kViewStore), so concurrent Answer() calls — the shared
/// cuboid-cache shape the serving layer needs — are safe, including
/// against a concurrent Materialize(). Materialize builds the view
/// outside the lock and only publishes under it; Answer's base-table
/// fallback also runs unlocked (it touches only the immutable fact
/// table and lattice).
class CubeViewStore {
 public:
  /// Both referents must outlive the store.
  CubeViewStore(const FactTable* facts, const CubeLattice* lattice)
      : facts_(facts), lattice_(lattice) {}

  CubeViewStore(const CubeViewStore&) = delete;
  CubeViewStore& operator=(const CubeViewStore&) = delete;

  /// Materializes `cuboid` from the base table (with null-value groups;
  /// fact ids retained when `with_fact_ids`). Re-materializing replaces
  /// the view.
  Status Materialize(CuboidId cuboid, bool with_fact_ids) X3_EXCLUDES(mu_);

  /// Drops the materialized view of `cuboid`; false when it was not
  /// materialized. The serving layer's cuboid cache uses this as its
  /// eviction hook.
  bool Evict(CuboidId cuboid) X3_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return views_.erase(cuboid) > 0;
  }

  bool Contains(CuboidId cuboid) const X3_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return views_.count(cuboid) > 0;
  }
  size_t num_views() const X3_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return views_.size();
  }

  /// Ids of the currently materialized views, unordered.
  std::vector<CuboidId> MaterializedIds() const X3_EXCLUDES(mu_);

  /// True iff `cuboid` is materialized with fact ids (false when it is
  /// not materialized at all). Delta planning distinguishes the two:
  /// id-carrying views can always absorb new facts, id-less views only
  /// where summarizability still proves the merge safe.
  bool ViewHasFactIds(CuboidId cuboid) const X3_EXCLUDES(mu_);

  /// Copies `cuboid`'s materialized view out of `source` into this
  /// store (replacing any existing view of the same cuboid). NotFound
  /// when `source` has no such view. The two stores' locks are taken
  /// sequentially, never nested, so same-rank stores are fine.
  Status CloneViewFrom(const CubeViewStore& source, CuboidId cuboid)
      X3_EXCLUDES(mu_);

  /// Folds facts [first_new_fact, facts()->size()) of the (re-finished)
  /// fact table into `cuboid`'s materialized view — the same
  /// null-value-group odometer walk Materialize runs, restricted to the
  /// delta range, so the patched view is byte-identical to a fresh
  /// materialization. Caller is responsible for only patching views the
  /// delta plan proved safe. `cells_touched` (optional) accumulates the
  /// number of cell updates. NotFound when the view is not
  /// materialized.
  Status ApplyDelta(CuboidId cuboid, size_t first_new_fact,
                    uint64_t* cells_touched = nullptr) X3_EXCLUDES(mu_);

  /// Approximate memory held by materialized views.
  size_t ApproxBytes() const X3_EXCLUDES(mu_);

  /// Approximate memory of one materialized view (0 when absent) — the
  /// unit the serving layer's LRU accounting is denominated in.
  size_t ViewApproxBytes(CuboidId cuboid) const X3_EXCLUDES(mu_);

  /// Computes the cells of `target` (no null groups — the real cuboid)
  /// using the best available strategy. `properties` may be null
  /// ("assume nothing": id-less roll-ups are never chosen).
  Result<std::unordered_map<GroupKey, AggregateState>> Answer(
      CuboidId target, AggregateFunction fn,
      const LatticeProperties* properties = nullptr,
      ViewComputeStats* stats = nullptr) const X3_EXCLUDES(mu_);

  /// Answer() restricted to the materialized views: exact or roll-up
  /// strategies only, NotFound when no usable view exists. The base
  /// table is never scanned, so a NotFound caller can decide for itself
  /// how a miss is computed (the serving layer routes it through
  /// ComputeCube so misses fill the cache).
  Result<std::unordered_map<GroupKey, AggregateState>> AnswerFromViews(
      CuboidId target, AggregateFunction fn,
      const LatticeProperties* properties = nullptr,
      ViewComputeStats* stats = nullptr) const X3_EXCLUDES(mu_);

 private:
  struct ViewCell {
    AggregateState agg;
    /// Contributing fact indices as a compressed set (empty when the
    /// view was materialized without ids).
    FactIdSet facts;
  };
  struct View {
    bool with_fact_ids = false;
    /// Present axes of the view's cuboid, ascending.
    std::vector<size_t> present;
    /// Per-axis state of the view's cuboid.
    std::vector<AxisStateId> states;
    /// Keyed over `present` (null fields = kInvalidValueId).
    std::unordered_map<GroupKey, ViewCell> cells;
  };

  /// True iff `target` is `view` with zero or more of its axes
  /// LND-dropped (same states on the shared axes). Fills
  /// `kept_positions` with the view-key field index of each target
  /// present axis.
  bool IsLndDescendant(const View& view, CuboidId target,
                       std::vector<size_t>* kept_positions,
                       std::vector<size_t>* dropped_axes) const;

  /// Approximate memory of one view (caller holds mu_; the view itself
  /// is all the state touched).
  static size_t ViewBytesLocked(const View& view);

  const FactTable* facts_;
  const CubeLattice* lattice_;
  mutable Mutex mu_{lock_rank::kViewStore};
  std::unordered_map<CuboidId, View> views_ X3_GUARDED_BY(mu_);
};

}  // namespace x3

#endif  // X3_CUBE_VIEW_STORE_H_
