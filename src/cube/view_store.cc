#include "cube/view_store.h"

#include <algorithm>

#include "util/logging.h"

namespace x3 {

const char* ViewStrategyToString(ViewStrategy s) {
  switch (s) {
    case ViewStrategy::kExact:
      return "exact";
    case ViewStrategy::kRollup:
      return "rollup";
    case ViewStrategy::kRollupWithIds:
      return "rollup+ids";
    case ViewStrategy::kBase:
      return "base";
  }
  return "?";
}

Status CubeViewStore::Materialize(CuboidId cuboid, bool with_fact_ids) {
  View view;
  view.with_fact_ids = with_fact_ids;
  view.present = lattice_->PresentAxes(cuboid);
  view.states = lattice_->Decode(cuboid);

  std::vector<std::vector<ValueId>> lists(view.present.size());
  std::vector<size_t> idx;
  std::vector<ValueId> tuple(view.present.size());
  static const std::vector<ValueId> kNullList{kInvalidValueId};

  for (size_t f = 0; f < facts_->size(); ++f) {
    // Value-or-null list per present axis (null-value groups keep
    // coverage-dropping facts visible to later roll-ups).
    for (size_t i = 0; i < view.present.size(); ++i) {
      size_t axis = view.present[i];
      facts_->AdmittedValues(axis, f, view.states[axis], &lists[i]);
      if (lists[i].empty()) lists[i] = kNullList;
    }
    idx.assign(view.present.size(), 0);
    for (;;) {
      for (size_t i = 0; i < view.present.size(); ++i) {
        tuple[i] = lists[i][idx[i]];
      }
      ViewCell& cell = view.cells[PackGroupKey(tuple)];
      cell.agg.Update(facts_->measure(f));
      if (with_fact_ids) {
        // Ascending f: hits FactIdSet's append fast path, and a fact
        // enters a given cell at most once per odometer walk.
        cell.facts.Add(static_cast<uint32_t>(f));
      }
      size_t i = 0;
      for (; i < view.present.size(); ++i) {
        if (++idx[i] < lists[i].size()) break;
        idx[i] = 0;
      }
      if (i == view.present.size()) break;
    }
  }
  // Publish under the lock; the whole build above ran on private
  // state.
  MutexLock lock(&mu_);
  views_[cuboid] = std::move(view);
  return Status::OK();
}

size_t CubeViewStore::ViewBytesLocked(const View& view) {
  size_t bytes = 0;
  for (const auto& [key, cell] : view.cells) {
    bytes += key.size() + sizeof(ViewCell) + 32;
    bytes += cell.facts.ApproxBytes();
  }
  return bytes;
}

size_t CubeViewStore::ApproxBytes() const {
  MutexLock lock(&mu_);
  size_t bytes = 0;
  for (const auto& [id, view] : views_) {
    bytes += ViewBytesLocked(view);
  }
  return bytes;
}

size_t CubeViewStore::ViewApproxBytes(CuboidId cuboid) const {
  MutexLock lock(&mu_);
  auto it = views_.find(cuboid);
  return it == views_.end() ? 0 : ViewBytesLocked(it->second);
}

std::vector<CuboidId> CubeViewStore::MaterializedIds() const {
  MutexLock lock(&mu_);
  std::vector<CuboidId> ids;
  ids.reserve(views_.size());
  for (const auto& [id, view] : views_) ids.push_back(id);
  return ids;
}

bool CubeViewStore::ViewHasFactIds(CuboidId cuboid) const {
  MutexLock lock(&mu_);
  auto it = views_.find(cuboid);
  return it != views_.end() && it->second.with_fact_ids;
}

Status CubeViewStore::CloneViewFrom(const CubeViewStore& source,
                                    CuboidId cuboid) {
  View copy;
  {
    MutexLock lock(&source.mu_);
    auto it = source.views_.find(cuboid);
    if (it == source.views_.end()) {
      return Status::NotFound("source has no view for cuboid " +
                              std::to_string(cuboid));
    }
    copy = it->second;
  }
  MutexLock lock(&mu_);
  views_[cuboid] = std::move(copy);
  return Status::OK();
}

Status CubeViewStore::ApplyDelta(CuboidId cuboid, size_t first_new_fact,
                                 uint64_t* cells_touched) {
  MutexLock lock(&mu_);
  auto it = views_.find(cuboid);
  if (it == views_.end()) {
    return Status::NotFound("no materialized view for cuboid " +
                            std::to_string(cuboid));
  }
  View& view = it->second;

  std::vector<std::vector<ValueId>> lists(view.present.size());
  std::vector<size_t> idx;
  std::vector<ValueId> tuple(view.present.size());
  static const std::vector<ValueId> kNullList{kInvalidValueId};

  // Same walk as Materialize, restricted to the delta facts: every new
  // fact lands in exactly the cells a full rebuild would put it in, so
  // the patched view equals a fresh materialization cell for cell.
  for (size_t f = first_new_fact; f < facts_->size(); ++f) {
    for (size_t i = 0; i < view.present.size(); ++i) {
      size_t axis = view.present[i];
      facts_->AdmittedValues(axis, f, view.states[axis], &lists[i]);
      if (lists[i].empty()) lists[i] = kNullList;
    }
    idx.assign(view.present.size(), 0);
    for (;;) {
      for (size_t i = 0; i < view.present.size(); ++i) {
        tuple[i] = lists[i][idx[i]];
      }
      ViewCell& cell = view.cells[PackGroupKey(tuple)];
      cell.agg.Update(facts_->measure(f));
      if (view.with_fact_ids) {
        cell.facts.Add(static_cast<uint32_t>(f));
      }
      if (cells_touched != nullptr) ++*cells_touched;
      size_t i = 0;
      for (; i < view.present.size(); ++i) {
        if (++idx[i] < lists[i].size()) break;
        idx[i] = 0;
      }
      if (i == view.present.size()) break;
    }
  }
  return Status::OK();
}

bool CubeViewStore::IsLndDescendant(const View& view, CuboidId target,
                                    std::vector<size_t>* kept_positions,
                                    std::vector<size_t>* dropped_axes) const {
  kept_positions->clear();
  dropped_axes->clear();
  std::vector<size_t> target_present = lattice_->PresentAxes(target);
  size_t ti = 0;
  for (size_t i = 0; i < view.present.size(); ++i) {
    size_t axis = view.present[i];
    AxisStateId target_state = lattice_->StateOf(target, axis);
    if (ti < target_present.size() && target_present[ti] == axis) {
      // Kept axis: state must be identical (structural relaxation
      // changes bindings; views only help across LND edges).
      if (target_state != view.states[axis]) return false;
      kept_positions->push_back(i);
      ++ti;
    } else {
      // Dropped axis: target must have it absent.
      if (lattice_->axis(axis).state(target_state).grouping_present()) {
        return false;
      }
      dropped_axes->push_back(axis);
    }
  }
  // Any target-present axis not present in the view disqualifies it.
  if (ti != target_present.size()) return false;
  // Axes absent in both must agree on state (absent is unique per axis,
  // so nothing further to check).
  return true;
}

Result<std::unordered_map<GroupKey, AggregateState>>
CubeViewStore::AnswerFromViews(CuboidId target, AggregateFunction fn,
                               const LatticeProperties* properties,
                               ViewComputeStats* stats) const {
  (void)fn;  // all components are maintained in AggregateState
  ViewComputeStats local;
  ViewComputeStats* st = stats != nullptr ? stats : &local;
  *st = ViewComputeStats{};

  std::unordered_map<GroupKey, AggregateState> out;

  // View selection and roll-up hold mu_ (`best` points into views_).
  MutexLock lock(&mu_);
  // Candidate views: prefer exact, then the smallest usable ancestor.
  const View* best = nullptr;
  CuboidId best_id = 0;
  std::vector<size_t> best_kept, best_dropped;
  bool best_exact = false;
  bool best_needs_ids = false;
  for (const auto& [id, view] : views_) {
    std::vector<size_t> kept, dropped;
    if (!IsLndDescendant(view, target, &kept, &dropped)) continue;
    bool exact = dropped.empty();
    bool safe_without_ids = true;
    for (size_t axis : dropped) {
      const SummarizabilityFlags flags =
          properties != nullptr
              ? properties->At(axis, view.states[axis])
              : SummarizabilityFlags{false, false};
      // Coverage is repaired by the null-value groups; only
      // disjointness of the dropped axis matters for id-less merging.
      if (!flags.disjoint) safe_without_ids = false;
    }
    bool usable = exact || safe_without_ids || view.with_fact_ids;
    if (!usable) continue;
    bool better = best == nullptr ||
                  (exact && !best_exact) ||
                  (exact == best_exact &&
                   view.cells.size() < best->cells.size());
    if (better) {
      best = &view;
      best_id = id;
      best_kept = kept;
      best_dropped = dropped;
      best_exact = exact;
      best_needs_ids = !exact && !safe_without_ids;
    }
  }

  if (best != nullptr) {
    st->source_view = best_id;
    if (best_exact) {
      st->strategy = ViewStrategy::kExact;
    } else {
      st->strategy = best_needs_ids ? ViewStrategy::kRollupWithIds
                                    : ViewStrategy::kRollup;
    }

    // Roll up: project each non-null view cell onto the kept fields.
    std::unordered_map<GroupKey, FactIdSet> fact_sets;
    for (const auto& [key, cell] : best->cells) {
      ++st->view_cells_scanned;
      GroupKey target_key;
      target_key.reserve(best_kept.size() * 4);
      bool has_null = false;
      for (size_t pos : best_kept) {
        std::string_view field(key.data() + pos * 4, 4);
        if (field == std::string_view("\xFF\xFF\xFF\xFF", 4)) {
          has_null = true;
          break;
        }
        target_key.append(field);
      }
      if (has_null) continue;
      // Dropped-axis null cells DO contribute (the fact belongs to the
      // target group even though the dropped axis was missing).
      if (best_needs_ids) {
        // Set union deduplicates facts reaching the target group from
        // several source cells (the disjointness repair, §3.6).
        fact_sets[target_key].UnionWith(cell.facts);
      } else {
        out[target_key].Merge(cell.agg);
      }
    }
    if (best_needs_ids) {
      for (auto& [key, set] : fact_sets) {
        AggregateState& agg = out[key];
        set.ForEach([&](uint32_t f) {
          agg.Update(facts_->measure(f));
          ++st->facts_scanned;
        });
      }
    }
    return out;
  }
  return Status::NotFound("no usable view for cuboid " +
                          std::to_string(target));
}

Result<std::unordered_map<GroupKey, AggregateState>> CubeViewStore::Answer(
    CuboidId target, AggregateFunction fn,
    const LatticeProperties* properties, ViewComputeStats* stats) const {
  ViewComputeStats local;
  ViewComputeStats* st = stats != nullptr ? stats : &local;
  Result<std::unordered_map<GroupKey, AggregateState>> from_views =
      AnswerFromViews(target, fn, properties, st);
  if (from_views.ok() ||
      from_views.status().code() != StatusCode::kNotFound) {
    return from_views;
  }

  std::unordered_map<GroupKey, AggregateState> out;
  {
    // Fall back to the base table (unlocked: only the immutable fact
    // table and lattice are touched).
    st->strategy = ViewStrategy::kBase;
    std::vector<size_t> present = lattice_->PresentAxes(target);
    std::vector<AxisStateId> states = lattice_->Decode(target);
    std::vector<std::vector<ValueId>> lists(present.size());
    std::vector<size_t> idx;
    std::vector<ValueId> tuple(present.size());
    for (size_t f = 0; f < facts_->size(); ++f) {
      ++st->facts_scanned;
      bool drop = false;
      for (size_t i = 0; i < present.size(); ++i) {
        facts_->AdmittedValues(present[i], f, states[present[i]], &lists[i]);
        if (lists[i].empty()) {
          drop = true;
          break;
        }
      }
      if (drop) continue;
      idx.assign(present.size(), 0);
      for (;;) {
        for (size_t i = 0; i < present.size(); ++i) {
          tuple[i] = lists[i][idx[i]];
        }
        out[PackGroupKey(tuple)].Update(facts_->measure(f));
        size_t i = 0;
        for (; i < present.size(); ++i) {
          if (++idx[i] < lists[i].size()) break;
          idx[i] = 0;
        }
        if (i == present.size()) break;
      }
    }
    return out;
  }
}

}  // namespace x3
