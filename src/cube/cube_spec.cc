#include "cube/cube_spec.h"

#include <algorithm>

#include "pattern/pattern_parser.h"
#include "pattern/twig_matcher.h"
#include "util/string_util.h"

namespace x3 {

std::string ValueTransform::Apply(std::string_view value) const {
  switch (kind) {
    case Kind::kIdentity:
      return std::string(value);
    case Kind::kPrefix:
      return std::string(value.substr(0, prefix_length));
    case Kind::kLowercase:
      return ToLowerAscii(value);
  }
  return std::string(value);
}

namespace {

/// Parses the fact path and returns (pattern, output node).
Result<ParsedPattern> ParseFactPath(const CubeQuery& query) {
  if (query.fact_path.empty()) {
    return Status::InvalidArgument("cube query has no fact path");
  }
  return ParsePattern(query.fact_path);
}

/// Builds the rigid pattern of one axis: fact tag as root plus the
/// axis path, returning the grouping node.
Result<std::pair<TreePattern, PatternNodeId>> BuildAxisPattern(
    const std::string& fact_tag, const AxisSpec& axis) {
  TreePattern pattern;
  PatternNodeId root = pattern.SetRoot(fact_tag);
  if (axis.path.empty() || axis.path[0] != '/') {
    return Status::InvalidArgument(
        "axis path must start with '/' or '//': " + axis.path);
  }
  X3_ASSIGN_OR_RETURN(std::vector<PatternNodeId> spine,
                      ParseRelativePath(axis.path, &pattern, root));
  return std::make_pair(std::move(pattern), spine.back());
}

}  // namespace

Result<CubeLattice> BuildCubeLattice(const CubeQuery& query) {
  if (query.axes.empty()) {
    return Status::InvalidArgument("cube query has no axes");
  }
  X3_ASSIGN_OR_RETURN(ParsedPattern fact, ParseFactPath(query));
  const std::string& fact_tag =
      fact.pattern.node(fact.output_node()).tag;
  std::vector<AxisLattice> axes;
  axes.reserve(query.axes.size());
  for (const AxisSpec& axis : query.axes) {
    X3_ASSIGN_OR_RETURN(auto pattern_and_grouping,
                        BuildAxisPattern(fact_tag, axis));
    X3_ASSIGN_OR_RETURN(
        AxisLattice lattice,
        AxisLattice::Build(pattern_and_grouping.first,
                           pattern_and_grouping.second, axis.relaxations,
                           axis.name));
    axes.push_back(std::move(lattice));
  }
  return CubeLattice::Build(std::move(axes));
}

namespace {

/// Distinct fact roots of `query` in `db`, ascending: the bindings of
/// the fact path's output node.
Result<std::vector<NodeId>> FindFactRoots(const ParsedPattern& fact,
                                          TwigMatcher* matcher) {
  X3_ASSIGN_OR_RETURN(std::vector<WitnessTree> fact_witnesses,
                      matcher->FindMatches(fact.pattern));
  std::vector<NodeId> fact_roots;
  fact_roots.reserve(fact_witnesses.size());
  for (const WitnessTree& w : fact_witnesses) {
    NodeId id = w.bindings[static_cast<size_t>(fact.output_node())];
    if (id != kInvalidNodeId) fact_roots.push_back(id);
  }
  std::sort(fact_roots.begin(), fact_roots.end());
  fact_roots.erase(std::unique(fact_roots.begin(), fact_roots.end()),
                   fact_roots.end());
  return fact_roots;
}

/// Appends one fact (bindings + measure) per root in `fact_roots` to
/// `*table` (no Finish). Shared by the full build and delta appends so
/// replayed batches produce byte-identical fact rows.
Status AppendFactsForRoots(const Database& db, const CubeQuery& query,
                           const CubeLattice& lattice,
                           const ParsedPattern& fact, TwigMatcher* matcher,
                           const std::vector<NodeId>& fact_roots,
                           FactTable* table) {
  // Optional measure path.
  bool has_measure = !query.measure_path.empty();
  TreePattern measure_pattern;
  PatternNodeId measure_node = kNoPatternNode;
  if (has_measure) {
    const std::string& fact_tag = fact.pattern.node(fact.output_node()).tag;
    PatternNodeId root = measure_pattern.SetRoot(fact_tag);
    X3_ASSIGN_OR_RETURN(
        std::vector<PatternNodeId> spine,
        ParseRelativePath(query.measure_path, &measure_pattern, root));
    measure_node = spine.back();
  }

  // Per axis: grouping tag id (for the candidate superset search).
  std::vector<TagId> grouping_tags(query.axes.size(), kInvalidTagId);
  for (size_t a = 0; a < query.axes.size(); ++a) {
    const AxisState& rigid = lattice.axis(a).state(0);
    const std::string& tag = rigid.pattern.node(rigid.grouping_node).tag;
    grouping_tags[a] = db.tags().Lookup(tag);
  }

  for (NodeId fact_root : fact_roots) {
    int64_t measure = 1;
    if (has_measure) {
      X3_ASSIGN_OR_RETURN(
          std::vector<WitnessTree> mw,
          matcher->FindMatchesUnder(measure_pattern, fact_root, /*limit=*/1));
      if (!mw.empty()) {
        NodeId m = mw[0].bindings[static_cast<size_t>(measure_node)];
        if (m != kInvalidNodeId) {
          X3_ASSIGN_OR_RETURN(std::string text, db.NodeValue(m));
          Result<int64_t> parsed = ParseInt64(StripWhitespace(text));
          measure = parsed.ok() ? *parsed : 0;
        }
      }
    }
    table->BeginFact(fact_root, measure);

    for (size_t a = 0; a < query.axes.size(); ++a) {
      if (grouping_tags[a] == kInvalidTagId) continue;  // tag never loaded
      X3_ASSIGN_OR_RETURN(std::vector<NodeId> candidates,
                          db.DescendantsWithTag(fact_root, grouping_tags[a]));
      const AxisLattice& axis = lattice.axis(a);
      for (NodeId candidate : candidates) {
        AxisStateMask mask = 0;
        for (AxisStateId s = 0; s < axis.num_states(); ++s) {
          const AxisState& state = axis.state(s);
          if (!state.grouping_present()) continue;
          X3_ASSIGN_OR_RETURN(
              bool embeds,
              matcher->Embeds(state.pattern,
                              {{state.pattern.root(), fact_root},
                               {state.grouping_node, candidate}}));
          if (embeds) mask |= AxisStateMask{1} << s;
        }
        if (mask == 0) continue;
        X3_ASSIGN_OR_RETURN(std::string raw, db.NodeValue(candidate));
        std::string value = query.axes[a].transform.Apply(raw);
        ValueId vid = table->InternAxisValue(a, value);
        table->AddBinding(a, mask, vid);
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<FactTable> BuildFactTable(const Database& db, const CubeQuery& query,
                                 const CubeLattice& lattice) {
  X3_ASSIGN_OR_RETURN(ParsedPattern fact, ParseFactPath(query));
  TwigMatcher matcher(&db);
  X3_ASSIGN_OR_RETURN(std::vector<NodeId> fact_roots,
                      FindFactRoots(fact, &matcher));
  FactTable table(query.axes.size());
  X3_RETURN_IF_ERROR(AppendFactsForRoots(db, query, lattice, fact, &matcher,
                                         fact_roots, &table));
  table.Finish();
  return table;
}

Result<size_t> AppendNewFacts(const Database& db, const CubeQuery& query,
                              const CubeLattice& lattice,
                              NodeId first_new_node, FactTable* table) {
  if (!table->finished()) {
    return Status::InvalidArgument("AppendNewFacts on an unfinished table");
  }
  X3_ASSIGN_OR_RETURN(ParsedPattern fact, ParseFactPath(query));
  TwigMatcher matcher(&db);
  X3_ASSIGN_OR_RETURN(std::vector<NodeId> fact_roots,
                      FindFactRoots(fact, &matcher));
  // Only roots of the new batch: NodeIds are global preorder positions,
  // so every node of a batch-loaded document is >= the pre-batch count.
  std::vector<NodeId> new_roots;
  for (NodeId root : fact_roots) {
    if (root >= first_new_node) new_roots.push_back(root);
  }
  if (new_roots.empty()) return size_t{0};
  table->ReopenForAppend();
  Status s = AppendFactsForRoots(db, query, lattice, fact, &matcher,
                                 new_roots, table);
  table->Finish();
  X3_RETURN_IF_ERROR(s);
  return new_roots.size();
}

}  // namespace x3
