#include "cube/cube_result.h"

#include <algorithm>

#include "util/env.h"
#include "util/string_util.h"

namespace x3 {

GroupKey PackGroupKey(std::span<const ValueId> values) {
  GroupKey key;
  key.resize(values.size() * 4);
  for (size_t i = 0; i < values.size(); ++i) {
    uint32_t v = values[i];
    key[i * 4 + 0] = static_cast<char>((v >> 24) & 0xFF);
    key[i * 4 + 1] = static_cast<char>((v >> 16) & 0xFF);
    key[i * 4 + 2] = static_cast<char>((v >> 8) & 0xFF);
    key[i * 4 + 3] = static_cast<char>(v & 0xFF);
  }
  return key;
}

std::vector<ValueId> UnpackGroupKey(const GroupKey& key) {
  std::vector<ValueId> values(key.size() / 4);
  for (size_t i = 0; i < values.size(); ++i) {
    auto byte = [&key](size_t j) {
      return static_cast<uint32_t>(static_cast<uint8_t>(key[j]));
    };
    values[i] = (byte(i * 4) << 24) | (byte(i * 4 + 1) << 16) |
                (byte(i * 4 + 2) << 8) | byte(i * 4 + 3);
  }
  return values;
}

CubeResult::CubeResult(uint64_t num_cuboids, AggregateFunction fn)
    : fn_(fn), cells_(num_cuboids) {}

AggregateState* CubeResult::MutableCell(CuboidId cuboid, const GroupKey& key) {
  return &cells_[cuboid][key];
}

const AggregateState* CubeResult::FindCell(CuboidId cuboid,
                                           const GroupKey& key) const {
  const auto& map = cells_[cuboid];
  auto it = map.find(key);
  return it == map.end() ? nullptr : &it->second;
}

uint64_t CubeResult::TotalCells() const {
  uint64_t total = 0;
  for (const auto& map : cells_) total += map.size();
  return total;
}

bool CubeResult::Equals(const CubeResult& other, std::string* diff) const {
  if (cells_.size() != other.cells_.size()) {
    if (diff != nullptr) {
      *diff = StringPrintf("cuboid count %zu vs %zu", cells_.size(),
                           other.cells_.size());
    }
    return false;
  }
  for (size_t c = 0; c < cells_.size(); ++c) {
    if (cells_[c].size() != other.cells_[c].size()) {
      if (diff != nullptr) {
        *diff = StringPrintf("cuboid %zu: %zu cells vs %zu", c,
                             cells_[c].size(), other.cells_[c].size());
      }
      return false;
    }
    for (const auto& [key, state] : cells_[c]) {
      auto it = other.cells_[c].find(key);
      if (it == other.cells_[c].end()) {
        if (diff != nullptr) {
          *diff = StringPrintf("cuboid %zu: missing cell", c);
        }
        return false;
      }
      if (!(state == it->second)) {
        if (diff != nullptr) {
          *diff = StringPrintf(
              "cuboid %zu: cell differs (count %lld vs %lld)", c,
              static_cast<long long>(state.count),
              static_cast<long long>(it->second.count));
        }
        return false;
      }
    }
  }
  return true;
}

XmlDocument CubeResult::ToXml(const CubeLattice& lattice,
                              const FactTable& facts) const {
  auto root = XmlNode::Element("cube");
  root->SetAttribute("function", AggregateFunctionToString(fn_));
  root->SetAttribute(
      "cuboids", StringPrintf("%zu", cells_.size()));
  for (CuboidId c = 0; c < cells_.size(); ++c) {
    XmlNode* cuboid = root->AddElement("cuboid");
    cuboid->SetAttribute("id",
                         StringPrintf("%llu",
                                      static_cast<unsigned long long>(c)));
    cuboid->SetAttribute("spec", lattice.DescribeCuboid(c));
    std::vector<size_t> present = lattice.PresentAxes(c);
    std::vector<const GroupKey*> keys;
    keys.reserve(cells_[c].size());
    for (const auto& [key, state] : cells_[c]) keys.push_back(&key);
    std::sort(keys.begin(), keys.end(),
              [](const GroupKey* a, const GroupKey* b) { return *a < *b; });
    for (const GroupKey* key : keys) {
      XmlNode* cell = cuboid->AddElement("cell");
      const AggregateState& state = cells_[c].at(*key);
      cell->SetAttribute("value", StringPrintf("%.6g", state.Value(fn_)));
      std::vector<ValueId> values = UnpackGroupKey(*key);
      for (size_t i = 0; i < present.size() && i < values.size(); ++i) {
        const std::string& axis_name =
            lattice.axis(present[i]).name().empty()
                ? StringPrintf("axis%zu", present[i])
                : lattice.axis(present[i]).name();
        cell->AddElementWithText(axis_name,
                                 facts.AxisValueName(present[i], values[i]));
      }
    }
  }
  return XmlDocument(std::move(root));
}

void CubeResult::ApplyIcebergFilter(int64_t min_count) {
  if (min_count <= 1) return;
  for (auto& map : cells_) {
    for (auto it = map.begin(); it != map.end();) {
      if (it->second.count < min_count) {
        it = map.erase(it);
      } else {
        ++it;
      }
    }
  }
}

Status CubeResult::WriteCsv(const std::string& path,
                            const CubeLattice& lattice,
                            const FactTable& facts, Env* env) const {
  SequentialFileWriter writer;
  X3_RETURN_IF_ERROR(
      writer.Open(env != nullptr ? env : Env::Default(), path));
  std::string line = "cuboid";
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    line += ",";
    line += lattice.axis(a).name().empty()
                ? StringPrintf("axis%zu", a)
                : lattice.axis(a).name();
  }
  line += ",";
  line += AggregateFunctionToString(fn_);
  line += "\n";
  X3_RETURN_IF_ERROR(writer.Append(line));
  for (CuboidId c = 0; c < cells_.size(); ++c) {
    std::vector<size_t> present = lattice.PresentAxes(c);
    // Deterministic output: sort keys.
    std::vector<const GroupKey*> keys;
    keys.reserve(cells_[c].size());
    for (const auto& [key, state] : cells_[c]) keys.push_back(&key);
    std::sort(keys.begin(), keys.end(),
              [](const GroupKey* a, const GroupKey* b) { return *a < *b; });
    for (const GroupKey* key : keys) {
      std::vector<ValueId> values = UnpackGroupKey(*key);
      line = StringPrintf("%llu", static_cast<unsigned long long>(c));
      size_t vi = 0;
      for (size_t a = 0; a < lattice.num_axes(); ++a) {
        line += ",";
        bool is_present =
            std::find(present.begin(), present.end(), a) != present.end();
        if (is_present && vi < values.size()) {
          line += facts.AxisValueName(a, values[vi++]);
        } else {
          line += "-";
        }
      }
      const AggregateState& state = cells_[c].at(*key);
      line += StringPrintf(",%.6g", state.Value(fn_));
      line += "\n";
      X3_RETURN_IF_ERROR(writer.Append(line));
    }
  }
  return writer.Close();
}

}  // namespace x3
