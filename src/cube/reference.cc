#include "cube/executor.h"
#include "util/string_util.h"

namespace x3 {
namespace internal {
namespace {

/// The correctness oracle: computes every cuboid independently by
/// scanning all facts and enumerating each fact's groups. O(cuboids *
/// facts) with no memory bound; used by tests to validate every other
/// algorithm and by small examples.
class ReferenceExecutor final : public CuboidExecutor {
 public:
  const char* name() const override { return "reference"; }

  Result<CubeResult> Execute(const CubePlan& plan, const FactTable& facts,
                             const CubeLattice& lattice,
                             const CubeComputeOptions& options,
                             ExecutionContext* ctx,
                             CubeComputeStats* stats) const override {
    CubeResult result(lattice.num_cuboids(), options.aggregate);
    std::vector<std::vector<ValueId>> scratch(lattice.num_axes());
    for (const CuboidPlanStep& step : plan.steps) {
      ScopedStageTimer timer(
          ctx->stats(),
          StringPrintf("cuboid/%llu",
                       static_cast<unsigned long long>(step.cuboid)));
      ++stats->base_scans;
      for (size_t f = 0; f < facts.size(); ++f) {
        X3_RETURN_IF_ERROR(ctx->Poll());
        int64_t measure = facts.measure(f);
        ForEachGroupOfFact(facts, lattice, step.cuboid, f, &scratch,
                           [&](const GroupKey& key) {
                             result.MutableCell(step.cuboid, key)
                                 ->Update(measure);
                           });
      }
    }
    return result;
  }
};

}  // namespace

std::unique_ptr<CuboidExecutor> MakeReferenceExecutor() {
  return std::make_unique<ReferenceExecutor>();
}

}  // namespace internal
}  // namespace x3
