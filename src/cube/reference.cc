#include "cube/algorithm.h"

namespace x3 {
namespace internal {

/// The correctness oracle: computes every cuboid independently by
/// scanning all facts and enumerating each fact's groups. O(cuboids *
/// facts) with no memory bound; used by tests to validate every other
/// algorithm and by small examples.
Result<CubeResult> ComputeReference(const FactTable& facts,
                                    const CubeLattice& lattice,
                                    const CubeComputeOptions& options,
                                    CubeComputeStats* stats) {
  CubeResult result(lattice.num_cuboids(), options.aggregate);
  std::vector<std::vector<ValueId>> scratch(lattice.num_axes());
  for (CuboidId c = 0; c < lattice.num_cuboids(); ++c) {
    ++stats->base_scans;
    for (size_t f = 0; f < facts.size(); ++f) {
      int64_t measure = facts.measure(f);
      ForEachGroupOfFact(facts, lattice, c, f, &scratch,
                         [&](const GroupKey& key) {
                           result.MutableCell(c, key)->Update(measure);
                         });
    }
  }
  return result;
}

}  // namespace internal
}  // namespace x3
