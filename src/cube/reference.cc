#include "cube/executor.h"
#include "util/string_util.h"

namespace x3 {
namespace internal {
namespace {

/// The correctness oracle: computes every cuboid independently by
/// scanning all facts and enumerating each fact's groups. O(cuboids *
/// facts) with no memory bound; used by tests to validate every other
/// algorithm and by small examples.
class ReferenceExecutor final : public CuboidExecutor {
 public:
  const char* name() const override { return "reference"; }

  Result<CubeResult> Execute(const CubePlan& plan, const FactTable& facts,
                             const CubeLattice& lattice,
                             const CubeComputeOptions& options,
                             ExecutionContext* ctx,
                             CubeComputeStats* stats) const override {
    CubeResult result(lattice.num_cuboids(), options.aggregate);
    // Every cuboid is independent here, so each plan step becomes one
    // dependency-free task. A task owns its scratch space and writes
    // only its own cuboid's cell map, so tasks share nothing mutable
    // but the (atomic) budget and the (synchronized) stats sink.
    std::vector<PlanTask> tasks;
    tasks.reserve(plan.steps.size());
    for (const CuboidPlanStep& step : plan.steps) {
      tasks.push_back(PlanTask{
          [&, step](CubeComputeStats* task_stats) -> Status {
            ScopedStageTimer timer(
                ctx->stats(),
                StringPrintf("cuboid/%llu",
                             static_cast<unsigned long long>(step.cuboid)),
                ctx->tracer());
            ++task_stats->base_scans;
            std::vector<std::vector<ValueId>> scratch(lattice.num_axes());
            for (size_t f = 0; f < facts.size(); ++f) {
              X3_RETURN_IF_ERROR(ctx->Poll());
              int64_t measure = facts.measure(f);
              ForEachGroupOfFact(facts, lattice, step.cuboid, f, &scratch,
                                 [&](const GroupKey& key) {
                                   result.MutableCell(step.cuboid, key)
                                       ->Update(measure);
                                 });
            }
            timer.AddRows(result.cuboid(step.cuboid).size());
            return Status::OK();
          },
          {}});
    }
    X3_RETURN_IF_ERROR(
        RunPlanTasks(std::move(tasks), options.parallelism, stats,
                     ctx->query_id()));
    return result;
  }
};

}  // namespace

std::unique_ptr<CuboidExecutor> MakeReferenceExecutor() {
  return std::make_unique<ReferenceExecutor>();
}

}  // namespace internal
}  // namespace x3
