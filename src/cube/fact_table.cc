#include "cube/fact_table.h"

#include <cstring>

#include "util/logging.h"
#include "util/string_util.h"

namespace x3 {

FactTable::FactTable(size_t num_axes) : num_axes_(num_axes) {
  axis_masks_.resize(num_axes);
  axis_value_cols_.resize(num_axes);
  axis_offsets_.resize(num_axes);
  axis_dicts_.resize(num_axes);
  for (size_t a = 0; a < num_axes; ++a) {
    axis_offsets_[a].push_back(0);
  }
}

void FactTable::BeginFact(uint64_t fact_id, int64_t measure) {
  X3_CHECK(!finished_) << "BeginFact after Finish";
  // Seal the previous fact's offsets.
  if (!fact_ids_.empty()) {
    for (size_t a = 0; a < num_axes_; ++a) {
      axis_offsets_[a].push_back(
          static_cast<uint32_t>(axis_masks_[a].size()));
    }
  }
  fact_ids_.push_back(fact_id);
  measures_.push_back(measure);
}

ValueId FactTable::InternAxisValue(size_t axis, std::string_view value) {
  return axis_dicts_[axis].Intern(value);
}

void FactTable::AddBinding(size_t axis, AxisStateMask mask, ValueId value) {
  X3_CHECK(!finished_) << "AddBinding after Finish";
  X3_CHECK(!fact_ids_.empty()) << "AddBinding before BeginFact";
  std::vector<ValueId>& values = axis_value_cols_[axis];
  size_t fact_start = axis_offsets_[axis].back();
  for (size_t i = fact_start; i < values.size(); ++i) {
    if (values[i] == value) {
      axis_masks_[axis][i] |= mask;  // collapse duplicates by value
      return;
    }
  }
  axis_masks_[axis].push_back(mask);
  values.push_back(value);
}

void FactTable::Finish() {
  X3_CHECK(!finished_);
  if (!fact_ids_.empty()) {
    for (size_t a = 0; a < num_axes_; ++a) {
      axis_offsets_[a].push_back(
          static_cast<uint32_t>(axis_masks_[a].size()));
    }
  }
  finished_ = true;
}

void FactTable::ReopenForAppend() {
  X3_CHECK(finished_) << "ReopenForAppend before Finish";
  // Undo Finish's sealing entries; BeginFact re-seals the last existing
  // fact exactly the same way.
  if (!fact_ids_.empty()) {
    for (size_t a = 0; a < num_axes_; ++a) {
      axis_offsets_[a].pop_back();
    }
  }
  finished_ = false;
}

FactTable FactTable::Clone() const {
  FactTable copy(num_axes_);
  copy.finished_ = finished_;
  copy.fact_ids_ = fact_ids_;
  copy.measures_ = measures_;
  copy.axis_masks_ = axis_masks_;
  copy.axis_value_cols_ = axis_value_cols_;
  copy.axis_offsets_ = axis_offsets_;
  for (size_t a = 0; a < num_axes_; ++a) {
    copy.axis_dicts_[a] = axis_dicts_[a].Clone();
  }
  return copy;
}

std::span<const AxisStateMask> FactTable::BindingMasks(size_t axis,
                                                       size_t fact) const {
  X3_DCHECK(finished_);
  uint32_t lo = axis_offsets_[axis][fact];
  uint32_t hi = axis_offsets_[axis][fact + 1];
  return std::span<const AxisStateMask>(axis_masks_[axis].data() + lo,
                                        hi - lo);
}

std::span<const ValueId> FactTable::BindingValues(size_t axis,
                                                  size_t fact) const {
  X3_DCHECK(finished_);
  uint32_t lo = axis_offsets_[axis][fact];
  uint32_t hi = axis_offsets_[axis][fact + 1];
  return std::span<const ValueId>(axis_value_cols_[axis].data() + lo,
                                  hi - lo);
}

void FactTable::AdmittedValues(size_t axis, size_t fact, AxisStateId state,
                               std::vector<ValueId>* out) const {
  out->clear();
  std::span<const AxisStateMask> masks = BindingMasks(axis, fact);
  std::span<const ValueId> values = BindingValues(axis, fact);
  for (size_t i = 0; i < masks.size(); ++i) {
    if (!AdmittedAt(masks[i], state)) continue;
    ValueId value = values[i];
    bool seen = false;
    for (ValueId v : *out) {
      if (v == value) {
        seen = true;
        break;
      }
    }
    if (!seen) out->push_back(value);
  }
}

ValueId FactTable::FirstAdmittedValue(size_t axis, size_t fact,
                                      AxisStateId state) const {
  std::span<const AxisStateMask> masks = BindingMasks(axis, fact);
  for (size_t i = 0; i < masks.size(); ++i) {
    if (AdmittedAt(masks[i], state)) return BindingValues(axis, fact)[i];
  }
  return kInvalidValueId;
}

size_t FactTable::ApproxBytes() const {
  size_t bytes = fact_ids_.size() * (sizeof(uint64_t) + sizeof(int64_t));
  for (size_t a = 0; a < num_axes_; ++a) {
    bytes += axis_masks_[a].size() * sizeof(AxisStateMask);
    bytes += axis_value_cols_[a].size() * sizeof(ValueId);
    bytes += axis_offsets_[a].size() * sizeof(uint32_t);
    for (size_t v = 0; v < axis_dicts_[a].size(); ++v) {
      bytes += axis_dicts_[a].Value(static_cast<ValueId>(v)).size() + 32;
    }
  }
  return bytes;
}

namespace {

constexpr uint32_t kFactTableMagic = 0x58334654;  // "X3FT"
/// Version 2: columnar binding storage — separate mask (uint64) and
/// value (uint32) columns instead of the v1 array-of-AxisBinding.
constexpr uint32_t kFactTableVersion = 2;

}  // namespace

Status FactTable::Save(const std::string& path, Env* env) const {
  if (!finished_) return Status::Internal("Save before Finish");
  if (env == nullptr) env = Env::Default();
  SequentialFileWriter writer;
  X3_RETURN_IF_ERROR(writer.Open(env, path));
  auto cleanup = [&](Status s) {
    Status close = writer.Close();
    if (s.ok()) s = close;
    if (!s.ok()) env->RemoveFile(path).IgnoreError();
    return s;
  };
  Status s = Status::OK();
  auto w = [&](const void* data, size_t len) {
    if (s.ok()) s = writer.Append(data, len);
  };
  uint64_t header[4] = {kFactTableMagic, kFactTableVersion,
                        static_cast<uint64_t>(num_axes_),
                        static_cast<uint64_t>(fact_ids_.size())};
  w(header, sizeof(header));
  w(fact_ids_.data(), fact_ids_.size() * sizeof(uint64_t));
  w(measures_.data(), measures_.size() * sizeof(int64_t));
  for (size_t a = 0; a < num_axes_ && s.ok(); ++a) {
    uint64_t counts[2] = {axis_masks_[a].size(), axis_dicts_[a].size()};
    w(counts, sizeof(counts));
    w(axis_offsets_[a].data(), axis_offsets_[a].size() * sizeof(uint32_t));
    w(axis_masks_[a].data(), axis_masks_[a].size() * sizeof(AxisStateMask));
    w(axis_value_cols_[a].data(),
      axis_value_cols_[a].size() * sizeof(ValueId));
    for (uint64_t i = 0; i < axis_dicts_[a].size() && s.ok(); ++i) {
      const std::string& v = axis_dicts_[a].Value(static_cast<ValueId>(i));
      uint32_t len = static_cast<uint32_t>(v.size());
      w(&len, sizeof(len));
      w(v.data(), v.size());
    }
  }
  return cleanup(s);
}

Result<FactTable> FactTable::Load(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  // All stored counts must be consistent with the file size; a
  // corrupted count must not drive a huge allocation.
  X3_ASSIGN_OR_RETURN(uint64_t file_size, env->FileSize(path));
  auto plausible = [&](uint64_t count, uint64_t unit) {
    return unit == 0 || count <= file_size / unit + 1;
  };
  SequentialFileReader reader;
  X3_RETURN_IF_ERROR(reader.Open(env, path));
  uint64_t header[4];
  X3_RETURN_IF_ERROR(reader.Read(header, sizeof(header)));
  if (header[0] != kFactTableMagic) {
    return Status::Corruption("bad fact table magic in " + path);
  }
  if (header[1] != kFactTableVersion) {
    return Status::Corruption("unsupported fact table version");
  }
  size_t num_axes = static_cast<size_t>(header[2]);
  size_t num_facts = static_cast<size_t>(header[3]);
  if (!plausible(num_axes, sizeof(uint32_t)) ||
      !plausible(num_facts, sizeof(uint64_t))) {
    return Status::Corruption("implausible counts in " + path);
  }
  FactTable table(num_axes);
  table.fact_ids_.resize(num_facts);
  table.measures_.resize(num_facts);
  X3_RETURN_IF_ERROR(
      reader.Read(table.fact_ids_.data(), num_facts * sizeof(uint64_t)));
  X3_RETURN_IF_ERROR(
      reader.Read(table.measures_.data(), num_facts * sizeof(int64_t)));
  for (size_t a = 0; a < num_axes; ++a) {
    uint64_t counts[2];
    X3_RETURN_IF_ERROR(reader.Read(counts, sizeof(counts)));
    if (!plausible(counts[0], sizeof(AxisStateMask)) ||
        !plausible(counts[1], sizeof(uint32_t))) {
      return Status::Corruption("implausible axis counts in " + path);
    }
    size_t offsets = num_facts == 0 ? 1 : num_facts + 1;
    table.axis_offsets_[a].resize(offsets);
    X3_RETURN_IF_ERROR(reader.Read(table.axis_offsets_[a].data(),
                                   offsets * sizeof(uint32_t)));
    table.axis_masks_[a].resize(counts[0]);
    X3_RETURN_IF_ERROR(reader.Read(table.axis_masks_[a].data(),
                                   counts[0] * sizeof(AxisStateMask)));
    table.axis_value_cols_[a].resize(counts[0]);
    X3_RETURN_IF_ERROR(reader.Read(table.axis_value_cols_[a].data(),
                                   counts[0] * sizeof(ValueId)));
    for (uint64_t i = 0; i < counts[1]; ++i) {
      uint32_t len = 0;
      X3_RETURN_IF_ERROR(reader.Read(&len, sizeof(len)));
      if (!plausible(len, 1)) {
        return Status::Corruption("implausible value length");
      }
      std::string v(len, '\0');
      X3_RETURN_IF_ERROR(reader.Read(v.data(), len));
      // Interning in stored order reproduces the dense id assignment.
      ValueId id = table.axis_dicts_[a].Intern(v);
      if (id != static_cast<ValueId>(i)) {
        return Status::Corruption("duplicate dictionary value in " + path);
      }
    }
  }
  X3_RETURN_IF_ERROR(reader.Close());
  table.finished_ = true;
  return table;
}

}  // namespace x3
