#include "cube/fact_table.h"

#include <cstring>

#include "util/logging.h"
#include "util/string_util.h"

namespace x3 {

FactTable::FactTable(size_t num_axes) : num_axes_(num_axes) {
  axis_bindings_.resize(num_axes);
  axis_offsets_.resize(num_axes);
  axis_values_.resize(num_axes);
  axis_value_ids_.resize(num_axes);
  for (size_t a = 0; a < num_axes; ++a) {
    axis_offsets_[a].push_back(0);
  }
}

void FactTable::BeginFact(uint64_t fact_id, int64_t measure) {
  X3_CHECK(!finished_) << "BeginFact after Finish";
  // Seal the previous fact's offsets.
  if (!fact_ids_.empty()) {
    for (size_t a = 0; a < num_axes_; ++a) {
      axis_offsets_[a].push_back(
          static_cast<uint32_t>(axis_bindings_[a].size()));
    }
  }
  fact_ids_.push_back(fact_id);
  measures_.push_back(measure);
}

ValueId FactTable::InternAxisValue(size_t axis, std::string_view value) {
  auto& ids = axis_value_ids_[axis];
  auto it = ids.find(std::string(value));
  if (it != ids.end()) return it->second;
  ValueId id = static_cast<ValueId>(axis_values_[axis].size());
  axis_values_[axis].emplace_back(value);
  ids.emplace(axis_values_[axis].back(), id);
  return id;
}

void FactTable::AddBinding(size_t axis, AxisStateMask mask, ValueId value) {
  X3_CHECK(!finished_) << "AddBinding after Finish";
  X3_CHECK(!fact_ids_.empty()) << "AddBinding before BeginFact";
  auto& bindings = axis_bindings_[axis];
  size_t fact_start = axis_offsets_[axis].back();
  for (size_t i = fact_start; i < bindings.size(); ++i) {
    if (bindings[i].value == value) {
      bindings[i].mask |= mask;  // collapse duplicates by value
      return;
    }
  }
  bindings.push_back({mask, value});
}

void FactTable::Finish() {
  X3_CHECK(!finished_);
  if (!fact_ids_.empty()) {
    for (size_t a = 0; a < num_axes_; ++a) {
      axis_offsets_[a].push_back(
          static_cast<uint32_t>(axis_bindings_[a].size()));
    }
  }
  finished_ = true;
}

std::span<const AxisBinding> FactTable::bindings(size_t axis,
                                                 size_t fact) const {
  X3_DCHECK(finished_);
  uint32_t lo = axis_offsets_[axis][fact];
  uint32_t hi = axis_offsets_[axis][fact + 1];
  return std::span<const AxisBinding>(axis_bindings_[axis].data() + lo,
                                      hi - lo);
}

void FactTable::AdmittedValues(size_t axis, size_t fact, AxisStateId state,
                               std::vector<ValueId>* out) const {
  out->clear();
  for (const AxisBinding& b : bindings(axis, fact)) {
    if (!b.AdmittedAt(state)) continue;
    bool seen = false;
    for (ValueId v : *out) {
      if (v == b.value) {
        seen = true;
        break;
      }
    }
    if (!seen) out->push_back(b.value);
  }
}

ValueId FactTable::FirstAdmittedValue(size_t axis, size_t fact,
                                      AxisStateId state) const {
  for (const AxisBinding& b : bindings(axis, fact)) {
    if (b.AdmittedAt(state)) return b.value;
  }
  return kInvalidValueId;
}

size_t FactTable::ApproxBytes() const {
  size_t bytes = fact_ids_.size() * (sizeof(uint64_t) + sizeof(int64_t));
  for (size_t a = 0; a < num_axes_; ++a) {
    bytes += axis_bindings_[a].size() * sizeof(AxisBinding);
    bytes += axis_offsets_[a].size() * sizeof(uint32_t);
    for (const std::string& v : axis_values_[a]) bytes += v.size() + 32;
  }
  return bytes;
}

namespace {

constexpr uint32_t kFactTableMagic = 0x58334654;  // "X3FT"
constexpr uint32_t kFactTableVersion = 1;

}  // namespace

Status FactTable::Save(const std::string& path, Env* env) const {
  if (!finished_) return Status::Internal("Save before Finish");
  if (env == nullptr) env = Env::Default();
  SequentialFileWriter writer;
  X3_RETURN_IF_ERROR(writer.Open(env, path));
  auto cleanup = [&](Status s) {
    Status close = writer.Close();
    if (s.ok()) s = close;
    if (!s.ok()) env->RemoveFile(path).IgnoreError();
    return s;
  };
  Status s = Status::OK();
  auto w = [&](const void* data, size_t len) {
    if (s.ok()) s = writer.Append(data, len);
  };
  uint64_t header[4] = {kFactTableMagic, kFactTableVersion,
                        static_cast<uint64_t>(num_axes_),
                        static_cast<uint64_t>(fact_ids_.size())};
  w(header, sizeof(header));
  w(fact_ids_.data(), fact_ids_.size() * sizeof(uint64_t));
  w(measures_.data(), measures_.size() * sizeof(int64_t));
  for (size_t a = 0; a < num_axes_ && s.ok(); ++a) {
    uint64_t counts[2] = {axis_bindings_[a].size(), axis_values_[a].size()};
    w(counts, sizeof(counts));
    w(axis_offsets_[a].data(), axis_offsets_[a].size() * sizeof(uint32_t));
    w(axis_bindings_[a].data(),
      axis_bindings_[a].size() * sizeof(AxisBinding));
    for (const std::string& v : axis_values_[a]) {
      uint32_t len = static_cast<uint32_t>(v.size());
      w(&len, sizeof(len));
      w(v.data(), v.size());
    }
  }
  return cleanup(s);
}

Result<FactTable> FactTable::Load(const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  // All stored counts must be consistent with the file size; a
  // corrupted count must not drive a huge allocation.
  X3_ASSIGN_OR_RETURN(uint64_t file_size, env->FileSize(path));
  auto plausible = [&](uint64_t count, uint64_t unit) {
    return unit == 0 || count <= file_size / unit + 1;
  };
  SequentialFileReader reader;
  X3_RETURN_IF_ERROR(reader.Open(env, path));
  uint64_t header[4];
  X3_RETURN_IF_ERROR(reader.Read(header, sizeof(header)));
  if (header[0] != kFactTableMagic) {
    return Status::Corruption("bad fact table magic in " + path);
  }
  if (header[1] != kFactTableVersion) {
    return Status::Corruption("unsupported fact table version");
  }
  size_t num_axes = static_cast<size_t>(header[2]);
  size_t num_facts = static_cast<size_t>(header[3]);
  if (!plausible(num_axes, sizeof(uint32_t)) ||
      !plausible(num_facts, sizeof(uint64_t))) {
    return Status::Corruption("implausible counts in " + path);
  }
  FactTable table(num_axes);
  table.fact_ids_.resize(num_facts);
  table.measures_.resize(num_facts);
  X3_RETURN_IF_ERROR(
      reader.Read(table.fact_ids_.data(), num_facts * sizeof(uint64_t)));
  X3_RETURN_IF_ERROR(
      reader.Read(table.measures_.data(), num_facts * sizeof(int64_t)));
  for (size_t a = 0; a < num_axes; ++a) {
    uint64_t counts[2];
    X3_RETURN_IF_ERROR(reader.Read(counts, sizeof(counts)));
    if (!plausible(counts[0], sizeof(AxisBinding)) ||
        !plausible(counts[1], sizeof(uint32_t))) {
      return Status::Corruption("implausible axis counts in " + path);
    }
    size_t offsets = num_facts == 0 ? 1 : num_facts + 1;
    table.axis_offsets_[a].resize(offsets);
    X3_RETURN_IF_ERROR(reader.Read(table.axis_offsets_[a].data(),
                                   offsets * sizeof(uint32_t)));
    table.axis_bindings_[a].resize(counts[0]);
    X3_RETURN_IF_ERROR(reader.Read(table.axis_bindings_[a].data(),
                                   counts[0] * sizeof(AxisBinding)));
    table.axis_values_[a].reserve(counts[1]);
    for (uint64_t i = 0; i < counts[1]; ++i) {
      uint32_t len = 0;
      X3_RETURN_IF_ERROR(reader.Read(&len, sizeof(len)));
      if (!plausible(len, 1)) {
        return Status::Corruption("implausible value length");
      }
      std::string v(len, '\0');
      X3_RETURN_IF_ERROR(reader.Read(v.data(), len));
      table.axis_value_ids_[a].emplace(v, static_cast<ValueId>(i));
      table.axis_values_[a].push_back(std::move(v));
    }
  }
  X3_RETURN_IF_ERROR(reader.Close());
  table.finished_ = true;
  return table;
}

}  // namespace x3
