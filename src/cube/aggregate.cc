#include "cube/aggregate.h"

#include "util/string_util.h"

namespace x3 {

const char* AggregateFunctionToString(AggregateFunction fn) {
  switch (fn) {
    case AggregateFunction::kCount:
      return "COUNT";
    case AggregateFunction::kSum:
      return "SUM";
    case AggregateFunction::kMin:
      return "MIN";
    case AggregateFunction::kMax:
      return "MAX";
    case AggregateFunction::kAvg:
      return "AVG";
  }
  return "?";
}

Result<AggregateFunction> ParseAggregateFunction(std::string_view name) {
  std::string upper;
  upper.reserve(name.size());
  for (char c : name) {
    upper += (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
  }
  if (upper == "COUNT") return AggregateFunction::kCount;
  if (upper == "SUM") return AggregateFunction::kSum;
  if (upper == "MIN") return AggregateFunction::kMin;
  if (upper == "MAX") return AggregateFunction::kMax;
  if (upper == "AVG") return AggregateFunction::kAvg;
  return Status::InvalidArgument("unknown aggregate function: " +
                                 std::string(name));
}

double AggregateState::Value(AggregateFunction fn) const {
  switch (fn) {
    case AggregateFunction::kCount:
      return static_cast<double>(count);
    case AggregateFunction::kSum:
      return static_cast<double>(sum);
    case AggregateFunction::kMin:
      return count == 0 ? 0.0 : static_cast<double>(min);
    case AggregateFunction::kMax:
      return count == 0 ? 0.0 : static_cast<double>(max);
    case AggregateFunction::kAvg:
      return count == 0 ? 0.0
                        : static_cast<double>(sum) /
                              static_cast<double>(count);
  }
  return 0.0;
}

}  // namespace x3
