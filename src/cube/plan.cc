#include "cube/plan.h"

#include <algorithm>
#include <unordered_map>

#include "cube/algorithm.h"
#include "cube/cube_result.h"
#include "util/exec.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace x3 {
namespace internal {

std::optional<LatticeEdge> EdgeBetween(const CubeLattice& lattice, CuboidId p,
                                       CuboidId c) {
  std::optional<LatticeEdge> info;
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    AxisStateId sp = lattice.StateOf(p, a);
    AxisStateId sc = lattice.StateOf(c, a);
    if (sp == sc) continue;
    if (info.has_value()) return std::nullopt;  // differs in 2+ axes
    info = LatticeEdge{a, sp, sc,
                       !lattice.axis(a).state(sc).grouping_present()};
  }
  return info;
}

bool EdgeRollupSafe(const LatticeProperties& props, const LatticeEdge& edge) {
  if (edge.to_absent) {
    const SummarizabilityFlags& f = props.At(edge.axis, edge.from_state);
    return f.disjoint && f.covered;
  }
  return props.At(edge.axis, edge.from_state).covered &&
         props.At(edge.axis, edge.to_state).disjoint;
}

}  // namespace internal

namespace {

using internal::EdgeBetween;
using internal::EdgeRollupSafe;
using internal::LatticeEdge;

/// Signature of a cuboid: its present axes with their states.
std::vector<std::pair<size_t, AxisStateId>> SignatureOf(
    const CubeLattice& lattice, CuboidId cuboid) {
  std::vector<std::pair<size_t, AxisStateId>> sig;
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    AxisStateId s = lattice.StateOf(cuboid, a);
    if (lattice.axis(a).state(s).grouping_present()) {
      sig.emplace_back(a, s);
    }
  }
  return sig;
}

/// The cuboid obtained by keeping the first `k` signature entries and
/// setting every other axis to its absent state; nullopt when an axis
/// outside the prefix has no absent state.
std::optional<CuboidId> PrefixCuboid(
    const CubeLattice& lattice,
    const std::vector<std::pair<size_t, AxisStateId>>& signature, size_t k) {
  std::vector<AxisStateId> states(lattice.num_axes());
  std::vector<bool> in_prefix(lattice.num_axes(), false);
  for (size_t i = 0; i < k; ++i) {
    states[signature[i].first] = signature[i].second;
    in_prefix[signature[i].first] = true;
  }
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    if (in_prefix[a]) continue;
    std::optional<AxisStateId> absent = lattice.axis(a).absent_state();
    if (!absent.has_value()) return std::nullopt;
    states[a] = *absent;
  }
  return lattice.Encode(states);
}

/// Greedy pipe cover: repeatedly take the largest uncovered cuboid and
/// let one sort in a well-chosen axis order serve a whole chain of
/// prefix cuboids. This is the PipeSort/MemoryCube-style sort sharing
/// that disjointness unlocks (one record per fact, prefix aggregation
/// from base).
///
/// The axis order within a pipe matters: prefixes of the sort order are
/// the cuboids the pipe computes for free, so we build the order
/// back-to-front, at each level preferring to drop an axis whose
/// remaining subset is still uncovered (a greedy symmetric-chain
/// decomposition; for a d-dimensional LND lattice this yields about
/// C(d, d/2) pipes instead of one sort per cuboid).
std::vector<CubePlanPipe> BuildPipes(const CubeLattice& lattice) {
  std::vector<CuboidId> order(lattice.num_cuboids());
  for (CuboidId c = 0; c < lattice.num_cuboids(); ++c) order[c] = c;
  std::stable_sort(order.begin(), order.end(), [&](CuboidId a, CuboidId b) {
    return SignatureOf(lattice, a).size() > SignatureOf(lattice, b).size();
  });
  std::vector<bool> covered(lattice.num_cuboids(), false);
  std::vector<CubePlanPipe> pipes;
  for (CuboidId c : order) {
    if (covered[c]) continue;
    std::vector<std::pair<size_t, AxisStateId>> remaining =
        SignatureOf(lattice, c);
    // Build the sort order back to front: the axis dropped first comes
    // last in the sort order.
    std::vector<std::pair<size_t, AxisStateId>> sort_order(remaining.size());
    size_t fill = remaining.size();
    while (!remaining.empty()) {
      size_t choice = 0;
      for (size_t i = 0; i < remaining.size(); ++i) {
        std::vector<std::pair<size_t, AxisStateId>> without = remaining;
        without.erase(without.begin() + static_cast<ptrdiff_t>(i));
        // Does dropping axis i leave an uncovered, constructible cuboid?
        std::optional<CuboidId> sub =
            PrefixCuboid(lattice, without, without.size());
        if (sub.has_value() && !covered[*sub]) {
          choice = i;
          break;
        }
      }
      sort_order[--fill] = remaining[choice];
      remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(choice));
    }
    CubePlanPipe pipe;
    pipe.sort_order = std::move(sort_order);
    for (size_t k = pipe.sort_order.size() + 1; k-- > 0;) {
      std::optional<CuboidId> prefix =
          PrefixCuboid(lattice, pipe.sort_order, k);
      if (!prefix.has_value()) continue;
      if (k < pipe.sort_order.size() && covered[*prefix]) continue;
      covered[*prefix] = true;
      pipe.covered.emplace_back(k, *prefix);
    }
    pipes.push_back(std::move(pipe));
  }
  return pipes;
}

/// One step per cuboid in natural order, all with the same kind and
/// safety — the shape of the scan-everything families.
void UniformSteps(const CubeLattice& lattice, CuboidPlanStep::Kind kind,
                  CubePlan* plan) {
  plan->steps.reserve(lattice.num_cuboids());
  for (CuboidId c = 0; c < lattice.num_cuboids(); ++c) {
    CuboidPlanStep step;
    step.cuboid = c;
    step.kind = kind;
    plan->steps.push_back(step);
  }
}

void PlanBottomUp(CubeAlgorithm algo, const CubeLattice& lattice,
                  const LatticeProperties& properties, CubePlan* plan) {
  plan->steps.reserve(lattice.num_cuboids());
  for (CuboidId c = 0; c < lattice.num_cuboids(); ++c) {
    CuboidPlanStep step;
    step.cuboid = c;
    step.kind = CuboidPlanStep::Kind::kPartitionRecurse;
    // BUCOPT takes the no-duplicate-tracking fast path at every present
    // axis; the cuboid is exact only where the property map proves all
    // of them disjoint. BUC and BUCCUST never guess.
    step.safe = algo != CubeAlgorithm::kBUCOpt ||
                properties.ForCuboid(lattice, c).disjoint;
    plan->steps.push_back(step);
  }
}

void PlanSharedSort(const CubeLattice& lattice,
                    const LatticeProperties& properties, CubePlan* plan) {
  plan->pipes = BuildPipes(lattice);
  for (size_t p = 0; p < plan->pipes.size(); ++p) {
    for (const auto& [prefix_len, cuboid] : plan->pipes[p].covered) {
      (void)prefix_len;
      CuboidPlanStep step;
      step.cuboid = cuboid;
      step.kind = CuboidPlanStep::Kind::kSharedSort;
      step.source = static_cast<CuboidId>(p);
      // One record per fact (first admitted value only): exact only
      // where every present axis is disjoint.
      step.safe = properties.ForCuboid(lattice, cuboid).disjoint;
      plan->steps.push_back(step);
    }
  }
}

void PlanRollupAll(const CubeLattice& lattice,
                   const LatticeProperties& properties, CubePlan* plan) {
  std::vector<CuboidId> topo = lattice.TopoOrder();
  X3_CHECK(!topo.empty() && topo.front() == lattice.FinestCuboid());
  // Safety is transitive: a roll-up is only exact when its edge is safe
  // AND its source cuboid was exact.
  std::vector<bool> safe(lattice.num_cuboids(), false);
  plan->steps.reserve(topo.size());
  {
    CuboidPlanStep step;
    step.cuboid = topo.front();
    step.kind = CuboidPlanStep::Kind::kBaseNoIds;
    step.safe = properties.ForCuboid(lattice, step.cuboid).disjoint;
    safe[step.cuboid] = step.safe;
    plan->steps.push_back(step);
  }
  for (size_t i = 1; i < topo.size(); ++i) {
    CuboidId c = topo[i];
    std::vector<CuboidId> parents = lattice.LessRelaxedNeighbors(c);
    X3_CHECK(!parents.empty());
    CuboidId p = parents.front();
    std::optional<LatticeEdge> edge = EdgeBetween(lattice, p, c);
    X3_CHECK(edge.has_value());
    CuboidPlanStep step;
    step.cuboid = c;
    step.kind = edge->to_absent ? CuboidPlanStep::Kind::kRollup
                                : CuboidPlanStep::Kind::kCopy;
    step.source = p;
    step.safe = safe[p] && EdgeRollupSafe(properties, *edge);
    safe[c] = step.safe;
    plan->steps.push_back(step);
  }
}

void PlanCustom(const CubeLattice& lattice,
                const LatticeProperties& properties, CubePlan* plan) {
  std::vector<CuboidId> topo = lattice.TopoOrder();
  plan->steps.reserve(topo.size());
  for (size_t i = 0; i < topo.size(); ++i) {
    CuboidId c = topo[i];
    CuboidPlanStep step;
    step.cuboid = c;
    bool rolled = false;
    if (i > 0) {
      for (CuboidId p : lattice.LessRelaxedNeighbors(c)) {
        std::optional<LatticeEdge> edge = EdgeBetween(lattice, p, c);
        if (!edge.has_value()) continue;
        if (EdgeRollupSafe(properties, *edge)) {
          step.kind = edge->to_absent ? CuboidPlanStep::Kind::kRollup
                                      : CuboidPlanStep::Kind::kCopy;
          step.source = p;
          rolled = true;
          break;
        }
      }
    }
    if (!rolled) {
      step.kind = properties.ForCuboid(lattice, c).disjoint
                      ? CuboidPlanStep::Kind::kBaseNoIds
                      : CuboidPlanStep::Kind::kBaseWithIds;
    }
    plan->steps.push_back(step);
  }
}

/// The step line shared by ExplainCubePlan and ExplainCustomTopDown.
/// The per-kind phrases are golden-tested; change them deliberately.
/// A non-empty `annotation` (EXPLAIN ANALYZE actuals) is appended
/// before the newline.
std::string RenderStep(const CuboidPlanStep& step, const CubeLattice& lattice,
                       const std::string& annotation = {}) {
  std::string out =
      StringPrintf("cuboid %4llu %s  <- ",
                   static_cast<unsigned long long>(step.cuboid),
                   lattice.DescribeCuboid(step.cuboid).c_str());
  switch (step.kind) {
    case CuboidPlanStep::Kind::kBaseWithIds:
      out += "base scan + sort (fact ids retained: disjointness unproven)";
      break;
    case CuboidPlanStep::Kind::kBaseNoIds:
      out += "base scan + sort (no fact ids: disjoint)";
      break;
    case CuboidPlanStep::Kind::kRollup:
      out += StringPrintf(
          "roll-up from cuboid %llu (dropped axis disjoint+covered)",
          static_cast<unsigned long long>(step.source));
      break;
    case CuboidPlanStep::Kind::kCopy:
      out += StringPrintf(
          "copy of cuboid %llu (structural edge with equal bindings)",
          static_cast<unsigned long long>(step.source));
      break;
    case CuboidPlanStep::Kind::kHashAggregate:
      out += "hash aggregation over the shared base scan";
      break;
    case CuboidPlanStep::Kind::kPartitionRecurse:
      out += "bottom-up partition recursion";
      break;
    case CuboidPlanStep::Kind::kSharedSort:
      out += StringPrintf("prefix aggregation of shared-sort pipe %llu",
                          static_cast<unsigned long long>(step.source));
      break;
  }
  if (!step.safe) out += "  [UNSAFE: assumption unproven here]";
  if (!annotation.empty()) out += "  " + annotation;
  out += "\n";
  return out;
}

/// The pipe header line shared by both plan renderers (no newline).
std::string RenderPipe(size_t p, const CubePlanPipe& pipe,
                       const CubeLattice& lattice) {
  std::string out = StringPrintf("pipe %4zu sort order:", p);
  for (const auto& [axis, state] : pipe.sort_order) {
    out += StringPrintf(" %s@%u", lattice.axis(axis).name().c_str(),
                        static_cast<unsigned>(state));
  }
  out += StringPrintf("  (serves %zu cuboids)", pipe.covered.size());
  return out;
}

/// "[actual 1.2 ms, rows 34, spilled 56 bytes]" for one executed step,
/// from the stage labels the executors record into the sink. Empty when
/// the step's stage was never recorded (a sink from a different run).
std::string StepActuals(const CuboidPlanStep& step, const StatsSink& stats,
                        const CubeResult& result) {
  const unsigned long long cells =
      static_cast<unsigned long long>(result.cuboid(step.cuboid).size());
  switch (step.kind) {
    case CuboidPlanStep::Kind::kBaseWithIds:
    case CuboidPlanStep::Kind::kBaseNoIds:
    case CuboidPlanStep::Kind::kRollup:
    case CuboidPlanStep::Kind::kCopy: {
      std::optional<StageTiming> t = stats.Find(
          StringPrintf("cuboid/%llu",
                       static_cast<unsigned long long>(step.cuboid)));
      if (!t.has_value()) return {};
      std::string out =
          StringPrintf("[actual %.3f ms, rows %llu", t->seconds * 1e3, cells);
      if (t->bytes > 0) {
        out += StringPrintf(", spilled %llu bytes",
                            static_cast<unsigned long long>(t->bytes));
      }
      return out + "]";
    }
    case CuboidPlanStep::Kind::kSharedSort: {
      // Cells come from the pipe's shared sort; point at its timing.
      std::optional<StageTiming> t = stats.Find(
          StringPrintf("pipe/%llu",
                       static_cast<unsigned long long>(step.source)));
      if (!t.has_value()) return {};
      return StringPrintf("[rows %llu, from pipe %llu: actual %.3f ms]",
                          cells,
                          static_cast<unsigned long long>(step.source),
                          t->seconds * 1e3);
    }
    case CuboidPlanStep::Kind::kHashAggregate: {
      // The reference executor times each cuboid individually; prefer
      // that exact stage when present.
      std::optional<StageTiming> per_cuboid = stats.Find(
          StringPrintf("cuboid/%llu",
                       static_cast<unsigned long long>(step.cuboid)));
      if (per_cuboid.has_value()) {
        return StringPrintf("[actual %.3f ms, rows %llu]",
                            per_cuboid->seconds * 1e3, cells);
      }
      // The counter family's passes are shared across cuboids; report
      // the shared scan cost beside each cuboid's own row count.
      size_t passes = stats.CountStages("pass");
      if (passes == 0) return {};
      return StringPrintf(
          "[rows %llu, shared scan %.3f ms across %zu pass(es)]", cells,
          stats.TotalSeconds("pass") * 1e3, passes);
    }
    case CuboidPlanStep::Kind::kPartitionRecurse: {
      // One recursive walk emits every cuboid; its total is the shared
      // cost beside each cuboid's own row count.
      std::optional<StageTiming> t = stats.Find("partition-walk");
      if (!t.has_value()) return {};
      return StringPrintf("[rows %llu, partition walk %.3f ms total]", cells,
                          t->seconds * 1e3);
    }
  }
  return {};
}

}  // namespace

const char* CuboidPlanStepKindToString(CuboidPlanStep::Kind kind) {
  switch (kind) {
    case CuboidPlanStep::Kind::kBaseWithIds:
      return "base+ids";
    case CuboidPlanStep::Kind::kBaseNoIds:
      return "base";
    case CuboidPlanStep::Kind::kRollup:
      return "rollup";
    case CuboidPlanStep::Kind::kCopy:
      return "copy";
    case CuboidPlanStep::Kind::kHashAggregate:
      return "hash";
    case CuboidPlanStep::Kind::kPartitionRecurse:
      return "partition";
    case CuboidPlanStep::Kind::kSharedSort:
      return "shared-sort";
  }
  return "?";
}

CubePlan BuildCubePlan(CubeAlgorithm algo, const CubeLattice& lattice,
                       const LatticeProperties& properties) {
  CubePlan plan;
  plan.algorithm = algo;
  // Planning-time dispatch; the execution hot path goes through the
  // CuboidExecutor registry instead.
  switch (algo) {
    case CubeAlgorithm::kReference:
    case CubeAlgorithm::kCounter:
      UniformSteps(lattice, CuboidPlanStep::Kind::kHashAggregate, &plan);
      break;
    case CubeAlgorithm::kBUC:
    case CubeAlgorithm::kBUCOpt:
    case CubeAlgorithm::kBUCCust:
      PlanBottomUp(algo, lattice, properties, &plan);
      break;
    case CubeAlgorithm::kTD:
      UniformSteps(lattice, CuboidPlanStep::Kind::kBaseWithIds, &plan);
      break;
    case CubeAlgorithm::kTDOpt:
      PlanSharedSort(lattice, properties, &plan);
      break;
    case CubeAlgorithm::kTDOptAll:
      PlanRollupAll(lattice, properties, &plan);
      break;
    case CubeAlgorithm::kTDCust:
      PlanCustom(lattice, properties, &plan);
      break;
  }
  for (const CuboidPlanStep& step : plan.steps) {
    if (!step.safe) ++plan.unsafe_steps;
  }
  return plan;
}

std::vector<std::vector<size_t>> PlanStepDependencies(const CubePlan& plan) {
  const size_t num_pipes = plan.pipes.size();
  std::vector<std::vector<size_t>> deps(num_pipes + plan.steps.size());
  // Producer task of each cuboid, filled as steps are walked; steps are
  // in dependency order, so a reader always finds its source here.
  std::unordered_map<CuboidId, size_t> producer;
  producer.reserve(plan.steps.size());
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const CuboidPlanStep& step = plan.steps[i];
    const size_t task = num_pipes + i;
    switch (step.kind) {
      case CuboidPlanStep::Kind::kSharedSort:
        X3_CHECK(static_cast<size_t>(step.source) < num_pipes);
        deps[task].push_back(static_cast<size_t>(step.source));
        break;
      case CuboidPlanStep::Kind::kRollup:
      case CuboidPlanStep::Kind::kCopy: {
        auto it = producer.find(step.source);
        X3_CHECK(it != producer.end());
        deps[task].push_back(it->second);
        break;
      }
      default:
        break;
    }
    producer[step.cuboid] = task;
  }
  return deps;
}

std::string ExplainCubePlan(const CubePlan& plan,
                            const CubeLattice& lattice) {
  std::string out = StringPrintf(
      "%s: %zu cuboid(s), %zu pipe(s), %zu unsafe step(s)\n",
      CubeAlgorithmToString(plan.algorithm), plan.steps.size(),
      plan.pipes.size(), plan.unsafe_steps);
  for (size_t p = 0; p < plan.pipes.size(); ++p) {
    out += RenderPipe(p, plan.pipes[p], lattice);
    out += "\n";
  }
  for (const CuboidPlanStep& step : plan.steps) {
    out += RenderStep(step, lattice);
  }
  return out;
}

std::string ExplainCubePlanWithActuals(const CubePlan& plan,
                                       const CubeLattice& lattice,
                                       const StatsSink& stats,
                                       const CubeResult& result) {
  std::string out = StringPrintf(
      "%s: %zu cuboid(s), %zu pipe(s), %zu unsafe step(s)",
      CubeAlgorithmToString(plan.algorithm), plan.steps.size(),
      plan.pipes.size(), plan.unsafe_steps);
  std::optional<StageTiming> plan_t = stats.Find("plan");
  std::optional<StageTiming> compute_t = stats.Find("compute");
  if (compute_t.has_value()) {
    out += StringPrintf(
        "; plan %.3f ms, compute %.3f ms, %llu cells",
        (plan_t.has_value() ? plan_t->seconds : 0.0) * 1e3,
        compute_t->seconds * 1e3,
        static_cast<unsigned long long>(result.TotalCells()));
  }
  out += "\n";
  for (size_t p = 0; p < plan.pipes.size(); ++p) {
    out += RenderPipe(p, plan.pipes[p], lattice);
    std::optional<StageTiming> t =
        stats.Find(StringPrintf("pipe/%zu", p));
    if (t.has_value()) {
      out += StringPrintf("  [actual %.3f ms, rows %llu",
                          t->seconds * 1e3,
                          static_cast<unsigned long long>(t->rows));
      if (t->bytes > 0) {
        out += StringPrintf(", spilled %llu bytes",
                            static_cast<unsigned long long>(t->bytes));
      }
      out += "]";
    }
    out += "\n";
  }
  for (const CuboidPlanStep& step : plan.steps) {
    out += RenderStep(step, lattice, StepActuals(step, stats, result));
  }
  return out;
}

std::vector<CuboidPlanStep> PlanCustomTopDown(
    const CubeLattice& lattice, const LatticeProperties& properties) {
  return BuildCubePlan(CubeAlgorithm::kTDCust, lattice, properties).steps;
}

std::string ExplainCustomTopDown(const CubeLattice& lattice,
                                 const LatticeProperties& properties) {
  std::string out;
  for (const CuboidPlanStep& step : PlanCustomTopDown(lattice, properties)) {
    out += RenderStep(step, lattice);
  }
  return out;
}

}  // namespace x3
