#ifndef X3_CUBE_DELTA_H_
#define X3_CUBE_DELTA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cube/fact_table.h"
#include "cube/view_store.h"
#include "relax/cube_lattice.h"
#include "schema/summarizability.h"
#include "util/result.h"

namespace x3 {

/// How one materialized view absorbs a committed fact batch.
enum class DeltaAction : uint8_t {
  /// The view carries fact ids: folding the delta facts in is always
  /// exact (ids keep later roll-ups sound no matter what the new facts
  /// look like).
  kMergeWithIds,
  /// Id-less view, but summarizability proves the merge safe: the axis
  /// properties are disjoint+covered at every present state AND every
  /// delta fact binds exactly one value there, so the stored
  /// LatticeProperties remain truthful after the patch.
  kMerge,
  /// The delta breaks (or may break) a property the id-less view's
  /// downstream roll-ups rely on: re-materialize from scratch, with
  /// fact ids, so the upgraded view is safe regardless.
  kRecompute,
};

const char* DeltaActionToString(DeltaAction action);

/// One materialized view's entry in a delta plan.
struct ViewDeltaStep {
  CuboidId cuboid = 0;
  DeltaAction action = DeltaAction::kRecompute;
  /// Why kRecompute was chosen (empty for the merge actions) — this is
  /// what EXPLAIN surfaces so operators can see which views pay the
  /// full rebuild.
  std::string reason;
};

/// The maintenance plan for folding facts [first_new_fact, size) of a
/// re-finished fact table into a view store's materialized views.
struct DeltaPlan {
  size_t first_new_fact = 0;
  size_t new_facts = 0;
  std::vector<ViewDeltaStep> steps;
};

/// Counters filled by ApplyViewDeltas.
struct DeltaStats {
  uint64_t views_patched = 0;
  uint64_t views_recomputed = 0;
  uint64_t facts_applied = 0;
  uint64_t cells_touched = 0;
};

/// Plans the maintenance of `store`'s materialized views after `facts`
/// grew by the batch starting at fact index `first_new_fact`. `facts`
/// must already contain the appended batch (finished). Per view:
/// kMergeWithIds when the view tracks fact ids; kMerge when
/// summarizability (old properties + per-delta-fact check) proves an
/// id-less fold safe; kRecompute otherwise, with the disqualifying
/// reason recorded.
DeltaPlan PlanViewDeltas(const CubeViewStore& store, const FactTable& facts,
                         const CubeLattice& lattice,
                         const LatticeProperties& properties,
                         size_t first_new_fact);

/// Human-readable rendering of a delta plan, one line per view, using
/// the lattice's cuboid descriptions (the EXPLAIN surface: delta vs
/// recompute per view).
std::string ExplainDeltaPlan(const DeltaPlan& plan,
                             const CubeLattice& lattice);

/// Executes `plan` against `target`, whose fact table must be the
/// appended one the plan was computed over. Merge steps clone the view
/// from `source` (skipped when `source` and `target` are the same
/// store — in-place maintenance) and fold the delta facts in; recompute
/// steps re-materialize with fact ids. `stats` (optional) accumulates
/// counters; x3_delta_* metrics are bumped either way.
Status ApplyViewDeltas(const CubeViewStore& source, CubeViewStore* target,
                       const DeltaPlan& plan, DeltaStats* stats = nullptr);

}  // namespace x3

#endif  // X3_CUBE_DELTA_H_
