#include "cube/executor.h"

#include <utility>

#include "util/logging.h"

namespace x3 {

Status CuboidExecutorRegistry::Register(
    CubeAlgorithm algo, std::unique_ptr<CuboidExecutor> executor) {
  if (executor == nullptr) {
    return Status::InvalidArgument("null executor");
  }
  auto [it, inserted] = executors_.emplace(algo, std::move(executor));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists(
        std::string("executor already registered for ") +
        CubeAlgorithmToString(algo));
  }
  return Status::OK();
}

const CuboidExecutor* CuboidExecutorRegistry::Find(CubeAlgorithm algo) const {
  auto it = executors_.find(algo);
  return it == executors_.end() ? nullptr : it->second.get();
}

std::vector<CubeAlgorithm> CuboidExecutorRegistry::Algorithms() const {
  std::vector<CubeAlgorithm> out;
  out.reserve(executors_.size());
  for (const auto& [algo, executor] : executors_) {
    (void)executor;
    out.push_back(algo);
  }
  return out;
}

CuboidExecutorRegistry& GlobalCuboidExecutorRegistry() {
  static CuboidExecutorRegistry registry;
  static bool seeded = [] {
    auto add = [](CubeAlgorithm algo,
                  std::unique_ptr<CuboidExecutor> executor) {
      Status s = registry.Register(algo, std::move(executor));
      X3_CHECK(s.ok()) << s;
    };
    add(CubeAlgorithm::kReference, internal::MakeReferenceExecutor());
    add(CubeAlgorithm::kCounter, internal::MakeCounterExecutor());
    add(CubeAlgorithm::kBUC, internal::MakeBottomUpExecutor());
    add(CubeAlgorithm::kBUCOpt, internal::MakeBottomUpExecutor());
    add(CubeAlgorithm::kBUCCust, internal::MakeBottomUpExecutor());
    add(CubeAlgorithm::kTD, internal::MakeTopDownExecutor());
    add(CubeAlgorithm::kTDOpt, internal::MakeTopDownExecutor());
    add(CubeAlgorithm::kTDOptAll, internal::MakeTopDownExecutor());
    add(CubeAlgorithm::kTDCust, internal::MakeTopDownExecutor());
    return true;
  }();
  (void)seeded;
  return registry;
}

}  // namespace x3
