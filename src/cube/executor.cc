#include "cube/executor.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/query_id.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace x3 {

namespace {

Counter& PlanTasksCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_cube_plan_tasks_total",
      "Plan tasks (pipes, cuboid steps) executed by the cube executor");
  return *c;
}

}  // namespace

Status RunPlanTasks(std::vector<PlanTask> tasks, size_t parallelism,
                    CubeComputeStats* stats, uint64_t query_id) {
  X3_CHECK(stats != nullptr);
  const size_t n = tasks.size();
  if (parallelism <= 1 || n <= 1) {
    // The sequential path: index order, shared stats, stop at the first
    // error. This is exactly the pre-parallel execution.
    for (PlanTask& task : tasks) {
      PlanTasksCounter().Increment();
      X3_RETURN_IF_ERROR(task.run(stats));
    }
    return Status::OK();
  }

  // Dependency bookkeeping. Steps are in dependency order, so every dep
  // points at a lower index — checked here, relied on below.
  std::vector<size_t> blockers(n, 0);
  std::vector<std::vector<size_t>> dependents(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d : tasks[i].deps) {
      X3_CHECK(d < i) << "plan task " << i << " depends on later task " << d;
      dependents[d].push_back(i);
    }
    blockers[i] = tasks[i].deps.size();
  }

  // Each task gets its own stats so workers never share a counter; the
  // per-task stats are absorbed in index order at the join point.
  std::vector<CubeComputeStats> task_stats(n);
  std::vector<Status> statuses(n, Status::OK());

  ThreadPool pool(std::min(parallelism, n));
  // Scheduler lock. Local, so GUARDED_BY cannot name it (the analysis
  // only tracks members/globals); the rank still orders it below the
  // pool lock — Submit from the completion handler is the one legal
  // nesting direction.
  Mutex mu{lock_rank::kExecutorScheduler};
  CondVar cv;
  size_t completed = 0;
  size_t inflight = 0;
  bool failed = false;

  // Submits task i (mu must be held). On completion the worker, under
  // mu, unblocks dependents — that lock hand-off is the happens-before
  // edge making a producer cuboid's cells visible to its roll-up
  // readers. After a failure nothing new is submitted, but tasks
  // already running drain normally (their own unwind releases every
  // budget charge they hold).
  std::function<void(size_t)> submit = [&](size_t i) {
    ++inflight;
    pool.Submit([&, i, query_id] {
      // Pool workers run many queries' tasks over their lifetime; the
      // scope re-attributes this one's spans/logs to its query.
      ScopedQueryId qid_scope(query_id);
      PlanTasksCounter().Increment();
      Status s = tasks[i].run(&task_stats[i]);
      MutexLock lock(&mu);
      statuses[i] = std::move(s);
      ++completed;
      --inflight;
      if (!statuses[i].ok()) failed = true;
      if (!failed) {
        for (size_t d : dependents[i]) {
          if (--blockers[d] == 0) submit(d);
        }
      }
      cv.NotifyAll();
    });
  };

  {
    MutexLock lock(&mu);
    for (size_t i = 0; i < n; ++i) {
      if (blockers[i] == 0) submit(i);
    }
    cv.Wait(&mu, [&] {
      return inflight == 0 && (failed || completed == n);
    });
  }

  // Deterministic merge and error selection: task-index order, never
  // completion order, so parallel runs report the same stats and the
  // same first error as each other (unrun tasks contribute zero stats
  // and an OK status).
  for (size_t i = 0; i < n; ++i) {
    stats->Absorb(task_stats[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    if (!statuses[i].ok()) return statuses[i];
  }
  return Status::OK();
}

Status CuboidExecutorRegistry::Register(
    CubeAlgorithm algo, std::unique_ptr<CuboidExecutor> executor) {
  if (executor == nullptr) {
    return Status::InvalidArgument("null executor");
  }
  auto [it, inserted] = executors_.emplace(algo, std::move(executor));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists(
        std::string("executor already registered for ") +
        CubeAlgorithmToString(algo));
  }
  return Status::OK();
}

const CuboidExecutor* CuboidExecutorRegistry::Find(CubeAlgorithm algo) const {
  auto it = executors_.find(algo);
  return it == executors_.end() ? nullptr : it->second.get();
}

std::vector<CubeAlgorithm> CuboidExecutorRegistry::Algorithms() const {
  std::vector<CubeAlgorithm> out;
  out.reserve(executors_.size());
  for (const auto& [algo, executor] : executors_) {
    (void)executor;
    out.push_back(algo);
  }
  return out;
}

CuboidExecutorRegistry& GlobalCuboidExecutorRegistry() {
  static CuboidExecutorRegistry registry;
  static bool seeded = [] {
    auto add = [](CubeAlgorithm algo,
                  std::unique_ptr<CuboidExecutor> executor) {
      Status s = registry.Register(algo, std::move(executor));
      X3_CHECK(s.ok()) << s;
    };
    add(CubeAlgorithm::kReference, internal::MakeReferenceExecutor());
    add(CubeAlgorithm::kCounter, internal::MakeCounterExecutor());
    add(CubeAlgorithm::kBUC, internal::MakeBottomUpExecutor());
    add(CubeAlgorithm::kBUCOpt, internal::MakeBottomUpExecutor());
    add(CubeAlgorithm::kBUCCust, internal::MakeBottomUpExecutor());
    add(CubeAlgorithm::kTD, internal::MakeTopDownExecutor());
    add(CubeAlgorithm::kTDOpt, internal::MakeTopDownExecutor());
    add(CubeAlgorithm::kTDOptAll, internal::MakeTopDownExecutor());
    add(CubeAlgorithm::kTDCust, internal::MakeTopDownExecutor());
    return true;
  }();
  (void)seeded;
  return registry;
}

}  // namespace x3
