#include <algorithm>
#include <unordered_map>

#include "cube/executor.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace x3 {
namespace internal {
namespace {

/// Estimated bookkeeping per hash cell beyond the key payload.
constexpr size_t kCellOverhead = 64;

/// One pass attempt over a batch of cuboids. Returns true on success;
/// false when the memory budget was exhausted mid-pass (the partial
/// counters are discarded and the caller splits the batch). Any budget
/// reserved during the pass is released on every path, including a
/// cancellation or deadline unwind.
Result<bool> CounterPass(const FactTable& facts, const CubeLattice& lattice,
                         const CubeComputeOptions& options,
                         const std::vector<CuboidId>& batch,
                         ExecutionContext* ctx, CubeResult* result,
                         CubeComputeStats* stats) {
  ScopedStageTimer timer(
      ctx->stats(),
      StringPrintf("pass/%llu", static_cast<unsigned long long>(
                                    stats->passes)),
      ctx->tracer());
  ++stats->passes;
  ++stats->base_scans;
  MemoryBudget* budget = options.budget;
  size_t reserved = 0;
  std::vector<std::unordered_map<GroupKey, AggregateState>> counters(
      batch.size());
  // Per-fact cache of admitted value lists, one per (axis, state): the
  // single-scan counter recomputes nothing across the (up to 2^d)
  // cuboids it feeds from one fact.
  std::vector<std::vector<std::vector<ValueId>>> cache(lattice.num_axes());
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    cache[a].resize(lattice.axis(a).num_states());
  }
  // Columnar scan state: the cache fill below walks each axis's mask
  // and value columns directly through the shared offset index.
  std::vector<std::span<const AxisStateMask>> col_masks(lattice.num_axes());
  std::vector<std::span<const ValueId>> col_values(lattice.num_axes());
  std::vector<std::span<const uint32_t>> col_offsets(lattice.num_axes());
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    col_masks[a] = facts.AxisMaskColumn(a);
    col_values[a] = facts.AxisValueColumn(a);
    col_offsets[a] = facts.AxisOffsets(a);
  }
  std::vector<size_t> idx;
  std::vector<ValueId> tuple;
  bool overflow = false;
  Status interrupted = Status::OK();
  for (size_t f = 0; f < facts.size() && !overflow; ++f) {
    interrupted = ctx->Poll();
    if (!interrupted.ok()) break;
    int64_t measure = facts.measure(f);
    for (size_t a = 0; a < lattice.num_axes(); ++a) {
      uint32_t lo = col_offsets[a][f];
      uint32_t hi = col_offsets[a][f + 1];
      for (AxisStateId s = 0; s < lattice.axis(a).num_states(); ++s) {
        if (!lattice.axis(a).state(s).grouping_present()) continue;
        std::vector<ValueId>& list = cache[a][s];
        list.clear();
        for (uint32_t i = lo; i < hi; ++i) {
          if (!FactTable::AdmittedAt(col_masks[a][i], s)) continue;
          ValueId v = col_values[a][i];
          if (std::find(list.begin(), list.end(), v) == list.end()) {
            list.push_back(v);  // first-seen distinct order
          }
        }
      }
    }
    for (size_t b = 0; b < batch.size() && !overflow; ++b) {
      CuboidId cuboid = batch[b];
      // Gather the cached lists for this cuboid's present axes.
      bool drop = false;
      size_t num_present = 0;
      static thread_local std::vector<const std::vector<ValueId>*> lists;
      lists.clear();
      for (size_t a = 0; a < lattice.num_axes(); ++a) {
        AxisStateId s = lattice.StateOf(cuboid, a);
        if (!lattice.axis(a).state(s).grouping_present()) continue;
        const std::vector<ValueId>& values = cache[a][s];
        if (values.empty()) {
          drop = true;  // coverage drop-out
          break;
        }
        lists.push_back(&values);
        ++num_present;
      }
      if (drop) continue;
      // Odometer over the cross product of cached lists. The key
      // buffer is reused so the hot path allocates only on new cells.
      idx.assign(num_present, 0);
      tuple.resize(num_present);
      static thread_local GroupKey key;
      for (;;) {
        for (size_t i = 0; i < num_present; ++i) {
          tuple[i] = (*lists[i])[idx[i]];
        }
        key.clear();
        for (size_t i = 0; i < num_present; ++i) {
          uint32_t v = tuple[i];
          key.push_back(static_cast<char>((v >> 24) & 0xFF));
          key.push_back(static_cast<char>((v >> 16) & 0xFF));
          key.push_back(static_cast<char>((v >> 8) & 0xFF));
          key.push_back(static_cast<char>(v & 0xFF));
        }
        auto it = counters[b].find(key);
        if (it == counters[b].end()) {
          if (budget != nullptr) {
            size_t charge = key.size() + kCellOverhead;
            if (!budget->Reserve(charge).ok()) {
              overflow = true;
              break;
            }
            reserved += charge;
          }
          it = counters[b].emplace(key, AggregateState{}).first;
        }
        it->second.Update(measure);
        size_t i = 0;
        for (; i < num_present; ++i) {
          if (++idx[i] < lists[i]->size()) break;
          idx[i] = 0;
        }
        if (i == num_present) break;
      }
    }
  }
  if (budget != nullptr) {
    stats->peak_memory = std::max<uint64_t>(stats->peak_memory,
                                            budget->peak());
    budget->Release(reserved);
  }
  X3_RETURN_IF_ERROR(interrupted);
  if (overflow) return false;
  // Merge into the result ("write the counters out").
  for (size_t b = 0; b < batch.size(); ++b) {
    auto* out = result->mutable_cuboid(batch[b]);
    timer.AddRows(counters[b].size());
    for (auto& [key, state] : counters[b]) {
      (*out)[key].Merge(state);
    }
  }
  return true;
}

/// Computes `batch`, splitting recursively on memory exhaustion — the
/// multi-pass behaviour the paper reports ("at 6 axes, we had to do 2
/// passes, at 7 axes we needed 5 passes", §4.6).
Status CounterBatch(const FactTable& facts, const CubeLattice& lattice,
                    const CubeComputeOptions& options,
                    const std::vector<CuboidId>& batch, ExecutionContext* ctx,
                    CubeResult* result, CubeComputeStats* stats) {
  if (batch.empty()) return Status::OK();
  X3_ASSIGN_OR_RETURN(bool ok, CounterPass(facts, lattice, options, batch,
                                           ctx, result, stats));
  if (ok) return Status::OK();
  if (batch.size() == 1) {
    // A single cuboid that alone exceeds the budget: there is nothing
    // left to split. Run it with forced overshoot (the real system
    // would thrash the VM the same way).
    CubeComputeOptions forced = options;
    forced.budget = nullptr;
    X3_LOG(Warning) << "COUNTER: cuboid " << batch[0]
                    << " alone exceeds the memory budget; forcing";
    X3_ASSIGN_OR_RETURN(bool forced_ok,
                        CounterPass(facts, lattice, forced, batch, ctx,
                                    result, stats));
    X3_CHECK(forced_ok);
    return Status::OK();
  }
  size_t mid = batch.size() / 2;
  std::vector<CuboidId> left(batch.begin(), batch.begin() + mid);
  std::vector<CuboidId> right(batch.begin() + mid, batch.end());
  X3_RETURN_IF_ERROR(
      CounterBatch(facts, lattice, options, left, ctx, result, stats));
  return CounterBatch(facts, lattice, options, right, ctx, result, stats);
}

/// Counter-based family (§3.3): all cuboids off one shared scan, split
/// into multiple passes when the counters exceed the budget. The plan's
/// kHashAggregate steps are the batch list.
class CounterExecutor final : public CuboidExecutor {
 public:
  const char* name() const override { return "counter"; }

  Result<CubeResult> Execute(const CubePlan& plan, const FactTable& facts,
                             const CubeLattice& lattice,
                             const CubeComputeOptions& options,
                             ExecutionContext* ctx,
                             CubeComputeStats* stats) const override {
    CubeResult result(lattice.num_cuboids(), options.aggregate);
    std::vector<CuboidId> all;
    all.reserve(plan.steps.size());
    for (const CuboidPlanStep& step : plan.steps) {
      all.push_back(step.cuboid);
    }
    if (options.parallelism <= 1 || all.size() <= 1) {
      X3_RETURN_IF_ERROR(
          CounterBatch(facts, lattice, options, all, ctx, &result, stats));
      return result;
    }
    // Parallel: round-robin the cuboids into one batch per worker, each
    // an independent task. Batches write disjoint cuboid maps of the
    // shared result, and the shared atomic budget still caps the sum of
    // all counters — a batch that overflows splits itself exactly as in
    // the sequential multi-pass case, so cell contents stay exact (the
    // pass *structure* may differ from the single-thread run; the
    // differential tests compare cells, which are identical).
    const size_t num_batches = std::min(options.parallelism, all.size());
    std::vector<std::vector<CuboidId>> batches(num_batches);
    for (size_t i = 0; i < all.size(); ++i) {
      batches[i % num_batches].push_back(all[i]);
    }
    std::vector<PlanTask> tasks;
    tasks.reserve(num_batches);
    for (std::vector<CuboidId>& batch : batches) {
      tasks.push_back(PlanTask{
          [&, batch = std::move(batch)](CubeComputeStats* task_stats) {
            return CounterBatch(facts, lattice, options, batch, ctx, &result,
                                task_stats);
          },
          {}});
    }
    X3_RETURN_IF_ERROR(
        RunPlanTasks(std::move(tasks), options.parallelism, stats,
                     ctx->query_id()));
    return result;
  }
};

}  // namespace

std::unique_ptr<CuboidExecutor> MakeCounterExecutor() {
  return std::make_unique<CounterExecutor>();
}

}  // namespace internal
}  // namespace x3
