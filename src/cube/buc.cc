#include <algorithm>

#include "cube/executor.h"
#include "util/fact_id_set.h"
#include "util/logging.h"

namespace x3 {
namespace internal {
namespace {

/// Bottom-up cube computation (§3.4), XMLized from Beyer-Ramakrishnan
/// BUC: recursive refinement starting from the most relaxed grouping.
/// The recursion walks the axes left to right; at axis `a` it branches
/// over every relaxation state of that axis. The "absent" state leaves
/// the current row set untouched; a present state partitions the rows
/// by admitted grouping value — possibly into *overlapping* partitions
/// when disjointness fails (a fact with several admitted values joins
/// several partitions, §3.4's "consider all elements ... including
/// those that have already satisfied the restrictions for some other
/// children").
///
/// Reaching the end of the axis list emits one cube cell: the cuboid is
/// the tuple of chosen states, the group the tuple of chosen values,
/// and the rows are exactly the facts of that group (each exactly
/// once, because partitioning deduplicates values per fact).
class BucComputation {
 public:
  BucComputation(CubeAlgorithm variant, const FactTable& facts,
                 const CubeLattice& lattice,
                 const CubeComputeOptions& options, ExecutionContext* ctx,
                 CubeComputeStats* stats)
      : variant_(variant),
        facts_(facts),
        lattice_(lattice),
        options_(options),
        ctx_(ctx),
        stats_(stats),
        result_(lattice.num_cuboids(), options.aggregate),
        states_(lattice.num_axes(), 0) {}

  Result<CubeResult> Run() {
    ScopedStageTimer timer(ctx_->stats(), "partition-walk", ctx_->tracer());
    FactIdSet rows;
    for (size_t f = 0; f < facts_.size(); ++f) {
      rows.Add(static_cast<uint32_t>(f));
    }
    ++stats_->base_scans;
    X3_RETURN_IF_ERROR(Recurse(0, rows));
    timer.AddRows(result_.TotalCells());
    return std::move(result_);
  }

 private:
  /// True when this variant may take the single-value fast path at
  /// (axis, state).
  bool AssumeDisjoint(size_t axis, AxisStateId state) const {
    switch (variant_) {
      case CubeAlgorithm::kBUC:
        return false;
      case CubeAlgorithm::kBUCOpt:
        return true;
      case CubeAlgorithm::kBUCCust:
        return options_.properties != nullptr &&
               options_.properties->At(axis, state).disjoint;
      default:
        return false;
    }
  }

  Status Recurse(size_t axis, const FactIdSet& rows) {
    X3_RETURN_IF_ERROR(ctx_->Poll());
    // Iceberg pruning: every deeper group is a subset of `rows`, so
    // nothing below the threshold can qualify (Beyer-Ramakrishnan).
    if (options_.min_count > 1 &&
        rows.cardinality() < static_cast<size_t>(options_.min_count)) {
      return Status::OK();
    }
    if (axis == lattice_.num_axes()) {
      Emit(rows);
      return Status::OK();
    }
    const AxisLattice& axis_lattice = lattice_.axis(axis);
    // Columnar scan state for this axis: the partition loops below walk
    // the mask/value columns directly through the shared offset index.
    std::span<const AxisStateMask> masks = facts_.AxisMaskColumn(axis);
    std::span<const ValueId> values = facts_.AxisValueColumn(axis);
    std::span<const uint32_t> offsets = facts_.AxisOffsets(axis);
    for (AxisStateId s = 0; s < axis_lattice.num_states(); ++s) {
      states_[axis] = s;
      if (!axis_lattice.state(s).grouping_present()) {
        // Absent: the axis groups nothing; rows pass through unchanged.
        X3_RETURN_IF_ERROR(Recurse(axis + 1, rows));
        continue;
      }
      // Partition rows by admitted value at (axis, s): gather
      // (value, row) pairs and sort by value — BUC's counting-sort
      // style partitioning; runs of equal values are the partitions.
      // Under overlap a fact contributes one pair per admitted value
      // (§3.4's replicated membership); empty partitions never exist
      // and recursion prunes automatically.
      std::vector<std::pair<ValueId, uint32_t>> pairs;
      pairs.reserve(rows.cardinality());
      bool fast = AssumeDisjoint(axis, s);
      rows.ForEach([&](uint32_t row) {
        uint32_t lo = offsets[row];
        uint32_t hi = offsets[row + 1];
        for (uint32_t i = lo; i < hi; ++i) {
          if (!FactTable::AdmittedAt(masks[i], s)) continue;
          if (fast) {
            pairs.emplace_back(values[i], row);
            break;  // disjointness assumed: first admitted value only
          }
          // First-seen dedup within the fact's binding range (the same
          // value may appear under several masks pre-collapse).
          bool seen = false;
          for (uint32_t j = lo; j < i; ++j) {
            if (values[j] == values[i] &&
                FactTable::AdmittedAt(masks[j], s)) {
              seen = true;
              break;
            }
          }
          if (!seen) pairs.emplace_back(values[i], row);
        }
      });
      std::sort(pairs.begin(), pairs.end());
      size_t charged = pairs.size() * sizeof(pairs[0]);
      stats_->partition_rows += pairs.size();
      if (options_.budget != nullptr) {
        options_.budget->ForceReserve(charged);
        stats_->peak_memory =
            std::max<uint64_t>(stats_->peak_memory, options_.budget->peak());
      }
      // The charge must be released on every exit, including an error
      // (cancellation) surfacing from a deeper level — collect the
      // status and fall through to the Release.
      Status status = Status::OK();
      FactIdSet partition;
      for (size_t i = 0; i < pairs.size() && status.ok();) {
        ValueId v = pairs[i].first;
        partition.Clear();
        // Rows of a run arrive ascending (sort ties break on row), so
        // these Adds hit the append fast path.
        while (i < pairs.size() && pairs[i].first == v) {
          partition.Add(pairs[i].second);
          ++i;
        }
        ++stats_->partitions;
        values_.push_back(v);
        status = Recurse(axis + 1, partition);
        values_.pop_back();
      }
      if (options_.budget != nullptr) options_.budget->Release(charged);
      X3_RETURN_IF_ERROR(status);
    }
    return Status::OK();
  }

  void Emit(const FactIdSet& rows) {
    if (rows.empty()) return;
    CuboidId cuboid = lattice_.Encode(states_);
    GroupKey key = PackGroupKey(values_);
    AggregateState* cell = result_.MutableCell(cuboid, key);
    rows.ForEach(
        [&](uint32_t row) { cell->Update(facts_.measure(row)); });
  }

  CubeAlgorithm variant_;
  const FactTable& facts_;
  const CubeLattice& lattice_;
  const CubeComputeOptions& options_;
  ExecutionContext* ctx_;
  CubeComputeStats* stats_;
  CubeResult result_;
  std::vector<AxisStateId> states_;
  std::vector<ValueId> values_;
};

/// Bottom-up family: the plan's kPartitionRecurse steps are emitted by
/// one recursive walk; the variant (from the plan) decides where the
/// single-value fast path applies.
///
/// This family ignores options.parallelism and always runs on the
/// calling thread: the recursion does not decompose at cuboid
/// granularity — sibling partitions of the walk emit cells into the
/// *same* cuboid maps (every cuboid aggregates contributions from many
/// partitions), so there is no per-cuboid task with a single writer to
/// schedule. Splitting the top-level partitions instead would need
/// per-cell synchronization or a merge phase that forfeits BUC's
/// iceberg pruning. The differential tests still sweep this family at
/// every parallelism (the knob is simply a no-op here).
class BottomUpExecutor final : public CuboidExecutor {
 public:
  const char* name() const override { return "bottom-up"; }

  Result<CubeResult> Execute(const CubePlan& plan, const FactTable& facts,
                             const CubeLattice& lattice,
                             const CubeComputeOptions& options,
                             ExecutionContext* ctx,
                             CubeComputeStats* stats) const override {
    if (plan.algorithm == CubeAlgorithm::kBUCCust &&
        options.properties == nullptr) {
      X3_LOG(Info) << "BUCCUST without a property map runs as plain BUC";
    }
    BucComputation computation(plan.algorithm, facts, lattice, options, ctx,
                               stats);
    return computation.Run();
  }
};

}  // namespace

std::unique_ptr<CuboidExecutor> MakeBottomUpExecutor() {
  return std::make_unique<BottomUpExecutor>();
}

}  // namespace internal
}  // namespace x3
