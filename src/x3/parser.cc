#include "x3/parser.h"

#include "util/string_util.h"
#include "x3/lexer.h"

namespace x3 {

std::string AstPath::ToString() const {
  std::string out;
  for (const AstStep& step : steps) {
    out += step.descendant ? "//" : "/";
    if (step.attribute) out += "@";
    out += step.name;
  }
  return out;
}

namespace {

class QueryParser {
 public:
  explicit QueryParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<AstQuery> Parse() {
    AstQuery query;
    X3_RETURN_IF_ERROR(Expect(TokenKind::kFor));
    for (;;) {
      X3_ASSIGN_OR_RETURN(AstBinding binding, ParseBinding());
      query.bindings.push_back(std::move(binding));
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    X3_RETURN_IF_ERROR(Expect(TokenKind::kX3));
    X3_ASSIGN_OR_RETURN(Token fact_var, ExpectToken(TokenKind::kVariable));
    query.fact_variable = fact_var.text;
    if (Peek().kind == TokenKind::kSlash ||
        Peek().kind == TokenKind::kDoubleSlash) {
      X3_ASSIGN_OR_RETURN(query.fact_path, ParsePath());
    }
    X3_RETURN_IF_ERROR(Expect(TokenKind::kBy));
    for (;;) {
      X3_ASSIGN_OR_RETURN(AstAxis axis, ParseAxis());
      query.axes.push_back(std::move(axis));
      if (Peek().kind != TokenKind::kComma) break;
      Advance();
    }
    X3_RETURN_IF_ERROR(Expect(TokenKind::kReturn));
    X3_ASSIGN_OR_RETURN(query.ret, ParseReturn());
    if (Peek().kind == TokenKind::kHaving) {
      Advance();
      X3_ASSIGN_OR_RETURN(query.min_count, ParseHaving());
    }
    X3_RETURN_IF_ERROR(Expect(TokenKind::kEnd));
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(StringPrintf(
        "X^3 parse error at offset %zu (near %s): %s", Peek().offset,
        TokenKindToString(Peek().kind), msg.c_str()));
  }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error(StringPrintf("expected %s", TokenKindToString(kind)));
    }
    Advance();
    return Status::OK();
  }

  Result<Token> ExpectToken(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error(StringPrintf("expected %s", TokenKindToString(kind)));
    }
    return Advance();
  }

  Result<AstPath> ParsePath() {
    AstPath path;
    while (Peek().kind == TokenKind::kSlash ||
           Peek().kind == TokenKind::kDoubleSlash) {
      AstStep step;
      step.descendant = Peek().kind == TokenKind::kDoubleSlash;
      Advance();
      if (Peek().kind == TokenKind::kAt) {
        step.attribute = true;
        Advance();
      }
      X3_ASSIGN_OR_RETURN(Token name, ExpectToken(TokenKind::kIdent));
      step.name = name.text;
      path.steps.push_back(std::move(step));
    }
    if (path.steps.empty()) return Error("expected a path");
    return path;
  }

  Result<AstBinding> ParseBinding() {
    AstBinding binding;
    X3_ASSIGN_OR_RETURN(Token var, ExpectToken(TokenKind::kVariable));
    binding.variable = var.text;
    X3_RETURN_IF_ERROR(Expect(TokenKind::kIn));
    if (Peek().kind == TokenKind::kIdent && Peek().text == "doc") {
      Advance();
      X3_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      X3_ASSIGN_OR_RETURN(Token doc, ExpectToken(TokenKind::kString));
      binding.doc = doc.text;
      X3_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      X3_ASSIGN_OR_RETURN(binding.path, ParsePath());
      return binding;
    }
    if (Peek().kind == TokenKind::kVariable) {
      binding.source_variable = Advance().text;
      X3_ASSIGN_OR_RETURN(binding.path, ParsePath());
      return binding;
    }
    return Error("expected doc(\"...\") or a variable after 'in'");
  }

  Result<AstAxis> ParseAxis() {
    AstAxis axis;
    if (Peek().kind == TokenKind::kIdent) {
      std::string fn = ToLowerAscii(Peek().text);
      if (fn != "substring" && fn != "lowercase") {
        return Error("unknown axis transform '" + Peek().text + "'");
      }
      Advance();
      axis.transform = fn;
      X3_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      X3_ASSIGN_OR_RETURN(Token var, ExpectToken(TokenKind::kVariable));
      axis.variable = var.text;
      if (fn == "substring") {
        X3_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        X3_ASSIGN_OR_RETURN(Token from, ExpectToken(TokenKind::kNumber));
        if (from.text != "1") {
          return Error("substring transforms must start at 1");
        }
        X3_RETURN_IF_ERROR(Expect(TokenKind::kComma));
        X3_ASSIGN_OR_RETURN(Token len, ExpectToken(TokenKind::kNumber));
        // atoll is UB on overflow; ParseInt64 rejects out-of-range input.
        X3_ASSIGN_OR_RETURN(axis.transform_length, ParseInt64(len.text));
        if (axis.transform_length <= 0) {
          return Error("substring length must be positive");
        }
      }
      X3_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      if (Peek().kind == TokenKind::kLParen) {
        return ParseRelaxations(std::move(axis));
      }
      return axis;
    }
    X3_ASSIGN_OR_RETURN(Token var, ExpectToken(TokenKind::kVariable));
    axis.variable = var.text;
    if (Peek().kind == TokenKind::kLParen) {
      return ParseRelaxations(std::move(axis));
    }
    return axis;
  }

  /// Parses "(LND, SP, PC-AD)" into `axis`.
  Result<AstAxis> ParseRelaxations(AstAxis axis) {
    X3_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    for (;;) {
      X3_ASSIGN_OR_RETURN(Token relax, ExpectToken(TokenKind::kIdent));
      std::string lower = ToLowerAscii(relax.text);
      if (lower == "lnd") {
        axis.relaxations.Add(RelaxationType::kLND);
      } else if (lower == "sp") {
        axis.relaxations.Add(RelaxationType::kSP);
      } else if (lower == "pc-ad" || lower == "pcad" || lower == "ad") {
        axis.relaxations.Add(RelaxationType::kPCAD);
      } else {
        return Error("unknown relaxation '" + relax.text + "'");
      }
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    X3_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return axis;
  }

  /// Parses the body of "having count >= N" / "having COUNT($b) >= N".
  Result<int64_t> ParseHaving() {
    X3_ASSIGN_OR_RETURN(Token fn, ExpectToken(TokenKind::kIdent));
    if (ToLowerAscii(fn.text) != "count") {
      return Error("only 'having count >= N' is supported");
    }
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      X3_RETURN_IF_ERROR(ExpectToken(TokenKind::kVariable).status());
      X3_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    }
    X3_RETURN_IF_ERROR(Expect(TokenKind::kGreaterEqual));
    X3_ASSIGN_OR_RETURN(Token n, ExpectToken(TokenKind::kNumber));
    return ParseInt64(n.text);
  }

  Result<AstReturn> ParseReturn() {
    AstReturn ret;
    X3_ASSIGN_OR_RETURN(Token fn, ExpectToken(TokenKind::kIdent));
    ret.function = fn.text;
    X3_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    X3_ASSIGN_OR_RETURN(Token var, ExpectToken(TokenKind::kVariable));
    ret.variable = var.text;
    if (Peek().kind == TokenKind::kSlash ||
        Peek().kind == TokenKind::kDoubleSlash) {
      X3_ASSIGN_OR_RETURN(ret.path, ParsePath());
    }
    X3_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return ret;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<AstQuery> ParseX3Query(std::string_view input) {
  X3_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexX3Query(input));
  QueryParser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace x3
