#include "x3/lexer.h"

#include "util/string_util.h"

namespace x3 {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kFor:
      return "'for'";
    case TokenKind::kIn:
      return "'in'";
    case TokenKind::kX3:
      return "'X^3'";
    case TokenKind::kBy:
      return "'by'";
    case TokenKind::kReturn:
      return "'return'";
    case TokenKind::kVariable:
      return "variable";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kDoubleSlash:
      return "'//'";
    case TokenKind::kAt:
      return "'@'";
    case TokenKind::kHaving:
      return "'having'";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kGreaterEqual:
      return "'>='";
    case TokenKind::kEnd:
      return "end of query";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsIdentChar(char c) {
  return IsIdentStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

}  // namespace

Result<std::vector<Token>> LexX3Query(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto error = [&](const std::string& msg) {
    return Status::ParseError(
        StringPrintf("X^3 lex error at offset %zu: %s", i, msg.c_str()));
  };
  while (i < input.size()) {
    char c = input[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    // XQuery comment "(: ... :)".
    if (c == '(' && i + 1 < input.size() && input[i + 1] == ':') {
      size_t close = input.find(":)", i + 2);
      if (close == std::string_view::npos) {
        return error("unterminated comment");
      }
      i = close + 2;
      continue;
    }
    size_t start = i;
    switch (c) {
      case '(':
        tokens.push_back({TokenKind::kLParen, "(", start});
        ++i;
        continue;
      case ')':
        tokens.push_back({TokenKind::kRParen, ")", start});
        ++i;
        continue;
      case ',':
        tokens.push_back({TokenKind::kComma, ",", start});
        ++i;
        continue;
      case '@':
        tokens.push_back({TokenKind::kAt, "@", start});
        ++i;
        continue;
      case '.':
        // Trailing period of the query text (the paper ends Query 1
        // with "."); ignore.
        ++i;
        continue;
      case '/':
        if (i + 1 < input.size() && input[i + 1] == '/') {
          tokens.push_back({TokenKind::kDoubleSlash, "//", start});
          i += 2;
        } else {
          tokens.push_back({TokenKind::kSlash, "/", start});
          ++i;
        }
        continue;
      case '$': {
        ++i;
        size_t name_start = i;
        while (i < input.size() && IsIdentChar(input[i])) ++i;
        if (i == name_start) return error("expected name after '$'");
        tokens.push_back({TokenKind::kVariable,
                          std::string(input.substr(name_start, i - name_start)),
                          start});
        continue;
      }
      case '"':
      case '\'': {
        char quote = c;
        ++i;
        size_t text_start = i;
        while (i < input.size() && input[i] != quote) ++i;
        if (i == input.size()) return error("unterminated string literal");
        tokens.push_back({TokenKind::kString,
                          std::string(input.substr(text_start, i - text_start)),
                          start});
        ++i;
        continue;
      }
      case '>':
        if (i + 1 < input.size() && input[i + 1] == '=') {
          tokens.push_back({TokenKind::kGreaterEqual, ">=", start});
          i += 2;
          continue;
        }
        return error("expected '=' after '>'");
      default:
        break;
    }
    if (c >= '0' && c <= '9') {
      size_t num_start = i;
      while (i < input.size() && input[i] >= '0' && input[i] <= '9') ++i;
      tokens.push_back({TokenKind::kNumber,
                        std::string(input.substr(num_start, i - num_start)),
                        num_start});
      continue;
    }
    if (IsIdentStart(c)) {
      size_t ident_start = i;
      while (i < input.size() && IsIdentChar(input[i])) ++i;
      std::string word(input.substr(ident_start, i - ident_start));
      // "X^3" / "x^3": the '^' splits the identifier; join it here.
      if ((word == "X" || word == "x") && i < input.size() &&
          input[i] == '^' && i + 1 < input.size() && input[i + 1] == '3') {
        i += 2;
        tokens.push_back({TokenKind::kX3, "X^3", ident_start});
        continue;
      }
      std::string lower = ToLowerAscii(word);
      if (lower == "for") {
        tokens.push_back({TokenKind::kFor, word, ident_start});
      } else if (lower == "in") {
        tokens.push_back({TokenKind::kIn, word, ident_start});
      } else if (lower == "by") {
        tokens.push_back({TokenKind::kBy, word, ident_start});
      } else if (lower == "return") {
        tokens.push_back({TokenKind::kReturn, word, ident_start});
      } else if (lower == "having") {
        tokens.push_back({TokenKind::kHaving, word, ident_start});
      } else if (lower == "x3" || lower == "cube") {
        tokens.push_back({TokenKind::kX3, word, ident_start});
      } else {
        tokens.push_back({TokenKind::kIdent, word, ident_start});
      }
      continue;
    }
    return error(StringPrintf("unexpected character '%c'", c));
  }
  tokens.push_back({TokenKind::kEnd, "", input.size()});
  return tokens;
}

}  // namespace x3
