#ifndef X3_X3_LEXER_H_
#define X3_X3_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace x3 {

/// Token kinds of the X^3 query language (the XQuery-FLWOR subset with
/// the cube clause, Query 1 of the paper).
enum class TokenKind : uint8_t {
  kFor,
  kIn,
  kX3,      // "x3", "X3", "x^3", "X^3" or "cube"
  kBy,
  kReturn,
  kHaving,
  kVariable,  // $name (text = name without '$')
  kIdent,     // bare name: doc, COUNT, LND, publication, ...
  kString,    // "..." (text = unquoted)
  kNumber,    // unsigned integer literal
  kLParen,
  kRParen,
  kComma,
  kSlash,
  kDoubleSlash,
  kAt,
  kGreaterEqual,  // ">="
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t offset = 0;
};

const char* TokenKindToString(TokenKind kind);

/// Tokenizes an X^3 query. Identifiers may contain letters, digits,
/// '_', '-' and '.'; "PC-AD" therefore lexes as a single identifier.
/// Comments "(: ... :)" are skipped (XQuery style).
Result<std::vector<Token>> LexX3Query(std::string_view input);

}  // namespace x3

#endif  // X3_X3_LEXER_H_
