#ifndef X3_X3_ENGINE_H_
#define X3_X3_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cube/algorithm.h"
#include "cube/cube_spec.h"
#include "util/result.h"
#include "xdb/database.h"

namespace x3 {

/// A compiled query materialized against a database: the relaxation
/// lattice plus the fact table, ready for any number of ComputeCube /
/// CubeViewStore passes. This is the unit the serving layer keeps per
/// distinct query shape — materialize once, compute and answer many
/// times.
struct PreparedQuery {
  CubeQuery query;
  CubeLattice lattice;
  FactTable facts;

  PreparedQuery(CubeQuery query_in, CubeLattice lattice_in,
                FactTable facts_in)
      : query(std::move(query_in)),
        lattice(std::move(lattice_in)),
        facts(std::move(facts_in)) {}
};

/// Result of executing an X^3 query end to end.
struct X3ExecutionResult {
  CubeLattice lattice;
  FactTable facts;
  CubeResult cube;
  CubeComputeStats stats;
  /// Wall-clock split: pattern evaluation / fact materialization vs
  /// cube computation (the paper times only the latter).
  double materialize_seconds = 0;
  double cube_seconds = 0;
  /// Time spent building the CubePlan (part of cube_seconds).
  double plan_seconds = 0;
  /// Full per-stage breakdown ("materialize", "plan", "compute",
  /// "cuboid/<id>", "pass/<n>", "pipe/<n>", ...) from the execution
  /// context's stats sink.
  std::vector<StageTiming> stage_timings;

  X3ExecutionResult(CubeLattice lattice_in, FactTable facts_in,
                    CubeResult cube_in)
      : lattice(std::move(lattice_in)),
        facts(std::move(facts_in)),
        cube(std::move(cube_in)) {}
};

/// The top of the public API: parse an X^3 query, build the relaxation
/// lattice, materialize the fact table against a database, and compute
/// the cube with a chosen algorithm.
///
///   auto db = Database::Open({});
///   (*db)->LoadXmlFile("books.xml");
///   X3Engine engine(db->get());
///   auto result = engine.Execute(R"(
///     for $b in doc("books.xml")//publication,
///         $n in $b/author/name,
///         $y in $b/year
///     X^3 $b by $n (LND, SP, PC-AD), $y (LND)
///     return COUNT($b))", CubeAlgorithm::kBUC);
class X3Engine {
 public:
  /// `db` must outlive the engine and already contain the data (the
  /// doc("...") names in queries are treated as documentation; all
  /// loaded documents are queried).
  explicit X3Engine(Database* db) : db_(db) {}

  /// Parses + binds a query without executing it.
  Result<CubeQuery> Compile(std::string_view query_text) const;

  /// Builds the lattice and materializes the fact table for a compiled
  /// query without computing any cube. When `ctx` is non-null its
  /// cancellation token and deadline cover the materialization and the
  /// "materialize" stage timing lands in its stats sink. The returned
  /// fact table is NOT charged to any budget — the caller decides how
  /// long it lives (X3Server keeps it for the server's lifetime).
  Result<PreparedQuery> Prepare(const CubeQuery& query,
                                ExecutionContext* ctx = nullptr) const;

  /// Full pipeline with default options.
  Result<X3ExecutionResult> Execute(
      std::string_view query_text,
      CubeAlgorithm algorithm = CubeAlgorithm::kBUC) const {
    return Execute(query_text, algorithm, CubeComputeOptions{});
  }

  /// Full pipeline with explicit compute options. The aggregate
  /// function in `options` is overridden by the query's return clause.
  Result<X3ExecutionResult> Execute(std::string_view query_text,
                                    CubeAlgorithm algorithm,
                                    CubeComputeOptions options) const;

  /// Pipeline from an already-compiled query. When `options.exec` is
  /// set, its cancellation token and deadline cover the whole pipeline
  /// (materialization included) and its budget is charged for the
  /// materialized fact table; otherwise an internal context is built
  /// from `options.budget` / `options.temp_files`. Stage timings land
  /// in X3ExecutionResult::stage_timings either way.
  ///
  /// `options.parallelism` applies to the cube-computation phase only
  /// (pattern evaluation and fact materialization stay single-threaded)
  /// and never changes the result: parallel runs are cell-identical to
  /// parallelism 1 (see CubeComputeOptions::parallelism).
  Result<X3ExecutionResult> ExecuteQuery(const CubeQuery& query,
                                         CubeAlgorithm algorithm,
                                         CubeComputeOptions options) const;

  /// EXPLAIN ANALYZE: compiles and runs the full pipeline, then renders
  /// the cube plan annotated with per-step actual time, rows and spill
  /// I/O (see ExplainAnalyzeCube in cube/algorithm.h). Costs a real
  /// execution.
  Result<std::string> ExplainAnalyze(
      std::string_view query_text, CubeAlgorithm algorithm,
      CubeComputeOptions options = CubeComputeOptions{}) const;

 private:
  Database* db_;
};

}  // namespace x3

#endif  // X3_X3_ENGINE_H_
