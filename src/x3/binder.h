#ifndef X3_X3_BINDER_H_
#define X3_X3_BINDER_H_

#include "cube/cube_spec.h"
#include "util/result.h"
#include "x3/parser.h"

namespace x3 {

/// Resolves a parsed X^3 query into an executable CubeQuery:
///  * the fact variable's binding chain must root in a doc(...) source;
///    its path becomes the fact path;
///  * each axis variable's binding chain must root in the fact
///    variable; the concatenated relative path becomes the axis path;
///  * the return clause maps to the aggregate function, with an
///    optional measure path relative to the fact variable.
///
/// The documents named by doc(...) are NOT loaded here — binding is
/// purely static. Callers load data into the Database separately (or
/// use X3Engine, which can auto-load).
Result<CubeQuery> BindX3Query(const AstQuery& ast);

}  // namespace x3

#endif  // X3_X3_BINDER_H_
