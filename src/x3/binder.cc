#include "x3/binder.h"

#include <unordered_map>

#include "util/string_util.h"

namespace x3 {
namespace {

/// Resolves `variable` to (nearest doc-rooted ancestor variable,
/// concatenated relative path from it). A doc-rooted variable resolves
/// to (itself, "").
Result<std::pair<std::string, std::string>> ResolveChain(
    const std::unordered_map<std::string, const AstBinding*>& bindings,
    const std::string& variable, int depth = 0) {
  if (depth > 16) {
    return Status::InvalidArgument("variable binding chain too deep (cycle?)");
  }
  auto it = bindings.find(variable);
  if (it == bindings.end()) {
    return Status::InvalidArgument("unbound variable $" + variable);
  }
  const AstBinding* binding = it->second;
  if (!binding->doc.empty()) {
    return std::make_pair(variable, std::string());
  }
  X3_ASSIGN_OR_RETURN(
      auto parent,
      ResolveChain(bindings, binding->source_variable, depth + 1));
  return std::make_pair(parent.first,
                        parent.second + binding->path.ToString());
}

}  // namespace

Result<CubeQuery> BindX3Query(const AstQuery& ast) {
  std::unordered_map<std::string, const AstBinding*> bindings;
  for (const AstBinding& b : ast.bindings) {
    if (bindings.count(b.variable) > 0) {
      return Status::InvalidArgument("variable $" + b.variable +
                                     " bound twice");
    }
    bindings[b.variable] = &b;
  }

  auto fact_it = bindings.find(ast.fact_variable);
  if (fact_it == bindings.end()) {
    return Status::InvalidArgument("fact variable $" + ast.fact_variable +
                                   " is not bound");
  }
  if (fact_it->second->doc.empty()) {
    return Status::InvalidArgument(
        "fact variable $" + ast.fact_variable +
        " must be bound to a doc(...) path");
  }

  CubeQuery query;
  query.fact_path = fact_it->second->path.ToString();

  for (const AstAxis& axis : ast.axes) {
    X3_ASSIGN_OR_RETURN(auto resolved,
                        ResolveChain(bindings, axis.variable));
    if (resolved.first != ast.fact_variable) {
      return Status::InvalidArgument(
          "axis variable $" + axis.variable +
          " must be rooted at the fact variable $" + ast.fact_variable);
    }
    AxisSpec spec;
    spec.name = axis.variable;
    spec.path = resolved.second;
    spec.relaxations = axis.relaxations;
    if (axis.transform == "substring") {
      spec.transform = ValueTransform::Prefix(
          static_cast<size_t>(axis.transform_length));
    } else if (axis.transform == "lowercase") {
      spec.transform = ValueTransform::Lowercase();
    }
    query.axes.push_back(std::move(spec));
  }
  query.min_count = ast.min_count;

  X3_ASSIGN_OR_RETURN(query.aggregate,
                      ParseAggregateFunction(ast.ret.function));
  if (!ast.ret.path.steps.empty()) {
    if (ast.ret.variable != ast.fact_variable) {
      return Status::InvalidArgument(
          "the measure path must be relative to the fact variable");
    }
    query.measure_path = ast.ret.path.ToString();
  } else if (ast.ret.variable != ast.fact_variable) {
    X3_ASSIGN_OR_RETURN(auto resolved,
                        ResolveChain(bindings, ast.ret.variable));
    if (resolved.first != ast.fact_variable) {
      return Status::InvalidArgument(
          "the aggregated variable must be rooted at the fact variable");
    }
    query.measure_path = resolved.second;
  }
  return query;
}

}  // namespace x3
