#include "x3/engine.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "util/timer.h"
#include "x3/binder.h"
#include "x3/parser.h"

namespace x3 {

Result<CubeQuery> X3Engine::Compile(std::string_view query_text) const {
  X3_ASSIGN_OR_RETURN(AstQuery ast, ParseX3Query(query_text));
  return BindX3Query(ast);
}

Result<PreparedQuery> X3Engine::Prepare(const CubeQuery& query,
                                        ExecutionContext* ctx) const {
  ExecutionContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  X3_RETURN_IF_ERROR(ctx->CheckInterrupted());
  ScopedStageTimer stage(ctx->stats(), "materialize", ctx->tracer());
  X3_ASSIGN_OR_RETURN(CubeLattice lattice, BuildCubeLattice(query));
  X3_ASSIGN_OR_RETURN(FactTable facts, BuildFactTable(*db_, query, lattice));
  stage.AddRows(facts.size());
  return PreparedQuery(query, std::move(lattice), std::move(facts));
}

Result<X3ExecutionResult> X3Engine::Execute(std::string_view query_text,
                                            CubeAlgorithm algorithm,
                                            CubeComputeOptions options) const {
  X3_ASSIGN_OR_RETURN(CubeQuery query, Compile(query_text));
  return ExecuteQuery(query, algorithm, options);
}

Result<X3ExecutionResult> X3Engine::ExecuteQuery(
    const CubeQuery& query, CubeAlgorithm algorithm,
    CubeComputeOptions options) const {
  options.aggregate = query.aggregate;
  if (query.min_count > options.min_count) {
    options.min_count = query.min_count;
  }

  // One context for the whole pipeline: either the caller's (its
  // budget/temp_files win, see ComputeCube) or a local uncancellable
  // one wrapping the option fields.
  ExecutionContext local_ctx(ExecutionContext::Options{
      options.budget, options.temp_files, nullptr, std::nullopt});
  ExecutionContext* ctx =
      options.exec != nullptr ? options.exec : &local_ctx;
  options.exec = ctx;
  MemoryBudget* budget =
      ctx->budget() != nullptr ? ctx->budget() : options.budget;

  Timer timer;
  // Prepare records the "materialize" stage (with the fact count as its
  // row detail) and opens the pipeline's first trace span.
  Result<PreparedQuery> prepared = Prepare(query, ctx);
  X3_RETURN_IF_ERROR(prepared.status());
  CubeLattice lattice = std::move(prepared->lattice);
  FactTable facts = std::move(prepared->facts);
  double materialize_seconds = timer.ElapsedSeconds();

  // The materialized fact table is working memory of the query: charge
  // it for the duration of the cube computation so peak_memory reflects
  // the real footprint and budgeted algorithms see what is left.
  std::optional<ScopedReservation> facts_reservation;
  if (budget != nullptr) {
    facts_reservation.emplace(budget, facts.ApproxBytes());
  }
  X3_RETURN_IF_ERROR(ctx->CheckInterrupted());

  timer.Reset();
  CubeComputeStats stats;
  X3_ASSIGN_OR_RETURN(CubeResult cube, ComputeCube(algorithm, facts, lattice,
                                                   options, &stats));
  double cube_seconds = timer.ElapsedSeconds();
  if (budget != nullptr) {
    stats.peak_memory =
        std::max<uint64_t>(stats.peak_memory, budget->peak());
  }

  X3ExecutionResult result(std::move(lattice), std::move(facts),
                           std::move(cube));
  result.stats = stats;
  result.materialize_seconds = materialize_seconds;
  result.cube_seconds = cube_seconds;
  result.plan_seconds = ctx->stats()->TotalSeconds("plan");
  result.stage_timings = ctx->stats()->timings();
  return result;
}

Result<std::string> X3Engine::ExplainAnalyze(std::string_view query_text,
                                             CubeAlgorithm algorithm,
                                             CubeComputeOptions options) const {
  X3_ASSIGN_OR_RETURN(CubeQuery query, Compile(query_text));
  options.aggregate = query.aggregate;
  if (query.min_count > options.min_count) {
    options.min_count = query.min_count;
  }
  X3_ASSIGN_OR_RETURN(CubeLattice lattice, BuildCubeLattice(query));
  X3_ASSIGN_OR_RETURN(FactTable facts, BuildFactTable(*db_, query, lattice));
  return ExplainAnalyzeCube(algorithm, facts, lattice, options);
}

}  // namespace x3
