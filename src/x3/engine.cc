#include "x3/engine.h"

#include "util/timer.h"
#include "x3/binder.h"
#include "x3/parser.h"

namespace x3 {

Result<CubeQuery> X3Engine::Compile(std::string_view query_text) const {
  X3_ASSIGN_OR_RETURN(AstQuery ast, ParseX3Query(query_text));
  return BindX3Query(ast);
}

Result<X3ExecutionResult> X3Engine::Execute(std::string_view query_text,
                                            CubeAlgorithm algorithm,
                                            CubeComputeOptions options) const {
  X3_ASSIGN_OR_RETURN(CubeQuery query, Compile(query_text));
  return ExecuteQuery(query, algorithm, options);
}

Result<X3ExecutionResult> X3Engine::ExecuteQuery(
    const CubeQuery& query, CubeAlgorithm algorithm,
    CubeComputeOptions options) const {
  options.aggregate = query.aggregate;
  if (query.min_count > options.min_count) {
    options.min_count = query.min_count;
  }

  Timer timer;
  X3_ASSIGN_OR_RETURN(CubeLattice lattice, BuildCubeLattice(query));
  X3_ASSIGN_OR_RETURN(FactTable facts,
                      BuildFactTable(*db_, query, lattice));
  double materialize_seconds = timer.ElapsedSeconds();

  timer.Reset();
  CubeComputeStats stats;
  X3_ASSIGN_OR_RETURN(CubeResult cube, ComputeCube(algorithm, facts, lattice,
                                                   options, &stats));
  double cube_seconds = timer.ElapsedSeconds();

  X3ExecutionResult result(std::move(lattice), std::move(facts),
                           std::move(cube));
  result.stats = stats;
  result.materialize_seconds = materialize_seconds;
  result.cube_seconds = cube_seconds;
  return result;
}

}  // namespace x3
