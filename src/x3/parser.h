#ifndef X3_X3_PARSER_H_
#define X3_X3_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "relax/relaxation.h"
#include "util/result.h"

namespace x3 {

/// One step of a path in the query AST.
struct AstStep {
  bool descendant = false;  // '//' vs '/'
  bool attribute = false;   // '@name'
  std::string name;
};

/// A path: steps relative to a document or a variable.
struct AstPath {
  std::vector<AstStep> steps;

  /// Renders as "/a//b/@c" (pattern-parser syntax).
  std::string ToString() const;
};

/// "for $var in doc("file")//path" or "for $var in $other/path".
struct AstBinding {
  std::string variable;
  /// Non-empty when the source is doc("...").
  std::string doc;
  /// Empty when the source is a document; else the source variable.
  std::string source_variable;
  AstPath path;
};

/// "$n (LND, SP, PC-AD)" in the X^3 clause, optionally wrapped in a
/// value transform: "substring($n, 1, 1) (LND)" (the paper's
/// first-character dense grouping) or "lowercase($n) (LND)".
struct AstAxis {
  std::string variable;
  RelaxationSet relaxations;
  /// "", "substring" or "lowercase".
  std::string transform;
  /// substring length (substring start is fixed at 1).
  int64_t transform_length = 0;
};

/// "return COUNT($b)" / "return SUM($b/price)".
struct AstReturn {
  std::string function;
  std::string variable;
  AstPath path;  // optional path after the variable
};

/// A parsed X^3 query (Query 1 shape, plus the HAVING extension).
struct AstQuery {
  std::vector<AstBinding> bindings;
  /// The fact expression "$b/@id": variable + optional path.
  std::string fact_variable;
  AstPath fact_path;
  std::vector<AstAxis> axes;
  AstReturn ret;
  /// "having count >= N": iceberg threshold; 0 when absent.
  int64_t min_count = 0;
};

/// Parses the token stream of an X^3 query into an AST.
Result<AstQuery> ParseX3Query(std::string_view input);

}  // namespace x3

#endif  // X3_X3_PARSER_H_
