#ifndef X3_RELAX_AXIS_LATTICE_H_
#define X3_RELAX_AXIS_LATTICE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pattern/tree_pattern.h"
#include "relax/relaxation.h"
#include "util/result.h"

namespace x3 {

/// Index of a relaxation state within an axis's lattice.
using AxisStateId = uint32_t;

/// Bitmask over an axis's states (bit s = state s); used as the
/// admission mask of a binding in the fact table. Caps states at 64.
using AxisStateMask = uint64_t;
inline constexpr size_t kMaxAxisStates = 64;

/// One relaxation state of a grouping axis: the (partially) relaxed
/// pattern, and which pattern node carries the grouping value (absent
/// when the grouping node has been LND-deleted — the classical
/// "dimension removed" state).
struct AxisState {
  TreePattern pattern;
  PatternNodeId grouping_node = kNoPatternNode;
  /// Minimum number of relaxation ops from the rigid pattern.
  int min_steps = 0;
  /// Position in a topological order (0 = rigid).
  int topo_rank = 0;

  bool grouping_present() const { return grouping_node != kNoPatternNode; }
};

/// The relaxation-state DAG of one axis: all patterns reachable from
/// the rigid axis pattern by applying the permitted relaxations, with
/// one edge per single op. State 0 is always the rigid pattern; when
/// LND is permitted there is a unique "absent" state (the grouping node
/// deleted; the axis collapses to just the fact root, since conditions
/// on a removed dimension play no further role in the cube — this
/// matches the most-relaxed point (o) of the paper's Fig. 3).
class AxisLattice {
 public:
  /// Builds the closure. `base` is the rigid axis pattern: its root is
  /// the shared fact node; every other live node belongs to the axis and
  /// is in relaxation scope. `grouping_node` is the value-carrying node.
  static Result<AxisLattice> Build(const TreePattern& base,
                                   PatternNodeId grouping_node,
                                   RelaxationSet permitted,
                                   std::string axis_name = "");

  size_t num_states() const { return states_.size(); }
  const AxisState& state(AxisStateId id) const { return states_[id]; }
  AxisStateId rigid_state() const { return 0; }
  std::optional<AxisStateId> absent_state() const { return absent_; }
  const std::string& name() const { return name_; }
  RelaxationSet permitted() const { return permitted_; }

  /// One-step relaxation edges: succ = states one op more relaxed.
  const std::vector<AxisStateId>& successors(AxisStateId id) const {
    return successors_[id];
  }
  const std::vector<AxisStateId>& predecessors(AxisStateId id) const {
    return predecessors_[id];
  }

  /// State ids in topological order, least relaxed first.
  const std::vector<AxisStateId>& topo_order() const { return topo_order_; }

  /// True iff `to` is reachable from `from` by zero or more relaxation
  /// steps (i.e. `to` is at least as relaxed as `from`).
  bool Reachable(AxisStateId from, AxisStateId to) const {
    return (reachable_[from] >> to) & 1u;
  }

  /// Mask of all states reachable from `from` (including itself).
  AxisStateMask ReachableMask(AxisStateId from) const {
    return reachable_[from];
  }

  /// True iff the state DAG is a chain (each state has <= 1 successor
  /// and <= 1 predecessor); several algorithm variants specialize on
  /// chains.
  bool IsChain() const;

  /// Diagnostic dump, one line per state.
  std::string ToString() const;

 private:
  AxisLattice() = default;

  std::string name_;
  RelaxationSet permitted_;
  std::vector<AxisState> states_;
  std::vector<std::vector<AxisStateId>> successors_;
  std::vector<std::vector<AxisStateId>> predecessors_;
  std::vector<AxisStateId> topo_order_;
  /// reachable_[s] = bitmask of states reachable from s (closure).
  std::vector<AxisStateMask> reachable_;
  std::optional<AxisStateId> absent_;
};

}  // namespace x3

#endif  // X3_RELAX_AXIS_LATTICE_H_
