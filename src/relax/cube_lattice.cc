#include "relax/cube_lattice.h"

#include <algorithm>

#include "util/string_util.h"

namespace x3 {

Result<CubeLattice> CubeLattice::Build(std::vector<AxisLattice> axes) {
  if (axes.empty()) {
    return Status::InvalidArgument("cube lattice needs at least one axis");
  }
  CubeLattice lattice;
  lattice.axes_ = std::move(axes);
  lattice.strides_.resize(lattice.axes_.size());
  uint64_t stride = 1;
  for (size_t i = 0; i < lattice.axes_.size(); ++i) {
    lattice.strides_[i] = stride;
    uint64_t n = lattice.axes_[i].num_states();
    if (n == 0) return Status::InvalidArgument("axis with no states");
    if (stride > UINT64_MAX / n) {
      return Status::ResourceExhausted("cube lattice too large to index");
    }
    stride *= n;
  }
  lattice.num_cuboids_ = stride;
  return lattice;
}

std::vector<AxisStateId> CubeLattice::Decode(CuboidId id) const {
  std::vector<AxisStateId> states(axes_.size());
  for (size_t i = 0; i < axes_.size(); ++i) {
    states[i] = StateOf(id, i);
  }
  return states;
}

CuboidId CubeLattice::Encode(const std::vector<AxisStateId>& states) const {
  CuboidId id = 0;
  for (size_t i = 0; i < axes_.size(); ++i) {
    id += static_cast<uint64_t>(states[i]) * strides_[i];
  }
  return id;
}

std::vector<size_t> CubeLattice::PresentAxes(CuboidId id) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < axes_.size(); ++i) {
    if (axes_[i].state(StateOf(id, i)).grouping_present()) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<CuboidId> CubeLattice::MoreRelaxedNeighbors(CuboidId id) const {
  std::vector<CuboidId> out;
  for (size_t i = 0; i < axes_.size(); ++i) {
    AxisStateId s = StateOf(id, i);
    for (AxisStateId t : axes_[i].successors(s)) {
      out.push_back(id + (static_cast<uint64_t>(t) - s) * strides_[i]);
    }
  }
  return out;
}

std::vector<CuboidId> CubeLattice::LessRelaxedNeighbors(CuboidId id) const {
  std::vector<CuboidId> out;
  for (size_t i = 0; i < axes_.size(); ++i) {
    AxisStateId s = StateOf(id, i);
    for (AxisStateId t : axes_[i].predecessors(s)) {
      out.push_back(id - (static_cast<uint64_t>(s) - t) * strides_[i]);
    }
  }
  return out;
}

std::vector<CuboidId> CubeLattice::TopoOrder() const {
  std::vector<CuboidId> order(num_cuboids_);
  for (CuboidId id = 0; id < num_cuboids_; ++id) order[id] = id;
  // Sum of per-axis topo ranks strictly increases along every edge, so
  // sorting by it yields a topological order. Ties broken by id for
  // determinism.
  auto rank = [this](CuboidId id) {
    uint64_t total = 0;
    for (size_t i = 0; i < axes_.size(); ++i) {
      total += static_cast<uint64_t>(axes_[i].state(StateOf(id, i)).topo_rank);
    }
    return total;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](CuboidId a, CuboidId b) { return rank(a) < rank(b); });
  return order;
}

std::string CubeLattice::DescribeCuboid(CuboidId id) const {
  std::string out = "[";
  for (size_t i = 0; i < axes_.size(); ++i) {
    if (i > 0) out += " ";
    const AxisLattice& axis = axes_[i];
    const AxisState& state = axis.state(StateOf(id, i));
    out += axis.name().empty() ? StringPrintf("axis%zu", i) : axis.name();
    out += ":";
    out += state.grouping_present() ? state.pattern.ToString() : "ABSENT";
  }
  out += "]";
  return out;
}

}  // namespace x3
