#ifndef X3_RELAX_RELAXATION_H_
#define X3_RELAX_RELAXATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pattern/tree_pattern.h"
#include "util/result.h"

namespace x3 {

/// The three grouping-tree-pattern relaxations of §2.2.
enum class RelaxationType : uint8_t {
  /// Leaf Node Deletion: the classical "remove this dimension" (when
  /// applied to the grouping node) or condition removal (other leaves).
  kLND = 0,
  /// Sub-tree Promotion: a[./b/c] -> a[./b][.//c].
  kSP = 1,
  /// Parent-Child to Ancestor-Descendant edge generalization.
  kPCAD = 2,
};

const char* RelaxationTypeToString(RelaxationType type);

/// A set of permitted relaxations, as written in the X^3 clause:
/// "$n (LND, SP, PC-AD)".
class RelaxationSet {
 public:
  constexpr RelaxationSet() = default;

  static constexpr RelaxationSet None() { return RelaxationSet(); }
  static RelaxationSet Of(std::initializer_list<RelaxationType> types) {
    RelaxationSet s;
    for (RelaxationType t : types) s.Add(t);
    return s;
  }
  /// All three relaxations.
  static RelaxationSet All() {
    return Of({RelaxationType::kLND, RelaxationType::kSP,
               RelaxationType::kPCAD});
  }

  void Add(RelaxationType type) { bits_ |= Bit(type); }
  bool Contains(RelaxationType type) const {
    return (bits_ & Bit(type)) != 0;
  }
  bool empty() const { return bits_ == 0; }

  /// "LND, SP, PC-AD" rendering.
  std::string ToString() const;

  bool operator==(const RelaxationSet& other) const {
    return bits_ == other.bits_;
  }

 private:
  static constexpr uint8_t Bit(RelaxationType type) {
    return static_cast<uint8_t>(1u << static_cast<uint8_t>(type));
  }
  uint8_t bits_ = 0;
};

/// One concrete relaxation application site.
struct RelaxationOp {
  RelaxationType type;
  PatternNodeId target;
};

/// Lists every op of the permitted `set` applicable to `pattern`,
/// restricted to nodes in `scope` (the axis's own nodes; the shared
/// fact root is never relaxed).
///
/// Applicability (following §2.2 / Amer-Yahia et al.):
///  * PC-AD: any scoped node whose incoming edge is parent-child.
///  * SP: any scoped node whose parent is not the pattern root (the
///    subtree moves under its grandparent with a descendant edge).
///  * LND: any scoped leaf.
std::vector<RelaxationOp> ApplicableRelaxations(
    const TreePattern& pattern, const std::vector<PatternNodeId>& scope,
    RelaxationSet set);

/// Applies `op` to a copy of `pattern`.
Result<TreePattern> ApplyRelaxation(const TreePattern& pattern,
                                    const RelaxationOp& op);

}  // namespace x3

#endif  // X3_RELAX_RELAXATION_H_
