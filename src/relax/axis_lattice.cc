#include "relax/axis_lattice.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "util/string_util.h"

namespace x3 {
namespace {

/// Nodes in relaxation scope: every live node except the root.
std::vector<PatternNodeId> ScopeOf(const TreePattern& pattern) {
  std::vector<PatternNodeId> scope;
  for (PatternNodeId id : pattern.LiveNodes()) {
    if (id != pattern.root()) scope.push_back(id);
  }
  return scope;
}

/// The collapsed "absent" state: just the fact root.
TreePattern AbsentPattern(const TreePattern& base) {
  TreePattern out;
  out.SetRoot(base.node(base.root()).tag);
  return out;
}

}  // namespace

Result<AxisLattice> AxisLattice::Build(const TreePattern& base,
                                       PatternNodeId grouping_node,
                                       RelaxationSet permitted,
                                       std::string axis_name) {
  if (base.root() == kNoPatternNode) {
    return Status::InvalidArgument("axis pattern has no root");
  }
  if (!base.IsLive(grouping_node) || grouping_node == base.root()) {
    return Status::InvalidArgument(
        "grouping node must be a live non-root pattern node");
  }

  AxisLattice lattice;
  lattice.name_ = std::move(axis_name);
  lattice.permitted_ = permitted;

  std::unordered_map<std::string, AxisStateId> seen;

  auto intern_state = [&](TreePattern pattern, PatternNodeId grouping,
                          int steps) -> AxisStateId {
    std::string key = pattern.CanonicalForm(grouping);
    auto it = seen.find(key);
    if (it != seen.end()) {
      AxisState& existing = lattice.states_[it->second];
      existing.min_steps = std::min(existing.min_steps, steps);
      return it->second;
    }
    AxisStateId id = static_cast<AxisStateId>(lattice.states_.size());
    AxisState state;
    state.pattern = std::move(pattern);
    state.grouping_node = grouping;
    state.min_steps = steps;
    lattice.states_.push_back(std::move(state));
    lattice.successors_.emplace_back();
    lattice.predecessors_.emplace_back();
    seen.emplace(std::move(key), id);
    return id;
  };

  AxisStateId rigid = intern_state(base, grouping_node, 0);
  (void)rigid;

  std::deque<AxisStateId> queue{0};
  std::vector<bool> expanded;
  while (!queue.empty()) {
    AxisStateId current = queue.front();
    queue.pop_front();
    if (expanded.size() < lattice.states_.size()) {
      expanded.resize(lattice.states_.size(), false);
    }
    if (expanded[current]) continue;
    expanded[current] = true;

    // Copy out what we need: intern_state may reallocate states_.
    TreePattern pattern = lattice.states_[current].pattern;
    PatternNodeId grouping = lattice.states_[current].grouping_node;
    int steps = lattice.states_[current].min_steps;
    if (!lattice.states_[current].grouping_present()) {
      continue;  // absent state is terminal
    }

    std::vector<RelaxationOp> ops =
        ApplicableRelaxations(pattern, ScopeOf(pattern), permitted);
    for (const RelaxationOp& op : ops) {
      TreePattern next;
      PatternNodeId next_grouping = grouping;
      if (op.type == RelaxationType::kLND && op.target == grouping) {
        // Deleting the grouping node collapses the axis to "absent".
        next = AbsentPattern(pattern);
        next_grouping = kNoPatternNode;
      } else {
        X3_ASSIGN_OR_RETURN(next, ApplyRelaxation(pattern, op));
      }
      if (lattice.states_.size() >= kMaxAxisStates &&
          seen.find(next.CanonicalForm(next_grouping)) == seen.end()) {
        return Status::ResourceExhausted(StringPrintf(
            "axis '%s' exceeds %zu relaxation states; restrict the "
            "permitted relaxations",
            lattice.name_.c_str(), kMaxAxisStates));
      }
      AxisStateId next_id = intern_state(std::move(next), next_grouping,
                                         steps + 1);
      if (next_id != current) {
        auto& succ = lattice.successors_[current];
        if (std::find(succ.begin(), succ.end(), next_id) == succ.end()) {
          succ.push_back(next_id);
          lattice.predecessors_[next_id].push_back(current);
        }
        if (next_id >= expanded.size() || !expanded[next_id]) {
          queue.push_back(next_id);
        }
      }
    }
  }

  // Locate the absent state.
  for (AxisStateId i = 0; i < lattice.states_.size(); ++i) {
    if (!lattice.states_[i].grouping_present()) {
      lattice.absent_ = i;
      break;
    }
  }

  // Topological order (Kahn) — edges go less->more relaxed and the op
  // measure argument guarantees acyclicity.
  std::vector<int> indegree(lattice.states_.size(), 0);
  for (const auto& succ : lattice.successors_) {
    for (AxisStateId t : succ) ++indegree[t];
  }
  std::deque<AxisStateId> ready;
  for (AxisStateId i = 0; i < lattice.states_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    AxisStateId id = ready.front();
    ready.pop_front();
    lattice.states_[id].topo_rank =
        static_cast<int>(lattice.topo_order_.size());
    lattice.topo_order_.push_back(id);
    for (AxisStateId t : lattice.successors_[id]) {
      if (--indegree[t] == 0) ready.push_back(t);
    }
  }
  if (lattice.topo_order_.size() != lattice.states_.size()) {
    return Status::Internal("axis relaxation graph has a cycle");
  }

  // Transitive closure (reverse topological order; <= 64 states).
  lattice.reachable_.assign(lattice.states_.size(), 0);
  for (auto it = lattice.topo_order_.rbegin();
       it != lattice.topo_order_.rend(); ++it) {
    AxisStateId s = *it;
    AxisStateMask mask = AxisStateMask{1} << s;
    for (AxisStateId t : lattice.successors_[s]) {
      mask |= lattice.reachable_[t];
    }
    lattice.reachable_[s] = mask;
  }
  return lattice;
}

bool AxisLattice::IsChain() const {
  for (size_t i = 0; i < states_.size(); ++i) {
    if (successors_[i].size() > 1 || predecessors_[i].size() > 1) {
      return false;
    }
  }
  return true;
}

std::string AxisLattice::ToString() const {
  std::string out;
  for (AxisStateId i = 0; i < states_.size(); ++i) {
    const AxisState& s = states_[i];
    out += StringPrintf("state %u (steps=%d rank=%d%s): %s\n", i,
                        s.min_steps, s.topo_rank,
                        s.grouping_present() ? "" : " ABSENT",
                        s.pattern.ToString().c_str());
  }
  return out;
}

}  // namespace x3
