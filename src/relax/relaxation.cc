#include "relax/relaxation.h"

namespace x3 {

const char* RelaxationTypeToString(RelaxationType type) {
  switch (type) {
    case RelaxationType::kLND:
      return "LND";
    case RelaxationType::kSP:
      return "SP";
    case RelaxationType::kPCAD:
      return "PC-AD";
  }
  return "?";
}

std::string RelaxationSet::ToString() const {
  std::string out;
  for (RelaxationType t : {RelaxationType::kLND, RelaxationType::kSP,
                           RelaxationType::kPCAD}) {
    if (!Contains(t)) continue;
    if (!out.empty()) out += ", ";
    out += RelaxationTypeToString(t);
  }
  return out;
}

std::vector<RelaxationOp> ApplicableRelaxations(
    const TreePattern& pattern, const std::vector<PatternNodeId>& scope,
    RelaxationSet set) {
  std::vector<RelaxationOp> ops;
  for (PatternNodeId id : scope) {
    if (!pattern.IsLive(id) || id == pattern.root()) continue;
    const PatternNode& node = pattern.node(id);
    if (set.Contains(RelaxationType::kPCAD) &&
        node.edge == StructuralAxis::kChild) {
      ops.push_back({RelaxationType::kPCAD, id});
    }
    if (set.Contains(RelaxationType::kSP) &&
        node.parent != pattern.root() && node.parent != kNoPatternNode) {
      ops.push_back({RelaxationType::kSP, id});
    }
    if (set.Contains(RelaxationType::kLND) && pattern.IsLeaf(id)) {
      ops.push_back({RelaxationType::kLND, id});
    }
  }
  return ops;
}

Result<TreePattern> ApplyRelaxation(const TreePattern& pattern,
                                    const RelaxationOp& op) {
  TreePattern out = pattern;
  switch (op.type) {
    case RelaxationType::kLND:
      X3_RETURN_IF_ERROR(out.DeleteLeaf(op.target));
      break;
    case RelaxationType::kSP:
      X3_RETURN_IF_ERROR(out.PromoteToGrandparent(op.target));
      break;
    case RelaxationType::kPCAD:
      X3_RETURN_IF_ERROR(out.GeneralizeEdge(op.target));
      break;
  }
  return out;
}

}  // namespace x3
