#ifndef X3_RELAX_CUBE_LATTICE_H_
#define X3_RELAX_CUBE_LATTICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relax/axis_lattice.h"
#include "util/result.h"

namespace x3 {

/// Identifier of a cuboid (lattice point): a mixed-radix encoding of
/// the per-axis state ids.
using CuboidId = uint64_t;

/// The X^3 cube lattice: the product of the per-axis relaxation-state
/// DAGs. Each lattice point (cuboid) assigns one relaxation state to
/// every axis; its groups are determined by the values of the axes
/// whose grouping node is still present. The global top is the rigid
/// pattern on every axis; an edge is a single relaxation on a single
/// axis (Fig. 3 of the paper).
class CubeLattice {
 public:
  /// Takes ownership of the per-axis lattices.
  static Result<CubeLattice> Build(std::vector<AxisLattice> axes);

  size_t num_axes() const { return axes_.size(); }
  const AxisLattice& axis(size_t i) const { return axes_[i]; }

  /// Total number of cuboids (product of per-axis state counts).
  uint64_t num_cuboids() const { return num_cuboids_; }

  /// State of `axis` in cuboid `id`.
  AxisStateId StateOf(CuboidId id, size_t axis) const {
    return static_cast<AxisStateId>((id / strides_[axis]) %
                                    axes_[axis].num_states());
  }

  /// Decodes all states of a cuboid.
  std::vector<AxisStateId> Decode(CuboidId id) const;

  /// Encodes per-axis states into a CuboidId.
  CuboidId Encode(const std::vector<AxisStateId>& states) const;

  /// The least relaxed cuboid (all axes rigid) — the lattice top in the
  /// paper's orientation ("finest level of aggregation").
  CuboidId FinestCuboid() const { return 0; }

  /// Axes with a present grouping node in `id`, in axis order.
  std::vector<size_t> PresentAxes(CuboidId id) const;

  /// One-step-more-relaxed neighbours (children in the refinement
  /// direction used by bottom-up computation they are parents; we use
  /// the paper's "more relaxed = lower in the lattice" orientation).
  std::vector<CuboidId> MoreRelaxedNeighbors(CuboidId id) const;
  /// One-step-less-relaxed neighbours.
  std::vector<CuboidId> LessRelaxedNeighbors(CuboidId id) const;

  /// All cuboids in a topological order, least relaxed (finest) first.
  /// Every edge goes from an earlier to a later element.
  std::vector<CuboidId> TopoOrder() const;

  /// Human-readable description of a cuboid, e.g.
  /// "[n:/publication(/author(/name!)) p:ABSENT y:/publication(/year!)]".
  std::string DescribeCuboid(CuboidId id) const;

 private:
  CubeLattice() = default;

  std::vector<AxisLattice> axes_;
  std::vector<uint64_t> strides_;
  uint64_t num_cuboids_ = 0;
};

}  // namespace x3

#endif  // X3_RELAX_CUBE_LATTICE_H_
