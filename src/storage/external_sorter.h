#ifndef X3_STORAGE_EXTERNAL_SORTER_H_
#define X3_STORAGE_EXTERNAL_SORTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/temp_file.h"
#include "util/exec.h"
#include "util/memory_budget.h"
#include "util/result.h"
#include "util/status.h"

namespace x3 {

/// Orders two serialized records; returns <0, 0, >0 like memcmp.
using RecordComparator =
    std::function<int(std::string_view, std::string_view)>;

/// Lexicographic byte order (the default).
int BytewiseCompare(std::string_view a, std::string_view b);

/// Pull-iterator over sorted records.
class SortedStream {
 public:
  virtual ~SortedStream() = default;

  /// Advances to the next record. Returns false at end of stream; on
  /// error sets *status (records may not be consumed after an error).
  virtual bool Next(std::string* record, Status* status) = 0;
};

/// Counters describing a sort's execution strategy.
struct SortStats {
  uint64_t records = 0;
  uint64_t bytes = 0;
  uint64_t runs_spilled = 0;
  uint64_t spill_bytes = 0;
  uint64_t merge_passes = 0;
  bool in_memory = true;
};

/// External merge sort over variable-length byte records.
///
/// The paper's algorithms "used the quicksort for an in-memory sort, and
/// the mergesort for an external sort" (§4); this class is exactly that
/// policy: records are buffered and quicksorted while they fit in the
/// `MemoryBudget`; when the budget is exhausted the buffer is sorted and
/// spilled as a run, and `Finish()` returns a k-way merge over the runs
/// (cascaded into multiple passes when the run count exceeds the fan-in).
class ExternalSorter {
 public:
  struct Options {
    /// Budget charged for buffered records; nullptr or unlimited budget
    /// means a pure in-memory sort.
    MemoryBudget* budget = nullptr;
    /// Where spill runs live. Required if spilling can happen.
    TempFileManager* temp_files = nullptr;
    RecordComparator comparator = BytewiseCompare;
    /// Maximum runs merged at once.
    size_t merge_fanin = 64;
    /// Polled during spills and cascade merges so a cancelled or expired
    /// query unwinds mid-sort instead of finishing the pass. nullptr =
    /// uninterruptible.
    ExecutionContext* exec = nullptr;
    /// Block-compress spill runs: records are framed into ~64 KiB
    /// blocks, each stored as [raw u32][stored u32][payload] where
    /// stored < raw means a compressed payload and stored == raw a
    /// stored-raw fallback. Applies to spill and merge runs alike;
    /// SortStats::spill_bytes counts on-disk (compressed) bytes.
    bool compress_spill = false;
  };

  explicit ExternalSorter(Options options);
  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Adds one record.
  Status Add(std::string_view record);

  /// Completes the sort; after this, Add() is invalid. The returned
  /// stream yields records in comparator order (duplicates preserved,
  /// stable not guaranteed).
  Result<std::unique_ptr<SortedStream>> Finish();

  const SortStats& stats() const { return stats_; }

 private:
  Status SpillBuffer();
  /// Reduces runs_ to at most merge_fanin via intermediate merges.
  Status CascadeMerges();

  Options options_;
  std::vector<std::string> buffer_;
  size_t buffered_bytes_ = 0;
  std::vector<std::string> runs_;  // spill file paths
  SortStats stats_;
  bool finished_ = false;
};

}  // namespace x3

#endif  // X3_STORAGE_EXTERNAL_SORTER_H_
