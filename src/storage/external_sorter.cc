#include "storage/external_sorter.h"

#include <algorithm>
#include <cstring>
#include <queue>

#include "util/compress.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace x3 {

namespace {

// Process-wide mirrors of SortStats (DESIGN.md §9): the struct stays
// the per-sort test surface, these feed the exported registry.
Counter& RunsSpilledCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_sort_runs_spilled_total", "Sorted runs spilled to temp files");
  return *c;
}
Counter& SpillBytesCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_sort_spill_bytes_total", "Bytes written to sort spill runs");
  return *c;
}
Counter& MergePassesCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_sort_merge_passes_total", "K-way merge passes over spilled runs");
  return *c;
}
Counter& SpillRawBytesCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_sort_spill_raw_bytes_total",
      "Uncompressed bytes framed into compressed spill blocks");
  return *c;
}
Counter& SpillBlocksCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_sort_spill_blocks_total",
      "Blocks written to compressed spill runs");
  return *c;
}

}  // namespace

int BytewiseCompare(std::string_view a, std::string_view b) {
  int c = std::memcmp(a.data(), b.data(), std::min(a.size(), b.size()));
  if (c != 0) return c;
  if (a.size() < b.size()) return -1;
  if (a.size() > b.size()) return 1;
  return 0;
}

namespace {

/// Fixed per-record bookkeeping charge (std::string header + vector slot
/// + allocator slack), in addition to payload bytes.
constexpr size_t kRecordOverhead = 48;

/// Target uncompressed size of one spill block. Blocks end only at
/// record boundaries, so a record larger than this makes one oversized
/// block rather than spanning two.
constexpr size_t kSpillBlockSize = 64 * 1024;

/// Ceiling on the raw-size field accepted when reading a block back —
/// a corrupt header must not drive a multi-gigabyte allocation.
constexpr uint32_t kMaxBlockRawSize = 1u << 30;

/// Writes length-prefixed records to a run file through the Env.
/// Compressed mode frames them into blocks instead:
///   [raw u32][stored u32][payload ...]
/// with stored < raw for a compressed payload and stored == raw for the
/// stored-raw fallback (incompressible block). Field encoding is
/// native-endian, matching the record length prefixes — runs never
/// leave the machine that wrote them.
class RunWriter {
 public:
  explicit RunWriter(bool compress) : compress_(compress) {}

  Status Open(Env* env, const std::string& path) {
    path_ = path;
    return writer_.Open(env, path);
  }

  Status Append(std::string_view record) {
    uint32_t len = static_cast<uint32_t>(record.size());
    if (compress_) {
      block_.append(reinterpret_cast<const char*>(&len), sizeof(len));
      block_.append(record);
      if (block_.size() >= kSpillBlockSize) return FlushBlock();
      return Status::OK();
    }
    X3_RETURN_IF_ERROR(writer_.Append(
        std::string_view(reinterpret_cast<const char*>(&len), sizeof(len))));
    if (len > 0) X3_RETURN_IF_ERROR(writer_.Append(record));
    bytes_ += sizeof(len) + len;
    return Status::OK();
  }

  Status Close() {
    if (compress_ && !block_.empty()) X3_RETURN_IF_ERROR(FlushBlock());
    return writer_.Close();
  }

  uint64_t bytes() const { return bytes_; }

 private:
  Status FlushBlock() {
    uint32_t raw = static_cast<uint32_t>(block_.size());
    CompressString(block_, &packed_);
    std::string_view payload =
        packed_.size() < block_.size() ? std::string_view(packed_)
                                       : std::string_view(block_);
    uint32_t stored = static_cast<uint32_t>(payload.size());
    X3_RETURN_IF_ERROR(writer_.Append(
        std::string_view(reinterpret_cast<const char*>(&raw), sizeof(raw))));
    X3_RETURN_IF_ERROR(writer_.Append(std::string_view(
        reinterpret_cast<const char*>(&stored), sizeof(stored))));
    X3_RETURN_IF_ERROR(writer_.Append(payload));
    bytes_ += sizeof(raw) + sizeof(stored) + stored;
    SpillRawBytesCounter().Increment(raw);
    SpillBlocksCounter().Increment();
    block_.clear();
    return Status::OK();
  }

  SequentialFileWriter writer_;
  std::string path_;
  bool compress_;
  std::string block_;   // pending uncompressed block
  std::string packed_;  // reused compression output
  uint64_t bytes_ = 0;
};

/// Reads length-prefixed records back from a run file through the Env.
/// In compressed mode, inflates one block at a time and serves records
/// out of the inflated buffer; any malformed frame surfaces as
/// Corruption, never a crash or over-read.
class RunReader {
 public:
  explicit RunReader(bool compress) : compress_(compress) {}

  Status Open(Env* env, const std::string& path) {
    path_ = path;
    return reader_.Open(env, path);
  }

  /// Returns false at EOF.
  bool Next(std::string* record, Status* status) {
    if (compress_) return NextFromBlock(record, status);
    uint32_t len = 0;
    size_t got = 0;
    Status s = reader_.ReadPartial(&len, sizeof(len), &got);
    if (!s.ok()) {
      *status = s;
      return false;
    }
    if (got == 0) return false;  // clean EOF between records
    if (got != sizeof(len)) {
      *status =
          Status::Corruption("truncated record header in run " + path_);
      return false;
    }
    record->resize(len);
    if (len > 0) {
      s = reader_.Read(record->data(), len);
      if (!s.ok()) {
        *status = s;
        return false;
      }
    }
    return true;
  }

 private:
  bool NextFromBlock(std::string* record, Status* status) {
    if (pos_ >= block_.size()) {
      if (!LoadBlock(status)) return false;
    }
    if (pos_ + sizeof(uint32_t) > block_.size()) {
      *status = Status::Corruption("truncated record header in block of " +
                                   path_);
      return false;
    }
    uint32_t len = 0;
    std::memcpy(&len, block_.data() + pos_, sizeof(len));
    pos_ += sizeof(len);
    if (pos_ + len > block_.size()) {
      *status =
          Status::Corruption("record overruns block boundary in " + path_);
      return false;
    }
    record->assign(block_, pos_, len);
    pos_ += len;
    return true;
  }

  /// Reads and inflates the next block. Returns false at clean EOF or
  /// on error (distinguished via *status).
  bool LoadBlock(Status* status) {
    uint32_t header[2];  // raw, stored
    size_t got = 0;
    Status s = reader_.ReadPartial(header, sizeof(header), &got);
    if (!s.ok()) {
      *status = s;
      return false;
    }
    if (got == 0) return false;  // clean EOF between blocks
    if (got != sizeof(header)) {
      *status = Status::Corruption("truncated block header in " + path_);
      return false;
    }
    uint32_t raw = header[0];
    uint32_t stored = header[1];
    if (raw > kMaxBlockRawSize || stored > raw) {
      *status = Status::Corruption("implausible block header in " + path_);
      return false;
    }
    payload_.resize(stored);
    if (stored > 0) {
      s = reader_.Read(payload_.data(), stored);
      if (!s.ok()) {
        *status = s;
        return false;
      }
    }
    if (stored == raw) {
      block_ = std::move(payload_);
    } else {
      Result<std::string> inflated = DecompressString(payload_, raw);
      if (!inflated.ok()) {
        *status = inflated.status();
        return false;
      }
      block_ = std::move(*inflated);
    }
    pos_ = 0;
    if (block_.empty()) {
      *status = Status::Corruption("empty block in " + path_);
      return false;
    }
    return true;
  }

  SequentialFileReader reader_;
  std::string path_;
  bool compress_;
  std::string block_;    // current inflated block
  std::string payload_;  // raw on-disk payload scratch
  size_t pos_ = 0;
};

/// Streams a sorted in-memory buffer.
class VectorStream : public SortedStream {
 public:
  explicit VectorStream(std::vector<std::string> records)
      : records_(std::move(records)) {}

  bool Next(std::string* record, Status* status) override {
    (void)status;
    if (pos_ >= records_.size()) return false;
    *record = std::move(records_[pos_++]);
    return true;
  }

 private:
  std::vector<std::string> records_;
  size_t pos_ = 0;
};

/// K-way merge over run files using a tournament heap.
class MergeStream : public SortedStream {
 public:
  MergeStream(Env* env, std::vector<std::string> run_paths,
              RecordComparator cmp, bool compressed)
      : env_(env),
        run_paths_(std::move(run_paths)),
        cmp_(std::move(cmp)),
        compressed_(compressed) {}

  Status Init() {
    readers_.resize(run_paths_.size());
    heads_.resize(run_paths_.size());
    for (size_t i = 0; i < run_paths_.size(); ++i) {
      readers_[i] = std::make_unique<RunReader>(compressed_);
      X3_RETURN_IF_ERROR(readers_[i]->Open(env_, run_paths_[i]));
      Status s;
      if (readers_[i]->Next(&heads_[i], &s)) {
        heap_.push_back(i);
      } else if (!s.ok()) {
        return s;
      }
    }
    auto greater = [this](size_t a, size_t b) {
      int c = cmp_(heads_[a], heads_[b]);
      if (c != 0) return c > 0;
      return a > b;  // deterministic tie-break on run index
    };
    std::make_heap(heap_.begin(), heap_.end(), greater);
    initialized_ = true;
    return Status::OK();
  }

  bool Next(std::string* record, Status* status) override {
    X3_DCHECK(initialized_);
    if (heap_.empty()) return false;
    auto greater = [this](size_t a, size_t b) {
      int c = cmp_(heads_[a], heads_[b]);
      if (c != 0) return c > 0;
      return a > b;
    };
    std::pop_heap(heap_.begin(), heap_.end(), greater);
    size_t idx = heap_.back();
    heap_.pop_back();
    *record = std::move(heads_[idx]);
    Status s;
    if (readers_[idx]->Next(&heads_[idx], &s)) {
      heap_.push_back(idx);
      std::push_heap(heap_.begin(), heap_.end(), greater);
    } else if (!s.ok()) {
      *status = s;
      return false;
    }
    return true;
  }

 private:
  Env* env_;
  std::vector<std::string> run_paths_;
  RecordComparator cmp_;
  bool compressed_;
  std::vector<std::unique_ptr<RunReader>> readers_;
  std::vector<std::string> heads_;
  std::vector<size_t> heap_;
  bool initialized_ = false;
};

}  // namespace

ExternalSorter::ExternalSorter(Options options)
    : options_(std::move(options)) {}

ExternalSorter::~ExternalSorter() {
  if (options_.budget != nullptr) {
    options_.budget->Release(buffered_bytes_);
  }
}

Status ExternalSorter::Add(std::string_view record) {
  X3_CHECK(!finished_) << "Add after Finish";
  ++stats_.records;
  stats_.bytes += record.size();
  size_t charge = record.size() + kRecordOverhead;
  if (options_.budget != nullptr && !options_.budget->unlimited()) {
    if (!options_.budget->WouldFit(charge) && !buffer_.empty()) {
      X3_RETURN_IF_ERROR(SpillBuffer());
    }
    // A single record larger than the whole budget still has to be
    // buffered; overshoot is recorded rather than failing the sort.
    options_.budget->ForceReserve(charge);
  }
  buffered_bytes_ += charge;
  buffer_.emplace_back(record);
  return Status::OK();
}

Status ExternalSorter::SpillBuffer() {
  if (options_.temp_files == nullptr) {
    return Status::ResourceExhausted(
        "sort exceeded memory budget and no temp file manager configured");
  }
  if (options_.exec != nullptr) {
    X3_RETURN_IF_ERROR(options_.exec->CheckInterrupted());
  }
  X3_TRACE_SPAN(options_.exec != nullptr ? options_.exec->tracer()
                                         : &Tracer::Global(),
                "sort/spill");
  std::sort(buffer_.begin(), buffer_.end(),
            [this](const std::string& a, const std::string& b) {
              return options_.comparator(a, b) < 0;
            });
  std::string path = options_.temp_files->NextPath("run");
  RunWriter writer(options_.compress_spill);
  X3_RETURN_IF_ERROR(writer.Open(options_.temp_files->env(), path));
  for (const std::string& rec : buffer_) {
    X3_RETURN_IF_ERROR(writer.Append(rec));
  }
  X3_RETURN_IF_ERROR(writer.Close());
  stats_.spill_bytes += writer.bytes();
  ++stats_.runs_spilled;
  RunsSpilledCounter().Increment();
  SpillBytesCounter().Increment(writer.bytes());
  stats_.in_memory = false;
  runs_.push_back(path);
  buffer_.clear();
  if (options_.budget != nullptr) options_.budget->Release(buffered_bytes_);
  buffered_bytes_ = 0;
  return Status::OK();
}

Status ExternalSorter::CascadeMerges() {
  while (runs_.size() > options_.merge_fanin) {
    X3_TRACE_SPAN(options_.exec != nullptr ? options_.exec->tracer()
                                           : &Tracer::Global(),
                  "sort/merge-pass");
    std::vector<std::string> group(
        runs_.begin(),
        runs_.begin() + static_cast<ptrdiff_t>(options_.merge_fanin));
    runs_.erase(runs_.begin(),
                runs_.begin() + static_cast<ptrdiff_t>(options_.merge_fanin));
    MergeStream merge(options_.temp_files->env(), group, options_.comparator,
                      options_.compress_spill);
    X3_RETURN_IF_ERROR(merge.Init());
    std::string out_path = options_.temp_files->NextPath("merge");
    RunWriter writer(options_.compress_spill);
    X3_RETURN_IF_ERROR(writer.Open(options_.temp_files->env(), out_path));
    std::string rec;
    Status s;
    while (merge.Next(&rec, &s)) {
      if (options_.exec != nullptr) {
        X3_RETURN_IF_ERROR(options_.exec->Poll());
      }
      X3_RETURN_IF_ERROR(writer.Append(rec));
    }
    X3_RETURN_IF_ERROR(s);
    X3_RETURN_IF_ERROR(writer.Close());
    for (const std::string& p : group) options_.temp_files->Remove(p);
    runs_.push_back(out_path);
    ++stats_.merge_passes;
    MergePassesCounter().Increment();
  }
  return Status::OK();
}

Result<std::unique_ptr<SortedStream>> ExternalSorter::Finish() {
  X3_CHECK(!finished_) << "Finish called twice";
  finished_ = true;
  if (runs_.empty()) {
    // Pure in-memory sort (quicksort).
    std::sort(buffer_.begin(), buffer_.end(),
              [this](const std::string& a, const std::string& b) {
                return options_.comparator(a, b) < 0;
              });
    if (options_.budget != nullptr) {
      options_.budget->Release(buffered_bytes_);
      buffered_bytes_ = 0;
    }
    return std::unique_ptr<SortedStream>(
        std::make_unique<VectorStream>(std::move(buffer_)));
  }
  if (!buffer_.empty()) {
    X3_RETURN_IF_ERROR(SpillBuffer());
  }
  X3_RETURN_IF_ERROR(CascadeMerges());
  ++stats_.merge_passes;
  MergePassesCounter().Increment();
  auto merge = std::make_unique<MergeStream>(
      options_.temp_files->env(), runs_, options_.comparator,
      options_.compress_spill);
  X3_RETURN_IF_ERROR(merge->Init());
  return std::unique_ptr<SortedStream>(std::move(merge));
}

}  // namespace x3
