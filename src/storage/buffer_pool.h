#ifndef X3_STORAGE_BUFFER_POOL_H_
#define X3_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "storage/page_file.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace x3 {

class BufferPool;

/// Pin on a buffered page. While alive, the frame cannot be evicted.
/// Obtained from BufferPool::Fetch/New; unpins on destruction.
class PageHandle {
 public:
  PageHandle() = default;
  ~PageHandle() { Release(); }

  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return page_id_; }

  /// Read access to the page contents.
  const Page& page() const;

  /// Write access; marks the frame dirty.
  Page& MutablePage();

  /// Unpins early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, size_t frame, PageId page_id)
      : pool_(pool), frame_(frame), page_id_(page_id) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
};

/// Counters describing buffer pool traffic.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
};

/// A fixed-capacity LRU buffer pool over a single PageFile.
///
/// This is the memory model the paper's substrate (TIMBER with a 512 MB
/// pool over 8 KB pages) imposes on the cube algorithms: all base-data
/// and intermediate-file access goes through here, so page hit/miss
/// counts give a machine-independent I/O cost alongside wall-clock time.
///
/// Thread safety: the page table, LRU list, free list and stats are
/// guarded by `mu_` (rank lock_rank::kBufferPool), so Fetch/New/
/// FlushAll and handle release may be called from concurrent workers.
/// Page *payload* access via a PageHandle deliberately bypasses the
/// lock: a pinned frame is never evicted or reused, `frames_` is never
/// resized after construction, and writers of the same page must
/// coordinate among themselves (same rule as before the pool was
/// lock-protected). Disk I/O for misses/evictions currently happens
/// with `mu_` held — acceptable at the engine's stage-granular
/// concurrency; a future serving layer would split the lock. See
/// docs/STATIC_ANALYSIS.md §7 for the annotation macros and the full
/// lock-rank table.
class BufferPool {
 public:
  /// Creates a pool of `capacity` frames over `file` (not owned; must
  /// outlive the pool).
  BufferPool(PageFile* file, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches page `id`, reading from disk on miss. Fails with
  /// ResourceExhausted when every frame is pinned.
  Result<PageHandle> Fetch(PageId id) X3_EXCLUDES(mu_);

  /// Allocates a fresh page in the file and returns it pinned (zeroed,
  /// dirty).
  Result<PageHandle> New() X3_EXCLUDES(mu_);

  /// Writes back all dirty frames.
  Status FlushAll() X3_EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }
  /// Snapshot of the traffic counters (by value: the counters are
  /// guarded, a reference would escape the lock).
  BufferPoolStats stats() const X3_EXCLUDES(mu_);
  PageFile* file() { return file_; }

 private:
  friend class PageHandle;

  struct Frame {
    Page page;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    /// Position in lru_ when unpinned; lru_.end() otherwise.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(size_t frame) X3_EXCLUDES(mu_);
  void MarkDirty(size_t frame) X3_EXCLUDES(mu_);
  /// Finds a frame for a new resident page, evicting if needed.
  Result<size_t> GrabFrame() X3_REQUIRES(mu_);
  /// Payload of a pinned frame. Outside the analysis on purpose: pin
  /// protection (not mu_) is what makes the access safe — see the
  /// class comment.
  Page& PinnedPage(size_t frame) X3_NO_THREAD_SAFETY_ANALYSIS {
    return frames_[frame].page;
  }

  PageFile* file_;
  size_t capacity_;
  mutable Mutex mu_{lock_rank::kBufferPool};
  /// Sized once in the constructor, never resized: PinnedPage indexes
  /// it without the lock under pin protection.
  std::vector<Frame> frames_ X3_GUARDED_BY(mu_);
  std::vector<size_t> free_frames_ X3_GUARDED_BY(mu_);
  std::unordered_map<PageId, size_t> page_table_ X3_GUARDED_BY(mu_);
  /// Unpinned frames, least recently used first.
  std::list<size_t> lru_ X3_GUARDED_BY(mu_);
  BufferPoolStats stats_ X3_GUARDED_BY(mu_);
};

}  // namespace x3

#endif  // X3_STORAGE_BUFFER_POOL_H_
