#ifndef X3_STORAGE_BUFFER_POOL_H_
#define X3_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "storage/page_file.h"
#include "util/result.h"
#include "util/status.h"

namespace x3 {

class BufferPool;

/// Pin on a buffered page. While alive, the frame cannot be evicted.
/// Obtained from BufferPool::Fetch/New; unpins on destruction.
class PageHandle {
 public:
  PageHandle() = default;
  ~PageHandle() { Release(); }

  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return page_id_; }

  /// Read access to the page contents.
  const Page& page() const;

  /// Write access; marks the frame dirty.
  Page& MutablePage();

  /// Unpins early (also done by the destructor).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, size_t frame, PageId page_id)
      : pool_(pool), frame_(frame), page_id_(page_id) {}

  BufferPool* pool_ = nullptr;
  size_t frame_ = 0;
  PageId page_id_ = kInvalidPageId;
};

/// Counters describing buffer pool traffic.
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
};

/// A fixed-capacity LRU buffer pool over a single PageFile.
///
/// This is the memory model the paper's substrate (TIMBER with a 512 MB
/// pool over 8 KB pages) imposes on the cube algorithms: all base-data
/// and intermediate-file access goes through here, so page hit/miss
/// counts give a machine-independent I/O cost alongside wall-clock time.
class BufferPool {
 public:
  /// Creates a pool of `capacity` frames over `file` (not owned; must
  /// outlive the pool).
  BufferPool(PageFile* file, size_t capacity);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Fetches page `id`, reading from disk on miss. Fails with
  /// ResourceExhausted when every frame is pinned.
  Result<PageHandle> Fetch(PageId id);

  /// Allocates a fresh page in the file and returns it pinned (zeroed,
  /// dirty).
  Result<PageHandle> New();

  /// Writes back all dirty frames.
  Status FlushAll();

  size_t capacity() const { return capacity_; }
  const BufferPoolStats& stats() const { return stats_; }
  PageFile* file() { return file_; }

 private:
  friend class PageHandle;

  struct Frame {
    Page page;
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    /// Position in lru_ when unpinned; lru_.end() otherwise.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  void Unpin(size_t frame);
  void MarkDirty(size_t frame);
  /// Finds a frame for a new resident page, evicting if needed.
  Result<size_t> GrabFrame();

  PageFile* file_;
  size_t capacity_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> page_table_;
  /// Unpinned frames, least recently used first.
  std::list<size_t> lru_;
  BufferPoolStats stats_;
};

}  // namespace x3

#endif  // X3_STORAGE_BUFFER_POOL_H_
