#ifndef X3_STORAGE_PAGE_FILE_H_
#define X3_STORAGE_PAGE_FILE_H_

#include <cstdio>
#include <string>

#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace x3 {

/// A file of fixed-size pages with read/write/append, the unit the
/// buffer pool operates on. Not thread-safe — and deliberately so: the
/// page layer serves document storage and pattern materialization,
/// which stay single-threaded. Parallel cube execution never touches
/// it (sort spills go through TempFileManager + stdio streams owned by
/// one worker each).
class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Opens (creating if necessary) the file at `path`. If `truncate`,
  /// existing contents are discarded.
  Status Open(const std::string& path, bool truncate);

  /// Flushes and closes. Safe to call twice.
  Status Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Number of pages currently in the file.
  PageId page_count() const { return page_count_; }

  /// Reads page `id` into `*page`.
  Status ReadPage(PageId id, Page* page);

  /// Writes `page` at `id`; `id` must be < page_count().
  Status WritePage(PageId id, const Page& page);

  /// Appends a new zeroed page, returning its id.
  Result<PageId> AllocatePage();

  Status Flush();

  /// Lifetime I/O counters (for cost reporting).
  uint64_t pages_read() const { return pages_read_; }
  uint64_t pages_written() const { return pages_written_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  PageId page_count_ = 0;
  uint64_t pages_read_ = 0;
  uint64_t pages_written_ = 0;
};

}  // namespace x3

#endif  // X3_STORAGE_PAGE_FILE_H_
