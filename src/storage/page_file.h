#ifndef X3_STORAGE_PAGE_FILE_H_
#define X3_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/page.h"
#include "util/env.h"
#include "util/hash.h"
#include "util/result.h"
#include "util/status.h"

namespace x3 {

/// Bytes of the per-page trailer appended to every page on disk: a
/// 64-bit checksum of the payload, seeded with the page id. In-memory
/// pages stay exactly kPageSize; only the file layout carries the
/// trailer, so record formats (slotted pages, node arrays) are
/// unaffected.
inline constexpr size_t kPageTrailerSize = sizeof(uint64_t);

/// On-disk footprint of one page (payload + trailer).
inline constexpr size_t kDiskPageSize = kPageSize + kPageTrailerSize;

/// Checksum of a page payload. Mixing the page id into the seed makes a
/// page written at the wrong offset (or a stale trailer copied from
/// another page) detectable, not just bit flips. FNV-1a with a
/// splitmix64 finalizer: fast, non-cryptographic, XXH-class quality for
/// 8 KiB inputs.
inline uint64_t PageChecksum(const uint8_t* payload, PageId id) {
  uint64_t seed = 0xcbf29ce484222325ULL ^
                  (static_cast<uint64_t>(id) * 0x9e3779b97f4a7c15ULL);
  return HashFinalize(Fnv1a64(payload, kPageSize, seed));
}

/// A file of fixed-size pages with read/write/append, the unit the
/// buffer pool operates on. All I/O goes through an Env (injectable for
/// fault testing); every page carries a checksum trailer on disk, and
/// ReadPage surfaces Corruption — naming the page id — instead of
/// serving a torn or bit-flipped page. Offsets are uint64_t end to end,
/// so files past 2 GiB are safe (the old stdio implementation did
/// `long` arithmetic that overflowed there).
///
/// Not thread-safe — and deliberately so: the page layer serves
/// document storage and pattern materialization, which stay
/// single-threaded. Parallel cube execution never touches it (sort
/// spills go through TempFileManager + Env files owned by one worker
/// each).
class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Opens (creating if necessary) the file at `path`. If `truncate`,
  /// existing contents are discarded. `env` = nullptr uses
  /// Env::Default(). An existing file whose size is not a multiple of
  /// kDiskPageSize (e.g. truncated mid-page by a crash) is Corruption.
  Status Open(const std::string& path, bool truncate, Env* env = nullptr);

  /// Flushes and closes. Safe to call twice.
  Status Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Number of pages currently in the file.
  PageId page_count() const { return page_count_; }

  /// Largest number of pages a file can hold (kInvalidPageId is
  /// reserved); AllocatePage refuses to wrap past it.
  static constexpr PageId kMaxPageCount = kInvalidPageId;

  /// Reads page `id` into `*page`, verifying the checksum trailer.
  /// A mismatch (torn write, bit flip, stale trailer) is Corruption
  /// with the page id in the message.
  Status ReadPage(PageId id, Page* page);

  /// Writes `page` at `id` with a fresh trailer; `id` must be
  /// < page_count().
  Status WritePage(PageId id, const Page& page);

  /// Appends a new zeroed page, returning its id.
  Result<PageId> AllocatePage();

  /// Legacy buffer flush point. Env files write through, so this only
  /// validates the handle; durability needs Sync().
  Status Flush();

  /// Durably syncs the file (real fsync through the Env).
  Status Sync();

  /// Reads and checksum-verifies every page; the recovery scan run on
  /// Database reopen. Returns Corruption naming the first bad page.
  Status VerifyAllPages();

  /// Lifetime I/O counters (for cost reporting).
  uint64_t pages_read() const { return pages_read_; }
  uint64_t pages_written() const { return pages_written_; }

 private:
  /// Serializes payload + trailer and writes it at `id`'s offset.
  Status WritePageWithTrailer(PageId id, const uint8_t* payload);

  Env* env_ = nullptr;
  std::unique_ptr<File> file_;
  std::string path_;
  PageId page_count_ = 0;
  uint64_t pages_read_ = 0;
  uint64_t pages_written_ = 0;
};

}  // namespace x3

#endif  // X3_STORAGE_PAGE_FILE_H_
