#ifndef X3_STORAGE_PAGE_FILE_H_
#define X3_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/page.h"
#include "util/env.h"
#include "util/hash.h"
#include "util/result.h"
#include "util/status.h"

namespace x3 {

/// Bytes of the per-page trailer appended to every page on disk: a
/// 64-bit checksum of the payload, seeded with the page id. In-memory
/// pages stay exactly kPageSize; only the file layout carries the
/// trailer, so record formats (slotted pages, node arrays) are
/// unaffected.
inline constexpr size_t kPageTrailerSize = sizeof(uint64_t);

/// On-disk footprint of one page (payload + trailer).
inline constexpr size_t kDiskPageSize = kPageSize + kPageTrailerSize;

/// Compressed-page frame header: one codec byte + a u32 stored body
/// size, in front of the (compressed or stored-raw) body.
inline constexpr size_t kPageFrameHeaderSize = 1 + sizeof(uint32_t);

/// On-disk footprint of one page in a compressed-mode file: the frame
/// header, a body area big enough for the stored-raw fallback, and the
/// same trailer. Slots stay fixed-size so page offsets remain a
/// multiplication; the compression win is the zero-padded tail of each
/// slot (smaller writes, and free for filesystems that compress or
/// hole-punch zeros).
inline constexpr size_t kCompressedDiskPageSize =
    kPageFrameHeaderSize + kPageSize + kPageTrailerSize;

/// Codec byte values of the compressed-page frame.
inline constexpr uint8_t kPageCodecRaw = 0;
inline constexpr uint8_t kPageCodecBlock = 1;

/// Checksum of `n` payload bytes. Mixing the page id into the seed
/// makes a page written at the wrong offset (or a stale trailer copied
/// from another page) detectable, not just bit flips. FNV-1a with a
/// splitmix64 finalizer: fast, non-cryptographic, XXH-class quality for
/// 8 KiB inputs.
inline uint64_t PageChecksumN(const uint8_t* payload, size_t n, PageId id) {
  uint64_t seed = 0xcbf29ce484222325ULL ^
                  (static_cast<uint64_t>(id) * 0x9e3779b97f4a7c15ULL);
  return HashFinalize(Fnv1a64(payload, n, seed));
}

/// Checksum of an uncompressed page payload (the PR 4 layout).
inline uint64_t PageChecksum(const uint8_t* payload, PageId id) {
  return PageChecksumN(payload, kPageSize, id);
}

/// A file of fixed-size pages with read/write/append, the unit the
/// buffer pool operates on. All I/O goes through an Env (injectable for
/// fault testing); every page carries a checksum trailer on disk, and
/// ReadPage surfaces Corruption — naming the page id — instead of
/// serving a torn or bit-flipped page. Offsets are uint64_t end to end,
/// so files past 2 GiB are safe (the old stdio implementation did
/// `long` arithmetic that overflowed there).
///
/// Not thread-safe — and deliberately so: the page layer serves
/// document storage and pattern materialization, which stay
/// single-threaded. Parallel cube execution never touches it (sort
/// spills go through TempFileManager + Env files owned by one worker
/// each).
class PageFile {
 public:
  PageFile() = default;
  ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Opens (creating if necessary) the file at `path`. If `truncate`,
  /// existing contents are discarded. `env` = nullptr uses
  /// Env::Default(). An existing file whose size is not a multiple of
  /// the slot size (e.g. truncated mid-page by a crash) is Corruption.
  ///
  /// `compress_pages` selects the compressed-mode layout: each slot is
  /// kCompressedDiskPageSize and holds [codec u8][body u32][body][pad]
  /// followed by the usual checksum trailer (computed over the framed
  /// payload). The flag is a whole-file property: reopening a file in
  /// the other mode fails the size check or the checksum verify.
  Status Open(const std::string& path, bool truncate, Env* env = nullptr,
              bool compress_pages = false);

  /// Flushes and closes. Safe to call twice.
  Status Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Number of pages currently in the file.
  PageId page_count() const { return page_count_; }

  /// Largest number of pages a file can hold (kInvalidPageId is
  /// reserved); AllocatePage refuses to wrap past it.
  static constexpr PageId kMaxPageCount = kInvalidPageId;

  /// Reads page `id` into `*page`, verifying the checksum trailer.
  /// A mismatch (torn write, bit flip, stale trailer) is Corruption
  /// with the page id in the message.
  Status ReadPage(PageId id, Page* page);

  /// Writes `page` at `id` with a fresh trailer; `id` must be
  /// < page_count().
  Status WritePage(PageId id, const Page& page);

  /// Appends a new zeroed page, returning its id.
  Result<PageId> AllocatePage();

  /// Legacy buffer flush point. Env files write through, so this only
  /// validates the handle; durability needs Sync().
  Status Flush();

  /// Durably syncs the file (real fsync through the Env).
  Status Sync();

  /// Reads and checksum-verifies every page; the recovery scan run on
  /// Database reopen. Returns Corruption naming the first bad page.
  Status VerifyAllPages();

  /// Lifetime I/O counters (for cost reporting).
  uint64_t pages_read() const { return pages_read_; }
  uint64_t pages_written() const { return pages_written_; }

  bool compress_pages() const { return compress_; }

 private:
  /// Serializes payload + trailer and writes it at `id`'s offset.
  Status WritePageWithTrailer(PageId id, const uint8_t* payload);

  /// On-disk slot size under the current mode.
  size_t disk_page_size() const {
    return compress_ ? kCompressedDiskPageSize : kDiskPageSize;
  }

  Env* env_ = nullptr;
  std::unique_ptr<File> file_;
  std::string path_;
  bool compress_ = false;
  PageId page_count_ = 0;
  uint64_t pages_read_ = 0;
  uint64_t pages_written_ = 0;
};

}  // namespace x3

#endif  // X3_STORAGE_PAGE_FILE_H_
