#include "storage/slotted_page.h"

#include <cstring>

#include "util/string_util.h"

namespace x3 {

void SlottedPage::Init() {
  set_record_count(0);
  set_free_end(static_cast<uint16_t>(kPageSize));
}

size_t SlottedPage::FreeSpace() const {
  size_t dir_end =
      kHeaderSize + static_cast<size_t>(record_count()) * kSlotSize;
  size_t heap_start = free_end();
  return heap_start > dir_end ? heap_start - dir_end : 0;
}

Result<SlotId> SlottedPage::Insert(std::string_view record) {
  if (record.size() > MaxRecordSize()) {
    return Status::InvalidArgument(
        StringPrintf("record of %zu bytes exceeds page capacity",
                     record.size()));
  }
  if (!Fits(record.size())) {
    return Status::ResourceExhausted("slotted page full");
  }
  uint16_t count = record_count();
  uint16_t new_end = static_cast<uint16_t>(free_end() - record.size());
  size_t slot_off = kHeaderSize + static_cast<size_t>(count) * kSlotSize;
  // Fits() proved FreeSpace() >= len + kSlotSize, which implies the heap
  // cannot grow down into the slot directory; check it anyway — this is
  // the invariant whose violation silently corrupts neighbouring records.
  X3_CHECK(slot_off + kSlotSize <= new_end)
      << "slot directory would overlap record heap (count=" << count
      << ", new_end=" << new_end << ")";
  std::memcpy(page_->bytes() + new_end, record.data(), record.size());
  page_->WriteAt<uint16_t>(slot_off, new_end);
  page_->WriteAt<uint16_t>(slot_off + 2, static_cast<uint16_t>(record.size()));
  set_free_end(new_end);
  set_record_count(static_cast<uint16_t>(count + 1));
  return static_cast<SlotId>(count);
}

Result<std::string_view> SlottedPage::Get(SlotId slot) const {
  if (slot >= record_count()) {
    return Status::OutOfRange(
        StringPrintf("slot %u of %u", slot, record_count()));
  }
  size_t slot_off = kHeaderSize + static_cast<size_t>(slot) * kSlotSize;
  uint16_t off = page_->ReadAt<uint16_t>(slot_off);
  uint16_t len = page_->ReadAt<uint16_t>(slot_off + 2);
  // uint16_t operands promote to int, so `off + len` cannot wrap before
  // the comparison.
  if (off + len > kPageSize) {
    return Status::Corruption("slot points past page end");
  }
  // uint8_t* -> const char* is a byte-pointer reinterpretation: char may
  // alias any object and has alignment 1, so this is free of alignment
  // and strict-aliasing UB (audited; see docs/STATIC_ANALYSIS.md).
  return std::string_view(reinterpret_cast<const char*>(page_->bytes() + off),
                          len);
}

}  // namespace x3
