#include "storage/buffer_pool.h"

#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace x3 {

namespace {

// Process-wide mirrors of the per-pool stats (DESIGN.md §9): the
// struct counters stay the per-instance test surface, these feed the
// exported registry.
Counter& PoolHitsCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_storage_pool_hits_total", "Buffer-pool page hits");
  return *c;
}
Counter& PoolMissesCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_storage_pool_misses_total", "Buffer-pool page misses");
  return *c;
}
Counter& PoolEvictionsCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_storage_pool_evictions_total", "Buffer-pool frame evictions");
  return *c;
}
Counter& PoolWritebacksCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_storage_pool_writebacks_total",
      "Dirty pages written back by the buffer pool");
  return *c;
}

}  // namespace

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    other.pool_ = nullptr;
  }
  return *this;
}

const Page& PageHandle::page() const {
  X3_CHECK(pool_ != nullptr);
  return pool_->PinnedPage(frame_);
}

Page& PageHandle::MutablePage() {
  X3_CHECK(pool_ != nullptr);
  pool_->MarkDirty(frame_);
  return pool_->PinnedPage(frame_);
}

void PageHandle::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(PageFile* file, size_t capacity)
    : file_(file), capacity_(capacity == 0 ? 1 : capacity) {
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    free_frames_.push_back(capacity_ - 1 - i);
  }
}

BufferPool::~BufferPool() {
  Status s = FlushAll();
  if (!s.ok()) {
    X3_LOG(Error) << "BufferPool flush on destruction failed: " << s;
  }
}

Result<PageHandle> BufferPool::Fetch(PageId id) {
  MutexLock lock(&mu_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    PoolHitsCounter().Increment();
    size_t frame = it->second;
    Frame& f = frames_[frame];
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    ++f.pin_count;
    return PageHandle(this, frame, id);
  }
  ++stats_.misses;
  PoolMissesCounter().Increment();
  X3_ASSIGN_OR_RETURN(size_t frame, GrabFrame());
  Frame& f = frames_[frame];
  Status s = file_->ReadPage(id, &f.page);
  if (!s.ok()) {
    free_frames_.push_back(frame);
    return s;
  }
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.in_lru = false;
  page_table_[id] = frame;
  return PageHandle(this, frame, id);
}

Result<PageHandle> BufferPool::New() {
  // Allocate under mu_ too: every PageFile call the pool makes is
  // serialized by this lock, which is what makes the underlying file
  // safe to share between concurrent workers.
  MutexLock lock(&mu_);
  X3_ASSIGN_OR_RETURN(PageId id, file_->AllocatePage());
  X3_ASSIGN_OR_RETURN(size_t frame, GrabFrame());
  Frame& f = frames_[frame];
  f.page.Zero();
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;
  f.in_lru = false;
  page_table_[id] = frame;
  return PageHandle(this, frame, id);
}

Status BufferPool::FlushAll() {
  MutexLock lock(&mu_);
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.page_id != kInvalidPageId && f.dirty) {
      X3_RETURN_IF_ERROR(file_->WritePage(f.page_id, f.page));
      f.dirty = false;
      ++stats_.dirty_writebacks;
      PoolWritebacksCounter().Increment();
    }
  }
  return file_->Flush();
}

BufferPoolStats BufferPool::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

void BufferPool::Unpin(size_t frame) {
  MutexLock lock(&mu_);
  Frame& f = frames_[frame];
  X3_CHECK(f.pin_count > 0) << "unpin of unpinned frame";
  if (--f.pin_count == 0) {
    f.lru_pos = lru_.insert(lru_.end(), frame);
    f.in_lru = true;
  }
}

void BufferPool::MarkDirty(size_t frame) {
  MutexLock lock(&mu_);
  frames_[frame].dirty = true;
}

Result<size_t> BufferPool::GrabFrame() {
  mu_.AssertHeld();
  if (!free_frames_.empty()) {
    size_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted(StringPrintf(
        "buffer pool of %zu frames fully pinned", capacity_));
  }
  size_t frame = lru_.front();
  lru_.pop_front();
  Frame& f = frames_[frame];
  f.in_lru = false;
  ++stats_.evictions;
  PoolEvictionsCounter().Increment();
  if (f.dirty) {
    X3_RETURN_IF_ERROR(file_->WritePage(f.page_id, f.page));
    ++stats_.dirty_writebacks;
    PoolWritebacksCounter().Increment();
    f.dirty = false;
  }
  page_table_.erase(f.page_id);
  f.page_id = kInvalidPageId;
  return frame;
}

}  // namespace x3
