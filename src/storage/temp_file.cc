#include "storage/temp_file.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace x3 {

TempFileManager::TempFileManager(std::string base_dir)
    : base_dir_(std::move(base_dir)) {
  if (base_dir_.empty()) {
    const char* env = std::getenv("TMPDIR");
    base_dir_ = (env != nullptr && env[0] != '\0') ? env : "/tmp";
  }
  while (base_dir_.size() > 1 && base_dir_.back() == '/') {
    base_dir_.pop_back();
  }
}

TempFileManager::~TempFileManager() {
  for (const std::string& p : owned_paths_) {
    std::remove(p.c_str());
  }
}

std::string TempFileManager::NextPath(const std::string& tag) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string path =
      StringPrintf("%s/x3-%d-%llu.%s.tmp", base_dir_.c_str(),
                   static_cast<int>(::getpid()),
                   static_cast<unsigned long long>(counter_++), tag.c_str());
  owned_paths_.push_back(path);
  return path;
}

void TempFileManager::Remove(const std::string& path) {
  std::remove(path.c_str());
  std::lock_guard<std::mutex> lock(mu_);
  owned_paths_.erase(
      std::remove(owned_paths_.begin(), owned_paths_.end(), path),
      owned_paths_.end());
}

size_t TempFileManager::created_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counter_;
}

}  // namespace x3
