#include "storage/temp_file.h"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace x3 {

TempFileManager::TempFileManager(std::string base_dir, Env* env)
    : env_(env != nullptr ? env : Env::Default()),
      base_dir_(std::move(base_dir)) {
  if (base_dir_.empty()) {
    const char* tmpdir = std::getenv("TMPDIR");
    base_dir_ = (tmpdir != nullptr && tmpdir[0] != '\0') ? tmpdir : "/tmp";
  }
  while (base_dir_.size() > 1 && base_dir_.back() == '/') {
    base_dir_.pop_back();
  }
}

TempFileManager::~TempFileManager() {
  // Snapshot without the lock held across I/O; destruction requires
  // external quiescence anyway.
  std::vector<std::string> paths;
  {
    MutexLock lock(&mu_);
    paths.swap(owned_paths_);
  }
  for (const std::string& p : paths) {
    RemoveAndCount(p);
  }
}

void TempFileManager::RemoveAndCount(const std::string& path) {
  Status s = env_->RemoveFile(path);
  if (s.ok() || s.code() == StatusCode::kNotFound) return;
  X3_LOG(Warning) << "temp file removal failed (possible leak): "
                  << s.ToString();
  MutexLock lock(&mu_);
  ++remove_failures_;
}

std::string TempFileManager::NextPath(const std::string& tag) {
  MutexLock lock(&mu_);
  std::string path =
      StringPrintf("%s/x3-%d-%llu.%s.tmp", base_dir_.c_str(),
                   static_cast<int>(::getpid()),
                   static_cast<unsigned long long>(counter_++), tag.c_str());
  owned_paths_.push_back(path);
  return path;
}

void TempFileManager::Remove(const std::string& path) {
  {
    MutexLock lock(&mu_);
    owned_paths_.erase(
        std::remove(owned_paths_.begin(), owned_paths_.end(), path),
        owned_paths_.end());
  }
  RemoveAndCount(path);
}

size_t TempFileManager::created_count() const {
  MutexLock lock(&mu_);
  return counter_;
}

uint64_t TempFileManager::failed_removes() const {
  MutexLock lock(&mu_);
  return remove_failures_;
}

}  // namespace x3
