#ifndef X3_STORAGE_TEMP_FILE_H_
#define X3_STORAGE_TEMP_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/env.h"
#include "util/thread_annotations.h"

namespace x3 {

/// Hands out unique temp file paths under a base directory and removes
/// everything it created on destruction. Used by the external sorter and
/// by materialized intermediate cube results. Removal goes through the
/// Env (so fault tests can observe it), and failed removals are logged
/// and counted instead of silently ignored — the fault-sweep harness
/// asserts the count stays zero. Thread-safe: the workers of a parallel
/// cube execution share one manager, so NextPath/Remove synchronize the
/// path counter and the cleanup list (destruction still requires the
/// usual external quiescence — no worker may outlive it).
class TempFileManager {
 public:
  /// Files are created under `base_dir` (defaults to $TMPDIR or /tmp).
  /// `env` = nullptr uses Env::Default().
  explicit TempFileManager(std::string base_dir = "", Env* env = nullptr);
  ~TempFileManager();

  TempFileManager(const TempFileManager&) = delete;
  TempFileManager& operator=(const TempFileManager&) = delete;

  /// Returns a fresh path like <base>/x3-<pid>-<n>.<tag>.tmp. The file
  /// is not created; the path is recorded for cleanup.
  std::string NextPath(const std::string& tag) X3_EXCLUDES(mu_);

  /// Deletes a file early and stops tracking it.
  void Remove(const std::string& path) X3_EXCLUDES(mu_);

  const std::string& base_dir() const { return base_dir_; }
  Env* env() const { return env_; }
  size_t created_count() const X3_EXCLUDES(mu_);

  /// Removals (explicit or at destruction) that failed for a reason
  /// other than the file never having been created. A non-zero count
  /// means temp files may have leaked on disk; the fault-sweep harness
  /// asserts zero at the end of every healthy-env lane.
  uint64_t failed_removes() const X3_EXCLUDES(mu_);

 private:
  /// Removes `path` via the env, counting real failures. NotFound is
  /// success: NextPath hands out paths before any file exists.
  void RemoveAndCount(const std::string& path) X3_EXCLUDES(mu_);

  Env* env_;
  std::string base_dir_;
  mutable Mutex mu_{lock_rank::kTempFileManager};
  uint64_t counter_ X3_GUARDED_BY(mu_) = 0;
  uint64_t remove_failures_ X3_GUARDED_BY(mu_) = 0;
  std::vector<std::string> owned_paths_ X3_GUARDED_BY(mu_);
};

}  // namespace x3

#endif  // X3_STORAGE_TEMP_FILE_H_
