#ifndef X3_STORAGE_TEMP_FILE_H_
#define X3_STORAGE_TEMP_FILE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/env.h"

namespace x3 {

/// Hands out unique temp file paths under a base directory and removes
/// everything it created on destruction. Used by the external sorter and
/// by materialized intermediate cube results. Removal goes through the
/// Env (so fault tests can observe it), and failed removals are logged
/// and counted instead of silently ignored — the fault-sweep harness
/// asserts the count stays zero. Thread-safe: the workers of a parallel
/// cube execution share one manager, so NextPath/Remove synchronize the
/// path counter and the cleanup list (destruction still requires the
/// usual external quiescence — no worker may outlive it).
class TempFileManager {
 public:
  /// Files are created under `base_dir` (defaults to $TMPDIR or /tmp).
  /// `env` = nullptr uses Env::Default().
  explicit TempFileManager(std::string base_dir = "", Env* env = nullptr);
  ~TempFileManager();

  TempFileManager(const TempFileManager&) = delete;
  TempFileManager& operator=(const TempFileManager&) = delete;

  /// Returns a fresh path like <base>/x3-<pid>-<n>.<tag>.tmp. The file
  /// is not created; the path is recorded for cleanup.
  std::string NextPath(const std::string& tag);

  /// Deletes a file early and stops tracking it.
  void Remove(const std::string& path);

  const std::string& base_dir() const { return base_dir_; }
  Env* env() const { return env_; }
  size_t created_count() const;

  /// Removals (explicit or at destruction) that failed for a reason
  /// other than the file never having been created. A non-zero count
  /// means temp files may have leaked on disk.
  uint64_t remove_failures() const;

 private:
  /// Removes `path` via the env, counting real failures. NotFound is
  /// success: NextPath hands out paths before any file exists.
  void RemoveAndCount(const std::string& path);

  Env* env_;
  std::string base_dir_;
  mutable std::mutex mu_;
  uint64_t counter_ = 0;
  uint64_t remove_failures_ = 0;
  std::vector<std::string> owned_paths_;
};

}  // namespace x3

#endif  // X3_STORAGE_TEMP_FILE_H_
