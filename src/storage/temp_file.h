#ifndef X3_STORAGE_TEMP_FILE_H_
#define X3_STORAGE_TEMP_FILE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/result.h"

namespace x3 {

/// Hands out unique temp file paths under a base directory and removes
/// everything it created on destruction. Used by the external sorter and
/// by materialized intermediate cube results. Thread-safe: the workers
/// of a parallel cube execution share one manager, so NextPath/Remove
/// synchronize the path counter and the cleanup list (destruction still
/// requires the usual external quiescence — no worker may outlive it).
class TempFileManager {
 public:
  /// Files are created under `base_dir` (defaults to $TMPDIR or /tmp).
  explicit TempFileManager(std::string base_dir = "");
  ~TempFileManager();

  TempFileManager(const TempFileManager&) = delete;
  TempFileManager& operator=(const TempFileManager&) = delete;

  /// Returns a fresh path like <base>/x3-<pid>-<n>.<tag>.tmp. The file
  /// is not created; the path is recorded for cleanup.
  std::string NextPath(const std::string& tag);

  /// Deletes a file early and stops tracking it.
  void Remove(const std::string& path);

  const std::string& base_dir() const { return base_dir_; }
  size_t created_count() const;

 private:
  std::string base_dir_;
  mutable std::mutex mu_;
  uint64_t counter_ = 0;
  std::vector<std::string> owned_paths_;
};

}  // namespace x3

#endif  // X3_STORAGE_TEMP_FILE_H_
