#ifndef X3_STORAGE_SLOTTED_PAGE_H_
#define X3_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "storage/page.h"
#include "util/result.h"

namespace x3 {

/// Slot index within a slotted page.
using SlotId = uint16_t;

/// Accessor imposing a classic slotted-record layout on a raw `Page`:
///
///   [ header | slot directory ->   ...free...   <- record heap ]
///
/// Header: record_count (u16), free_space_end (u16).
/// Slot: offset (u16), length (u16). Records are appended from the end
/// of the page growing downward; slots grow upward after the header.
/// Records are immutable once inserted (the workloads are append-only,
/// like a warehouse load).
class SlottedPage {
 public:
  /// Wraps `page` (not owned). Call Init() on a fresh page before use.
  explicit SlottedPage(Page* page) : page_(page) {}

  /// Formats an empty slotted page.
  void Init();

  /// Number of records on the page.
  uint16_t record_count() const { return page_->ReadAt<uint16_t>(0); }

  /// Bytes available for a new record including its slot entry.
  size_t FreeSpace() const;

  /// True if a record of `len` bytes fits.
  bool Fits(size_t len) const { return FreeSpace() >= len + kSlotSize; }

  /// Appends a record; fails if it does not fit.
  Result<SlotId> Insert(std::string_view record);

  /// Returns record `slot` (view into the page buffer; invalidated by
  /// page eviction).
  Result<std::string_view> Get(SlotId slot) const;

  /// Largest record that can ever fit on an empty page.
  static constexpr size_t MaxRecordSize() {
    return kPageSize - kHeaderSize - kSlotSize;
  }

 private:
  static constexpr size_t kHeaderSize = 4;
  static constexpr size_t kSlotSize = 4;

  uint16_t free_end() const { return page_->ReadAt<uint16_t>(2); }
  void set_record_count(uint16_t v) { page_->WriteAt<uint16_t>(0, v); }
  void set_free_end(uint16_t v) { page_->WriteAt<uint16_t>(2, v); }

  Page* page_;
};

}  // namespace x3

#endif  // X3_STORAGE_SLOTTED_PAGE_H_
