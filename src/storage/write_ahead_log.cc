#include "storage/write_ahead_log.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace x3 {

namespace {

Counter& CommitsCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_wal_commits_total", "Transactions committed through the WAL");
  return *c;
}
Counter& RecordsCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_wal_records_total", "WAL records written (begin/data/commit)");
  return *c;
}
Counter& BytesCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_wal_bytes_total", "Bytes appended to WAL segments");
  return *c;
}
Counter& RecoveriesCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_wal_recoveries_total", "WAL recovery scans run at open");
  return *c;
}
Counter& TruncatedRecordsCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_wal_truncated_records_total",
      "Torn or uncommitted WAL records cut off during recovery");
  return *c;
}
Counter& SegmentsCreatedCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_wal_segments_created_total", "WAL segment files created");
  return *c;
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint32_t ReadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

WriteAheadLog::WriteAheadLog(Env* env, std::string base,
                             const Options& options)
    : env_(env), base_(std::move(base)), options_(options) {}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) file_->Close().IgnoreError();
}

std::string WriteAheadLog::SegmentPath(const std::string& base,
                                       uint64_t seq) {
  return StringPrintf("%s.wal.%06llu", base.c_str(),
                      static_cast<unsigned long long>(seq));
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::CreateFresh(
    Env* env, std::string base, const Options& options) {
  X3_RETURN_IF_ERROR(RemoveSegments(env, base));
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(env, std::move(base), options));
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::OpenAndRecover(
    Env* env, std::string base, const Options& options,
    RecoveryInfo* info) {
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(env, std::move(base), options));
  RecoveryInfo local;
  X3_RETURN_IF_ERROR(wal->Recover(info != nullptr ? info : &local));
  return wal;
}

Status WriteAheadLog::RemoveSegments(Env* env, const std::string& base) {
  // The on-disk set is contiguous from 1; delete newest-first so an
  // interrupted pass leaves it contiguous from 1 as well.
  uint64_t last = 0;
  while (env->FileExists(SegmentPath(base, last + 1))) ++last;
  for (uint64_t seq = last; seq >= 1; --seq) {
    Status s = env->RemoveFile(SegmentPath(base, seq));
    if (!s.ok() && s.code() != StatusCode::kNotFound) return s;
  }
  return Status::OK();
}

std::vector<std::string> WriteAheadLog::SegmentPaths() const {
  std::vector<std::string> paths;
  uint64_t seq = 1;
  while (env_->FileExists(SegmentPath(base_, seq))) {
    paths.push_back(SegmentPath(base_, seq));
    ++seq;
  }
  return paths;
}

Status WriteAheadLog::OpenSegment(uint64_t seq, uint64_t offset) {
  if (file_ != nullptr) {
    X3_RETURN_IF_ERROR(file_->Close());
    file_.reset();
  }
  X3_ASSIGN_OR_RETURN(
      file_, env_->OpenFile(SegmentPath(base_, seq), OpenMode::kReadWrite));
  segment_seq_ = seq;
  segment_offset_ = offset;
  if (offset == 0) SegmentsCreatedCounter().Increment();
  return Status::OK();
}

void WriteAheadLog::EncodeRecord(WalRecordType type, uint64_t txn_id,
                                 std::string_view payload,
                                 std::string* out) {
  uint64_t lsn = next_lsn_++;
  size_t start = out->size();
  AppendU64(out, lsn);
  AppendU64(out, txn_id);
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  out->push_back(static_cast<char>(type));
  out->append(payload.data(), payload.size());
  uint64_t checksum = WalRecordChecksum(
      reinterpret_cast<const uint8_t*>(out->data() + start),
      out->size() - start, lsn);
  AppendU64(out, checksum);
}

Result<uint64_t> WriteAheadLog::BeginTxn() {
  X3_RETURN_IF_ERROR(broken_);
  if (txn_open_) {
    return Status::InvalidArgument(
        "WAL transaction already open on " + base_);
  }
  txn_open_ = true;
  open_txn_id_ = next_txn_id_++;
  pending_.clear();
  pending_records_ = 0;
  EncodeRecord(WalRecordType::kTxnBegin, open_txn_id_, {}, &pending_);
  ++pending_records_;
  return open_txn_id_;
}

Status WriteAheadLog::AppendData(uint64_t txn_id, std::string_view payload) {
  X3_RETURN_IF_ERROR(broken_);
  if (!txn_open_ || txn_id != open_txn_id_) {
    return Status::InvalidArgument(StringPrintf(
        "WAL append to transaction %llu which is not open on %s",
        static_cast<unsigned long long>(txn_id), base_.c_str()));
  }
  if (payload.size() > kWalMaxPayloadBytes) {
    return Status::OutOfRange(
        StringPrintf("WAL payload of %zu bytes exceeds the record limit",
                     payload.size()));
  }
  EncodeRecord(WalRecordType::kTxnData, txn_id, payload, &pending_);
  ++pending_records_;
  return Status::OK();
}

Result<uint64_t> WriteAheadLog::Commit(uint64_t txn_id) {
  X3_RETURN_IF_ERROR(broken_);
  if (!txn_open_ || txn_id != open_txn_id_) {
    return Status::InvalidArgument(StringPrintf(
        "WAL commit of transaction %llu which is not open on %s",
        static_cast<unsigned long long>(txn_id), base_.c_str()));
  }
  X3_TRACE_SPAN(&Tracer::Global(), "wal/commit");
  uint64_t commit_lsn = next_lsn_;  // the commit record's LSN
  EncodeRecord(WalRecordType::kTxnCommit, txn_id, {}, &pending_);
  ++pending_records_;

  // Rotate at transaction boundaries only, so one transaction is
  // always a contiguous byte range of one segment (recovery relies on
  // this to cut an uncommitted tail with a single truncate).
  Status io;
  if (file_ == nullptr) {
    io = OpenSegment(segment_seq_ == 0 ? 1 : segment_seq_, 0);
  } else if (segment_offset_ >= options_.segment_size_bytes) {
    io = OpenSegment(segment_seq_ + 1, 0);
  }
  if (io.ok()) {
    io = file_->WriteAt(segment_offset_, pending_.data(), pending_.size());
  }
  if (io.ok()) io = file_->Sync();
  if (!io.ok()) {
    // The segment tail is in an unknown state; poison the log so the
    // owner reopens (recovery re-establishes the committed prefix).
    broken_ = Status::InvalidArgument(
        "WAL broken by failed commit on " + base_ + ": " + io.message());
    txn_open_ = false;
    pending_.clear();
    pending_records_ = 0;
    return io;
  }
  segment_offset_ += pending_.size();
  last_commit_lsn_ = commit_lsn;
  CommitsCounter().Increment();
  RecordsCounter().Increment(pending_records_);
  BytesCounter().Increment(pending_.size());
  txn_open_ = false;
  pending_.clear();
  pending_records_ = 0;
  return commit_lsn;
}

Status WriteAheadLog::Abort(uint64_t txn_id) {
  if (!txn_open_ || txn_id != open_txn_id_) {
    return Status::InvalidArgument(StringPrintf(
        "WAL abort of transaction %llu which is not open on %s",
        static_cast<unsigned long long>(txn_id), base_.c_str()));
  }
  // Nothing reached disk; the buffered records (and their LSNs) are
  // simply never written. LSNs stay dense on disk because they are
  // reassigned: the buffer held LSNs next_lsn_ - pending_records_
  // onward, which are returned to the sequence here.
  next_lsn_ -= pending_records_;
  txn_open_ = false;
  pending_.clear();
  pending_records_ = 0;
  return Status::OK();
}

Status WriteAheadLog::DeleteAllSegments() {
  if (txn_open_) {
    return Status::InvalidArgument(
        "WAL truncation with a transaction open on " + base_);
  }
  if (file_ != nullptr) {
    file_->Close().IgnoreError();
    file_.reset();
  }
  X3_RETURN_IF_ERROR(RemoveSegments(env_, base_));
  segment_seq_ = 0;
  segment_offset_ = 0;
  // Deleting the log also heals a commit-poisoned one: whatever unknown
  // bytes the failed commit left behind are gone, and the caller just
  // made everything the log was protecting durable elsewhere.
  broken_ = Status::OK();
  return Status::OK();
}

void WriteAheadLog::EnsureNextLsnAtLeast(uint64_t lsn) {
  next_lsn_ = std::max(next_lsn_, lsn);
}

Status WriteAheadLog::Recover(RecoveryInfo* info) {
  X3_TRACE_SPAN(&Tracer::Global(), "wal/recover");
  RecoveriesCounter().Increment();
  *info = RecoveryInfo();

  uint64_t expected_lsn = 0;  // 0 = first record may carry any LSN
  uint64_t max_txn_id = 0;
  bool stop = false;  // first invalid record found: later segments die

  uint64_t seq = 1;
  for (; env_->FileExists(SegmentPath(base_, seq)); ++seq) {
    if (stop) {
      // Everything past the first invalid record is dead.
      X3_RETURN_IF_ERROR(env_->RemoveFile(SegmentPath(base_, seq)));
      ++info->truncated_segments;
      continue;
    }
    std::unique_ptr<File> file;
    X3_ASSIGN_OR_RETURN(
        file, env_->OpenFile(SegmentPath(base_, seq), OpenMode::kReadWrite));
    X3_ASSIGN_OR_RETURN(uint64_t size, file->Size());
    std::string buf(static_cast<size_t>(size), '\0');
    if (size > 0) {
      X3_RETURN_IF_ERROR(file->ReadAt(0, buf.data(), buf.size()));
    }
    const auto* bytes = reinterpret_cast<const uint8_t*>(buf.data());

    // Per-segment scan state. A transaction never spans segments
    // (commits rotate only at transaction boundaries), so an open
    // transaction at a cut is always local to this segment.
    uint64_t valid_end = 0;   // end of the last committed transaction
    uint64_t offset = 0;
    bool open_txn = false;
    uint64_t open_txn_id = 0;
    uint64_t open_txn_records = 0;
    std::vector<std::string> open_payloads;

    while (offset < size) {
      size_t remaining = static_cast<size_t>(size - offset);
      if (remaining < kWalHeaderBytes + kWalTrailerBytes) break;
      WalRecordHeader h;
      h.lsn = ReadU64(bytes + offset);
      h.txn_id = ReadU64(bytes + offset + 8);
      h.payload_len = ReadU32(bytes + offset + 16);
      h.type = bytes[offset + 20];
      if (h.payload_len > kWalMaxPayloadBytes) break;
      size_t total =
          kWalHeaderBytes + h.payload_len + kWalTrailerBytes;
      if (remaining < total) break;
      if (h.type < static_cast<uint8_t>(WalRecordType::kTxnBegin) ||
          h.type > static_cast<uint8_t>(WalRecordType::kTxnCommit)) {
        break;
      }
      uint64_t stored =
          ReadU64(bytes + offset + kWalHeaderBytes + h.payload_len);
      uint64_t computed = WalRecordChecksum(
          bytes + offset, kWalHeaderBytes + h.payload_len, h.lsn);
      if (stored != computed) break;
      if (expected_lsn != 0 && h.lsn != expected_lsn) break;
      expected_lsn = h.lsn + 1;

      auto type = static_cast<WalRecordType>(h.type);
      bool protocol_ok = true;
      switch (type) {
        case WalRecordType::kTxnBegin:
          if (open_txn) {
            protocol_ok = false;
            break;
          }
          open_txn = true;
          open_txn_id = h.txn_id;
          open_txn_records = 0;
          open_payloads.clear();
          break;
        case WalRecordType::kTxnData:
          if (!open_txn || h.txn_id != open_txn_id) {
            protocol_ok = false;
            break;
          }
          open_payloads.emplace_back(
              buf.data() + offset + kWalHeaderBytes, h.payload_len);
          break;
        case WalRecordType::kTxnCommit:
          if (!open_txn || h.txn_id != open_txn_id) {
            protocol_ok = false;
            break;
          }
          info->txns.push_back(CommittedTxn{
              h.txn_id, h.lsn, std::move(open_payloads)});
          open_payloads.clear();
          open_txn = false;
          max_txn_id = std::max(max_txn_id, h.txn_id);
          break;
      }
      if (!protocol_ok) break;
      ++open_txn_records;
      info->max_lsn = h.lsn;
      offset += total;
      if (!open_txn) valid_end = offset;
    }

    // Cut the tail: anything past the last committed transaction is a
    // torn write or an uncommitted transaction whose commit never made
    // it. Rewind the LSN horizon with it.
    if (valid_end < size) {
      if (open_txn) {
        info->truncated_records += open_txn_records;
        expected_lsn -= open_txn_records;
      }
      if (offset < size) ++info->truncated_records;  // the invalid bytes
      if (info->max_lsn >= expected_lsn && expected_lsn > 0) {
        info->max_lsn = expected_lsn - 1;
      }
      X3_RETURN_IF_ERROR(file->Truncate(valid_end));
      X3_RETURN_IF_ERROR(file->Sync());
      stop = true;
    }
    if (stop || !env_->FileExists(SegmentPath(base_, seq + 1))) {
      // Keep the last surviving segment open as the append target.
      file_ = std::move(file);
      segment_seq_ = seq;
      segment_offset_ = valid_end;
    } else {
      X3_RETURN_IF_ERROR(file->Close());
    }
  }

  TruncatedRecordsCounter().Increment(info->truncated_records);
  next_lsn_ = info->max_lsn + 1;
  last_commit_lsn_ =
      info->txns.empty() ? 0 : info->txns.back().commit_lsn;
  next_txn_id_ = max_txn_id + 1;
  return Status::OK();
}

}  // namespace x3
