#include "storage/page_file.h"

#include <cstring>

#include "util/string_util.h"

namespace x3 {

PageFile::~PageFile() { Close().IgnoreError(); }

Status PageFile::Open(const std::string& path, bool truncate, Env* env) {
  if (file_ != nullptr) {
    return Status::AlreadyExists("page file already open: " + path_);
  }
  env_ = env != nullptr ? env : Env::Default();
  OpenMode mode = truncate ? OpenMode::kTruncate : OpenMode::kReadWrite;
  Result<std::unique_ptr<File>> file = env_->OpenFile(path, mode);
  if (!file.ok()) return file.status();
  file_ = std::move(*file);
  path_ = path;
  Result<uint64_t> size = file_->Size();
  if (!size.ok()) {
    Close().IgnoreError();
    return size.status();
  }
  if (*size % kDiskPageSize != 0) {
    Status s = Status::Corruption(StringPrintf(
        "page file %s size %llu not a multiple of %zu (torn final page %llu?)",
        path.c_str(), static_cast<unsigned long long>(*size), kDiskPageSize,
        static_cast<unsigned long long>(*size / kDiskPageSize)));
    Close().IgnoreError();
    return s;
  }
  uint64_t pages = *size / kDiskPageSize;
  if (pages >= kMaxPageCount) {
    Close().IgnoreError();
    return Status::Corruption(StringPrintf(
        "page file %s holds %llu pages, beyond the PageId range",
        path.c_str(), static_cast<unsigned long long>(pages)));
  }
  page_count_ = static_cast<PageId>(pages);
  return Status::OK();
}

Status PageFile::Close() {
  if (file_ == nullptr) return Status::OK();
  Status s = file_->Close();
  file_.reset();
  env_ = nullptr;
  page_count_ = 0;
  return s;
}

Status PageFile::ReadPage(PageId id, Page* page) {
  if (file_ == nullptr) return Status::Internal("page file not open");
  if (id >= page_count_) {
    return Status::OutOfRange(
        StringPrintf("read page %u of %u", id, page_count_));
  }
  uint8_t disk_page[kDiskPageSize];
  X3_RETURN_IF_ERROR(file_->ReadAt(
      static_cast<uint64_t>(id) * kDiskPageSize, disk_page, kDiskPageSize));
  uint64_t stored = 0;
  std::memcpy(&stored, disk_page + kPageSize, kPageTrailerSize);
  uint64_t expected = PageChecksum(disk_page, id);
  if (stored != expected) {
    return Status::Corruption(StringPrintf(
        "page %u of %s failed checksum (stored %016llx, computed %016llx): "
        "torn write or corruption",
        id, path_.c_str(), static_cast<unsigned long long>(stored),
        static_cast<unsigned long long>(expected)));
  }
  std::memcpy(page->bytes(), disk_page, kPageSize);
  ++pages_read_;
  return Status::OK();
}

Status PageFile::WritePageWithTrailer(PageId id, const uint8_t* payload) {
  uint8_t disk_page[kDiskPageSize];
  std::memcpy(disk_page, payload, kPageSize);
  uint64_t checksum = PageChecksum(payload, id);
  std::memcpy(disk_page + kPageSize, &checksum, kPageTrailerSize);
  return file_->WriteAt(static_cast<uint64_t>(id) * kDiskPageSize, disk_page,
                        kDiskPageSize);
}

Status PageFile::WritePage(PageId id, const Page& page) {
  if (file_ == nullptr) return Status::Internal("page file not open");
  if (id >= page_count_) {
    return Status::OutOfRange(
        StringPrintf("write page %u of %u", id, page_count_));
  }
  X3_RETURN_IF_ERROR(WritePageWithTrailer(id, page.bytes()));
  ++pages_written_;
  return Status::OK();
}

Result<PageId> PageFile::AllocatePage() {
  if (file_ == nullptr) return Status::Internal("page file not open");
  if (page_count_ >= kMaxPageCount) {
    return Status::ResourceExhausted(StringPrintf(
        "page file %s full: PageId space exhausted at %u pages",
        path_.c_str(), page_count_));
  }
  Page zero;
  zero.Zero();
  PageId id = page_count_;
  X3_RETURN_IF_ERROR(WritePageWithTrailer(id, zero.bytes()));
  ++pages_written_;
  ++page_count_;
  return id;
}

Status PageFile::Flush() {
  if (file_ == nullptr) return Status::OK();
  return Status::OK();
}

Status PageFile::Sync() {
  if (file_ == nullptr) return Status::Internal("page file not open");
  return file_->Sync();
}

Status PageFile::VerifyAllPages() {
  if (file_ == nullptr) return Status::Internal("page file not open");
  Page scratch;
  for (PageId id = 0; id < page_count_; ++id) {
    X3_RETURN_IF_ERROR(ReadPage(id, &scratch));
  }
  return Status::OK();
}

}  // namespace x3
