#include "storage/page_file.h"

#include <cstring>

#include "util/compress.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace x3 {

namespace {

Counter& PageBlocksCompressedCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_page_compressed_writes_total",
      "Page writes stored with the block codec (vs stored-raw fallback)");
  return *c;
}
Counter& PageBodyBytesCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_page_body_bytes_total",
      "Stored body bytes of compressed-mode page writes");
  return *c;
}

}  // namespace

PageFile::~PageFile() { Close().IgnoreError(); }

Status PageFile::Open(const std::string& path, bool truncate, Env* env,
                      bool compress_pages) {
  if (file_ != nullptr) {
    return Status::AlreadyExists("page file already open: " + path_);
  }
  env_ = env != nullptr ? env : Env::Default();
  compress_ = compress_pages;
  OpenMode mode = truncate ? OpenMode::kTruncate : OpenMode::kReadWrite;
  Result<std::unique_ptr<File>> file = env_->OpenFile(path, mode);
  if (!file.ok()) return file.status();
  file_ = std::move(*file);
  path_ = path;
  Result<uint64_t> size = file_->Size();
  if (!size.ok()) {
    Close().IgnoreError();
    return size.status();
  }
  if (*size % disk_page_size() != 0) {
    Status s = Status::Corruption(StringPrintf(
        "page file %s size %llu not a multiple of %zu (torn final page %llu?)",
        path.c_str(), static_cast<unsigned long long>(*size),
        disk_page_size(),
        static_cast<unsigned long long>(*size / disk_page_size())));
    Close().IgnoreError();
    return s;
  }
  uint64_t pages = *size / disk_page_size();
  if (pages >= kMaxPageCount) {
    Close().IgnoreError();
    return Status::Corruption(StringPrintf(
        "page file %s holds %llu pages, beyond the PageId range",
        path.c_str(), static_cast<unsigned long long>(pages)));
  }
  page_count_ = static_cast<PageId>(pages);
  return Status::OK();
}

Status PageFile::Close() {
  if (file_ == nullptr) return Status::OK();
  Status s = file_->Close();
  file_.reset();
  env_ = nullptr;
  page_count_ = 0;
  return s;
}

Status PageFile::ReadPage(PageId id, Page* page) {
  if (file_ == nullptr) return Status::Internal("page file not open");
  if (id >= page_count_) {
    return Status::OutOfRange(
        StringPrintf("read page %u of %u", id, page_count_));
  }
  uint8_t disk_page[kCompressedDiskPageSize];
  const size_t slot = disk_page_size();
  const size_t payload_len = slot - kPageTrailerSize;
  X3_RETURN_IF_ERROR(
      file_->ReadAt(static_cast<uint64_t>(id) * slot, disk_page, slot));
  uint64_t stored = 0;
  std::memcpy(&stored, disk_page + payload_len, kPageTrailerSize);
  uint64_t expected = PageChecksumN(disk_page, payload_len, id);
  if (stored != expected) {
    return Status::Corruption(StringPrintf(
        "page %u of %s failed checksum (stored %016llx, computed %016llx): "
        "torn write or corruption",
        id, path_.c_str(), static_cast<unsigned long long>(stored),
        static_cast<unsigned long long>(expected)));
  }
  if (!compress_) {
    std::memcpy(page->bytes(), disk_page, kPageSize);
    ++pages_read_;
    return Status::OK();
  }
  // Checksum-valid frame: decode it. A malformed header here means the
  // writer was broken, not the disk, but it still must not over-read.
  uint8_t codec = disk_page[0];
  uint32_t body_size = 0;
  std::memcpy(&body_size, disk_page + 1, sizeof(body_size));
  const uint8_t* body = disk_page + kPageFrameHeaderSize;
  if (codec == kPageCodecRaw) {
    if (body_size != kPageSize) {
      return Status::Corruption(StringPrintf(
          "page %u of %s: raw frame body %u != page size", id,
          path_.c_str(), body_size));
    }
    std::memcpy(page->bytes(), body, kPageSize);
  } else if (codec == kPageCodecBlock) {
    if (body_size >= kPageSize) {
      return Status::Corruption(StringPrintf(
          "page %u of %s: compressed frame body %u too large", id,
          path_.c_str(), body_size));
    }
    Result<size_t> raw =
        DecompressBlock(body, body_size, page->bytes(), kPageSize);
    if (!raw.ok()) return raw.status();
    if (*raw != kPageSize) {
      return Status::Corruption(StringPrintf(
          "page %u of %s: frame inflated to %zu bytes, want %zu", id,
          path_.c_str(), *raw, kPageSize));
    }
  } else {
    return Status::Corruption(StringPrintf(
        "page %u of %s: unknown page codec %u", id, path_.c_str(), codec));
  }
  ++pages_read_;
  return Status::OK();
}

Status PageFile::WritePageWithTrailer(PageId id, const uint8_t* payload) {
  uint8_t disk_page[kCompressedDiskPageSize];
  const size_t slot = disk_page_size();
  const size_t payload_len = slot - kPageTrailerSize;
  if (!compress_) {
    std::memcpy(disk_page, payload, kPageSize);
  } else {
    std::memset(disk_page, 0, payload_len);
    uint8_t* body = disk_page + kPageFrameHeaderSize;
    // Only strictly-smaller output is framed compressed; everything
    // else (including codec failure to fit) stores raw.
    size_t packed = CompressBlock(payload, kPageSize, body, kPageSize - 1);
    uint32_t body_size;
    if (packed > 0) {
      disk_page[0] = kPageCodecBlock;
      body_size = static_cast<uint32_t>(packed);
      PageBlocksCompressedCounter().Increment();
    } else {
      disk_page[0] = kPageCodecRaw;
      body_size = static_cast<uint32_t>(kPageSize);
      std::memcpy(body, payload, kPageSize);
    }
    std::memcpy(disk_page + 1, &body_size, sizeof(body_size));
    PageBodyBytesCounter().Increment(body_size);
  }
  uint64_t checksum = PageChecksumN(disk_page, payload_len, id);
  std::memcpy(disk_page + payload_len, &checksum, kPageTrailerSize);
  return file_->WriteAt(static_cast<uint64_t>(id) * slot, disk_page, slot);
}

Status PageFile::WritePage(PageId id, const Page& page) {
  if (file_ == nullptr) return Status::Internal("page file not open");
  if (id >= page_count_) {
    return Status::OutOfRange(
        StringPrintf("write page %u of %u", id, page_count_));
  }
  X3_RETURN_IF_ERROR(WritePageWithTrailer(id, page.bytes()));
  ++pages_written_;
  return Status::OK();
}

Result<PageId> PageFile::AllocatePage() {
  if (file_ == nullptr) return Status::Internal("page file not open");
  if (page_count_ >= kMaxPageCount) {
    return Status::ResourceExhausted(StringPrintf(
        "page file %s full: PageId space exhausted at %u pages",
        path_.c_str(), page_count_));
  }
  Page zero;
  zero.Zero();
  PageId id = page_count_;
  X3_RETURN_IF_ERROR(WritePageWithTrailer(id, zero.bytes()));
  ++pages_written_;
  ++page_count_;
  return id;
}

Status PageFile::Flush() {
  if (file_ == nullptr) return Status::OK();
  return Status::OK();
}

Status PageFile::Sync() {
  if (file_ == nullptr) return Status::Internal("page file not open");
  return file_->Sync();
}

Status PageFile::VerifyAllPages() {
  if (file_ == nullptr) return Status::Internal("page file not open");
  Page scratch;
  for (PageId id = 0; id < page_count_; ++id) {
    X3_RETURN_IF_ERROR(ReadPage(id, &scratch));
  }
  return Status::OK();
}

}  // namespace x3
