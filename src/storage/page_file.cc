#include "storage/page_file.h"

#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace x3 {

PageFile::~PageFile() { Close().IgnoreError(); }

Status PageFile::Open(const std::string& path, bool truncate) {
  if (file_ != nullptr) {
    return Status::AlreadyExists("page file already open: " + path_);
  }
  const char* mode = truncate ? "w+b" : "r+b";
  std::FILE* f = std::fopen(path.c_str(), mode);
  if (f == nullptr && !truncate) {
    // File may not exist yet.
    f = std::fopen(path.c_str(), "w+b");
  }
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  file_ = f;
  path_ = path;
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    Close().IgnoreError();
    return Status::IOError("seek failed on " + path);
  }
  long size = std::ftell(file_);
  if (size < 0) {
    Close().IgnoreError();
    return Status::IOError("ftell failed on " + path);
  }
  if (size % static_cast<long>(kPageSize) != 0) {
    Close().IgnoreError();
    return Status::Corruption(
        StringPrintf("page file %s size %ld not a multiple of page size",
                     path.c_str(), size));
  }
  page_count_ = static_cast<PageId>(size / static_cast<long>(kPageSize));
  return Status::OK();
}

Status PageFile::Close() {
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(file_);
  file_ = nullptr;
  page_count_ = 0;
  if (rc != 0) return Status::IOError("close failed on " + path_);
  return Status::OK();
}

Status PageFile::ReadPage(PageId id, Page* page) {
  if (file_ == nullptr) return Status::Internal("page file not open");
  if (id >= page_count_) {
    return Status::OutOfRange(
        StringPrintf("read page %u of %u", id, page_count_));
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0) {
    return Status::IOError("seek failed on " + path_);
  }
  if (std::fread(page->bytes(), kPageSize, 1, file_) != 1) {
    return Status::IOError(StringPrintf("short read of page %u", id));
  }
  ++pages_read_;
  return Status::OK();
}

Status PageFile::WritePage(PageId id, const Page& page) {
  if (file_ == nullptr) return Status::Internal("page file not open");
  if (id >= page_count_) {
    return Status::OutOfRange(
        StringPrintf("write page %u of %u", id, page_count_));
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0) {
    return Status::IOError("seek failed on " + path_);
  }
  if (std::fwrite(page.bytes(), kPageSize, 1, file_) != 1) {
    return Status::IOError(StringPrintf("short write of page %u", id));
  }
  ++pages_written_;
  return Status::OK();
}

Result<PageId> PageFile::AllocatePage() {
  if (file_ == nullptr) return Status::Internal("page file not open");
  Page zero;
  zero.Zero();
  PageId id = page_count_;
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0) {
    return Status::IOError("seek failed on " + path_);
  }
  if (std::fwrite(zero.bytes(), kPageSize, 1, file_) != 1) {
    return Status::IOError("append failed on " + path_);
  }
  ++pages_written_;
  ++page_count_;
  return id;
}

Status PageFile::Flush() {
  if (file_ == nullptr) return Status::OK();
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush failed on " + path_);
  }
  return Status::OK();
}

}  // namespace x3
