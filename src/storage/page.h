#ifndef X3_STORAGE_PAGE_H_
#define X3_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <cstring>

#include "util/logging.h"

namespace x3 {

/// Fixed page size. The paper configured TIMBER with 8 KB data pages; we
/// use the same so page-count-based cost accounting is comparable.
inline constexpr size_t kPageSize = 8192;

/// Identifier of a page within a page file (0-based).
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = UINT32_MAX;

/// Raw page buffer. Interpretation (slotted, node-array, ...) is layered
/// on top by accessor classes; the buffer pool deals only in `Page`s.
struct Page {
  std::array<uint8_t, kPageSize> data;

  void Zero() { std::memset(data.data(), 0, kPageSize); }

  uint8_t* bytes() { return data.data(); }
  const uint8_t* bytes() const { return data.data(); }

  /// Unaligned typed reads/writes at a byte offset. memcpy (not a
  /// pointer cast) keeps this free of alignment and strict-aliasing UB;
  /// the page-boundary invariant is enforced in every build type.
  template <typename T>
  T ReadAt(size_t offset) const {
    X3_CHECK(offset + sizeof(T) <= kPageSize)
        << "page read at offset " << offset << " of width " << sizeof(T);
    T v;
    std::memcpy(&v, data.data() + offset, sizeof(T));
    return v;
  }
  template <typename T>
  void WriteAt(size_t offset, const T& v) {
    X3_CHECK(offset + sizeof(T) <= kPageSize)
        << "page write at offset " << offset << " of width " << sizeof(T);
    std::memcpy(data.data() + offset, &v, sizeof(T));
  }
};

static_assert(sizeof(Page) == kPageSize, "Page must be exactly kPageSize");

}  // namespace x3

#endif  // X3_STORAGE_PAGE_H_
