#ifndef X3_STORAGE_WRITE_AHEAD_LOG_H_
#define X3_STORAGE_WRITE_AHEAD_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/env.h"
#include "util/hash.h"
#include "util/result.h"
#include "util/status.h"

namespace x3 {

/// On-disk WAL record header (packed little-endian, kWalHeaderBytes on
/// disk). A record is `header | payload | u64 checksum`, with the
/// checksum covering header+payload and seeded by the record's LSN the
/// same way a page trailer is seeded by its PageId — a record replayed
/// at the wrong LSN (stale tail, misdirected write) fails verification,
/// not just bit flips.
struct WalRecordHeader {
  uint64_t lsn = 0;
  uint64_t txn_id = 0;
  uint32_t payload_len = 0;
  uint8_t type = 0;
};

enum class WalRecordType : uint8_t {
  kTxnBegin = 1,
  kTxnData = 2,
  kTxnCommit = 3,
};

inline constexpr size_t kWalHeaderBytes = 8 + 8 + 4 + 1;
inline constexpr size_t kWalTrailerBytes = 8;
/// Sanity bound on a single payload (a shredded XML document); a
/// header claiming more is treated as corruption during recovery.
inline constexpr uint32_t kWalMaxPayloadBytes = 1u << 30;

/// Checksum of one serialized record (header + payload bytes), seeded
/// by the record's LSN. Mirrors PageChecksumN (page_file.h).
inline uint64_t WalRecordChecksum(const uint8_t* bytes, size_t n,
                                  uint64_t lsn) {
  uint64_t seed =
      0xcbf29ce484222325ULL ^ (lsn * 0x9e3779b97f4a7c15ULL);
  return HashFinalize(Fnv1a64(bytes, n, seed));
}

/// Write-ahead log over the Env seam (DESIGN.md §12).
///
/// Layout: numbered segment files `<base>.wal.<NNNNNN>` starting at 1.
/// Segments are only ever deleted all at once (DeleteAllSegments, after
/// a checkpoint has made every logged transaction durable elsewhere),
/// so the on-disk set is always contiguous from 1 and recovery can
/// discover it by probing.
///
/// Commit protocol (group commit): BeginTxn/AppendData only gather
/// records in a per-transaction memory buffer; Commit appends the
/// commit record, writes the whole buffer with a single WriteAt and
/// makes it durable with a single Sync. The log therefore never
/// contains a partial transaction except as a torn tail, which
/// recovery cuts off. One transaction may be open at a time (callers
/// serialize writers; Database holds its ingest lock across a batch).
///
/// Recovery (OpenAndRecover): scans segments in order, verifying frame
/// bounds, record type, checksum and dense LSN sequencing. At the
/// first torn/invalid record the segment is truncated there and any
/// later segments are deleted; an uncommitted transaction left at the
/// tail (its commit record torn off) is truncated away too, so the log
/// contains exactly the committed transactions. Running recovery twice
/// yields byte-identical segments and an identical transaction list.
///
/// Not thread-safe: the owner (Database) serializes all calls.
class WriteAheadLog {
 public:
  struct Options {
    /// A commit that leaves the current segment at or past this size
    /// rotates to a fresh segment before the next commit's write.
    uint64_t segment_size_bytes = 4ull << 20;
  };

  /// One committed transaction, replayable in order.
  struct CommittedTxn {
    uint64_t txn_id = 0;
    /// LSN of the commit record; the catalog's durable horizon is
    /// compared against this.
    uint64_t commit_lsn = 0;
    /// kTxnData payloads in append order.
    std::vector<std::string> payloads;
  };

  struct RecoveryInfo {
    /// Committed transactions in commit-LSN order.
    std::vector<CommittedTxn> txns;
    /// Highest LSN of any surviving record (0 when the log is empty).
    uint64_t max_lsn = 0;
    /// Records cut off as torn/invalid (including an uncommitted tail
    /// transaction's records).
    uint64_t truncated_records = 0;
    /// Whole segments deleted past the first invalid record.
    uint64_t truncated_segments = 0;
  };

  /// Opens a fresh log at `base`, removing any stale segments.
  static Result<std::unique_ptr<WriteAheadLog>> CreateFresh(
      Env* env, std::string base, const Options& options);
  static Result<std::unique_ptr<WriteAheadLog>> CreateFresh(
      Env* env, std::string base) {
    return CreateFresh(env, std::move(base), Options());
  }

  /// Opens an existing log (possibly empty), runs recovery and reports
  /// the surviving committed transactions through `*info`.
  static Result<std::unique_ptr<WriteAheadLog>> OpenAndRecover(
      Env* env, std::string base, const Options& options,
      RecoveryInfo* info);

  /// Removes every segment of the log at `base` (used by owners that
  /// delete their backing files). Missing segments are fine.
  static Status RemoveSegments(Env* env, const std::string& base);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Starts a transaction; only one may be open. Buffers the begin
  /// record; nothing touches disk until Commit.
  Result<uint64_t> BeginTxn();

  /// Buffers one data record for the open transaction.
  Status AppendData(uint64_t txn_id, std::string_view payload);

  /// Appends the commit record, writes the buffered transaction with
  /// one WriteAt and one Sync, and returns the commit LSN. On failure
  /// the log is poisoned (the on-disk tail is unknown); the owner must
  /// reopen, which re-runs recovery. The disk never holds a partially
  /// *valid* transaction: a torn commit write is cut off by recovery.
  Result<uint64_t> Commit(uint64_t txn_id);

  /// Drops the open transaction's buffer. Nothing was written.
  Status Abort(uint64_t txn_id);

  /// Deletes every segment (newest first, so a partial delete keeps
  /// the set contiguous from 1) and resets segment numbering. Call
  /// only once every logged transaction is durable elsewhere (i.e.
  /// right after a successful checkpoint). LSNs keep advancing. Also
  /// un-poisons a log broken by a failed commit — the unknown on-disk
  /// tail is deleted along with everything else.
  Status DeleteAllSegments();

  /// Raises the next LSN to at least `lsn` (the owner seeds this with
  /// durable_lsn + 1 from its catalog so LSNs stay monotonic across
  /// checkpoints that emptied the log).
  void EnsureNextLsnAtLeast(uint64_t lsn);

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t last_commit_lsn() const { return last_commit_lsn_; }
  bool has_open_txn() const { return txn_open_; }
  const std::string& base() const { return base_; }

  /// Existing segment paths, in order.
  std::vector<std::string> SegmentPaths() const;

  /// Path of segment `seq` of the log at `base` (exposed for tests and
  /// tooling that need to corrupt or inspect specific segments).
  static std::string SegmentPath(const std::string& base, uint64_t seq);

 private:
  WriteAheadLog(Env* env, std::string base, const Options& options);

  /// Opens segment `seq` for appending at `offset`.
  Status OpenSegment(uint64_t seq, uint64_t offset);

  /// Serializes one record into `*out`.
  void EncodeRecord(WalRecordType type, uint64_t txn_id,
                    std::string_view payload, std::string* out);

  /// Scans all segments; fills `*info`; truncates/deletes invalid
  /// tails; leaves the log positioned for appending.
  Status Recover(RecoveryInfo* info);

  Env* env_;
  std::string base_;
  Options options_;

  std::unique_ptr<File> file_;  // current segment, null until first commit
  uint64_t segment_seq_ = 0;    // current segment number (0 = none yet)
  uint64_t segment_offset_ = 0;

  uint64_t next_lsn_ = 1;
  uint64_t last_commit_lsn_ = 0;
  uint64_t next_txn_id_ = 1;

  bool txn_open_ = false;
  uint64_t open_txn_id_ = 0;
  std::string pending_;  // serialized records of the open transaction
  size_t pending_records_ = 0;

  Status broken_;  // sticky failure after a bad commit write
};

}  // namespace x3

#endif  // X3_STORAGE_WRITE_AHEAD_LOG_H_
