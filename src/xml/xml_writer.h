#ifndef X3_XML_XML_WRITER_H_
#define X3_XML_XML_WRITER_H_

#include <string>

#include "util/env.h"
#include "util/status.h"
#include "xml/xml_node.h"

namespace x3 {

/// Serialization knobs.
struct XmlWriteOptions {
  /// Pretty-print with 2-space indentation; otherwise compact output.
  bool indent = true;
  /// Emit an `<?xml version="1.0"?>` declaration.
  bool declaration = true;
};

/// Serializes a subtree to a string (special characters escaped).
std::string WriteXml(const XmlNode& node, const XmlWriteOptions& options = {});

/// Serializes a whole document.
std::string WriteXml(const XmlDocument& doc,
                     const XmlWriteOptions& options = {});

/// Serializes a document to a file through `env` (nullptr =
/// Env::Default()).
Status WriteXmlFile(const XmlDocument& doc, const std::string& path, Env* env,
                    const XmlWriteOptions& options = {});

/// Serializes a document to a file via the default Env.
Status WriteXmlFile(const XmlDocument& doc, const std::string& path,
                    const XmlWriteOptions& options = {});

}  // namespace x3

#endif  // X3_XML_XML_WRITER_H_
