#include "xml/xml_parser.h"

#include <cstdio>
#include <vector>

#include "util/string_util.h"

namespace x3 {
namespace {

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsXmlSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

/// Recursive-descent XML parser over a string_view.
class Parser {
 public:
  Parser(std::string_view input, const XmlParseOptions& options)
      : input_(input), options_(options) {}

  Result<XmlDocument> Parse() {
    SkipProlog();
    if (AtEnd()) return Error("document has no root element");
    X3_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> root, ParseElement());
    SkipMisc();
    if (options_.require_single_root && !AtEnd()) {
      return Error("content after root element");
    }
    return XmlDocument(std::move(root));
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < input_.size() ? input_[pos_ + off] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }

  bool Match(std::string_view token) {
    if (input_.substr(pos_, token.size()) != token) return false;
    AdvanceBy(token.size());
    return true;
  }

  bool LookingAt(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }

  void SkipSpace() {
    while (!AtEnd() && IsXmlSpace(Peek())) Advance();
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(
        StringPrintf("XML parse error at %zu:%zu: %s", line_, col_,
                     msg.c_str()));
  }

  /// XML declaration, DOCTYPE, comments, PIs and whitespace before root.
  void SkipProlog() {
    for (;;) {
      SkipSpace();
      if (LookingAt("<?")) {
        SkipUntil("?>");
      } else if (LookingAt("<!--")) {
        SkipUntil("-->");
      } else if (LookingAt("<!DOCTYPE")) {
        SkipDoctype();
      } else {
        return;
      }
    }
  }

  /// Comments/PIs/whitespace after the root element.
  void SkipMisc() {
    for (;;) {
      SkipSpace();
      if (LookingAt("<?")) {
        SkipUntil("?>");
      } else if (LookingAt("<!--")) {
        SkipUntil("-->");
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view close) {
    size_t found = input_.find(close, pos_);
    if (found == std::string_view::npos) {
      AdvanceBy(input_.size() - pos_);
    } else {
      AdvanceBy(found + close.size() - pos_);
    }
  }

  /// Skips <!DOCTYPE ...> including a bracketed internal subset.
  void SkipDoctype() {
    int bracket_depth = 0;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '[') {
        ++bracket_depth;
      } else if (c == ']') {
        --bracket_depth;
      } else if (c == '>' && bracket_depth <= 0) {
        Advance();
        return;
      }
      Advance();
    }
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected name");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  /// Decodes entity/char references in raw character data.
  Result<std::string> DecodeText(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      size_t semi = raw.find(';', i + 1);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") {
        out += '&';
      } else if (ent == "lt") {
        out += '<';
      } else if (ent == "gt") {
        out += '>';
      } else if (ent == "quot") {
        out += '"';
      } else if (ent == "apos") {
        out += '\'';
      } else if (!ent.empty() && ent[0] == '#') {
        X3_ASSIGN_OR_RETURN(uint32_t cp, ParseCharRef(ent.substr(1)));
        AppendUtf8(cp, &out);
      } else {
        return Error("unknown entity &" + std::string(ent) + ";");
      }
      i = semi + 1;
    }
    return out;
  }

  Result<uint32_t> ParseCharRef(std::string_view body) {
    if (body.empty()) return Error("empty character reference");
    uint32_t cp = 0;
    if (body[0] == 'x' || body[0] == 'X') {
      if (body.size() == 1) return Error("empty hex character reference");
      for (char c : body.substr(1)) {
        uint32_t d;
        if (c >= '0' && c <= '9') {
          d = static_cast<uint32_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          d = static_cast<uint32_t>(c - 'a' + 10);
        } else if (c >= 'A' && c <= 'F') {
          d = static_cast<uint32_t>(c - 'A' + 10);
        } else {
          return Error("invalid hex character reference");
        }
        cp = cp * 16 + d;
        if (cp > 0x10FFFF) return Error("character reference out of range");
      }
    } else {
      for (char c : body) {
        if (c < '0' || c > '9') {
          return Error("invalid character reference");
        }
        cp = cp * 10 + static_cast<uint32_t>(c - '0');
        if (cp > 0x10FFFF) return Error("character reference out of range");
      }
    }
    return cp;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<std::string> ParseAttributeValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = Peek();
    Advance();
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '<') return Error("'<' in attribute value");
      Advance();
    }
    if (AtEnd()) return Error("unterminated attribute value");
    std::string_view raw = input_.substr(start, pos_ - start);
    Advance();  // closing quote
    return DecodeText(raw);
  }

  Result<std::unique_ptr<XmlNode>> ParseElement() {
    if (depth_ >= options_.max_depth) {
      return Error(StringPrintf("element nesting exceeds maximum depth %zu",
                                options_.max_depth));
    }
    ++depth_;
    Result<std::unique_ptr<XmlNode>> element = ParseElementInner();
    --depth_;
    return element;
  }

  Result<std::unique_ptr<XmlNode>> ParseElementInner() {
    if (!Match("<")) return Error("expected '<'");
    X3_ASSIGN_OR_RETURN(std::string tag, ParseName());
    auto element = XmlNode::Element(std::move(tag));
    // Attributes.
    for (;;) {
      SkipSpace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || LookingAt("/>")) break;
      X3_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipSpace();
      if (!Match("=")) return Error("expected '=' after attribute name");
      SkipSpace();
      X3_ASSIGN_OR_RETURN(std::string attr_value, ParseAttributeValue());
      if (element->FindAttribute(attr_name) != nullptr) {
        return Error("duplicate attribute '" + attr_name + "'");
      }
      element->SetAttribute(std::move(attr_name), std::move(attr_value));
    }
    if (Match("/>")) return std::move(element);
    if (!Match(">")) return Error("expected '>'");
    X3_RETURN_IF_ERROR(ParseContent(element.get()));
    return std::move(element);
  }

  /// Parses children until the matching end tag is consumed.
  Status ParseContent(XmlNode* element) {
    std::string pending_text;
    auto flush_text = [&]() -> Status {
      if (pending_text.empty()) return Status::OK();
      bool all_space = true;
      for (char c : pending_text) {
        if (!IsXmlSpace(c)) {
          all_space = false;
          break;
        }
      }
      if (!(all_space && options_.skip_whitespace_text)) {
        X3_ASSIGN_OR_RETURN(std::string decoded, DecodeText(pending_text));
        element->AddText(std::move(decoded));
      }
      pending_text.clear();
      return Status::OK();
    };

    for (;;) {
      if (AtEnd()) {
        return Error("unterminated element <" + element->tag() + ">");
      }
      if (LookingAt("</")) {
        X3_RETURN_IF_ERROR(flush_text());
        AdvanceBy(2);
        X3_ASSIGN_OR_RETURN(std::string name, ParseName());
        if (name != element->tag()) {
          return Error("mismatched end tag </" + name + "> for <" +
                       element->tag() + ">");
        }
        SkipSpace();
        if (!Match(">")) return Error("expected '>' in end tag");
        return Status::OK();
      }
      if (LookingAt("<!--")) {
        X3_RETURN_IF_ERROR(flush_text());
        SkipUntil("-->");
        continue;
      }
      if (LookingAt("<![CDATA[")) {
        AdvanceBy(9);
        size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          return Error("unterminated CDATA section");
        }
        // CDATA content is literal: bypass entity decoding by appending
        // directly as a text child after flushing pending raw text.
        X3_RETURN_IF_ERROR(flush_text());
        element->AddText(std::string(input_.substr(pos_, end - pos_)));
        AdvanceBy(end + 3 - pos_);
        continue;
      }
      if (LookingAt("<?")) {
        X3_RETURN_IF_ERROR(flush_text());
        SkipUntil("?>");
        continue;
      }
      if (Peek() == '<') {
        X3_RETURN_IF_ERROR(flush_text());
        X3_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> child, ParseElement());
        element->AddChild(std::move(child));
        continue;
      }
      pending_text += Peek();
      Advance();
    }
  }

  std::string_view input_;
  XmlParseOptions options_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
  size_t depth_ = 0;
};

}  // namespace

Result<XmlDocument> ParseXml(std::string_view input,
                             const XmlParseOptions& options) {
  // Skip a UTF-8 BOM if present.
  if (input.size() >= 3 && static_cast<unsigned char>(input[0]) == 0xEF &&
      static_cast<unsigned char>(input[1]) == 0xBB &&
      static_cast<unsigned char>(input[2]) == 0xBF) {
    input.remove_prefix(3);
  }
  Parser parser(input, options);
  return parser.Parse();
}

Result<XmlDocument> ParseXmlFile(const std::string& path, Env* env,
                                 const XmlParseOptions& options) {
  std::string buf;
  X3_RETURN_IF_ERROR(ReadFileToString(env, path, &buf));
  return ParseXml(buf, options);
}

Result<XmlDocument> ParseXmlFile(const std::string& path,
                                 const XmlParseOptions& options) {
  return ParseXmlFile(path, nullptr, options);
}

}  // namespace x3
