#ifndef X3_XML_XML_NODE_H_
#define X3_XML_XML_NODE_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace x3 {

/// Kinds of DOM nodes the library models. Comments and processing
/// instructions are parsed but not retained (they play no role in OLAP).
enum class XmlNodeType : uint8_t {
  kElement,
  kText,
};

/// A node in an in-memory XML document tree.
///
/// Elements carry a tag, an ordered attribute list and ordered children;
/// text nodes carry character data in `text`. This DOM is the staging
/// representation between the parser / generators and the database
/// loader (`xdb::DocumentLoader`), which converts it to interval-labelled
/// storage form.
class XmlNode {
 public:
  /// Creates an element node.
  static std::unique_ptr<XmlNode> Element(std::string tag);
  /// Creates a text node.
  static std::unique_ptr<XmlNode> Text(std::string text);

  XmlNodeType type() const { return type_; }
  bool is_element() const { return type_ == XmlNodeType::kElement; }
  bool is_text() const { return type_ == XmlNodeType::kText; }

  /// Element tag, empty for text nodes.
  const std::string& tag() const { return tag_; }
  /// Character data, empty for elements.
  const std::string& text() const { return text_; }

  const std::vector<std::pair<std::string, std::string>>& attributes() const {
    return attributes_;
  }
  /// Returns the attribute value or nullptr.
  const std::string* FindAttribute(std::string_view name) const;
  /// Appends (or overwrites) an attribute.
  void SetAttribute(std::string name, std::string value);

  const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }
  /// Appends a child, returning a borrowed pointer to it.
  XmlNode* AddChild(std::unique_ptr<XmlNode> child);
  /// Convenience: appends `<tag>` and returns it.
  XmlNode* AddElement(std::string tag);
  /// Convenience: appends `<tag>text</tag>` and returns the element.
  XmlNode* AddElementWithText(std::string tag, std::string text);
  /// Convenience: appends a text child.
  void AddText(std::string text);

  /// Concatenation of all descendant text (document order).
  std::string CollectText() const;

  /// First child element with `tag`, or nullptr.
  const XmlNode* FirstChildElement(std::string_view tag) const;

  /// Number of nodes in this subtree (elements + text nodes).
  size_t SubtreeSize() const;

 private:
  explicit XmlNode(XmlNodeType type) : type_(type) {}

  XmlNodeType type_;
  std::string tag_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<std::unique_ptr<XmlNode>> children_;
};

/// An XML document: optional prolog metadata plus the root element.
class XmlDocument {
 public:
  XmlDocument() = default;
  explicit XmlDocument(std::unique_ptr<XmlNode> root)
      : root_(std::move(root)) {}

  const XmlNode* root() const { return root_.get(); }
  XmlNode* mutable_root() { return root_.get(); }
  void set_root(std::unique_ptr<XmlNode> root) { root_ = std::move(root); }

  /// Total node count of the tree (0 when empty).
  size_t NodeCount() const { return root_ ? root_->SubtreeSize() : 0; }

 private:
  std::unique_ptr<XmlNode> root_;
};

}  // namespace x3

#endif  // X3_XML_XML_NODE_H_
