#include "xml/xml_node.h"

namespace x3 {

std::unique_ptr<XmlNode> XmlNode::Element(std::string tag) {
  auto node = std::unique_ptr<XmlNode>(new XmlNode(XmlNodeType::kElement));
  node->tag_ = std::move(tag);
  return node;
}

std::unique_ptr<XmlNode> XmlNode::Text(std::string text) {
  auto node = std::unique_ptr<XmlNode>(new XmlNode(XmlNodeType::kText));
  node->text_ = std::move(text);
  return node;
}

const std::string* XmlNode::FindAttribute(std::string_view name) const {
  for (const auto& [k, v] : attributes_) {
    if (k == name) return &v;
  }
  return nullptr;
}

void XmlNode::SetAttribute(std::string name, std::string value) {
  for (auto& [k, v] : attributes_) {
    if (k == name) {
      v = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(std::move(name), std::move(value));
}

XmlNode* XmlNode::AddChild(std::unique_ptr<XmlNode> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

XmlNode* XmlNode::AddElement(std::string tag) {
  return AddChild(Element(std::move(tag)));
}

XmlNode* XmlNode::AddElementWithText(std::string tag, std::string text) {
  XmlNode* el = AddElement(std::move(tag));
  el->AddText(std::move(text));
  return el;
}

void XmlNode::AddText(std::string text) {
  AddChild(Text(std::move(text)));
}

std::string XmlNode::CollectText() const {
  if (is_text()) return text_;
  std::string out;
  for (const auto& child : children_) {
    out += child->CollectText();
  }
  return out;
}

const XmlNode* XmlNode::FirstChildElement(std::string_view tag) const {
  for (const auto& child : children_) {
    if (child->is_element() && child->tag() == tag) return child.get();
  }
  return nullptr;
}

size_t XmlNode::SubtreeSize() const {
  size_t n = 1;
  for (const auto& child : children_) {
    n += child->SubtreeSize();
  }
  return n;
}

}  // namespace x3
