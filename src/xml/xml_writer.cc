#include "xml/xml_writer.h"

#include "util/string_util.h"

namespace x3 {
namespace {

bool HasTextChildren(const XmlNode& node) {
  for (const auto& child : node.children()) {
    if (child->is_text()) return true;
  }
  return false;
}

/// `pretty` turns indentation on for this subtree; elements with mixed
/// content (text and element children together) render inline so
/// pretty-printing never injects whitespace into character data.
void WriteNode(const XmlNode& node, bool pretty, int depth,
               std::string* out) {
  auto indent = [&](int d) {
    if (pretty) out->append(static_cast<size_t>(d) * 2, ' ');
  };
  if (node.is_text()) {
    out->append(XmlEscape(node.text()));
    return;
  }
  indent(depth);
  out->push_back('<');
  out->append(node.tag());
  for (const auto& [k, v] : node.attributes()) {
    out->push_back(' ');
    out->append(k);
    out->append("=\"");
    out->append(XmlEscape(v));
    out->push_back('"');
  }
  if (node.children().empty()) {
    out->append("/>");
    if (pretty) out->push_back('\n');
    return;
  }
  out->push_back('>');
  bool inline_children = !pretty || HasTextChildren(node);
  if (!inline_children) out->push_back('\n');
  for (const auto& child : node.children()) {
    if (inline_children) {
      WriteNode(*child, /*pretty=*/false, 0, out);
    } else {
      WriteNode(*child, pretty, depth + 1, out);
    }
  }
  if (!inline_children) indent(depth);
  out->append("</");
  out->append(node.tag());
  out->push_back('>');
  if (pretty) out->push_back('\n');
}

}  // namespace

std::string WriteXml(const XmlNode& node, const XmlWriteOptions& options) {
  std::string out;
  WriteNode(node, options.indent, 0, &out);
  return out;
}

std::string WriteXml(const XmlDocument& doc, const XmlWriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    out.push_back('\n');
  }
  if (doc.root() != nullptr) {
    WriteNode(*doc.root(), options.indent, 0, &out);
  }
  return out;
}

Status WriteXmlFile(const XmlDocument& doc, const std::string& path, Env* env,
                    const XmlWriteOptions& options) {
  return WriteStringToFile(env, path, WriteXml(doc, options));
}

Status WriteXmlFile(const XmlDocument& doc, const std::string& path,
                    const XmlWriteOptions& options) {
  return WriteXmlFile(doc, path, nullptr, options);
}

}  // namespace x3
