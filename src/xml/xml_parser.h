#ifndef X3_XML_XML_PARSER_H_
#define X3_XML_XML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "util/env.h"
#include "util/result.h"
#include "xml/xml_node.h"

namespace x3 {

/// Parser behaviour knobs.
struct XmlParseOptions {
  /// Drop text nodes that consist solely of whitespace (typical for
  /// pretty-printed warehouse documents).
  bool skip_whitespace_text = true;
  /// Reject documents with content after the root element.
  bool require_single_root = true;
  /// Maximum element nesting depth. The parser (and the node tree's
  /// destructor) recurse once per level, so this bounds stack use on
  /// hostile inputs; documents deeper than this are rejected with a
  /// ParseError rather than overflowing the stack.
  size_t max_depth = 256;
};

/// Parses an XML document from an in-memory buffer.
///
/// Supported: elements, attributes (single or double quoted), character
/// data, CDATA sections, comments, processing instructions, the XML
/// declaration, an (ignored) DOCTYPE with an internal subset, the five
/// predefined entities and decimal/hex character references.
/// Not supported (rejected or ignored): external entities, namespaces
/// beyond treating ':' as a name character, DTD-driven entity expansion.
///
/// Errors carry 1-based line/column positions in the message.
Result<XmlDocument> ParseXml(std::string_view input,
                             const XmlParseOptions& options = {});

/// Reads and parses a file through `env` (nullptr = Env::Default()).
Result<XmlDocument> ParseXmlFile(const std::string& path, Env* env,
                                 const XmlParseOptions& options = {});

/// Reads and parses a file via the default Env.
Result<XmlDocument> ParseXmlFile(const std::string& path,
                                 const XmlParseOptions& options = {});

}  // namespace x3

#endif  // X3_XML_XML_PARSER_H_
