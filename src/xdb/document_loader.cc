#include "xdb/document_loader.h"

#include <string>

#include "util/string_util.h"
#include "xdb/database.h"

namespace x3 {

Result<NodeId> DocumentLoader::Load(const XmlDocument& doc) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("cannot load empty document");
  }
  if (!doc.root()->is_element()) {
    return Status::InvalidArgument("document root must be an element");
  }
  X3_ASSIGN_OR_RETURN(NodeId root,
                      LoadElement(*doc.root(), kInvalidNodeId, 0));
  db_->roots_.push_back(root);
  return root;
}

Result<NodeId> DocumentLoader::LoadElement(const XmlNode& node, NodeId parent,
                                           uint16_t level) {
  TagId tag_id = db_->tags_.Intern(node.tag());

  // Direct text: concatenation of text children, stripped.
  std::string text;
  for (const auto& child : node.children()) {
    if (child->is_text()) text += child->text();
  }
  std::string_view stripped = StripWhitespace(text);
  ValueId value_id = stripped.empty() ? kInvalidValueId
                                      : db_->values_.Intern(stripped);

  NodeRecord record;
  record.parent = parent;
  record.tag_id = tag_id;
  record.value_id = value_id;
  record.level = level;
  record.kind = NodeKind::kElement;
  record.end = 0;  // patched below
  X3_ASSIGN_OR_RETURN(NodeId id, db_->store_->Append(record));
  if (tag_id >= db_->tag_index_.size()) {
    db_->tag_index_.resize(tag_id + 1);
  }
  db_->tag_index_[tag_id].push_back(id);

  // Attributes as child records.
  NodeId last = id;
  for (const auto& [name, value] : node.attributes()) {
    TagId attr_tag = db_->tags_.Intern("@" + name);
    NodeRecord attr;
    attr.parent = id;
    attr.tag_id = attr_tag;
    attr.value_id = db_->values_.Intern(value);
    attr.level = static_cast<uint16_t>(level + 1);
    attr.kind = NodeKind::kAttribute;
    X3_ASSIGN_OR_RETURN(NodeId attr_id, db_->store_->Append(attr));
    X3_RETURN_IF_ERROR(db_->store_->UpdateEnd(attr_id, attr_id));
    if (attr_tag >= db_->tag_index_.size()) {
      db_->tag_index_.resize(attr_tag + 1);
    }
    db_->tag_index_[attr_tag].push_back(attr_id);
    last = attr_id;
  }

  // Element children.
  for (const auto& child : node.children()) {
    if (!child->is_element()) continue;
    X3_ASSIGN_OR_RETURN(
        NodeId child_id,
        LoadElement(*child, id, static_cast<uint16_t>(level + 1)));
    NodeRecord child_rec;
    X3_RETURN_IF_ERROR(db_->store_->Get(child_id, &child_rec));
    last = child_rec.end;
  }

  X3_RETURN_IF_ERROR(db_->store_->UpdateEnd(id, last));
  return id;
}

}  // namespace x3
