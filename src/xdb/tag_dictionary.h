#ifndef X3_XDB_TAG_DICTIONARY_H_
#define X3_XDB_TAG_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace x3 {

/// Dictionary id of an element/attribute tag name.
using TagId = uint32_t;
inline constexpr TagId kInvalidTagId = UINT32_MAX;

/// Interns tag names to dense 32-bit ids.
///
/// Attribute names are interned with a '@' prefix (e.g. "@id") so element
/// and attribute namespaces cannot collide; this matches the paper's
/// pattern syntax, where `publisher/@id` addresses the attribute node.
class TagDictionary {
 public:
  TagDictionary() = default;

  TagDictionary(const TagDictionary&) = delete;
  TagDictionary& operator=(const TagDictionary&) = delete;

  /// Returns the id for `tag`, interning it on first sight.
  TagId Intern(std::string_view tag);

  /// Returns the id for `tag` or kInvalidTagId if never interned.
  TagId Lookup(std::string_view tag) const;

  /// Returns the name for an id; id must be valid.
  const std::string& Name(TagId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

  /// Forgets every tag with id >= `count` (batch rollback: ids are
  /// assigned densely, so the tags interned since a savepoint are
  /// exactly the tail of the dictionary).
  void TruncateTo(size_t count);

 private:
  std::unordered_map<std::string, TagId> ids_;
  std::vector<std::string> names_;
};

}  // namespace x3

#endif  // X3_XDB_TAG_DICTIONARY_H_
