#include "xdb/tag_dictionary.h"

namespace x3 {

TagId TagDictionary::Intern(std::string_view tag) {
  auto it = ids_.find(std::string(tag));
  if (it != ids_.end()) return it->second;
  TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(tag);
  ids_.emplace(names_.back(), id);
  return id;
}

TagId TagDictionary::Lookup(std::string_view tag) const {
  auto it = ids_.find(std::string(tag));
  return it == ids_.end() ? kInvalidTagId : it->second;
}

}  // namespace x3
