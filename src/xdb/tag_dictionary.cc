#include "xdb/tag_dictionary.h"

namespace x3 {

TagId TagDictionary::Intern(std::string_view tag) {
  auto it = ids_.find(std::string(tag));
  if (it != ids_.end()) return it->second;
  TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(tag);
  ids_.emplace(names_.back(), id);
  return id;
}

TagId TagDictionary::Lookup(std::string_view tag) const {
  auto it = ids_.find(std::string(tag));
  return it == ids_.end() ? kInvalidTagId : it->second;
}

void TagDictionary::TruncateTo(size_t count) {
  for (size_t id = count; id < names_.size(); ++id) {
    ids_.erase(names_[id]);
  }
  names_.resize(count);
}

}  // namespace x3
