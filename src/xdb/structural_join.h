#ifndef X3_XDB_STRUCTURAL_JOIN_H_
#define X3_XDB_STRUCTURAL_JOIN_H_

#include <cstdint>
#include <vector>

#include "util/result.h"
#include "xdb/database.h"
#include "xdb/node_store.h"

namespace x3 {

/// Axis of a structural relationship.
enum class StructuralAxis : uint8_t {
  kChild,       // parent-child (PC)
  kDescendant,  // ancestor-descendant (AD)
};

/// One (ancestor, descendant) output pair of a structural join.
struct JoinPair {
  NodeId ancestor;
  NodeId descendant;

  bool operator==(const JoinPair& other) const {
    return ancestor == other.ancestor && descendant == other.descendant;
  }
};

/// Counters for join cost reporting.
struct JoinStats {
  uint64_t ancestors_scanned = 0;
  uint64_t descendants_scanned = 0;
  uint64_t pairs_emitted = 0;
  uint64_t max_stack_depth = 0;
};

/// Stack-based structural merge join (Stack-Tree-Desc of Al-Khalifa et
/// al.), the primitive TIMBER evaluates tree patterns with (§4: "the
/// available structural join algorithms").
///
/// `ancestors` and `descendants` must each be sorted in document order
/// (ascending NodeId); the lists may overlap. Produces every pair where
/// the ancestor (strictly) contains the descendant, with axis kChild
/// additionally requiring a direct parent link. Output is sorted by
/// (descendant, ancestor).
///
/// Runs in a single pass over both lists plus a stack bounded by tree
/// depth; node records are fetched through the database's buffer pool.
Result<std::vector<JoinPair>> StructuralJoin(
    const Database& db, const std::vector<NodeId>& ancestors,
    const std::vector<NodeId>& descendants, StructuralAxis axis,
    JoinStats* stats = nullptr);

/// Self-check helper: the naive O(|A|*|D|) nested-loop join, used by
/// tests to validate StructuralJoin.
Result<std::vector<JoinPair>> NestedLoopStructuralJoin(
    const Database& db, const std::vector<NodeId>& ancestors,
    const std::vector<NodeId>& descendants, StructuralAxis axis);

}  // namespace x3

#endif  // X3_XDB_STRUCTURAL_JOIN_H_
