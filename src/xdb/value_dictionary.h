#ifndef X3_XDB_VALUE_DICTIONARY_H_
#define X3_XDB_VALUE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace x3 {

/// Dictionary id of a text/attribute value.
using ValueId = uint32_t;
inline constexpr ValueId kInvalidValueId = UINT32_MAX;

/// Interns node values (element text, attribute values) to dense ids.
/// Group-by comparisons then reduce to integer equality; the dictionary
/// also provides value-order comparison for sorted cube output.
class ValueDictionary {
 public:
  ValueDictionary() = default;

  ValueDictionary(const ValueDictionary&) = delete;
  ValueDictionary& operator=(const ValueDictionary&) = delete;
  // Movable: FactTable owns one dictionary per axis and is itself
  // move-only (deleting copy above suppresses the implicit moves).
  ValueDictionary(ValueDictionary&&) noexcept = default;
  ValueDictionary& operator=(ValueDictionary&&) noexcept = default;

  ValueId Intern(std::string_view value);
  ValueId Lookup(std::string_view value) const;
  const std::string& Value(ValueId id) const { return values_[id]; }
  size_t size() const { return values_.size(); }

  /// Forgets every value with id >= `count` (batch rollback: ids are
  /// dense, so the values interned since a savepoint are the tail).
  void TruncateTo(size_t count);

  /// Deep copy (copy construction stays deleted so accidental copies
  /// of a FactTable's per-axis dictionaries don't compile; delta fact
  /// builds clone explicitly).
  ValueDictionary Clone() const;

 private:
  std::unordered_map<std::string, ValueId> ids_;
  std::vector<std::string> values_;
};

}  // namespace x3

#endif  // X3_XDB_VALUE_DICTIONARY_H_
