#ifndef X3_XDB_NODE_STORE_H_
#define X3_XDB_NODE_STORE_H_

#include <cstdint>

#include "storage/buffer_pool.h"
#include "util/result.h"
#include "xdb/tag_dictionary.h"
#include "xdb/value_dictionary.h"

namespace x3 {

/// Identifier of a stored node. NodeIds are assigned in global document
/// (pre-)order, so a node's id doubles as its interval *start* label:
/// `anc` contains `desc` iff `anc < desc && desc <= record(anc).end`.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNodeId = UINT32_MAX;

/// Node kinds stored in the database.
enum class NodeKind : uint8_t {
  kElement = 0,
  kAttribute = 1,
};

/// Fixed-size stored form of a node. The start label is implicit (the
/// node's id); `end` is the id of the last node in the subtree
/// (inclusive), giving the (start, end, level) interval encoding used by
/// structural joins (Al-Khalifa et al.), plus a parent pointer for
/// parent-child checks.
struct NodeRecord {
  NodeId end = 0;
  NodeId parent = kInvalidNodeId;
  TagId tag_id = kInvalidTagId;
  /// Element: dictionary id of its (stripped) direct text, or
  /// kInvalidValueId when it has none. Attribute: the attribute value.
  ValueId value_id = kInvalidValueId;
  uint16_t level = 0;
  NodeKind kind = NodeKind::kElement;
};

/// Append-only paged array of NodeRecords behind a buffer pool.
///
/// This is the substrate's "data file": every record access is a page
/// access through the pool, so scans and pattern evaluation have honest
/// buffered-I/O behaviour like the paper's TIMBER setup.
class NodeStore {
 public:
  /// `pool` must outlive the store. `existing_count` restores the node
  /// count when reopening a checkpointed database.
  explicit NodeStore(BufferPool* pool, NodeId existing_count = 0)
      : pool_(pool), count_(existing_count) {}

  NodeStore(const NodeStore&) = delete;
  NodeStore& operator=(const NodeStore&) = delete;

  /// Appends a record; returns its NodeId.
  Result<NodeId> Append(const NodeRecord& record);

  /// Reads record `id`.
  Status Get(NodeId id, NodeRecord* record) const;

  /// Rewrites the `end` label of `id` (set when its subtree completes
  /// during loading).
  Status UpdateEnd(NodeId id, NodeId end);

  /// Drops records [count, size()) — batch rollback. Page bytes past
  /// the new count become invisible garbage; the next append
  /// overwrites them.
  void TruncateTo(NodeId count) { count_ = count; }

  /// Appends the on-disk byte image of records [first, first + count)
  /// to `*out` (kRecordBytes each). The checkpoint catalog journals
  /// the partially filled tail page's records this way so recovery can
  /// rebuild the page if a later write tears it.
  Status SerializeRange(NodeId first, NodeId count, std::string* out) const;

  /// Number of stored nodes.
  NodeId size() const { return count_; }

  /// On-disk record footprint (bytes).
  static constexpr size_t kRecordBytes = 20;
  /// Records per page.
  static constexpr size_t kRecordsPerPage = kPageSize / kRecordBytes;

 private:
  static void Encode(const NodeRecord& record, uint8_t* out);
  static void Decode(const uint8_t* in, NodeRecord* record);

  BufferPool* pool_;
  NodeId count_;
};

}  // namespace x3

#endif  // X3_XDB_NODE_STORE_H_
