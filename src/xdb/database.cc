#include "xdb/database.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "util/hash.h"
#include "util/string_util.h"
#include "xdb/document_loader.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace x3 {

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = options;
  db->env_ = options.env != nullptr ? options.env : Env::Default();
  if (db->options_.data_file.empty()) {
    db->options_.data_file = StringPrintf(
        "/tmp/x3-db-%d-%p.dat", static_cast<int>(::getpid()),
        static_cast<void*>(db.get()));
    db->owns_data_file_ = true;
  }
  db->file_ = std::make_unique<PageFile>();
  X3_RETURN_IF_ERROR(db->file_->Open(db->options_.data_file,
                                     /*truncate=*/true, db->env_,
                                     db->options_.compress_pages));
  db->pool_ = std::make_unique<BufferPool>(db->file_.get(),
                                           db->options_.buffer_pool_pages);
  db->store_ = std::make_unique<NodeStore>(db->pool_.get());
  WriteAheadLog::Options wal_options;
  wal_options.segment_size_bytes = db->options_.wal_segment_size_bytes;
  X3_ASSIGN_OR_RETURN(
      db->wal_, WriteAheadLog::CreateFresh(db->env_, db->options_.data_file,
                                           wal_options));
  return db;
}

namespace {

constexpr uint32_t kCatalogMagic = 0x58334354;  // "X3CT"
// Version 2: catalog carries a trailing 64-bit checksum of the body.
// Version 3: after the header, the catalog records the WAL durable
// horizon (u64 commit LSN) and a journal of the partially filled tail
// page's records (u32 count + raw record bytes), so recovery can
// rebuild that page if a post-checkpoint write tears it.
constexpr uint32_t kCatalogVersion = 3;

/// Seed for the catalog body checksum, distinct from page checksums.
constexpr uint64_t kCatalogChecksumSeed = 0x58334354a5a5a5a5ULL;

void AppendRaw(std::string* out, const void* data, size_t len) {
  // len == 0 legitimately pairs with a null `data` (an empty vector's
  // data()); append's pointer contract forbids that even for 0 bytes.
  if (len != 0) {
    out->append(static_cast<const char*>(data), len);
  }
}

void AppendString(std::string* out, const std::string& s) {
  uint32_t len = static_cast<uint32_t>(s.size());
  AppendRaw(out, &len, sizeof(len));
  AppendRaw(out, s.data(), s.size());
}

/// In-memory reader over the catalog body with bounds-checked reads, so
/// a truncated catalog becomes Corruption instead of an overrun.
class CatalogCursor {
 public:
  CatalogCursor(std::string_view data, std::string path)
      : data_(data), path_(std::move(path)) {}

  Status ReadRaw(void* out, size_t len) {
    if (len > data_.size() - pos_) {
      return Status::Corruption("truncated catalog " + path_);
    }
    // len == 0 legitimately pairs with a null `out` (an empty vector's
    // data()); memcpy's nonnull contract forbids that even for 0 bytes.
    if (len != 0) {
      std::memcpy(out, data_.data() + pos_, len);
    }
    pos_ += len;
    return Status::OK();
  }

  Result<std::string> ReadString() {
    uint32_t len = 0;
    X3_RETURN_IF_ERROR(ReadRaw(&len, sizeof(len)));
    if (len > (1u << 26)) {
      return Status::Corruption("implausible string length in " + path_);
    }
    std::string s(len, '\0');
    X3_RETURN_IF_ERROR(ReadRaw(s.data(), len));
    return s;
  }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  std::string path_;
};

std::string CatalogPath(const std::string& data_file) {
  return data_file + ".cat";
}

}  // namespace

Status Database::Checkpoint() {
  if (in_batch_) {
    return Status::InvalidArgument(
        "Checkpoint with an open batch: commit or roll back first");
  }
  X3_RETURN_IF_ERROR(pool_->FlushAll());  // x3-lint: allow(raw-page-write) -- checkpoint: pages flushed before the catalog rename commits them
  // Make the data pages durable before the catalog that describes them.
  X3_RETURN_IF_ERROR(file_->Sync());

  std::string body;
  uint32_t header[3] = {kCatalogMagic, kCatalogVersion, store_->size()};
  AppendRaw(&body, header, sizeof(header));

  // WAL durable horizon: everything committed up to this LSN is covered
  // by this catalog, so reopen only replays transactions past it.
  uint64_t durable = last_commit_lsn_;
  AppendRaw(&body, &durable, sizeof(durable));

  // Journal the partially filled tail page's records. Full pages are
  // append-frozen (never rewritten), but the tail page is rewritten by
  // future flushes; if one of those tears it, recovery rebuilds the
  // committed records from this image.
  uint32_t tail_count = static_cast<uint32_t>(
      store_->size() % NodeStore::kRecordsPerPage);
  AppendRaw(&body, &tail_count, sizeof(tail_count));
  std::string tail_image;
  X3_RETURN_IF_ERROR(store_->SerializeRange(store_->size() - tail_count,
                                            tail_count, &tail_image));
  AppendRaw(&body, tail_image.data(), tail_image.size());

  uint32_t num_roots = static_cast<uint32_t>(roots_.size());
  AppendRaw(&body, &num_roots, sizeof(num_roots));
  AppendRaw(&body, roots_.data(), roots_.size() * sizeof(NodeId));

  uint32_t num_tags = static_cast<uint32_t>(tags_.size());
  AppendRaw(&body, &num_tags, sizeof(num_tags));
  for (TagId t = 0; t < num_tags; ++t) {
    AppendString(&body, tags_.Name(t));
  }

  uint32_t num_values = static_cast<uint32_t>(values_.size());
  AppendRaw(&body, &num_values, sizeof(num_values));
  for (ValueId v = 0; v < num_values; ++v) {
    AppendString(&body, values_.Value(v));
  }

  for (TagId t = 0; t < num_tags; ++t) {
    const std::vector<NodeId>& list = NodesWithTagId(t);
    uint32_t count = static_cast<uint32_t>(list.size());
    AppendRaw(&body, &count, sizeof(count));
    AppendRaw(&body, list.data(), list.size() * sizeof(NodeId));
  }

  uint64_t checksum = HashFinalize(
      Fnv1a64(body.data(), body.size(), kCatalogChecksumSeed));
  AppendRaw(&body, &checksum, sizeof(checksum));

  // Write-to-temp + fsync + atomic rename: a crash at any point leaves
  // either the old catalog or the new one, never a half-written mix.
  std::string path = CatalogPath(options_.data_file);
  std::string tmp_path = path + ".tmp";
  Status s = WriteStringToFile(env_, tmp_path, body, /*sync=*/true);
  if (!s.ok()) {
    env_->RemoveFile(tmp_path).IgnoreError();
    return s;
  }
  X3_RETURN_IF_ERROR(env_->RenameFile(tmp_path, path));  // x3-lint: allow(raw-page-write) -- checkpoint: the atomic catalog-commit rename itself
  // The rename is the commit point: from here the catalog covers every
  // applied transaction, so the WAL's job is done and its segments can
  // go (this also revives a WAL poisoned by a failed commit).
  durable_lsn_ = last_commit_lsn_.load(std::memory_order_relaxed);
  if (wal_ != nullptr) {
    X3_RETURN_IF_ERROR(wal_->DeleteAllSegments());
  }
  return Status::OK();
}

Result<std::unique_ptr<Database>> Database::OpenExisting(
    DatabaseOptions options) {
  if (options.data_file.empty()) {
    return Status::InvalidArgument(
        "OpenExisting requires an explicit data_file");
  }
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = options;
  db->env_ = options.env != nullptr ? options.env : Env::Default();

  // The catalog comes first: Checkpoint writes it atomically, so it is
  // the recovery anchor. Its node count bounds which pages are
  // trusted, and its tail-page journal + durable LSN drive the data
  // file repair and WAL replay below.
  std::string path = CatalogPath(options.data_file);
  std::string raw;
  Status s = ReadFileToString(db->env_, path, &raw);
  if (!s.ok()) {
    if (s.code() == StatusCode::kNotFound) {
      return Status::NotFound("no catalog at " + path +
                              " (was Checkpoint() called?)");
    }
    return s;
  }
  if (raw.size() < sizeof(uint64_t)) {
    return Status::Corruption("catalog " + path + " too small");
  }
  std::string_view body(raw.data(), raw.size() - sizeof(uint64_t));
  uint64_t stored = 0;
  std::memcpy(&stored, raw.data() + body.size(), sizeof(stored));
  uint64_t computed = HashFinalize(
      Fnv1a64(body.data(), body.size(), kCatalogChecksumSeed));
  if (stored != computed) {
    return Status::Corruption(StringPrintf(
        "catalog %s failed checksum (stored %016llx, computed %016llx): "
        "torn write or corruption",
        path.c_str(), static_cast<unsigned long long>(stored),
        static_cast<unsigned long long>(computed)));
  }

  CatalogCursor cursor(body, path);
  uint32_t header[3];
  X3_RETURN_IF_ERROR(cursor.ReadRaw(header, sizeof(header)));
  if (header[0] != kCatalogMagic) {
    return Status::Corruption("bad catalog magic in " + path);
  }
  if (header[1] != kCatalogVersion) {
    return Status::Corruption("unsupported catalog version");
  }

  uint64_t durable_lsn = 0;
  X3_RETURN_IF_ERROR(cursor.ReadRaw(&durable_lsn, sizeof(durable_lsn)));
  uint32_t tail_count = 0;
  X3_RETURN_IF_ERROR(cursor.ReadRaw(&tail_count, sizeof(tail_count)));
  if (tail_count != header[2] % NodeStore::kRecordsPerPage) {
    return Status::Corruption(StringPrintf(
        "catalog tail journal has %u records but %u nodes imply %u",
        tail_count, header[2],
        static_cast<uint32_t>(header[2] % NodeStore::kRecordsPerPage)));
  }
  std::string tail_image(tail_count * NodeStore::kRecordBytes, '\0');
  X3_RETURN_IF_ERROR(cursor.ReadRaw(tail_image.data(), tail_image.size()));

  // Repair the data file before opening it as pages. Only bytes past
  // the catalog's coverage (a crashed batch's appends) and the shared
  // tail page (rewritten by every flush) can legitimately be damaged;
  // full pages under the catalog are append-frozen and must verify.
  uint64_t full_pages = header[2] / NodeStore::kRecordsPerPage;
  uint64_t covered_pages = full_pages + (tail_count != 0 ? 1 : 0);
  uint64_t slot_bytes = options.compress_pages
                            ? kCompressedDiskPageSize
                            : kDiskPageSize;
  X3_ASSIGN_OR_RETURN(uint64_t file_bytes,
                      db->env_->FileSize(options.data_file));
  if (file_bytes < full_pages * slot_bytes) {
    return Status::Corruption(StringPrintf(
        "%s has %llu bytes but the catalog covers %llu full pages: "
        "truncated page file?",
        options.data_file.c_str(),
        static_cast<unsigned long long>(file_bytes),
        static_cast<unsigned long long>(full_pages)));
  }
  if (file_bytes != covered_pages * slot_bytes &&
      file_bytes != full_pages * slot_bytes) {
    // A crash mid-append left a ragged/uncovered tail. Cut back to the
    // full-page prefix; the tail page (if any) is rebuilt below and
    // uncheckpointed batches are re-applied from the WAL.
    std::unique_ptr<File> raw;
    X3_ASSIGN_OR_RETURN(
        raw, db->env_->OpenFile(options.data_file, OpenMode::kReadWrite));
    Status trunc = raw->Truncate(full_pages * slot_bytes);
    if (trunc.ok()) trunc = raw->Sync();
    raw->Close().IgnoreError();
    X3_RETURN_IF_ERROR(trunc);
    db->recovery_stats_.data_file_truncated = true;
  }

  db->file_ = std::make_unique<PageFile>();
  X3_RETURN_IF_ERROR(db->file_->Open(options.data_file, /*truncate=*/false,
                                     db->env_, options.compress_pages));
  if (tail_count != 0) {
    Page journaled;
    journaled.Zero();
    std::memcpy(journaled.bytes(), tail_image.data(), tail_image.size());
    PageId tail_id = static_cast<PageId>(full_pages);
    if (db->file_->page_count() == full_pages) {
      // The tail page never made it to disk (or the truncation above
      // removed it): rebuild it from the catalog's journal.
      X3_ASSIGN_OR_RETURN(PageId got, db->file_->AllocatePage());  // x3-lint: allow(raw-page-write) -- recovery: tail-page rebuild from the catalog journal
      if (got != tail_id) {
        return Status::Internal(StringPrintf(
            "tail page allocated out of order: got %u want %u", got,
            tail_id));
      }
      X3_RETURN_IF_ERROR(db->file_->WritePage(tail_id, journaled));  // x3-lint: allow(raw-page-write) -- recovery: tail-page rebuild from the catalog journal
      X3_RETURN_IF_ERROR(db->file_->Sync());
      db->recovery_stats_.tail_page_rebuilt = true;
    } else {
      Page check;
      Status read = db->file_->ReadPage(tail_id, &check);
      if (read.code() == StatusCode::kCorruption) {
        // A post-checkpoint flush tore the shared tail page. The
        // journal holds every committed record on it.
        X3_RETURN_IF_ERROR(db->file_->WritePage(tail_id, journaled));  // x3-lint: allow(raw-page-write) -- recovery: torn tail page repaired from the catalog journal
        X3_RETURN_IF_ERROR(db->file_->Sync());
        db->recovery_stats_.tail_page_rebuilt = true;
      } else {
        X3_RETURN_IF_ERROR(read);
      }
    }
  }

  // Recovery scan: checksum-verify every page before trusting any of
  // them, so torn writes surface now (with a page id) rather than as a
  // wrong cube later.
  X3_RETURN_IF_ERROR(db->file_->VerifyAllPages());
  db->pool_ = std::make_unique<BufferPool>(db->file_.get(),
                                           options.buffer_pool_pages);

  // The node count must fit in the verified data pages.
  uint64_t capacity = static_cast<uint64_t>(db->file_->page_count()) *
                      NodeStore::kRecordsPerPage;
  if (header[2] > capacity) {
    return Status::Corruption(StringPrintf(
        "catalog claims %u nodes but %s has %u pages (capacity %llu): "
        "truncated page file?",
        header[2], options.data_file.c_str(), db->file_->page_count(),
        static_cast<unsigned long long>(capacity)));
  }
  db->store_ = std::make_unique<NodeStore>(db->pool_.get(), header[2]);

  // Guard allocations against implausible counts before resizing: any
  // array must fit in the bytes that are actually left.
  auto plausible = [&cursor](uint64_t count, uint64_t unit) {
    return count * unit <= cursor.remaining();
  };

  uint32_t num_roots = 0;
  X3_RETURN_IF_ERROR(cursor.ReadRaw(&num_roots, sizeof(num_roots)));
  if (!plausible(num_roots, sizeof(NodeId))) {
    return Status::Corruption("implausible root count in catalog");
  }
  db->roots_.resize(num_roots);
  X3_RETURN_IF_ERROR(
      cursor.ReadRaw(db->roots_.data(), num_roots * sizeof(NodeId)));

  uint32_t num_tags = 0;
  X3_RETURN_IF_ERROR(cursor.ReadRaw(&num_tags, sizeof(num_tags)));
  for (uint32_t t = 0; t < num_tags; ++t) {
    X3_ASSIGN_OR_RETURN(std::string name, cursor.ReadString());
    if (db->tags_.Intern(name) != t) {
      return Status::Corruption("tag dictionary out of order");
    }
  }

  uint32_t num_values = 0;
  X3_RETURN_IF_ERROR(cursor.ReadRaw(&num_values, sizeof(num_values)));
  for (uint32_t v = 0; v < num_values; ++v) {
    X3_ASSIGN_OR_RETURN(std::string value, cursor.ReadString());
    if (db->values_.Intern(value) != v) {
      return Status::Corruption("value dictionary out of order");
    }
  }

  db->tag_index_.resize(num_tags);
  for (uint32_t t = 0; t < num_tags; ++t) {
    uint32_t count = 0;
    X3_RETURN_IF_ERROR(cursor.ReadRaw(&count, sizeof(count)));
    if (!plausible(count, sizeof(NodeId))) {
      return Status::Corruption("implausible index size in catalog");
    }
    db->tag_index_[t].resize(count);
    X3_RETURN_IF_ERROR(
        cursor.ReadRaw(db->tag_index_[t].data(), count * sizeof(NodeId)));
  }
  if (cursor.remaining() != 0) {
    return Status::Corruption("trailing bytes in catalog " + path);
  }

  db->durable_lsn_ = durable_lsn;
  db->last_commit_lsn_ = durable_lsn;

  // WAL recovery: cut any torn tail, then re-apply committed batches
  // the catalog doesn't cover. Replay re-shreds the logged documents
  // through the normal load path (deterministic, so the rebuilt state
  // is identical to the pre-crash one) without re-logging them, and
  // nothing is checkpointed here — recovering twice is idempotent.
  WriteAheadLog::Options wal_options;
  wal_options.segment_size_bytes = options.wal_segment_size_bytes;
  WriteAheadLog::RecoveryInfo info;
  X3_ASSIGN_OR_RETURN(db->wal_,
                      WriteAheadLog::OpenAndRecover(
                          db->env_, options.data_file, wal_options, &info));
  db->recovery_stats_.wal_records_truncated = info.truncated_records;
  db->recovery_stats_.wal_segments_truncated = info.truncated_segments;
  for (const WriteAheadLog::CommittedTxn& txn : info.txns) {
    if (txn.commit_lsn <= durable_lsn) continue;
    for (const std::string& payload : txn.payloads) {
      Result<NodeId> root = db->LoadXmlString(payload);
      if (!root.ok()) {
        return Status::Corruption(StringPrintf(
            "WAL replay of transaction %llu failed: %s",
            static_cast<unsigned long long>(txn.txn_id),
            root.status().message().c_str()));
      }
      ++db->recovery_stats_.replayed_documents;
    }
    db->last_commit_lsn_ = txn.commit_lsn;
    ++db->recovery_stats_.replayed_txns;
  }
  db->wal_->EnsureNextLsnAtLeast(db->last_commit_lsn_ + 1);
  return db;
}

Status Database::BeginBatch() {
  if (in_batch_) {
    return Status::InvalidArgument("a batch is already open");
  }
  X3_ASSIGN_OR_RETURN(batch_txn_, wal_->BeginTxn());
  marks_.node_count = store_->size();
  marks_.roots = roots_.size();
  marks_.tags = tags_.size();
  marks_.values = values_.size();
  marks_.tag_index = tag_index_.size();
  in_batch_ = true;
  return Status::OK();
}

Result<uint64_t> Database::CommitBatch() {
  if (!in_batch_) {
    return Status::InvalidArgument("no batch is open");
  }
  in_batch_ = false;
  Result<uint64_t> lsn = wal_->Commit(batch_txn_);
  if (!lsn.ok()) {
    // The batch may or may not have reached disk (the write tore, or
    // the sync failed after a complete write) — reopening resolves the
    // ambiguity to exactly-before or exactly-after. In *this* process
    // the batch is gone either way, and the WAL stays poisoned until
    // Checkpoint() or reopen.
    RollbackToMarks();
    return lsn.status();
  }
  last_commit_lsn_ = *lsn;
  return lsn;
}

Status Database::RollbackBatch() {
  if (!in_batch_) {
    return Status::InvalidArgument("no batch is open");
  }
  in_batch_ = false;
  Status s = wal_->Abort(batch_txn_);
  RollbackToMarks();
  return s;
}

void Database::RollbackToMarks() {
  store_->TruncateTo(marks_.node_count);
  tags_.TruncateTo(marks_.tags);
  values_.TruncateTo(marks_.values);
  // Pre-existing tags may have gained postings for the rolled-back
  // nodes; pop them (postings are appended in node-id order).
  for (size_t t = 0; t < marks_.tag_index && t < tag_index_.size(); ++t) {
    std::vector<NodeId>& list = tag_index_[t];
    while (!list.empty() && list.back() >= marks_.node_count) {
      list.pop_back();
    }
  }
  tag_index_.resize(marks_.tag_index);
  roots_.resize(marks_.roots);
}

Database::~Database() {
  // Tear down in dependency order before deleting the backing file.
  wal_.reset();
  store_.reset();
  pool_.reset();
  if (file_ != nullptr) {
    file_->Close().IgnoreError();
    file_.reset();
  }
  if (owns_data_file_ && env_ != nullptr) {
    env_->RemoveFile(options_.data_file).IgnoreError();
    env_->RemoveFile(CatalogPath(options_.data_file)).IgnoreError();
    WriteAheadLog::RemoveSegments(env_, options_.data_file).IgnoreError();
  }
}

Result<NodeId> Database::LoadDocument(const XmlDocument& doc) {
  if (in_batch_) {
    // Log before apply. The WAL buffers the serialized document in
    // memory (nothing hits disk until CommitBatch), and replay re-parses
    // this exact byte form, so write options must stay canonical.
    XmlWriteOptions wo;
    wo.indent = false;
    wo.declaration = false;
    X3_RETURN_IF_ERROR(wal_->AppendData(batch_txn_, WriteXml(doc, wo)));
  }
  DocumentLoader loader(this);
  return loader.Load(doc);
}

Result<NodeId> Database::LoadXmlString(std::string_view xml) {
  X3_ASSIGN_OR_RETURN(XmlDocument doc, ParseXml(xml));
  return LoadDocument(doc);
}

Result<NodeId> Database::LoadXmlFile(const std::string& path) {
  X3_ASSIGN_OR_RETURN(XmlDocument doc, ParseXmlFile(path, env_));
  return LoadDocument(doc);
}

const std::vector<NodeId>& Database::NodesWithTag(std::string_view tag) const {
  TagId id = tags_.Lookup(tag);
  if (id == kInvalidTagId) return empty_;
  return NodesWithTagId(id);
}

const std::vector<NodeId>& Database::NodesWithTagId(TagId tag_id) const {
  if (tag_id >= tag_index_.size()) return empty_;
  return tag_index_[tag_id];
}

Result<std::vector<NodeId>> Database::DescendantsWithTag(NodeId root,
                                                         TagId tag_id) const {
  NodeRecord root_rec;
  X3_RETURN_IF_ERROR(GetNode(root, &root_rec));
  const std::vector<NodeId>& list = NodesWithTagId(tag_id);
  // Descendants of `root` have ids in (root, root_rec.end].
  auto lo = std::upper_bound(list.begin(), list.end(), root);
  auto hi = std::upper_bound(list.begin(), list.end(), root_rec.end);
  return std::vector<NodeId>(lo, hi);
}

Result<std::vector<NodeId>> Database::ChildrenWithTag(NodeId root,
                                                      TagId tag_id) const {
  X3_ASSIGN_OR_RETURN(std::vector<NodeId> desc,
                      DescendantsWithTag(root, tag_id));
  std::vector<NodeId> out;
  out.reserve(desc.size());
  for (NodeId id : desc) {
    NodeRecord rec;
    X3_RETURN_IF_ERROR(GetNode(id, &rec));
    if (rec.parent == root) out.push_back(id);
  }
  return out;
}

Result<bool> Database::IsAncestor(NodeId anc, NodeId desc) const {
  if (anc >= desc) return false;
  NodeRecord rec;
  X3_RETURN_IF_ERROR(GetNode(anc, &rec));
  return desc <= rec.end;
}

Result<DatabaseStats> Database::ComputeStats() const {
  DatabaseStats stats;
  stats.nodes = store_->size();
  stats.documents = roots_.size();
  stats.distinct_tags = tags_.size();
  stats.distinct_values = values_.size();
  stats.data_pages = file_->page_count();
  uint64_t depth_sum = 0;
  for (NodeId id = 0; id < store_->size(); ++id) {
    NodeRecord rec;
    X3_RETURN_IF_ERROR(store_->Get(id, &rec));
    if (rec.kind == NodeKind::kElement) {
      ++stats.elements;
    } else {
      ++stats.attributes;
    }
    depth_sum += rec.level;
    if (rec.level > stats.max_depth) stats.max_depth = rec.level;
  }
  stats.avg_depth =
      stats.nodes == 0 ? 0 : static_cast<double>(depth_sum) /
                                 static_cast<double>(stats.nodes);
  return stats;
}

Result<XmlDocument> Database::ReconstructSubtree(NodeId root) const {
  NodeRecord root_rec;
  X3_RETURN_IF_ERROR(GetNode(root, &root_rec));
  if (root_rec.kind != NodeKind::kElement) {
    return Status::InvalidArgument(
        "can only reconstruct from an element node");
  }
  auto make_element = [&](const NodeRecord& rec) {
    auto el = XmlNode::Element(tags_.Name(rec.tag_id));
    if (rec.value_id != kInvalidValueId) {
      el->AddText(values_.Value(rec.value_id));
    }
    return el;
  };
  std::unique_ptr<XmlNode> result = make_element(root_rec);
  // Ids are preorder, so a single pass with a parent stack rebuilds the
  // tree: the stack holds (node id, end, element) of open ancestors.
  struct Open {
    NodeId id;
    NodeId end;
    XmlNode* element;
  };
  std::vector<Open> stack{{root, root_rec.end, result.get()}};
  for (NodeId id = root + 1; id <= root_rec.end; ++id) {
    NodeRecord rec;
    X3_RETURN_IF_ERROR(GetNode(id, &rec));
    while (stack.back().end < id) stack.pop_back();
    if (stack.back().id != rec.parent) {
      return Status::Corruption(StringPrintf(
          "node %u's parent %u is not the enclosing open element", id,
          rec.parent));
    }
    XmlNode* parent = stack.back().element;
    if (rec.kind == NodeKind::kAttribute) {
      // Stored attribute tags carry the '@' prefix.
      std::string name = tags_.Name(rec.tag_id).substr(1);
      parent->SetAttribute(std::move(name), values_.Value(rec.value_id));
    } else {
      XmlNode* child = parent->AddChild(make_element(rec));
      stack.push_back({id, rec.end, child});
    }
  }
  return XmlDocument(std::move(result));
}

Result<std::string> Database::NodeValue(NodeId id) const {
  NodeRecord rec;
  X3_RETURN_IF_ERROR(GetNode(id, &rec));
  if (rec.value_id == kInvalidValueId) return std::string();
  return values_.Value(rec.value_id);
}

}  // namespace x3
