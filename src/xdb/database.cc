#include "xdb/database.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "util/hash.h"
#include "util/string_util.h"
#include "xdb/document_loader.h"
#include "xml/xml_parser.h"

namespace x3 {

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = options;
  db->env_ = options.env != nullptr ? options.env : Env::Default();
  if (db->options_.data_file.empty()) {
    db->options_.data_file = StringPrintf(
        "/tmp/x3-db-%d-%p.dat", static_cast<int>(::getpid()),
        static_cast<void*>(db.get()));
    db->owns_data_file_ = true;
  }
  db->file_ = std::make_unique<PageFile>();
  X3_RETURN_IF_ERROR(db->file_->Open(db->options_.data_file,
                                     /*truncate=*/true, db->env_,
                                     db->options_.compress_pages));
  db->pool_ = std::make_unique<BufferPool>(db->file_.get(),
                                           db->options_.buffer_pool_pages);
  db->store_ = std::make_unique<NodeStore>(db->pool_.get());
  return db;
}

namespace {

constexpr uint32_t kCatalogMagic = 0x58334354;  // "X3CT"
// Version 2: catalog carries a trailing 64-bit checksum of the body.
constexpr uint32_t kCatalogVersion = 2;

/// Seed for the catalog body checksum, distinct from page checksums.
constexpr uint64_t kCatalogChecksumSeed = 0x58334354a5a5a5a5ULL;

void AppendRaw(std::string* out, const void* data, size_t len) {
  out->append(static_cast<const char*>(data), len);
}

void AppendString(std::string* out, const std::string& s) {
  uint32_t len = static_cast<uint32_t>(s.size());
  AppendRaw(out, &len, sizeof(len));
  AppendRaw(out, s.data(), s.size());
}

/// In-memory reader over the catalog body with bounds-checked reads, so
/// a truncated catalog becomes Corruption instead of an overrun.
class CatalogCursor {
 public:
  CatalogCursor(std::string_view data, std::string path)
      : data_(data), path_(std::move(path)) {}

  Status ReadRaw(void* out, size_t len) {
    if (len > data_.size() - pos_) {
      return Status::Corruption("truncated catalog " + path_);
    }
    std::memcpy(out, data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Result<std::string> ReadString() {
    uint32_t len = 0;
    X3_RETURN_IF_ERROR(ReadRaw(&len, sizeof(len)));
    if (len > (1u << 26)) {
      return Status::Corruption("implausible string length in " + path_);
    }
    std::string s(len, '\0');
    X3_RETURN_IF_ERROR(ReadRaw(s.data(), len));
    return s;
  }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  std::string path_;
};

std::string CatalogPath(const std::string& data_file) {
  return data_file + ".cat";
}

}  // namespace

Status Database::Checkpoint() {
  X3_RETURN_IF_ERROR(pool_->FlushAll());
  // Make the data pages durable before the catalog that describes them.
  X3_RETURN_IF_ERROR(file_->Sync());

  std::string body;
  uint32_t header[3] = {kCatalogMagic, kCatalogVersion, store_->size()};
  AppendRaw(&body, header, sizeof(header));

  uint32_t num_roots = static_cast<uint32_t>(roots_.size());
  AppendRaw(&body, &num_roots, sizeof(num_roots));
  AppendRaw(&body, roots_.data(), roots_.size() * sizeof(NodeId));

  uint32_t num_tags = static_cast<uint32_t>(tags_.size());
  AppendRaw(&body, &num_tags, sizeof(num_tags));
  for (TagId t = 0; t < num_tags; ++t) {
    AppendString(&body, tags_.Name(t));
  }

  uint32_t num_values = static_cast<uint32_t>(values_.size());
  AppendRaw(&body, &num_values, sizeof(num_values));
  for (ValueId v = 0; v < num_values; ++v) {
    AppendString(&body, values_.Value(v));
  }

  for (TagId t = 0; t < num_tags; ++t) {
    const std::vector<NodeId>& list = NodesWithTagId(t);
    uint32_t count = static_cast<uint32_t>(list.size());
    AppendRaw(&body, &count, sizeof(count));
    AppendRaw(&body, list.data(), list.size() * sizeof(NodeId));
  }

  uint64_t checksum = HashFinalize(
      Fnv1a64(body.data(), body.size(), kCatalogChecksumSeed));
  AppendRaw(&body, &checksum, sizeof(checksum));

  // Write-to-temp + fsync + atomic rename: a crash at any point leaves
  // either the old catalog or the new one, never a half-written mix.
  std::string path = CatalogPath(options_.data_file);
  std::string tmp_path = path + ".tmp";
  Status s = WriteStringToFile(env_, tmp_path, body, /*sync=*/true);
  if (!s.ok()) {
    env_->RemoveFile(tmp_path).IgnoreError();
    return s;
  }
  return env_->RenameFile(tmp_path, path);
}

Result<std::unique_ptr<Database>> Database::OpenExisting(
    DatabaseOptions options) {
  if (options.data_file.empty()) {
    return Status::InvalidArgument(
        "OpenExisting requires an explicit data_file");
  }
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = options;
  db->env_ = options.env != nullptr ? options.env : Env::Default();
  db->file_ = std::make_unique<PageFile>();
  X3_RETURN_IF_ERROR(db->file_->Open(options.data_file, /*truncate=*/false,
                                     db->env_, options.compress_pages));
  // Recovery scan: checksum-verify every page before trusting any of
  // them, so torn writes surface now (with a page id) rather than as a
  // wrong cube later.
  X3_RETURN_IF_ERROR(db->file_->VerifyAllPages());
  db->pool_ = std::make_unique<BufferPool>(db->file_.get(),
                                           options.buffer_pool_pages);

  std::string path = CatalogPath(options.data_file);
  std::string raw;
  Status s = ReadFileToString(db->env_, path, &raw);
  if (!s.ok()) {
    if (s.code() == StatusCode::kNotFound) {
      return Status::NotFound("no catalog at " + path +
                              " (was Checkpoint() called?)");
    }
    return s;
  }
  if (raw.size() < sizeof(uint64_t)) {
    return Status::Corruption("catalog " + path + " too small");
  }
  std::string_view body(raw.data(), raw.size() - sizeof(uint64_t));
  uint64_t stored = 0;
  std::memcpy(&stored, raw.data() + body.size(), sizeof(stored));
  uint64_t computed = HashFinalize(
      Fnv1a64(body.data(), body.size(), kCatalogChecksumSeed));
  if (stored != computed) {
    return Status::Corruption(StringPrintf(
        "catalog %s failed checksum (stored %016llx, computed %016llx): "
        "torn write or corruption",
        path.c_str(), static_cast<unsigned long long>(stored),
        static_cast<unsigned long long>(computed)));
  }

  CatalogCursor cursor(body, path);
  uint32_t header[3];
  X3_RETURN_IF_ERROR(cursor.ReadRaw(header, sizeof(header)));
  if (header[0] != kCatalogMagic) {
    return Status::Corruption("bad catalog magic in " + path);
  }
  if (header[1] != kCatalogVersion) {
    return Status::Corruption("unsupported catalog version");
  }
  // The node count must fit in the verified data pages.
  uint64_t capacity = static_cast<uint64_t>(db->file_->page_count()) *
                      NodeStore::kRecordsPerPage;
  if (header[2] > capacity) {
    return Status::Corruption(StringPrintf(
        "catalog claims %u nodes but %s has %u pages (capacity %llu): "
        "truncated page file?",
        header[2], options.data_file.c_str(), db->file_->page_count(),
        static_cast<unsigned long long>(capacity)));
  }
  db->store_ = std::make_unique<NodeStore>(db->pool_.get(), header[2]);

  // Guard allocations against implausible counts before resizing: any
  // array must fit in the bytes that are actually left.
  auto plausible = [&cursor](uint64_t count, uint64_t unit) {
    return count * unit <= cursor.remaining();
  };

  uint32_t num_roots = 0;
  X3_RETURN_IF_ERROR(cursor.ReadRaw(&num_roots, sizeof(num_roots)));
  if (!plausible(num_roots, sizeof(NodeId))) {
    return Status::Corruption("implausible root count in catalog");
  }
  db->roots_.resize(num_roots);
  X3_RETURN_IF_ERROR(
      cursor.ReadRaw(db->roots_.data(), num_roots * sizeof(NodeId)));

  uint32_t num_tags = 0;
  X3_RETURN_IF_ERROR(cursor.ReadRaw(&num_tags, sizeof(num_tags)));
  for (uint32_t t = 0; t < num_tags; ++t) {
    X3_ASSIGN_OR_RETURN(std::string name, cursor.ReadString());
    if (db->tags_.Intern(name) != t) {
      return Status::Corruption("tag dictionary out of order");
    }
  }

  uint32_t num_values = 0;
  X3_RETURN_IF_ERROR(cursor.ReadRaw(&num_values, sizeof(num_values)));
  for (uint32_t v = 0; v < num_values; ++v) {
    X3_ASSIGN_OR_RETURN(std::string value, cursor.ReadString());
    if (db->values_.Intern(value) != v) {
      return Status::Corruption("value dictionary out of order");
    }
  }

  db->tag_index_.resize(num_tags);
  for (uint32_t t = 0; t < num_tags; ++t) {
    uint32_t count = 0;
    X3_RETURN_IF_ERROR(cursor.ReadRaw(&count, sizeof(count)));
    if (!plausible(count, sizeof(NodeId))) {
      return Status::Corruption("implausible index size in catalog");
    }
    db->tag_index_[t].resize(count);
    X3_RETURN_IF_ERROR(
        cursor.ReadRaw(db->tag_index_[t].data(), count * sizeof(NodeId)));
  }
  if (cursor.remaining() != 0) {
    return Status::Corruption("trailing bytes in catalog " + path);
  }
  return db;
}

Database::~Database() {
  // Tear down in dependency order before deleting the backing file.
  store_.reset();
  pool_.reset();
  if (file_ != nullptr) {
    file_->Close().IgnoreError();
    file_.reset();
  }
  if (owns_data_file_ && env_ != nullptr) {
    env_->RemoveFile(options_.data_file).IgnoreError();
    env_->RemoveFile(CatalogPath(options_.data_file)).IgnoreError();
  }
}

Result<NodeId> Database::LoadDocument(const XmlDocument& doc) {
  DocumentLoader loader(this);
  return loader.Load(doc);
}

Result<NodeId> Database::LoadXmlString(std::string_view xml) {
  X3_ASSIGN_OR_RETURN(XmlDocument doc, ParseXml(xml));
  return LoadDocument(doc);
}

Result<NodeId> Database::LoadXmlFile(const std::string& path) {
  X3_ASSIGN_OR_RETURN(XmlDocument doc, ParseXmlFile(path, env_));
  return LoadDocument(doc);
}

const std::vector<NodeId>& Database::NodesWithTag(std::string_view tag) const {
  TagId id = tags_.Lookup(tag);
  if (id == kInvalidTagId) return empty_;
  return NodesWithTagId(id);
}

const std::vector<NodeId>& Database::NodesWithTagId(TagId tag_id) const {
  if (tag_id >= tag_index_.size()) return empty_;
  return tag_index_[tag_id];
}

Result<std::vector<NodeId>> Database::DescendantsWithTag(NodeId root,
                                                         TagId tag_id) const {
  NodeRecord root_rec;
  X3_RETURN_IF_ERROR(GetNode(root, &root_rec));
  const std::vector<NodeId>& list = NodesWithTagId(tag_id);
  // Descendants of `root` have ids in (root, root_rec.end].
  auto lo = std::upper_bound(list.begin(), list.end(), root);
  auto hi = std::upper_bound(list.begin(), list.end(), root_rec.end);
  return std::vector<NodeId>(lo, hi);
}

Result<std::vector<NodeId>> Database::ChildrenWithTag(NodeId root,
                                                      TagId tag_id) const {
  X3_ASSIGN_OR_RETURN(std::vector<NodeId> desc,
                      DescendantsWithTag(root, tag_id));
  std::vector<NodeId> out;
  out.reserve(desc.size());
  for (NodeId id : desc) {
    NodeRecord rec;
    X3_RETURN_IF_ERROR(GetNode(id, &rec));
    if (rec.parent == root) out.push_back(id);
  }
  return out;
}

Result<bool> Database::IsAncestor(NodeId anc, NodeId desc) const {
  if (anc >= desc) return false;
  NodeRecord rec;
  X3_RETURN_IF_ERROR(GetNode(anc, &rec));
  return desc <= rec.end;
}

Result<DatabaseStats> Database::ComputeStats() const {
  DatabaseStats stats;
  stats.nodes = store_->size();
  stats.documents = roots_.size();
  stats.distinct_tags = tags_.size();
  stats.distinct_values = values_.size();
  stats.data_pages = file_->page_count();
  uint64_t depth_sum = 0;
  for (NodeId id = 0; id < store_->size(); ++id) {
    NodeRecord rec;
    X3_RETURN_IF_ERROR(store_->Get(id, &rec));
    if (rec.kind == NodeKind::kElement) {
      ++stats.elements;
    } else {
      ++stats.attributes;
    }
    depth_sum += rec.level;
    if (rec.level > stats.max_depth) stats.max_depth = rec.level;
  }
  stats.avg_depth =
      stats.nodes == 0 ? 0 : static_cast<double>(depth_sum) /
                                 static_cast<double>(stats.nodes);
  return stats;
}

Result<XmlDocument> Database::ReconstructSubtree(NodeId root) const {
  NodeRecord root_rec;
  X3_RETURN_IF_ERROR(GetNode(root, &root_rec));
  if (root_rec.kind != NodeKind::kElement) {
    return Status::InvalidArgument(
        "can only reconstruct from an element node");
  }
  auto make_element = [&](const NodeRecord& rec) {
    auto el = XmlNode::Element(tags_.Name(rec.tag_id));
    if (rec.value_id != kInvalidValueId) {
      el->AddText(values_.Value(rec.value_id));
    }
    return el;
  };
  std::unique_ptr<XmlNode> result = make_element(root_rec);
  // Ids are preorder, so a single pass with a parent stack rebuilds the
  // tree: the stack holds (node id, end, element) of open ancestors.
  struct Open {
    NodeId id;
    NodeId end;
    XmlNode* element;
  };
  std::vector<Open> stack{{root, root_rec.end, result.get()}};
  for (NodeId id = root + 1; id <= root_rec.end; ++id) {
    NodeRecord rec;
    X3_RETURN_IF_ERROR(GetNode(id, &rec));
    while (stack.back().end < id) stack.pop_back();
    if (stack.back().id != rec.parent) {
      return Status::Corruption(StringPrintf(
          "node %u's parent %u is not the enclosing open element", id,
          rec.parent));
    }
    XmlNode* parent = stack.back().element;
    if (rec.kind == NodeKind::kAttribute) {
      // Stored attribute tags carry the '@' prefix.
      std::string name = tags_.Name(rec.tag_id).substr(1);
      parent->SetAttribute(std::move(name), values_.Value(rec.value_id));
    } else {
      XmlNode* child = parent->AddChild(make_element(rec));
      stack.push_back({id, rec.end, child});
    }
  }
  return XmlDocument(std::move(result));
}

Result<std::string> Database::NodeValue(NodeId id) const {
  NodeRecord rec;
  X3_RETURN_IF_ERROR(GetNode(id, &rec));
  if (rec.value_id == kInvalidValueId) return std::string();
  return values_.Value(rec.value_id);
}

}  // namespace x3
