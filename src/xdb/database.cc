#include "xdb/database.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "util/string_util.h"
#include "xdb/document_loader.h"
#include "xml/xml_parser.h"

namespace x3 {

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = options;
  if (db->options_.data_file.empty()) {
    db->options_.data_file = StringPrintf(
        "/tmp/x3-db-%d-%p.dat", static_cast<int>(::getpid()),
        static_cast<void*>(db.get()));
    db->owns_data_file_ = true;
  }
  db->file_ = std::make_unique<PageFile>();
  X3_RETURN_IF_ERROR(db->file_->Open(db->options_.data_file,
                                     /*truncate=*/true));
  db->pool_ = std::make_unique<BufferPool>(db->file_.get(),
                                           db->options_.buffer_pool_pages);
  db->store_ = std::make_unique<NodeStore>(db->pool_.get());
  return db;
}

namespace {

constexpr uint32_t kCatalogMagic = 0x58334354;  // "X3CT"
constexpr uint32_t kCatalogVersion = 1;

Status WriteAll(std::FILE* f, const void* data, size_t len,
                const std::string& path) {
  if (len > 0 && std::fwrite(data, len, 1, f) != 1) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

Status ReadAll(std::FILE* f, void* data, size_t len,
               const std::string& path) {
  if (len > 0 && std::fread(data, len, 1, f) != 1) {
    return Status::Corruption("truncated catalog " + path);
  }
  return Status::OK();
}

Status WriteString(std::FILE* f, const std::string& s,
                   const std::string& path) {
  uint32_t len = static_cast<uint32_t>(s.size());
  X3_RETURN_IF_ERROR(WriteAll(f, &len, sizeof(len), path));
  return WriteAll(f, s.data(), s.size(), path);
}

Result<std::string> ReadString(std::FILE* f, const std::string& path) {
  uint32_t len = 0;
  X3_RETURN_IF_ERROR(ReadAll(f, &len, sizeof(len), path));
  if (len > (1u << 26)) {
    return Status::Corruption("implausible string length in " + path);
  }
  std::string s(len, '\0');
  X3_RETURN_IF_ERROR(ReadAll(f, s.data(), len, path));
  return s;
}

std::string CatalogPath(const std::string& data_file) {
  return data_file + ".cat";
}

}  // namespace

Status Database::Checkpoint() {
  X3_RETURN_IF_ERROR(pool_->FlushAll());
  std::string path = CatalogPath(options_.data_file);
  std::string tmp_path = path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot create " + tmp_path);
  auto finish = [&](Status s) {
    if (f != nullptr) std::fclose(f);
    if (!s.ok()) {
      std::remove(tmp_path.c_str());
      return s;
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
      return Status::IOError("cannot move catalog into place: " + path);
    }
    return Status::OK();
  };

  uint32_t header[3] = {kCatalogMagic, kCatalogVersion, store_->size()};
  X3_RETURN_IF_ERROR(WriteAll(f, header, sizeof(header), tmp_path));

  uint32_t num_roots = static_cast<uint32_t>(roots_.size());
  X3_RETURN_IF_ERROR(WriteAll(f, &num_roots, sizeof(num_roots), tmp_path));
  X3_RETURN_IF_ERROR(
      WriteAll(f, roots_.data(), roots_.size() * sizeof(NodeId), tmp_path));

  uint32_t num_tags = static_cast<uint32_t>(tags_.size());
  X3_RETURN_IF_ERROR(WriteAll(f, &num_tags, sizeof(num_tags), tmp_path));
  for (TagId t = 0; t < num_tags; ++t) {
    X3_RETURN_IF_ERROR(WriteString(f, tags_.Name(t), tmp_path));
  }

  uint32_t num_values = static_cast<uint32_t>(values_.size());
  X3_RETURN_IF_ERROR(WriteAll(f, &num_values, sizeof(num_values), tmp_path));
  for (ValueId v = 0; v < num_values; ++v) {
    X3_RETURN_IF_ERROR(WriteString(f, values_.Value(v), tmp_path));
  }

  for (TagId t = 0; t < num_tags; ++t) {
    const std::vector<NodeId>& list = NodesWithTagId(t);
    uint32_t count = static_cast<uint32_t>(list.size());
    X3_RETURN_IF_ERROR(WriteAll(f, &count, sizeof(count), tmp_path));
    X3_RETURN_IF_ERROR(
        WriteAll(f, list.data(), list.size() * sizeof(NodeId), tmp_path));
  }
  if (std::fflush(f) != 0) {
    return finish(Status::IOError("flush failed on " + tmp_path));
  }
  return finish(Status::OK());
}

Result<std::unique_ptr<Database>> Database::OpenExisting(
    DatabaseOptions options) {
  if (options.data_file.empty()) {
    return Status::InvalidArgument(
        "OpenExisting requires an explicit data_file");
  }
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = options;
  db->file_ = std::make_unique<PageFile>();
  X3_RETURN_IF_ERROR(db->file_->Open(options.data_file, /*truncate=*/false));
  db->pool_ = std::make_unique<BufferPool>(db->file_.get(),
                                           options.buffer_pool_pages);

  std::string path = CatalogPath(options.data_file);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no catalog at " + path +
                            " (was Checkpoint() called?)");
  }
  auto fail = [&](Status s) {
    std::fclose(f);
    return s;
  };
  // Guard allocations against corrupted counts.
  std::fseek(f, 0, SEEK_END);
  long size_long = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  uint64_t file_size = size_long > 0 ? static_cast<uint64_t>(size_long) : 0;
  auto plausible = [&](uint64_t count, uint64_t unit) {
    return count <= file_size / (unit == 0 ? 1 : unit) + 1;
  };
  uint32_t header[3];
  Status s = ReadAll(f, header, sizeof(header), path);
  if (!s.ok()) return fail(s);
  if (header[0] != kCatalogMagic) {
    return fail(Status::Corruption("bad catalog magic in " + path));
  }
  if (header[1] != kCatalogVersion) {
    return fail(Status::Corruption("unsupported catalog version"));
  }
  db->store_ = std::make_unique<NodeStore>(db->pool_.get(), header[2]);

  uint32_t num_roots = 0;
  s = ReadAll(f, &num_roots, sizeof(num_roots), path);
  if (!s.ok()) return fail(s);
  if (!plausible(num_roots, sizeof(NodeId))) {
    return fail(Status::Corruption("implausible root count in catalog"));
  }
  db->roots_.resize(num_roots);
  s = ReadAll(f, db->roots_.data(), num_roots * sizeof(NodeId), path);
  if (!s.ok()) return fail(s);

  uint32_t num_tags = 0;
  s = ReadAll(f, &num_tags, sizeof(num_tags), path);
  if (!s.ok()) return fail(s);
  if (!plausible(num_tags, sizeof(uint32_t))) {
    return fail(Status::Corruption("implausible tag count in catalog"));
  }
  for (uint32_t t = 0; t < num_tags; ++t) {
    Result<std::string> name = ReadString(f, path);
    if (!name.ok()) return fail(name.status());
    if (db->tags_.Intern(*name) != t) {
      return fail(Status::Corruption("tag dictionary out of order"));
    }
  }

  uint32_t num_values = 0;
  s = ReadAll(f, &num_values, sizeof(num_values), path);
  if (!s.ok()) return fail(s);
  if (!plausible(num_values, sizeof(uint32_t))) {
    return fail(Status::Corruption("implausible value count in catalog"));
  }
  for (uint32_t v = 0; v < num_values; ++v) {
    Result<std::string> value = ReadString(f, path);
    if (!value.ok()) return fail(value.status());
    if (db->values_.Intern(*value) != v) {
      return fail(Status::Corruption("value dictionary out of order"));
    }
  }

  db->tag_index_.resize(num_tags);
  for (uint32_t t = 0; t < num_tags; ++t) {
    uint32_t count = 0;
    s = ReadAll(f, &count, sizeof(count), path);
    if (!s.ok()) return fail(s);
    if (!plausible(count, sizeof(NodeId))) {
      return fail(Status::Corruption("implausible index size in catalog"));
    }
    db->tag_index_[t].resize(count);
    s = ReadAll(f, db->tag_index_[t].data(), count * sizeof(NodeId), path);
    if (!s.ok()) return fail(s);
  }
  std::fclose(f);
  return db;
}

Database::~Database() {
  // Tear down in dependency order before deleting the backing file.
  store_.reset();
  pool_.reset();
  if (file_ != nullptr) {
    file_->Close().IgnoreError();
    file_.reset();
  }
  if (owns_data_file_) {
    std::remove(options_.data_file.c_str());
    std::remove(CatalogPath(options_.data_file).c_str());
  }
}

Result<NodeId> Database::LoadDocument(const XmlDocument& doc) {
  DocumentLoader loader(this);
  return loader.Load(doc);
}

Result<NodeId> Database::LoadXmlString(std::string_view xml) {
  X3_ASSIGN_OR_RETURN(XmlDocument doc, ParseXml(xml));
  return LoadDocument(doc);
}

Result<NodeId> Database::LoadXmlFile(const std::string& path) {
  X3_ASSIGN_OR_RETURN(XmlDocument doc, ParseXmlFile(path));
  return LoadDocument(doc);
}

const std::vector<NodeId>& Database::NodesWithTag(std::string_view tag) const {
  TagId id = tags_.Lookup(tag);
  if (id == kInvalidTagId) return empty_;
  return NodesWithTagId(id);
}

const std::vector<NodeId>& Database::NodesWithTagId(TagId tag_id) const {
  if (tag_id >= tag_index_.size()) return empty_;
  return tag_index_[tag_id];
}

Result<std::vector<NodeId>> Database::DescendantsWithTag(NodeId root,
                                                         TagId tag_id) const {
  NodeRecord root_rec;
  X3_RETURN_IF_ERROR(GetNode(root, &root_rec));
  const std::vector<NodeId>& list = NodesWithTagId(tag_id);
  // Descendants of `root` have ids in (root, root_rec.end].
  auto lo = std::upper_bound(list.begin(), list.end(), root);
  auto hi = std::upper_bound(list.begin(), list.end(), root_rec.end);
  return std::vector<NodeId>(lo, hi);
}

Result<std::vector<NodeId>> Database::ChildrenWithTag(NodeId root,
                                                      TagId tag_id) const {
  X3_ASSIGN_OR_RETURN(std::vector<NodeId> desc,
                      DescendantsWithTag(root, tag_id));
  std::vector<NodeId> out;
  out.reserve(desc.size());
  for (NodeId id : desc) {
    NodeRecord rec;
    X3_RETURN_IF_ERROR(GetNode(id, &rec));
    if (rec.parent == root) out.push_back(id);
  }
  return out;
}

Result<bool> Database::IsAncestor(NodeId anc, NodeId desc) const {
  if (anc >= desc) return false;
  NodeRecord rec;
  X3_RETURN_IF_ERROR(GetNode(anc, &rec));
  return desc <= rec.end;
}

Result<DatabaseStats> Database::ComputeStats() const {
  DatabaseStats stats;
  stats.nodes = store_->size();
  stats.documents = roots_.size();
  stats.distinct_tags = tags_.size();
  stats.distinct_values = values_.size();
  stats.data_pages = file_->page_count();
  uint64_t depth_sum = 0;
  for (NodeId id = 0; id < store_->size(); ++id) {
    NodeRecord rec;
    X3_RETURN_IF_ERROR(store_->Get(id, &rec));
    if (rec.kind == NodeKind::kElement) {
      ++stats.elements;
    } else {
      ++stats.attributes;
    }
    depth_sum += rec.level;
    if (rec.level > stats.max_depth) stats.max_depth = rec.level;
  }
  stats.avg_depth =
      stats.nodes == 0 ? 0 : static_cast<double>(depth_sum) /
                                 static_cast<double>(stats.nodes);
  return stats;
}

Result<XmlDocument> Database::ReconstructSubtree(NodeId root) const {
  NodeRecord root_rec;
  X3_RETURN_IF_ERROR(GetNode(root, &root_rec));
  if (root_rec.kind != NodeKind::kElement) {
    return Status::InvalidArgument(
        "can only reconstruct from an element node");
  }
  auto make_element = [&](const NodeRecord& rec) {
    auto el = XmlNode::Element(tags_.Name(rec.tag_id));
    if (rec.value_id != kInvalidValueId) {
      el->AddText(values_.Value(rec.value_id));
    }
    return el;
  };
  std::unique_ptr<XmlNode> result = make_element(root_rec);
  // Ids are preorder, so a single pass with a parent stack rebuilds the
  // tree: the stack holds (node id, end, element) of open ancestors.
  struct Open {
    NodeId id;
    NodeId end;
    XmlNode* element;
  };
  std::vector<Open> stack{{root, root_rec.end, result.get()}};
  for (NodeId id = root + 1; id <= root_rec.end; ++id) {
    NodeRecord rec;
    X3_RETURN_IF_ERROR(GetNode(id, &rec));
    while (stack.back().end < id) stack.pop_back();
    if (stack.back().id != rec.parent) {
      return Status::Corruption(StringPrintf(
          "node %u's parent %u is not the enclosing open element", id,
          rec.parent));
    }
    XmlNode* parent = stack.back().element;
    if (rec.kind == NodeKind::kAttribute) {
      // Stored attribute tags carry the '@' prefix.
      std::string name = tags_.Name(rec.tag_id).substr(1);
      parent->SetAttribute(std::move(name), values_.Value(rec.value_id));
    } else {
      XmlNode* child = parent->AddChild(make_element(rec));
      stack.push_back({id, rec.end, child});
    }
  }
  return XmlDocument(std::move(result));
}

Result<std::string> Database::NodeValue(NodeId id) const {
  NodeRecord rec;
  X3_RETURN_IF_ERROR(GetNode(id, &rec));
  if (rec.value_id == kInvalidValueId) return std::string();
  return values_.Value(rec.value_id);
}

}  // namespace x3
