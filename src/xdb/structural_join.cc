#include "xdb/structural_join.h"

#include <algorithm>

namespace x3 {

Result<std::vector<JoinPair>> StructuralJoin(
    const Database& db, const std::vector<NodeId>& ancestors,
    const std::vector<NodeId>& descendants, StructuralAxis axis,
    JoinStats* stats) {
  std::vector<JoinPair> out;
  JoinStats local;
  JoinStats* st = stats != nullptr ? stats : &local;

  // Stack of ancestors whose interval is still open, outermost first.
  struct StackEntry {
    NodeId id;
    NodeId end;
  };
  std::vector<StackEntry> stack;

  size_t ai = 0;
  for (NodeId d : descendants) {
    ++st->descendants_scanned;
    NodeRecord d_rec;
    X3_RETURN_IF_ERROR(db.GetNode(d, &d_rec));
    // Pop ancestors that closed before d.
    while (!stack.empty() && stack.back().end < d) stack.pop_back();
    // Push every ancestor starting before d that could contain it.
    while (ai < ancestors.size() && ancestors[ai] < d) {
      NodeId a = ancestors[ai];
      ++st->ancestors_scanned;
      NodeRecord a_rec;
      X3_RETURN_IF_ERROR(db.GetNode(a, &a_rec));
      if (a_rec.end >= d) {
        // Still open at d; everything below it on the stack that closed
        // before a started has already been popped above, but interior
        // closed intervals may remain — prune them now.
        while (!stack.empty() && stack.back().end < a) stack.pop_back();
        stack.push_back({a, a_rec.end});
        st->max_stack_depth =
            std::max<uint64_t>(st->max_stack_depth, stack.size());
      }
      ++ai;
    }
    if (axis == StructuralAxis::kDescendant) {
      for (const StackEntry& e : stack) {
        if (e.end >= d) {
          out.push_back({e.id, d});
          ++st->pairs_emitted;
        }
      }
    } else {
      // Parent-child: at most one stack entry can be the parent.
      for (const StackEntry& e : stack) {
        if (e.id == d_rec.parent) {
          out.push_back({e.id, d});
          ++st->pairs_emitted;
          break;
        }
      }
    }
  }
  return out;
}

Result<std::vector<JoinPair>> NestedLoopStructuralJoin(
    const Database& db, const std::vector<NodeId>& ancestors,
    const std::vector<NodeId>& descendants, StructuralAxis axis) {
  std::vector<JoinPair> out;
  for (NodeId d : descendants) {
    NodeRecord d_rec;
    X3_RETURN_IF_ERROR(db.GetNode(d, &d_rec));
    for (NodeId a : ancestors) {
      if (a >= d) continue;
      NodeRecord a_rec;
      X3_RETURN_IF_ERROR(db.GetNode(a, &a_rec));
      if (d > a_rec.end) continue;
      if (axis == StructuralAxis::kChild && d_rec.parent != a) continue;
      out.push_back({a, d});
    }
  }
  return out;
}

}  // namespace x3
