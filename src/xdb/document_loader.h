#ifndef X3_XDB_DOCUMENT_LOADER_H_
#define X3_XDB_DOCUMENT_LOADER_H_

#include "util/result.h"
#include "xdb/node_store.h"
#include "xml/xml_node.h"

namespace x3 {

class Database;

/// Shreds an in-memory XML tree into a Database: assigns global preorder
/// NodeIds, computes (start, end, level) interval labels, interns tags
/// and values, and maintains the per-tag indexes.
///
/// Mapping decisions (documented because they define the data model the
/// cube sees):
///  * Elements become element records; an element's `value` is the
///    whitespace-stripped concatenation of its *direct* text children
///    (the "marked-up text under it" the paper groups by).
///  * Attributes become attribute records, children of their element,
///    with tag "@<name>" and the attribute value as their value. They
///    occupy interval space like leaf elements so structural predicates
///    treat them uniformly.
///  * Standalone text nodes are folded into the parent element's value
///    and do not produce records (they cannot be addressed by tree
///    patterns, which are tag-based).
class DocumentLoader {
 public:
  explicit DocumentLoader(Database* db) : db_(db) {}

  /// Loads `doc`; returns the root's NodeId.
  Result<NodeId> Load(const XmlDocument& doc);

 private:
  Result<NodeId> LoadElement(const XmlNode& node, NodeId parent,
                             uint16_t level);

  Database* db_;
};

}  // namespace x3

#endif  // X3_XDB_DOCUMENT_LOADER_H_
