#include "xdb/node_store.h"

#include <cstring>

#include "util/string_util.h"

namespace x3 {

void NodeStore::Encode(const NodeRecord& record, uint8_t* out) {
  std::memcpy(out + 0, &record.end, 4);
  std::memcpy(out + 4, &record.parent, 4);
  std::memcpy(out + 8, &record.tag_id, 4);
  std::memcpy(out + 12, &record.value_id, 4);
  std::memcpy(out + 16, &record.level, 2);
  out[18] = static_cast<uint8_t>(record.kind);
  out[19] = 0;
}

void NodeStore::Decode(const uint8_t* in, NodeRecord* record) {
  std::memcpy(&record->end, in + 0, 4);
  std::memcpy(&record->parent, in + 4, 4);
  std::memcpy(&record->tag_id, in + 8, 4);
  std::memcpy(&record->value_id, in + 12, 4);
  std::memcpy(&record->level, in + 16, 2);
  record->kind = static_cast<NodeKind>(in[18]);
}

Result<NodeId> NodeStore::Append(const NodeRecord& record) {
  NodeId id = count_;
  PageId page_id = static_cast<PageId>(id / kRecordsPerPage);
  size_t slot = id % kRecordsPerPage;
  PageHandle handle;
  if (page_id < pool_->file()->page_count()) {
    X3_ASSIGN_OR_RETURN(handle, pool_->Fetch(page_id));
  } else {
    X3_ASSIGN_OR_RETURN(handle, pool_->New());
    if (handle.id() != page_id) {
      return Status::Internal(StringPrintf(
          "node store page allocation out of order: got %u want %u",
          handle.id(), page_id));
    }
  }
  Encode(record, handle.MutablePage().bytes() + slot * kRecordBytes);
  ++count_;
  return id;
}

Status NodeStore::Get(NodeId id, NodeRecord* record) const {
  if (id >= count_) {
    return Status::OutOfRange(
        StringPrintf("node %u of %u", id, count_));
  }
  PageId page_id = static_cast<PageId>(id / kRecordsPerPage);
  size_t slot = id % kRecordsPerPage;
  X3_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(page_id));
  Decode(handle.page().bytes() + slot * kRecordBytes, record);
  return Status::OK();
}

Status NodeStore::SerializeRange(NodeId first, NodeId count,
                                 std::string* out) const {
  if (first + count < first || first + count > count_) {
    return Status::OutOfRange(StringPrintf(
        "record range [%u, %u) of %u", first, first + count, count_));
  }
  for (NodeId id = first; id < first + count; ++id) {
    NodeRecord record;
    X3_RETURN_IF_ERROR(Get(id, &record));
    uint8_t bytes[kRecordBytes];
    Encode(record, bytes);
    out->append(reinterpret_cast<const char*>(bytes), kRecordBytes);
  }
  return Status::OK();
}

Status NodeStore::UpdateEnd(NodeId id, NodeId end) {
  if (id >= count_) {
    return Status::OutOfRange(
        StringPrintf("node %u of %u", id, count_));
  }
  PageId page_id = static_cast<PageId>(id / kRecordsPerPage);
  size_t slot = id % kRecordsPerPage;
  X3_ASSIGN_OR_RETURN(PageHandle handle, pool_->Fetch(page_id));
  uint8_t* base = handle.MutablePage().bytes() + slot * kRecordBytes;
  std::memcpy(base, &end, 4);
  return Status::OK();
}

}  // namespace x3
