#ifndef X3_XDB_DATABASE_H_
#define X3_XDB_DATABASE_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/write_ahead_log.h"
#include "util/env.h"
#include "util/result.h"
#include "xdb/node_store.h"
#include "xdb/tag_dictionary.h"
#include "xdb/value_dictionary.h"
#include "xml/xml_node.h"

namespace x3 {

/// Construction options for a Database.
struct DatabaseOptions {
  /// Path of the backing page file. Empty = a unique file under /tmp
  /// that is deleted on close. The catalog (dictionaries, indexes,
  /// document roots) is checkpointed to "<data_file>.cat".
  std::string data_file;
  /// Buffer pool capacity in frames (pages). The paper used a 512 MB
  /// pool of 8 KB pages; the default here is deliberately smaller and
  /// overridable so experiments can control the data:memory ratio.
  size_t buffer_pool_pages = 4096;
  /// All file I/O (page file, catalog, XML loads through LoadXmlFile)
  /// goes through this Env. nullptr = Env::Default(). Inject a
  /// FaultInjectionEnv here to storm the storage layer.
  Env* env = nullptr;
  /// Store page bodies through the block codec (whole-file property:
  /// OpenExisting must pass the same value the file was created with).
  /// The checksum trailer and recovery semantics are unchanged.
  bool compress_pages = false;
  /// WAL segment rotation threshold ("<data_file>.wal.<n>" files).
  uint64_t wal_segment_size_bytes = 4ull << 20;
};

/// What recovery did while reopening a database (OpenExisting).
struct DatabaseRecoveryStats {
  /// Committed WAL transactions past the catalog's durable horizon
  /// that were replayed into the store.
  uint64_t replayed_txns = 0;
  uint64_t replayed_documents = 0;
  /// Torn/uncommitted WAL records cut off by WAL recovery.
  uint64_t wal_records_truncated = 0;
  uint64_t wal_segments_truncated = 0;
  /// The partially filled tail page was rebuilt from the catalog's
  /// record journal (a checkpoint write tore it, or it was never
  /// written).
  bool tail_page_rebuilt = false;
  /// Pages past the catalog's coverage were cut off the data file.
  bool data_file_truncated = false;
};

/// Summary statistics of a database's contents (the numbers the paper
/// reports for its datasets: element counts, depth distribution, size).
struct DatabaseStats {
  uint64_t nodes = 0;
  uint64_t elements = 0;
  uint64_t attributes = 0;
  uint64_t documents = 0;
  uint16_t max_depth = 0;
  double avg_depth = 0;
  uint64_t distinct_tags = 0;
  uint64_t distinct_values = 0;
  uint64_t data_pages = 0;
};

/// A minimal native XML database in the mould of TIMBER: documents are
/// shredded into interval-labelled node records in a paged data file,
/// with a tag dictionary, a value dictionary, and per-tag node indexes
/// (node lists sorted in document order) that feed structural joins and
/// tree-pattern evaluation.
///
/// NodeIds are global preorder positions across all loaded documents, so
/// containment tests work database-wide without document ids (intervals
/// of distinct documents never overlap).
class Database {
 public:
  /// Creates an empty database (truncating any existing files at
  /// options.data_file).
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);

  /// Reopens a previously checkpointed database: the page file plus the
  /// "<data_file>.cat" catalog written by Checkpoint(). Every data page
  /// is checksum-verified and the catalog's trailing checksum is
  /// checked, so a torn write or bit flip surfaces as Corruption here —
  /// naming the damaged page — rather than as a wrong cube later.
  static Result<std::unique_ptr<Database>> OpenExisting(
      DatabaseOptions options);

  /// Flushes all dirty pages, fsyncs the page file, and durably
  /// persists the catalog (dictionaries, tag indexes, document roots)
  /// with a write-to-temp + fsync + rename sequence so OpenExisting can
  /// restore the database after a restart or crash.
  Status Checkpoint();

  /// Opens a write batch. Documents loaded until CommitBatch() are
  /// logged to the WAL and applied to the in-memory/paged state; none
  /// of them is durable (or visible after a crash) until the batch
  /// commits. Batches cannot nest.
  Status BeginBatch();

  /// Durably commits the open batch with one group fsync of the WAL.
  /// Returns the batch's commit LSN. On failure the in-memory state is
  /// rolled back to the BeginBatch() savepoint and the WAL refuses
  /// further writes until Checkpoint() or reopen; durability of the
  /// failed batch is ambiguous (a reopen lands exactly before or
  /// exactly after it, never in between).
  Result<uint64_t> CommitBatch();

  /// Abandons the open batch: reclaims its WAL records and rewinds
  /// the store, dictionaries, indexes, and roots to the savepoint.
  Status RollbackBatch();

  bool in_batch() const { return in_batch_; }
  /// Highest commit LSN covered by the on-disk catalog. Relaxed-atomic
  /// so introspection (X3Server::Statusz) may read the durability
  /// horizon concurrently with the write lane; mutation still happens
  /// only under the owner's ingest lock.
  uint64_t durable_lsn() const {
    return durable_lsn_.load(std::memory_order_relaxed);
  }
  /// Highest commit LSN applied to the in-memory state. Same atomic
  /// read contract as durable_lsn().
  uint64_t last_commit_lsn() const {
    return last_commit_lsn_.load(std::memory_order_relaxed);
  }
  /// What recovery did (only meaningful after OpenExisting).
  const DatabaseRecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }
  WriteAheadLog* wal() { return wal_.get(); }

  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Shreds a parsed document into the store. Returns the root NodeId.
  Result<NodeId> LoadDocument(const XmlDocument& doc);

  /// Parses and loads an XML string.
  Result<NodeId> LoadXmlString(std::string_view xml);

  /// Parses and loads an XML file.
  Result<NodeId> LoadXmlFile(const std::string& path);

  /// Record access (goes through the buffer pool).
  Status GetNode(NodeId id, NodeRecord* record) const {
    return store_->Get(id, record);
  }

  /// All nodes with `tag`, in document order. Empty when unknown.
  const std::vector<NodeId>& NodesWithTag(std::string_view tag) const;
  const std::vector<NodeId>& NodesWithTagId(TagId tag_id) const;

  /// Nodes with `tag_id` in the subtree of `root` (excluding `root`),
  /// found by binary search on the tag index.
  Result<std::vector<NodeId>> DescendantsWithTag(NodeId root,
                                                 TagId tag_id) const;

  /// Subset of DescendantsWithTag whose parent is `root`.
  Result<std::vector<NodeId>> ChildrenWithTag(NodeId root, TagId tag_id) const;

  /// True iff `anc` is a proper ancestor of `desc`.
  Result<bool> IsAncestor(NodeId anc, NodeId desc) const;

  /// The (stripped) value of a node: attribute value or element direct
  /// text; empty string when absent.
  Result<std::string> NodeValue(NodeId id) const;

  TagDictionary& tags() { return tags_; }
  const TagDictionary& tags() const { return tags_; }
  ValueDictionary& values() { return values_; }
  const ValueDictionary& values() const { return values_; }

  NodeId node_count() const { return store_->size(); }

  /// Scans the store and summarizes its contents.
  Result<DatabaseStats> ComputeStats() const;

  /// Rebuilds an XML tree from the stored form of `root`'s subtree.
  /// Attributes and element nesting round-trip exactly; an element's
  /// direct text (which the loader stores concatenated and stripped)
  /// comes back as a single leading text child.
  Result<XmlDocument> ReconstructSubtree(NodeId root) const;
  const std::vector<NodeId>& document_roots() const { return roots_; }
  BufferPoolStats buffer_stats() const { return pool_->stats(); }
  BufferPool* buffer_pool() { return pool_.get(); }

 private:
  Database() = default;

  friend class DocumentLoader;

  /// BeginBatch() savepoint: sizes of every mutable structure, enough
  /// to rewind an aborted batch (all growth is append-only).
  struct BatchMarks {
    NodeId node_count = 0;
    size_t roots = 0;
    size_t tags = 0;
    size_t values = 0;
    size_t tag_index = 0;
  };

  void RollbackToMarks();

  DatabaseOptions options_;
  Env* env_ = nullptr;
  bool owns_data_file_ = false;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<NodeStore> store_;
  TagDictionary tags_;
  ValueDictionary values_;
  /// tag_id -> node ids in document order.
  std::vector<std::vector<NodeId>> tag_index_;
  std::vector<NodeId> roots_;
  std::vector<NodeId> empty_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::atomic<uint64_t> durable_lsn_{0};
  std::atomic<uint64_t> last_commit_lsn_{0};
  bool in_batch_ = false;
  uint64_t batch_txn_ = 0;
  BatchMarks marks_;
  DatabaseRecoveryStats recovery_stats_;
};

}  // namespace x3

#endif  // X3_XDB_DATABASE_H_
