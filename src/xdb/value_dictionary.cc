#include "xdb/value_dictionary.h"

namespace x3 {

ValueId ValueDictionary::Intern(std::string_view value) {
  auto it = ids_.find(std::string(value));
  if (it != ids_.end()) return it->second;
  ValueId id = static_cast<ValueId>(values_.size());
  values_.emplace_back(value);
  ids_.emplace(values_.back(), id);
  return id;
}

ValueId ValueDictionary::Lookup(std::string_view value) const {
  auto it = ids_.find(std::string(value));
  return it == ids_.end() ? kInvalidValueId : it->second;
}

void ValueDictionary::TruncateTo(size_t count) {
  for (size_t id = count; id < values_.size(); ++id) {
    ids_.erase(values_[id]);
  }
  values_.resize(count);
}

ValueDictionary ValueDictionary::Clone() const {
  ValueDictionary copy;
  copy.ids_ = ids_;
  copy.values_ = values_;
  return copy;
}

}  // namespace x3
