#include "server/x3_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "cube/plan.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/query_id.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "util/trace.h"

namespace x3 {

namespace {

/// Releases an admission reservation on every exit path of RunQuery.
class ScopedRelease {
 public:
  ScopedRelease(MemoryBudget* budget, size_t bytes)
      : budget_(budget), bytes_(bytes) {}
  ~ScopedRelease() { budget_->Release(bytes_); }

  ScopedRelease(const ScopedRelease&) = delete;
  ScopedRelease& operator=(const ScopedRelease&) = delete;

 private:
  MemoryBudget* budget_;
  size_t bytes_;
};

/// The always-correct variant of an algorithm whose global assumption
/// the property map cannot prove. The server must never serve a wrong
/// answer (cached views would disagree with computed ones), so OPT
/// variants are downgraded to their CUST counterparts when their plan
/// contains unsafe steps.
CubeAlgorithm SafeCounterpart(CubeAlgorithm algorithm) {
  switch (algorithm) {
    case CubeAlgorithm::kBUCOpt:
      return CubeAlgorithm::kBUCCust;
    case CubeAlgorithm::kTDOpt:
    case CubeAlgorithm::kTDOptAll:
      return CubeAlgorithm::kTDCust;
    default:
      return algorithm;
  }
}

Counter* AdmissionDeniedCounter() {
  static Counter* counter = MetricRegistry::Global().GetCounter(
      "x3_server_admission_denied_total",
      "Queries refused because the admission budget was exhausted");
  return counter;
}

Counter* PlanDowngradeCounter() {
  static Counter* counter = MetricRegistry::Global().GetCounter(
      "x3_server_plan_downgrades_total",
      "Queries whose OPT algorithm was downgraded to its CUST "
      "counterpart because the plan had unproven-safe steps");
  return counter;
}

Gauge* ShapesGauge() {
  static Gauge* gauge = MetricRegistry::Global().GetGauge(
      "x3_server_shapes", "Query shapes resident in the server");
  return gauge;
}

Counter* WalCommitsCounter() {
  static Counter* counter = MetricRegistry::Global().GetCounter(
      "x3_wal_commits_total",
      "Write batches committed through the server's WAL lane");
  return counter;
}

Counter* WalCommitFailuresCounter() {
  static Counter* counter = MetricRegistry::Global().GetCounter(
      "x3_wal_commit_failures_total",
      "Write batches that failed to commit (rolled back)");
  return counter;
}

Counter* WalDocumentsCounter() {
  static Counter* counter = MetricRegistry::Global().GetCounter(
      "x3_wal_documents_total",
      "Documents ingested through committed server write batches");
  return counter;
}

Gauge* WalLastCommitLsnGauge() {
  static Gauge* gauge = MetricRegistry::Global().GetGauge(
      "x3_wal_last_commit_lsn",
      "LSN of the most recent batch committed through the server");
  return gauge;
}

Counter* ShapesDroppedCounter() {
  static Counter* counter = MetricRegistry::Global().GetCounter(
      "x3_delta_shapes_dropped_total",
      "Shapes dropped after a failed delta maintenance pass (rebuilt "
      "lazily by the next query)");
  return counter;
}

Counter* StuckQueriesCounter() {
  static Counter* counter = MetricRegistry::Global().GetCounter(
      "x3_server_stuck_queries_total",
      "Queries the watchdog flagged as in flight past their stuck "
      "threshold");
  return counter;
}

Counter* SlowQueriesCounter() {
  static Counter* counter = MetricRegistry::Global().GetCounter(
      "x3_server_slow_queries_total",
      "Queries whose end-to-end latency met the slow-query threshold");
  return counter;
}

}  // namespace

std::string NormalizedQueryKey(const CubeQuery& query) {
  std::string key = "fact=" + query.fact_path;
  for (const AxisSpec& axis : query.axes) {
    key += "|axis=" + axis.path + ";relax=" + axis.relaxations.ToString();
    switch (axis.transform.kind) {
      case ValueTransform::Kind::kIdentity:
        break;
      case ValueTransform::Kind::kPrefix:
        key += ";prefix=" + std::to_string(axis.transform.prefix_length);
        break;
      case ValueTransform::Kind::kLowercase:
        key += ";lowercase";
        break;
    }
  }
  key += "|measure=" + query.measure_path;
  key += "|agg=";
  key += AggregateFunctionToString(query.aggregate);
  return key;
}

Result<ServerAnswer> X3Server::Ticket::Wait() {
  MutexLock lock(&mu_);
  while (!done_) done_cv_.Wait(&mu_);
  if (!result_.has_value()) {
    return Status::Internal("ticket result already consumed by Wait()");
  }
  Result<ServerAnswer> result = std::move(*result_);
  result_.reset();
  return result;
}

void X3Server::Ticket::Complete(Result<ServerAnswer> result) {
  {
    MutexLock lock(&mu_);
    result_.emplace(std::move(result));
    done_ = true;
  }
  done_cv_.NotifyAll();
}

X3Server::X3Server(Database* db, X3ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      engine_(db),
      budget_(options_.admission_budget_bytes),
      temp_files_(options_.temp_dir, options_.env),
      cache_(options_.cache_capacity_bytes),
      query_log_(options_.query_log_capacity),
      pool_(std::make_unique<ThreadPool>(
          options_.num_threads != 0 ? options_.num_threads
                                    : ThreadPool::DefaultConcurrency())) {
  if (options_.watchdog_interval_seconds > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });  // x3-lint: allow(raw-thread) -- watchdog must outlive a wedged pool
  }
}

X3Server::~X3Server() {
  if (watchdog_.joinable()) {
    {
      MutexLock lock(&watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.NotifyAll();
    watchdog_.join();
  }
  // Drain queued and in-flight queries while every member they touch
  // is still alive (pool_ is declared last, so destroyed first).
  pool_.reset();
}

std::shared_ptr<X3Server::Ticket> X3Server::Submit(ServerRequest request) {
  std::shared_ptr<Ticket> ticket = std::unique_ptr<Ticket>(new Ticket());
  // Mint the query id before the ticket escapes: qid_ is immutable once
  // visible to the worker, Wait()ers or the watchdog.
  ticket->qid_ = next_qid_.fetch_add(1, std::memory_order_relaxed);
  pool_->Submit(
      [this, ticket, request = std::move(request)]() {
        RunTask(ticket, request);
      });
  return ticket;
}

Result<ServerAnswer> X3Server::Execute(ServerRequest request) {
  return Submit(std::move(request))->Wait();
}

size_t X3Server::num_shapes() const {
  MutexLock lock(&mu_);
  return shapes_.size();
}

void X3Server::RunTask(const std::shared_ptr<Ticket>& ticket,
                       const ServerRequest& request) {
  MetricRegistry& registry = MetricRegistry::Global();
  static Counter* queries = registry.GetCounter(
      "x3_server_queries_total", "Queries submitted to the serving layer");
  static Counter* cache_hits = registry.GetCounter(
      "x3_server_cache_hits_total",
      "Cuboids answered exactly from a cached materialized view");
  static Counter* rollup_answers = registry.GetCounter(
      "x3_server_rollup_answers_total",
      "Cuboids answered by safe roll-up from a cached finer view");
  static Counter* cache_misses = registry.GetCounter(
      "x3_server_cache_misses_total",
      "Queries that fell back to ComputeCube");
  static Counter* cache_served = registry.GetCounter(
      "x3_server_cache_served_total",
      "Queries answered entirely from cached views");
  static Counter* cancelled = registry.GetCounter(
      "x3_server_cancelled_total", "Queries that unwound with kCancelled");
  static Counter* deadline_exceeded = registry.GetCounter(
      "x3_server_deadline_exceeded_total",
      "Queries that unwound with kDeadlineExceeded");
  static Counter* failures = registry.GetCounter(
      "x3_server_failures_total",
      "Queries that failed for a reason other than cancellation, "
      "deadline or admission");
  static Gauge* inflight =
      registry.GetGauge("x3_server_inflight", "Queries currently executing");
  static Histogram* latency = registry.GetHistogram(
      "x3_server_query_latency_seconds",
      "End-to-end per-query latency in seconds (worker pickup to answer)");

  queries->Increment();
  inflight->Add(1);

  // Every span, log line and query-log record downstream of this point
  // carries the server-minted qid.
  ScopedQueryId qid_scope(ticket->query_id());

  auto entry = std::make_shared<InflightEntry>();
  entry->qid = ticket->query_id();
  entry->tenant = request.tenant;
  entry->deadline_seconds = request.deadline_seconds.has_value()
                                ? *request.deadline_seconds
                                : options_.default_deadline_seconds;
  RegisterInflight(entry);

  QueryLogRecord record;
  record.qid = ticket->query_id();
  record.tenant = request.tenant;
  record.queue_seconds = ticket->queued_.ElapsedSeconds();
  record.cache_bypassed = !request.use_cache;
  record.algorithm_requested = request.algorithm;
  record.algorithm_used = request.algorithm;

  Timer timer;
  Result<ServerAnswer> result = [&]() -> Result<ServerAnswer> {
    X3_TRACE_SPAN(&Tracer::Global(), "server/query");
    return RunQuery(request, ticket.get(), entry.get(), &record);
  }();
  double seconds = timer.ElapsedSeconds();
  DeregisterInflight(ticket->query_id());
  latency->Observe(seconds);
  inflight->Add(-1);

  record.latency_seconds = seconds;
  record.budget_peak_bytes = budget_.peak();
  record.status = result.status().code();
  if (result.ok()) {
    result->latency_seconds = seconds;
    record.exact_hits = result->exact_hits;
    record.rollup_answers = result->rollup_answers;
    record.computed = result->computed;
    if (result->exact_hits > 0) cache_hits->Increment(result->exact_hits);
    if (result->rollup_answers > 0) {
      rollup_answers->Increment(result->rollup_answers);
    }
    if (result->computed) {
      cache_misses->Increment();
    } else {
      cache_served->Increment();
    }
  } else {
    record.error = result.status().message();
    switch (result.status().code()) {
      case StatusCode::kCancelled:
        cancelled->Increment();
        break;
      case StatusCode::kDeadlineExceeded:
        deadline_exceeded->Increment();
        break;
      case StatusCode::kResourceExhausted:
        // Counted at the admission check site.
        break;
      default:
        failures->Increment();
        break;
    }
  }
  if (options_.slow_query_threshold_seconds > 0 &&
      seconds >= options_.slow_query_threshold_seconds) {
    record.slow = true;
    SlowQueriesCounter()->Increment();
    X3_LOG(Warning) << "slow query: " << seconds * 1e3 << " ms (threshold "
                    << options_.slow_query_threshold_seconds * 1e3
                    << " ms), shape " << record.shape_key;
  }
  query_log_.Commit(std::move(record));
  ticket->Complete(std::move(result));
}

void X3Server::RegisterInflight(const std::shared_ptr<InflightEntry>& entry) {
  MutexLock lock(&inflight_mu_);
  inflight_.emplace(entry->qid, entry);
}

void X3Server::DeregisterInflight(uint64_t qid) {
  MutexLock lock(&inflight_mu_);
  inflight_.erase(qid);
}

Result<std::shared_ptr<X3Server::ShapeState>> X3Server::GetOrBuildShape(
    const std::string& key, const CubeQuery& query,
    const LatticeProperties* properties, ExecutionContext* ctx) {
  std::shared_ptr<ShapeState> shape;
  bool builder = false;
  {
    MutexLock lock(&mu_);
    auto it = shapes_.find(key);
    if (it == shapes_.end()) {
      shape = std::make_shared<ShapeState>();
      shapes_.emplace(key, shape);
      builder = true;
    } else {
      shape = it->second;
    }
  }

  if (builder) {
    // The pattern matcher reads the database: exclude the write lane's
    // mutation (db_mu_) for the duration of the build, and record the
    // commit horizon the snapshot reflects inside the same critical
    // section so the write path can tell whether a concurrently built
    // shape already covers its batch.
    uint64_t built_lsn = 0;
    Result<PreparedQuery> prepared = [&]() -> Result<PreparedQuery> {
      MutexLock db_lock(&db_mu_);
      Result<PreparedQuery> p = engine_.Prepare(query, ctx);
      built_lsn = db_->last_commit_lsn();
      return p;
    }();
    Status status = prepared.status();
    if (status.ok()) {
      auto snapshot = std::make_shared<ShapeSnapshot>();
      snapshot->prepared =
          std::make_unique<PreparedQuery>(std::move(*prepared));
      snapshot->built_lsn = built_lsn;
      shape->properties =
          properties != nullptr
              ? *properties
              : LatticeProperties::AssumeNothing(
                    snapshot->prepared->lattice);
      shape->disjoint_everywhere =
          shape->properties.DisjointEverywhere(snapshot->prepared->lattice);
      snapshot->views = std::make_unique<CubeViewStore>(
          &snapshot->prepared->facts, &snapshot->prepared->lattice);
      MutexLock lock(&shape->mu);
      shape->snapshot = std::move(snapshot);
    } else {
      // Drop the failed shape so a later query retries the build (a
      // cancelled or deadline-expired builder must not poison the
      // shape for every other tenant).
      MutexLock lock(&mu_);
      auto it = shapes_.find(key);
      if (it != shapes_.end() && it->second == shape) shapes_.erase(it);
    }
    {
      MutexLock lock(&shape->mu);
      shape->build_status = status;
      shape->ready = true;
    }
    shape->ready_cv.NotifyAll();
    ShapesGauge()->Set(static_cast<int64_t>(num_shapes()));
    X3_RETURN_IF_ERROR(status);
    return shape;
  }

  {
    MutexLock lock(&shape->mu);
    while (!shape->ready) shape->ready_cv.Wait(&shape->mu);
    X3_RETURN_IF_ERROR(shape->build_status);
  }
  return shape;
}

std::shared_ptr<const X3Server::ShapeSnapshot> X3Server::PinSnapshot(
    ShapeState* shape) {
  MutexLock lock(&shape->mu);
  return shape->snapshot;
}

void X3Server::EnsureMaterialized(
    ShapeState* shape, const std::shared_ptr<const ShapeSnapshot>& snapshot,
    CuboidId cuboid) {
  if (snapshot->views->Contains(cuboid)) return;
  // Fact ids repair disjointness for later roll-ups; when the property
  // map proves disjointness everywhere the id-less views suffice and
  // cost far less memory (§3.6's trade-off).
  bool with_ids = !shape->disjoint_everywhere;
  if (!snapshot->views->Materialize(cuboid, with_ids).ok()) return;
  size_t bytes = snapshot->views->ViewApproxBytes(cuboid);
  // Register with the cache only while this snapshot is still current:
  // the swap in MaintainShape and this insert are both under shape->mu,
  // so a retired snapshot's store never (re)enters the cache after its
  // entries were dropped.
  MutexLock lock(&shape->mu);
  if (shape->snapshot != snapshot) return;
  cache_.Insert(snapshot->views.get(), cuboid, bytes);
}

Result<ServerAnswer> X3Server::RunQuery(const ServerRequest& request,
                                        Ticket* ticket,
                                        InflightEntry* inflight,
                                        QueryLogRecord* record) {
  inflight->stage.store("compile", std::memory_order_relaxed);
  CubeQuery query;
  if (request.query.has_value()) {
    query = *request.query;
  } else {
    X3_ASSIGN_OR_RETURN(query, engine_.Compile(request.query_text));
  }
  record->shape_key = NormalizedQueryKey(query);

  double deadline_seconds = request.deadline_seconds.has_value()
                                ? *request.deadline_seconds
                                : options_.default_deadline_seconds;
  ExecutionContext::Options ctx_options;
  ctx_options.budget = &budget_;
  ctx_options.temp_files = &temp_files_;
  ctx_options.cancel = &ticket->token_;
  ctx_options.query_id = ticket->query_id();
  if (deadline_seconds > 0) {
    ctx_options.deadline = DeadlineAfterSeconds(deadline_seconds);
  }
  ExecutionContext ctx(ctx_options);
  X3_RETURN_IF_ERROR(ctx.CheckInterrupted());

  // Copies the context's per-stage breakdown into the query-log record
  // on EVERY exit path (success, cancellation, deadline, failure) — a
  // cancelled query's record shows which stage it died in. Safe at
  // scope exit: by the time RunQuery unwinds, the executor has drained
  // its workers (the same quiesce contract that lets ctx be destroyed).
  struct StageCopy {
    ExecutionContext* ctx;
    QueryLogRecord* record;
    ~StageCopy() {
      for (const StageTiming& t : ctx->stats()->timings()) {
        record->stages.push_back(
            QueryStageMs{t.label, t.seconds * 1e3, t.rows, t.bytes});
        // Stage bytes are exclusively external-sort spill I/O today
        // (ScopedStageTimer::AddBytes at the sorter call sites).
        record->spill_bytes += t.bytes;
      }
    }
  } stage_copy{&ctx, record};

  if (request.debug_hold_seconds > 0) {
    // Test hook: a cancellation- and deadline-honoring stall inside the
    // worker, so watchdog and slow-lane tests can manufacture a stuck
    // or slow query deterministically.
    inflight->stage.store("debug-hold", std::memory_order_relaxed);
    ScopedStageTimer hold_timer(ctx.stats(), "debug-hold", ctx.tracer());
    Timer hold;
    while (hold.ElapsedSeconds() < request.debug_hold_seconds) {
      X3_RETURN_IF_ERROR(ctx.CheckInterrupted());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  inflight->stage.store("build-shape", std::memory_order_relaxed);
  X3_ASSIGN_OR_RETURN(std::shared_ptr<ShapeState> shape,
                      GetOrBuildShape(record->shape_key, query,
                                      request.properties, &ctx));
  // Pin the shape's current snapshot for the whole query: a write
  // batch committing concurrently swaps in a NEW snapshot, so this
  // query reads a consistent (entirely pre- or entirely post-batch)
  // fact table + view store pair throughout.
  std::shared_ptr<const ShapeSnapshot> snapshot = PinSnapshot(shape.get());
  if (snapshot == nullptr) {
    return Status::Internal("shape ready without a snapshot");
  }
  const CubeLattice& lattice = snapshot->prepared->lattice;
  const FactTable& facts = snapshot->prepared->facts;

  if (request.target.has_value() &&
      *request.target >= lattice.num_cuboids()) {
    return Status::InvalidArgument(
        "target cuboid " + std::to_string(*request.target) +
        " out of range (lattice has " +
        std::to_string(lattice.num_cuboids()) + " cuboids)");
  }

  // Admission control: the shape's fact table is the working-set floor
  // of any algorithm over it. Reserve (hard cap) refuses the query
  // outright instead of letting concurrent tenants overshoot together.
  inflight->stage.store("admission", std::memory_order_relaxed);
  size_t admission_bytes = facts.ApproxBytes();
  if (!budget_.Reserve(admission_bytes).ok()) {
    AdmissionDeniedCounter()->Increment();
    return Status::ResourceExhausted(
        "admission denied: query working set of " +
        std::to_string(admission_bytes) + " bytes does not fit the " +
        "remaining budget (" + std::to_string(budget_.available()) +
        " of " + std::to_string(budget_.capacity()) + " bytes free)");
  }
  ScopedRelease release(&budget_, admission_bytes);

  ServerAnswer answer;
  answer.aggregate = query.aggregate;
  answer.num_cuboids_in_lattice = lattice.num_cuboids();

  std::vector<CuboidId> targets;
  if (request.target.has_value()) {
    targets.push_back(*request.target);
  } else {
    targets = lattice.TopoOrder();
  }

  std::vector<std::pair<CuboidId, CellMap>> cells;
  bool all_from_cache = request.use_cache;
  if (request.use_cache) {
    inflight->stage.store("cache-lookup", std::memory_order_relaxed);
    for (CuboidId target : targets) {
      X3_RETURN_IF_ERROR(ctx.Poll());
      ViewComputeStats view_stats;
      Result<CellMap> from_views = snapshot->views->AnswerFromViews(
          target, query.aggregate, &shape->properties, &view_stats);
      if (from_views.ok()) {
        cache_.Touch(snapshot->views.get(), view_stats.source_view);
        if (view_stats.strategy == ViewStrategy::kExact) {
          ++answer.exact_hits;
        } else {
          ++answer.rollup_answers;
        }
        cells.emplace_back(target, std::move(*from_views));
      } else if (from_views.status().code() == StatusCode::kNotFound) {
        all_from_cache = false;
        cells.clear();
        break;
      } else {
        return from_views.status();
      }
    }
  }

  if (!all_from_cache) {
    answer.exact_hits = 0;
    answer.rollup_answers = 0;
    inflight->stage.store("compute", std::memory_order_relaxed);
    CubeAlgorithm algorithm = request.algorithm;
    CubePlan plan = BuildCubePlan(algorithm, lattice, shape->properties);
    if (plan.unsafe_steps > 0) {
      algorithm = SafeCounterpart(algorithm);
      PlanDowngradeCounter()->Increment();
      record->downgraded = true;
    }
    record->algorithm_used = algorithm;
    CubeComputeOptions compute;
    compute.aggregate = query.aggregate;
    compute.properties = &shape->properties;
    compute.exec = &ctx;
    compute.parallelism = request.parallelism != 0
                              ? request.parallelism
                              : options_.default_parallelism;
    // min_count stays 0: the cache holds unfiltered cells so requests
    // with different iceberg thresholds share the same views; the
    // filter is applied per request below.
    CubeComputeStats stats;
    X3_ASSIGN_OR_RETURN(
        CubeResult cube,
        ComputeCube(algorithm, facts, lattice, compute,  // x3-lint: allow(server-compute-cube) -- the designated cache-miss path
                    &stats));
    if (options_.slow_query_threshold_seconds > 0 &&
        inflight->started.ElapsedSeconds() >=
            options_.slow_query_threshold_seconds) {
      // Slow lane: this query is already past the threshold, so RunTask
      // will mark its record slow — attach the full plan-with-actuals
      // rendering while the cube is still alive. The plan is rebuilt
      // for the algorithm that actually ran (post-downgrade).
      CubePlan ran = algorithm == request.algorithm
                         ? std::move(plan)
                         : BuildCubePlan(algorithm, lattice,
                                         shape->properties);
      record->slow_explain =
          ExplainCubePlanWithActuals(ran, lattice, *ctx.stats(), cube);
    }
    for (CuboidId target : targets) {
      cells.emplace_back(target, std::move(*cube.mutable_cuboid(target)));
    }
    answer.computed = true;
    answer.algorithm_used = algorithm;
    if (request.use_cache) {
      inflight->stage.store("cache-fill", std::memory_order_relaxed);
      // Cache fill: the finest cuboid is the universal donor —
      // TDOPTALL's roll-up property means every coarser cuboid rolls
      // up from it (with fact ids when disjointness is unproven) —
      // plus the requested cuboid itself for exact-hit repeats.
      EnsureMaterialized(shape.get(), snapshot, lattice.FinestCuboid());
      if (request.target.has_value() &&
          *request.target != lattice.FinestCuboid()) {
        EnsureMaterialized(shape.get(), snapshot, *request.target);
      }
    }
  }

  inflight->stage.store("finalize", std::memory_order_relaxed);
  int64_t min_count = std::max(query.min_count, request.min_count);
  if (min_count > 1) {
    // Same rule as CubeResult::ApplyIcebergFilter: drop cells whose
    // distinct-fact count is below the threshold.
    for (auto& [id, map] : cells) {
      for (auto it = map.begin(); it != map.end();) {
        it = it->second.count < min_count ? map.erase(it) : std::next(it);
      }
    }
  }
  answer.cuboids = std::move(cells);
  return answer;
}

Result<bool> X3Server::MaintainShape(ShapeState* shape,
                                     NodeId first_new_node,
                                     uint64_t commit_lsn, DeltaStats* stats) {
  std::shared_ptr<const ShapeSnapshot> old = PinSnapshot(shape);
  if (old == nullptr) return false;
  // A shape built concurrently with (or after) the commit already
  // evaluated its pattern over the post-batch database; appending the
  // batch's facts again would double-count them.
  if (old->built_lsn >= commit_lsn) return false;

  const PreparedQuery& prev = *old->prepared;
  size_t first_new_fact = prev.facts.size();
  FactTable facts = prev.facts.Clone();
  X3_ASSIGN_OR_RETURN(size_t appended,
                      AppendNewFacts(*db_, prev.query, prev.lattice,
                                     first_new_node, &facts));
  if (appended == 0) {
    // No fact of the batch matched this shape: the old snapshot is
    // still exact, keep serving it (and its cached views) untouched.
    return false;
  }

  auto next = std::make_shared<ShapeSnapshot>();
  next->prepared = std::make_unique<PreparedQuery>(prev.query, prev.lattice,
                                                   std::move(facts));
  next->built_lsn = commit_lsn;
  next->views = std::make_unique<CubeViewStore>(&next->prepared->facts,
                                                &next->prepared->lattice);

  DeltaPlan plan =
      PlanViewDeltas(*old->views, next->prepared->facts,
                     next->prepared->lattice, shape->properties,
                     first_new_fact);
  DeltaStats local;
  X3_RETURN_IF_ERROR(
      ApplyViewDeltas(*old->views, next->views.get(), plan, &local));
  stats->views_patched += local.views_patched;
  stats->views_recomputed += local.views_recomputed;
  stats->facts_applied += local.facts_applied;
  stats->cells_touched += local.cells_touched;

  // Atomic publish: swap the snapshot and move the cache accounting
  // from the retired store to the new one in one shape->mu critical
  // section, so a racing reader either inserts into the still-current
  // old store (dropped right here) or observes the swap and skips.
  MutexLock lock(&shape->mu);
  cache_.DropStore(old->views.get());
  shape->snapshot = next;
  for (const ViewDeltaStep& step : plan.steps) {
    cache_.Insert(next->views.get(), step.cuboid,
                  next->views->ViewApproxBytes(step.cuboid));
  }
  return true;
}

Result<ServerWriteResult> X3Server::CommitDocuments(
    const std::vector<std::string>& documents) {
  MutexLock write_lock(&write_mu_);
  X3_TRACE_SPAN(&Tracer::Global(), "server/commit");
  ServerWriteResult result;
  result.documents = documents.size();

  NodeId first_new_node = 0;
  {
    // Database mutation happens with shape builds excluded (they read
    // the node store through the pattern matcher).
    MutexLock db_lock(&db_mu_);
    first_new_node = db_->node_count();
    Status begin = db_->BeginBatch();
    if (!begin.ok()) {
      WalCommitFailuresCounter()->Increment();
      return begin;
    }
    for (const std::string& xml : documents) {
      Result<NodeId> root = db_->LoadXmlString(xml);
      if (!root.ok()) {
        db_->RollbackBatch().IgnoreError();
        WalCommitFailuresCounter()->Increment();
        return root.status();
      }
    }
    Result<uint64_t> lsn = db_->CommitBatch();
    if (!lsn.ok()) {
      WalCommitFailuresCounter()->Increment();
      return lsn.status();
    }
    result.commit_lsn = *lsn;
  }
  WalCommitsCounter()->Increment();
  WalDocumentsCounter()->Increment(documents.size());
  WalLastCommitLsnGauge()->Set(static_cast<int64_t>(result.commit_lsn));

  // The batch is durable; fold it into every resident shape. Readers
  // keep answering from their pinned snapshots throughout.
  std::vector<std::pair<std::string, std::shared_ptr<ShapeState>>> shapes;
  {
    MutexLock lock(&mu_);
    shapes.reserve(shapes_.size());
    for (const auto& [key, shape] : shapes_) shapes.emplace_back(key, shape);
  }
  for (const auto& [key, shape] : shapes) {
    bool usable = [&shape = shape] {
      MutexLock lock(&shape->mu);
      while (!shape->ready) shape->ready_cv.Wait(&shape->mu);
      return shape->build_status.ok();
    }();
    if (!usable) continue;
    Result<bool> updated = MaintainShape(shape.get(), first_new_node,
                                         result.commit_lsn, &result.delta);
    if (updated.ok()) {
      if (*updated) ++result.shapes_updated;
      continue;
    }
    // Maintenance failed (the batch is durable regardless): drop the
    // shape so the next query rebuilds it from the post-batch database
    // instead of serving a stale fact table.
    std::shared_ptr<const ShapeSnapshot> old = PinSnapshot(shape.get());
    if (old != nullptr) cache_.DropStore(old->views.get());
    {
      MutexLock lock(&mu_);
      auto it = shapes_.find(key);
      if (it != shapes_.end() && it->second == shape) shapes_.erase(it);
    }
    ShapesDroppedCounter()->Increment();
    ShapesGauge()->Set(static_cast<int64_t>(num_shapes()));
  }
  return result;
}

Status X3Server::Checkpoint() {
  MutexLock write_lock(&write_mu_);
  MutexLock db_lock(&db_mu_);
  return db_->Checkpoint();
}

void X3Server::WatchdogLoop() {
  Tracer::Global().SetCurrentThreadName("watchdog");
  for (;;) {
    {
      MutexLock lock(&watchdog_mu_);
      if (!watchdog_stop_) {
        // Spurious wakeups just scan early; the scan is idempotent.
        watchdog_cv_.WaitFor(&watchdog_mu_,
                             options_.watchdog_interval_seconds);
      }
      if (watchdog_stop_) return;
    }
    // Scan with NO lock held: the whole point of the watchdog is to
    // keep working while the rest of the server is wedged.
    WatchdogScanOnce();
  }
}

size_t X3Server::WatchdogScanOnce() {
  std::vector<std::shared_ptr<InflightEntry>> entries;
  {
    MutexLock lock(&inflight_mu_);
    entries.reserve(inflight_.size());
    for (const auto& [qid, entry] : inflight_) entries.push_back(entry);
  }
  size_t newly_flagged = 0;
  for (const std::shared_ptr<InflightEntry>& e : entries) {
    double age = e->started.ElapsedSeconds();
    double threshold =
        e->deadline_seconds > 0
            ? options_.stuck_deadline_multiple * e->deadline_seconds
            : options_.stuck_after_seconds;
    if (threshold <= 0 || age < threshold) continue;
    // Flag once per query: exchange() makes repeat scans of the same
    // stuck query free and keeps the counter an exact stuck-query count.
    if (e->stuck.exchange(true, std::memory_order_relaxed)) continue;
    ++newly_flagged;
    StuckQueriesCounter()->Increment();
    X3_LOG(Warning) << "watchdog: qid=" << e->qid << " tenant='" << e->tenant
                    << "' stuck in stage '"
                    << e->stage.load(std::memory_order_relaxed) << "' for "
                    << age << " s (threshold " << threshold << " s)";
  }
  if (newly_flagged > 0) {
    // One-shot context dump per flagging pass: the operator gets the
    // full server picture next to the warning, not just the qid.
    X3_LOG(Warning) << "watchdog: " << newly_flagged
                    << " newly stuck quer"
                    << (newly_flagged == 1 ? "y" : "ies")
                    << "; statusz dump:\n"
                    << Statusz().ToText();
  }
  return newly_flagged;
}

StatuszReport X3Server::Statusz() const {
  StatuszReport r;
  r.uptime_seconds = started_.ElapsedSeconds();
  r.num_threads = pool_->num_threads();
  r.queue_depth = pool_->queue_depth();
  r.queries_submitted = next_qid_.load(std::memory_order_relaxed) - 1;

  {
    MutexLock lock(&inflight_mu_);
    r.inflight.reserve(inflight_.size());
    for (const auto& [qid, entry] : inflight_) {
      StatuszQuery q;
      q.qid = qid;
      q.tenant = entry->tenant;
      q.stage = entry->stage.load(std::memory_order_relaxed);
      q.age_seconds = entry->started.ElapsedSeconds();
      q.stuck = entry->stuck.load(std::memory_order_relaxed);
      r.inflight.push_back(std::move(q));
    }
  }
  std::sort(r.inflight.begin(), r.inflight.end(),
            [](const StatuszQuery& a, const StatuszQuery& b) {
              return a.qid < b.qid;
            });

  std::vector<std::pair<std::string, std::shared_ptr<ShapeState>>> shapes;
  {
    MutexLock lock(&mu_);
    shapes.reserve(shapes_.size());
    for (const auto& [key, shape] : shapes_) shapes.emplace_back(key, shape);
  }
  std::sort(shapes.begin(), shapes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, shape] : shapes) {
    StatuszShape s;
    s.key = key;
    // A shape mid-build reports zeros rather than blocking on its latch.
    std::shared_ptr<const ShapeSnapshot> snapshot = PinSnapshot(shape.get());
    if (snapshot != nullptr) {
      s.built_lsn = snapshot->built_lsn;
      s.fact_rows = snapshot->prepared->facts.size();
    }
    r.shapes.push_back(std::move(s));
  }

  r.last_commit_lsn = db_->last_commit_lsn();
  r.durable_lsn = db_->durable_lsn();

  r.cache_bytes = cache_.bytes();
  r.cache_views = cache_.num_views();
  r.cache_evictions = cache_.evictions();
  // The very counters RunTask increments (same registry objects), so a
  // statusz snapshot and a metrics scrape agree by construction.
  MetricRegistry& registry = MetricRegistry::Global();
  r.cache_hits =
      registry
          .GetCounter("x3_server_cache_hits_total",
                      "Cuboids answered exactly from a cached materialized "
                      "view")
          ->value();
  r.rollup_answers =
      registry
          .GetCounter("x3_server_rollup_answers_total",
                      "Cuboids answered by safe roll-up from a cached finer "
                      "view")
          ->value();
  r.cache_misses = registry
                       .GetCounter("x3_server_cache_misses_total",
                                   "Queries that fell back to ComputeCube")
                       ->value();
  uint64_t served =
      registry
          .GetCounter("x3_server_cache_served_total",
                      "Queries answered entirely from cached views")
          ->value();
  r.cache_hit_ratio =
      served + r.cache_misses > 0
          ? static_cast<double>(served) /
                static_cast<double>(served + r.cache_misses)
          : 0;

  r.budget_capacity_bytes = budget_.capacity();
  r.budget_used_bytes = budget_.used();
  r.budget_peak_bytes = budget_.peak();
  r.admission_denied = AdmissionDeniedCounter()->value();
  r.stuck_queries = StuckQueriesCounter()->value();

  Histogram* latency = registry.GetHistogram(
      "x3_server_query_latency_seconds",
      "End-to-end per-query latency in seconds (worker pickup to answer)");
  r.latency_p50_ms = latency->Quantile(0.50) * 1e3;
  r.latency_p95_ms = latency->Quantile(0.95) * 1e3;
  r.latency_p99_ms = latency->Quantile(0.99) * 1e3;
  return r;
}

std::string StatuszReport::ToText() const {
  std::string out;
  out += StringPrintf("x3 server: up %.1f s, %zu worker threads\n",
                      uptime_seconds, num_threads);
  out += StringPrintf(
      "queries: %llu submitted, %zu in flight, %zu queued\n",
      static_cast<unsigned long long>(queries_submitted), inflight.size(),
      queue_depth);
  out += StringPrintf("latency: p50 %.3f ms, p95 %.3f ms, p99 %.3f ms\n",
                      latency_p50_ms, latency_p95_ms, latency_p99_ms);
  for (const StatuszQuery& q : inflight) {
    out += StringPrintf("  qid=%llu tenant='%s' stage=%s age=%.3f s%s\n",
                        static_cast<unsigned long long>(q.qid),
                        q.tenant.c_str(), q.stage, q.age_seconds,
                        q.stuck ? " STUCK" : "");
  }
  out += StringPrintf(
      "wal: last_commit_lsn=%llu durable_lsn=%llu\n",
      static_cast<unsigned long long>(last_commit_lsn),
      static_cast<unsigned long long>(durable_lsn));
  out += StringPrintf("shapes: %zu resident\n", shapes.size());
  for (const StatuszShape& s : shapes) {
    out += StringPrintf("  built_lsn=%llu fact_rows=%zu key=%s\n",
                        static_cast<unsigned long long>(s.built_lsn),
                        s.fact_rows, s.key.c_str());
  }
  out += StringPrintf(
      "cache: %zu views, %zu bytes, %llu evictions, hit ratio %.3f "
      "(%llu exact + %llu rollup vs %llu miss)\n",
      cache_views, cache_bytes,
      static_cast<unsigned long long>(cache_evictions), cache_hit_ratio,
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(rollup_answers),
      static_cast<unsigned long long>(cache_misses));
  out += StringPrintf(
      "budget: %zu/%zu bytes used, peak %zu, %llu admission denials\n",
      budget_used_bytes, budget_capacity_bytes, budget_peak_bytes,
      static_cast<unsigned long long>(admission_denied));
  out += StringPrintf("watchdog: %llu stuck queries flagged\n",
                      static_cast<unsigned long long>(stuck_queries));
  return out;
}

std::string StatuszReport::ToJson() const {
  std::string out = "{";
  out += StringPrintf("\"uptime_seconds\":%.3f", uptime_seconds);
  out += StringPrintf(",\"num_threads\":%zu", num_threads);
  out += StringPrintf(",\"queries_submitted\":%llu",
                      static_cast<unsigned long long>(queries_submitted));
  out += StringPrintf(",\"queue_depth\":%zu", queue_depth);
  out += ",\"inflight\":[";
  for (size_t i = 0; i < inflight.size(); ++i) {
    const StatuszQuery& q = inflight[i];
    if (i > 0) out += ",";
    out += StringPrintf("{\"qid\":%llu,\"tenant\":",
                        static_cast<unsigned long long>(q.qid));
    out += JsonQuote(q.tenant);
    out += ",\"stage\":";
    out += JsonQuote(q.stage);
    out += StringPrintf(",\"age_seconds\":%.3f,\"stuck\":%s}", q.age_seconds,
                        q.stuck ? "true" : "false");
  }
  out += "]";
  out += ",\"shapes\":[";
  for (size_t i = 0; i < shapes.size(); ++i) {
    const StatuszShape& s = shapes[i];
    if (i > 0) out += ",";
    out += "{\"key\":" + JsonQuote(s.key);
    out += StringPrintf(",\"built_lsn\":%llu,\"fact_rows\":%zu}",
                        static_cast<unsigned long long>(s.built_lsn),
                        s.fact_rows);
  }
  out += "]";
  out += StringPrintf(",\"last_commit_lsn\":%llu",
                      static_cast<unsigned long long>(last_commit_lsn));
  out += StringPrintf(",\"durable_lsn\":%llu",
                      static_cast<unsigned long long>(durable_lsn));
  out += StringPrintf(",\"cache_bytes\":%zu", cache_bytes);
  out += StringPrintf(",\"cache_views\":%zu", cache_views);
  out += StringPrintf(",\"cache_evictions\":%llu",
                      static_cast<unsigned long long>(cache_evictions));
  out += StringPrintf(",\"cache_hits\":%llu",
                      static_cast<unsigned long long>(cache_hits));
  out += StringPrintf(",\"rollup_answers\":%llu",
                      static_cast<unsigned long long>(rollup_answers));
  out += StringPrintf(",\"cache_misses\":%llu",
                      static_cast<unsigned long long>(cache_misses));
  out += StringPrintf(",\"cache_hit_ratio\":%.6f", cache_hit_ratio);
  out += StringPrintf(",\"budget_capacity_bytes\":%zu",
                      budget_capacity_bytes);
  out += StringPrintf(",\"budget_used_bytes\":%zu", budget_used_bytes);
  out += StringPrintf(",\"budget_peak_bytes\":%zu", budget_peak_bytes);
  out += StringPrintf(",\"admission_denied\":%llu",
                      static_cast<unsigned long long>(admission_denied));
  out += StringPrintf(",\"stuck_queries\":%llu",
                      static_cast<unsigned long long>(stuck_queries));
  out += StringPrintf(",\"latency_p50_ms\":%.3f", latency_p50_ms);
  out += StringPrintf(",\"latency_p95_ms\":%.3f", latency_p95_ms);
  out += StringPrintf(",\"latency_p99_ms\":%.3f", latency_p99_ms);
  out += "}";
  return out;
}

}  // namespace x3
