#include "server/cuboid_cache.h"

#include "util/metrics.h"

namespace x3 {

namespace {

Counter* EvictionCounter() {
  static Counter* counter = MetricRegistry::Global().GetCounter(
      "x3_server_cache_evictions_total",
      "Materialized cuboid views evicted by the server's LRU cache");
  return counter;
}

Gauge* CacheBytesGauge() {
  static Gauge* gauge = MetricRegistry::Global().GetGauge(
      "x3_server_cache_bytes",
      "Approximate bytes held by cached materialized cuboid views");
  return gauge;
}

Gauge* CacheViewsGauge() {
  static Gauge* gauge = MetricRegistry::Global().GetGauge(
      "x3_server_cache_views",
      "Number of materialized cuboid views currently cached");
  return gauge;
}

}  // namespace

void CuboidCache::Touch(CubeViewStore* store, CuboidId cuboid) {
  MutexLock lock(&mu_);
  auto it = index_.find(Key{store, cuboid});
  if (it == index_.end()) return;
  lru_.splice(lru_.begin(), lru_, it->second);
}

void CuboidCache::Insert(CubeViewStore* store, CuboidId cuboid,
                         size_t bytes) {
  MutexLock lock(&mu_);
  Key key{store, cuboid};
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Re-materialized (racing misses): refresh the size and promote.
    bytes_ -= it->second->bytes;
    it->second->bytes = bytes;
    bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{store, cuboid, bytes});
    index_[key] = lru_.begin();
    bytes_ += bytes;
  }
  EvictOverflowLocked(key);
  CacheBytesGauge()->Set(static_cast<int64_t>(bytes_));
  CacheViewsGauge()->Set(static_cast<int64_t>(lru_.size()));
}

void CuboidCache::EvictOverflowLocked(const Key& keep) {
  if (capacity_bytes_ == 0) return;
  auto it = lru_.end();
  while (bytes_ > capacity_bytes_ && it != lru_.begin()) {
    --it;
    if (it->store == keep.first && it->cuboid == keep.second) continue;
    it->store->Evict(it->cuboid);
    bytes_ -= it->bytes;
    ++evictions_;
    EvictionCounter()->Increment();
    index_.erase(Key{it->store, it->cuboid});
    it = lru_.erase(it);
  }
}

void CuboidCache::DropStore(CubeViewStore* store) {
  MutexLock lock(&mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->store != store) {
      ++it;
      continue;
    }
    bytes_ -= it->bytes;
    index_.erase(Key{it->store, it->cuboid});
    it = lru_.erase(it);
  }
  CacheBytesGauge()->Set(static_cast<int64_t>(bytes_));
  CacheViewsGauge()->Set(static_cast<int64_t>(lru_.size()));
}

void CuboidCache::Clear() {
  MutexLock lock(&mu_);
  for (const Entry& entry : lru_) {
    entry.store->Evict(entry.cuboid);
    ++evictions_;
    EvictionCounter()->Increment();
  }
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  CacheBytesGauge()->Set(0);
  CacheViewsGauge()->Set(0);
}

size_t CuboidCache::bytes() const {
  MutexLock lock(&mu_);
  return bytes_;
}

size_t CuboidCache::num_views() const {
  MutexLock lock(&mu_);
  return lru_.size();
}

uint64_t CuboidCache::evictions() const {
  MutexLock lock(&mu_);
  return evictions_;
}

}  // namespace x3
