#ifndef X3_SERVER_QUERY_LOG_H_
#define X3_SERVER_QUERY_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cube/algorithm.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace x3 {

class Env;  // util/env.h; used by pointer only

/// One stage's contribution to a query (copied from the execution
/// context's StatsSink at completion).
struct QueryStageMs {
  std::string label;
  double ms = 0;
  uint64_t rows = 0;
  uint64_t bytes = 0;
};

/// The structured lifecycle record of one submitted query — everything
/// an operator needs to explain a latency outlier after the fact
/// without re-running it (DESIGN.md §13). Exactly one record is
/// committed per query the server accepted, on every exit path:
/// success, cancellation, deadline, admission denial, failure.
struct QueryLogRecord {
  /// The server-minted id; matches the `qid` arg on this query's trace
  /// spans and the `qid=N` prefix on its log lines.
  uint64_t qid = 0;
  /// Caller-supplied tenant label (ServerRequest::tenant; may be "").
  std::string tenant;
  /// NormalizedQueryKey of the compiled query ("" when compile failed).
  std::string shape_key;

  /// Submit-to-worker-pickup wait (FIFO queue time).
  double queue_seconds = 0;
  /// Worker pickup to answer (the latency histogram's observation).
  double latency_seconds = 0;

  // Cache outcome (ServerAnswer mirror; zero/false on error).
  uint64_t exact_hits = 0;
  uint64_t rollup_answers = 0;
  bool computed = false;
  bool cache_bypassed = false;  // request opted out (use_cache = false)

  // Plan variant: what was asked for, what actually ran on the miss
  // path, and whether the safety downgrade rewrote it.
  CubeAlgorithm algorithm_requested = CubeAlgorithm::kTDCust;
  CubeAlgorithm algorithm_used = CubeAlgorithm::kTDCust;
  bool downgraded = false;

  /// Admission-budget peak while this query completed (shared budget:
  /// the server-wide high-water mark, not a per-query attribution).
  uint64_t budget_peak_bytes = 0;
  /// External-sort spill traffic recorded by this query's stages.
  uint64_t spill_bytes = 0;

  /// Per-stage wall-clock breakdown from the execution context.
  std::vector<QueryStageMs> stages;

  StatusCode status = StatusCode::kOk;
  /// Status message for non-OK terminal status ("" on success).
  std::string error;

  /// Latency exceeded X3ServerOptions::slow_query_threshold_seconds.
  bool slow = false;
  /// Slow-lane payload: the full ExplainCubePlanWithActuals rendering,
  /// captured only when the query was slow AND computed a cube (the
  /// plan actuals are what explains a slow compute; a slow cache hit
  /// has its stages breakdown instead).
  std::string slow_explain;
};

/// Mutex-ranked (lock_rank::kQueryLog, a leaf among the server locks)
/// flight-recorder ring of per-query lifecycle records, newest-wins
/// like the span tracer: when the ring is full the oldest records are
/// overwritten and total() keeps counting. Thread-safe: workers commit
/// concurrently with snapshots/export.
class QueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit QueryLog(size_t capacity = kDefaultCapacity);

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Appends one completed query's record (overwriting the oldest when
  /// the ring is full).
  void Commit(QueryLogRecord record) X3_EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }
  /// Records ever committed (>= size()).
  uint64_t total() const X3_EXCLUDES(mu_);
  /// Records currently held (<= capacity()).
  size_t size() const X3_EXCLUDES(mu_);
  /// Copy of the held records, oldest first.
  std::vector<QueryLogRecord> Snapshot() const X3_EXCLUDES(mu_);

  /// JSONL export: one self-contained JSON object per line, oldest
  /// first (the schema scripts/check_observability.py validates).
  std::string ToJsonLines() const X3_EXCLUDES(mu_);

  /// Writes ToJsonLines() to `path` through `env`.
  Status WriteJsonl(Env* env, const std::string& path) const
      X3_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{lock_rank::kQueryLog};
  const size_t capacity_;
  /// Grows to capacity_, then wraps (oldest at next_).
  std::vector<QueryLogRecord> ring_ X3_GUARDED_BY(mu_);
  size_t next_ X3_GUARDED_BY(mu_) = 0;
  uint64_t total_ X3_GUARDED_BY(mu_) = 0;
};

/// Renders one record as a single-line JSON object (exposed for tests;
/// ToJsonLines is this per record joined by newlines).
std::string QueryLogRecordToJson(const QueryLogRecord& record);

}  // namespace x3

#endif  // X3_SERVER_QUERY_LOG_H_
