#ifndef X3_SERVER_X3_SERVER_H_
#define X3_SERVER_X3_SERVER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cube/algorithm.h"
#include "cube/delta.h"
#include "cube/view_store.h"
#include "schema/summarizability.h"
#include "server/cuboid_cache.h"
#include "server/query_log.h"
#include "storage/temp_file.h"
#include "util/exec.h"
#include "util/memory_budget.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "x3/engine.h"

namespace x3 {

/// Configuration of an X3Server.
struct X3ServerOptions {
  /// Worker threads executing queries. 0 = hardware concurrency.
  size_t num_threads = 4;
  /// Admission budget shared by every in-flight query: an admitted
  /// query reserves its shape's fact-table footprint for the duration
  /// of its execution and is refused with kResourceExhausted when the
  /// reservation does not fit (the budget must therefore fit at least
  /// one shape). 0 = unlimited. Compute-time working memory (counter
  /// tables, sort buffers) is charged to the same budget, so budgeted
  /// algorithms spill instead of overshooting.
  size_t admission_budget_bytes = 0;
  /// Capacity of the materialized-cuboid LRU cache. 0 = unlimited.
  size_t cache_capacity_bytes = 64ull << 20;
  /// Default per-query deadline in seconds; 0 = none. A request's
  /// explicit deadline overrides this.
  double default_deadline_seconds = 0;
  /// Default per-query compute parallelism (CubeComputeOptions
  /// semantics: 1 = calling thread, 0 = hardware concurrency).
  size_t default_parallelism = 1;
  /// Environment spill files go through; nullptr = Env::Default().
  Env* env = nullptr;
  /// Base directory for spill files; empty = $TMPDIR.
  std::string temp_dir;

  // --- Query-lifecycle observability (DESIGN.md §13) ---

  /// Queries whose end-to-end latency meets or exceeds this are marked
  /// `slow` in the query log, and (when they computed a cube) get the
  /// full ExplainCubePlanWithActuals rendering attached to their
  /// record. 0 = slow lane disabled.
  double slow_query_threshold_seconds = 0;
  /// Ring capacity of the per-query lifecycle log.
  size_t query_log_capacity = QueryLog::kDefaultCapacity;
  /// Stuck-query watchdog tick interval; 0 = watchdog disabled.
  double watchdog_interval_seconds = 0;
  /// A query with a deadline is flagged as stuck once its in-flight
  /// age exceeds this multiple of its deadline (it should have unwound
  /// with kDeadlineExceeded long before).
  double stuck_deadline_multiple = 3.0;
  /// A query WITHOUT a deadline is flagged once its age exceeds this;
  /// 0 = deadline-less queries are never flagged.
  double stuck_after_seconds = 0;
};

/// One cube request against a serving session.
struct ServerRequest {
  /// X^3 query text, compiled via X3Engine::Compile — or a
  /// pre-compiled query in `query` (which wins when set).
  std::string query_text;
  std::optional<CubeQuery> query;
  /// The cuboid (relaxation point) wanted; nullopt = the full cube
  /// (every cuboid of the lattice). Validated against the lattice.
  std::optional<CuboidId> target;
  CubeAlgorithm algorithm = CubeAlgorithm::kTDCust;
  /// Iceberg threshold applied to the answer (max with the query's own
  /// HAVING threshold). Applied after caching: the cache always holds
  /// unfiltered cells, so differently-thresholded requests share views.
  int64_t min_count = 0;
  /// Per-axis summarizability annotations; must outlive the server.
  /// nullptr = assume nothing (id-less roll-ups are never used and the
  /// OPT algorithm variants are always downgraded). The FIRST request
  /// that builds a shape fixes the shape's properties; later requests
  /// for the same normalized query inherit them.
  const LatticeProperties* properties = nullptr;
  /// Per-request deadline in seconds; overrides the server default.
  std::optional<double> deadline_seconds;
  /// Compute parallelism; 0 = the server default.
  size_t parallelism = 0;
  /// When false the query bypasses the cuboid cache entirely (no view
  /// lookups, no cache fill) — the cold-path escape hatch.
  bool use_cache = true;
  /// Caller-supplied tenant label, carried verbatim into the query log
  /// and statusz (attribution only; no isolation semantics).
  std::string tenant;
  /// Test hook: holds the query inside the worker for this long
  /// (cancellation- and deadline-honoring busy wait, reported as stage
  /// "debug-hold") before the normal execution path. Drives the
  /// watchdog and slow-lane tests; 0 in production.
  double debug_hold_seconds = 0;
};

/// Cells of one cuboid, keyed by packed group key.
using CellMap = std::unordered_map<GroupKey, AggregateState>;

/// Outcome of one committed write batch (X3Server::CommitDocuments).
struct ServerWriteResult {
  /// WAL LSN of the batch's commit record (the durability horizon the
  /// batch is replayed up to after a crash).
  uint64_t commit_lsn = 0;
  size_t documents = 0;
  /// Query shapes whose fact table grew and whose snapshot was swapped.
  size_t shapes_updated = 0;
  /// Aggregated view-maintenance counters across the updated shapes.
  DeltaStats delta;
};

/// A completed query's answer.
struct ServerAnswer {
  AggregateFunction aggregate = AggregateFunction::kCount;
  /// (cuboid id, cells) for the requested cuboid — or for every cuboid
  /// of the lattice, in topological (finest-first) order, for a
  /// full-cube request.
  std::vector<std::pair<CuboidId, CellMap>> cuboids;
  /// How the cuboids were answered: exact view hits, safe roll-ups
  /// from a finer view, or (`computed`) a ComputeCube run.
  uint64_t exact_hits = 0;
  uint64_t rollup_answers = 0;
  bool computed = false;
  /// The algorithm that actually ran on the miss path (after any
  /// safety downgrade); meaningless when `computed` is false.
  CubeAlgorithm algorithm_used = CubeAlgorithm::kTDCust;
  uint64_t num_cuboids_in_lattice = 0;
  double latency_seconds = 0;
};

/// One in-flight query as reported by X3Server::Statusz().
struct StatuszQuery {
  uint64_t qid = 0;
  std::string tenant;
  /// Static stage label ("queued", "compile", "build-shape",
  /// "cache-lookup", "compute", ...) at snapshot time.
  const char* stage = "";
  /// Seconds since the worker picked the query up.
  double age_seconds = 0;
  /// The watchdog has flagged this query as stuck.
  bool stuck = false;
};

/// One resident query shape as reported by X3Server::Statusz().
struct StatuszShape {
  std::string key;
  /// Commit LSN the shape's current snapshot reflects; compare with
  /// StatuszReport::durable_lsn / last_commit_lsn for staleness.
  uint64_t built_lsn = 0;
  size_t fact_rows = 0;
};

/// Point-in-time introspection snapshot of a serving session — the
/// answer to "what is this server doing and why is it slow". Every
/// count mirrors the metric registry (same underlying counters), so a
/// statusz snapshot and a metrics scrape taken together agree.
struct StatuszReport {
  double uptime_seconds = 0;
  size_t num_threads = 0;
  /// Queries accepted by Submit so far (== the last minted qid).
  uint64_t queries_submitted = 0;
  /// Submitted but not yet picked up by a worker.
  size_t queue_depth = 0;
  std::vector<StatuszQuery> inflight;
  std::vector<StatuszShape> shapes;
  /// Database write-lane horizons: in-memory vs durably checkpointed.
  uint64_t last_commit_lsn = 0;
  uint64_t durable_lsn = 0;
  // Cuboid cache.
  size_t cache_bytes = 0;
  size_t cache_views = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_hits = 0;
  uint64_t rollup_answers = 0;
  uint64_t cache_misses = 0;
  /// Served-entirely-from-cache queries / completed queries.
  double cache_hit_ratio = 0;
  // Admission budget.
  size_t budget_capacity_bytes = 0;
  size_t budget_used_bytes = 0;
  size_t budget_peak_bytes = 0;
  uint64_t admission_denied = 0;
  // Watchdog.
  uint64_t stuck_queries = 0;
  // Latency percentiles (Histogram::Quantile over the server latency
  // histogram), milliseconds.
  double latency_p50_ms = 0;
  double latency_p95_ms = 0;
  double latency_p99_ms = 0;

  /// Human-readable multi-line rendering.
  std::string ToText() const;
  /// Single JSON object (the schema check_observability.py validates).
  std::string ToJson() const;
};

/// A long-lived serving session over one shared Database: concurrent
/// Submit() calls are fair-scheduled (FIFO) onto a worker pool,
/// admission-controlled through a shared MemoryBudget, bounded by
/// per-query deadlines and cancellable mid-flight, and answered from
/// an LRU cache of materialized cuboids whenever CubeViewStore can
/// prove an exact hit or a safe roll-up — falling back to ComputeCube
/// (which then fills the cache) otherwise.
///
/// Query shapes — the compiled pattern, its lattice, the materialized
/// fact table, the property map and the per-shape CubeViewStore — are
/// built once per normalized query and kept for the server's lifetime;
/// only the materialized views inside them are subject to eviction.
/// Shape fact tables are deliberately NOT charged to the admission
/// budget (they are session state, not per-query working memory), so
/// `budget()->used() == 0` holds whenever no query is in flight.
///
/// Thread-safe. Destroying the server drains every submitted query
/// first (ThreadPool drain-on-destroy), so tickets handed out earlier
/// always complete.
class X3Server {
 public:
  /// A submitted query's handle. Obtained from Submit(); shared
  /// ownership, so it stays valid however long the caller keeps it.
  class Ticket {
   public:
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    /// Blocks until the query finished and moves its result out. May
    /// be called once; later calls return kInternal.
    Result<ServerAnswer> Wait() X3_EXCLUDES(mu_);

    /// Requests cooperative cancellation (idempotent; the query
    /// unwinds with kCancelled at its next poll).
    void Cancel() { token_.Cancel(); }

    /// Arms deterministic mid-flight cancellation: the token trips
    /// after `checks` further polls (test hook; see
    /// CancellationToken::CancelAfterChecks).
    void CancelAfterChecks(int64_t checks) {
      token_.CancelAfterChecks(checks);
    }

    bool done() const X3_EXCLUDES(mu_) {
      MutexLock lock(&mu_);
      return done_;
    }

    /// The server-minted query id (monotonically increasing from 1 in
    /// submission order); the key joining this query's trace spans,
    /// log lines and query-log record.
    uint64_t query_id() const { return qid_; }

   private:
    friend class X3Server;
    Ticket() = default;

    void Complete(Result<ServerAnswer> result) X3_EXCLUDES(mu_);

    CancellationToken token_;
    /// Set once by Submit before the ticket escapes; immutable after.
    uint64_t qid_ = 0;
    /// Started at Submit; the gap to worker pickup is the query's
    /// FIFO queue wait.
    Timer queued_;
    mutable Mutex mu_{lock_rank::kServerTicket};
    CondVar done_cv_;
    bool done_ X3_GUARDED_BY(mu_) = false;
    std::optional<Result<ServerAnswer>> result_ X3_GUARDED_BY(mu_);
  };

  /// `db` must outlive the server and already contain the data.
  explicit X3Server(Database* db, X3ServerOptions options = {});

  /// Drains all in-flight and queued queries, then joins the workers.
  ~X3Server();

  X3Server(const X3Server&) = delete;
  X3Server& operator=(const X3Server&) = delete;

  /// Enqueues the query. Never blocks on query execution; the returned
  /// ticket resolves once a worker ran it. Fairness is FIFO: queries
  /// start in submission order.
  std::shared_ptr<Ticket> Submit(ServerRequest request);

  /// Submit + Wait (the blocking convenience for single-tenant use).
  Result<ServerAnswer> Execute(ServerRequest request);

  /// The serialized write lane: loads `documents` (XML strings) into
  /// the database as ONE transactional batch (WAL-first, all-or-
  /// nothing), then folds the committed facts into every resident
  /// query shape — delta-patching materialized views where the plan
  /// proves it safe, rebuilding them (with fact ids) where it does not
  /// — and atomically swaps each shape's snapshot. Concurrent readers
  /// never observe a partial batch: a query sees either the complete
  /// pre-batch snapshot or the complete post-batch one. Writers are
  /// serialized against each other; a failed load rolls the batch back
  /// and leaves every shape untouched.
  Result<ServerWriteResult> CommitDocuments(
      const std::vector<std::string>& documents) X3_EXCLUDES(write_mu_);

  /// Durably checkpoints the database (raises the replay horizon and
  /// truncates the WAL), serialized with writers.
  Status Checkpoint() X3_EXCLUDES(write_mu_);

  /// The shared admission budget (used() drops back to 0 once every
  /// in-flight query drained).
  MemoryBudget* budget() { return &budget_; }

  size_t cache_bytes() const { return cache_.bytes(); }
  size_t cache_views() const { return cache_.num_views(); }
  uint64_t cache_evictions() const { return cache_.evictions(); }
  size_t num_shapes() const X3_EXCLUDES(mu_);

  /// The per-query lifecycle log (one record per completed query).
  const QueryLog& query_log() const { return query_log_; }

  /// Point-in-time introspection snapshot: uptime, in-flight queries
  /// with qid/age/current stage, pool queue depth, cache contents and
  /// hit ratio, shape LSNs vs the WAL durable horizon, budget state.
  /// Safe to call concurrently with queries and writes (brief
  /// registry/shape lock acquisitions; never held across each other).
  StatuszReport Statusz() const X3_EXCLUDES(mu_);

  /// Evicts every cached view (forced cold start; test hook).
  void FlushCacheForTest() { cache_.Clear(); }

 private:
  /// One immutable version of a shape's materialized state: the
  /// compiled query, lattice and fact table (X3Engine::Prepare's
  /// output) plus the view store the cuboid cache manages views in.
  /// The write path publishes a NEW snapshot per committed batch
  /// (copy-on-write); a running query pins the snapshot it started on,
  /// so it never sees a half-applied batch.
  struct ShapeSnapshot {
    std::unique_ptr<PreparedQuery> prepared;
    std::unique_ptr<CubeViewStore> views;
    /// Database commit LSN this snapshot's fact table reflects. The
    /// write path skips shapes whose snapshot already covers the
    /// batch (a shape built concurrently with the commit).
    uint64_t built_lsn = 0;
  };

  /// Everything the server keeps per normalized query: the current
  /// snapshot, the shape's property map, and the build latch. Built
  /// lazily by the first query of the shape; `mu` is the build latch
  /// and guards the snapshot pointer swap. `properties` is immutable
  /// once `ready` is published under `mu`.
  struct ShapeState {
    Mutex mu{lock_rank::kServerShape};
    CondVar ready_cv;
    bool ready X3_GUARDED_BY(mu) = false;
    Status build_status X3_GUARDED_BY(mu);
    LatticeProperties properties;
    bool disjoint_everywhere = false;
    std::shared_ptr<const ShapeSnapshot> snapshot X3_GUARDED_BY(mu);
  };

  /// Pins the shape's current snapshot (brief shape->mu acquisition).
  static std::shared_ptr<const ShapeSnapshot> PinSnapshot(ShapeState* shape);

  /// One in-flight query's live bookkeeping: registered by RunTask at
  /// worker pickup, deregistered on every exit path. `stage` is an
  /// atomic pointer to a static string literal, so RunQuery updates it
  /// lock-free and Statusz/watchdog read it race-free; the registry
  /// map itself is guarded by inflight_mu_ (rank kServerInflight),
  /// which is never held across any other lock acquisition.
  struct InflightEntry {
    uint64_t qid = 0;
    std::string tenant;
    Timer started;
    double deadline_seconds = 0;  // 0 = none
    std::atomic<const char*> stage{"queued"};
    std::atomic<bool> stuck{false};
  };

  /// The worker-side body of one submitted query: metrics, tracing,
  /// inflight registration, query-log commit and ticket completion
  /// around RunQuery.
  void RunTask(const std::shared_ptr<Ticket>& ticket,
               const ServerRequest& request);

  Result<ServerAnswer> RunQuery(const ServerRequest& request,
                                Ticket* ticket, InflightEntry* inflight,
                                QueryLogRecord* record);

  /// Registers/deregisters one in-flight query with the registry.
  void RegisterInflight(const std::shared_ptr<InflightEntry>& entry)
      X3_EXCLUDES(inflight_mu_);
  void DeregisterInflight(uint64_t qid) X3_EXCLUDES(inflight_mu_);

  /// The watchdog thread body: every watchdog_interval_seconds, flags
  /// queries in flight past their stuck threshold (once per query),
  /// bumps x3_server_stuck_queries_total and logs a one-shot statusz
  /// dump per flagging pass. Exits promptly on shutdown notify.
  void WatchdogLoop() X3_EXCLUDES(watchdog_mu_);
  /// One watchdog scan; returns how many queries it newly flagged.
  size_t WatchdogScanOnce();

  /// Returns the ready shape for `key`, building it (on this thread,
  /// deduplicated across concurrent requesters) if needed. A failed
  /// build is reported to every waiter and the shape is dropped so a
  /// later query can retry.
  Result<std::shared_ptr<ShapeState>> GetOrBuildShape(
      const std::string& key, const CubeQuery& query,
      const LatticeProperties* properties, ExecutionContext* ctx)
      X3_EXCLUDES(mu_);

  /// Materializes `cuboid` into the snapshot's view store (if absent)
  /// and accounts it with the LRU cache — only while `snapshot` is
  /// still the shape's current one. A reader racing a snapshot swap
  /// keeps its (now-stale) view for its own query but never registers
  /// it with the cache, so the cache never holds keys into a store
  /// whose snapshot has been retired.
  void EnsureMaterialized(ShapeState* shape,
                          const std::shared_ptr<const ShapeSnapshot>& snapshot,
                          CuboidId cuboid);

  /// Delta-maintains one shape after a batch committed at `commit_lsn`
  /// grew the database past `first_new_node`: clones the fact table,
  /// appends the new facts, plans and applies view deltas, swaps the
  /// snapshot and re-accounts the cache. No-op (false) when no new
  /// fact matched the shape or the snapshot already covers the batch.
  Result<bool> MaintainShape(ShapeState* shape, NodeId first_new_node,
                             uint64_t commit_lsn, DeltaStats* stats);

  Database* db_;
  const X3ServerOptions options_;
  X3Engine engine_;
  MemoryBudget budget_;
  TempFileManager temp_files_;
  CuboidCache cache_;

  /// Serializes writers (rank kServerWrite: held across the whole
  /// commit + maintenance pass, below every other server lock).
  Mutex write_mu_{lock_rank::kServerWrite};
  /// Excludes shape builds (which read the database through the
  /// pattern matcher) from the write lane's database mutation. Held by
  /// CommitDocuments during BeginBatch..CommitBatch and by
  /// GetOrBuildShape around X3Engine::Prepare.
  Mutex db_mu_{lock_rank::kDatabaseIngest};

  mutable Mutex mu_{lock_rank::kServerSession};
  std::unordered_map<std::string, std::shared_ptr<ShapeState>> shapes_
      X3_GUARDED_BY(mu_);

  /// Query-id mint (Submit) — the next ticket's qid. Starts at 1; 0
  /// means "no query" everywhere downstream.
  std::atomic<uint64_t> next_qid_{1};
  /// Server-start stopwatch (statusz uptime).
  Timer started_;
  QueryLog query_log_;

  mutable Mutex inflight_mu_{lock_rank::kServerInflight};
  std::unordered_map<uint64_t, std::shared_ptr<InflightEntry>> inflight_
      X3_GUARDED_BY(inflight_mu_);

  /// Watchdog wakeup/shutdown latch (rank kServerWatchdog, below every
  /// other server lock: the watchdog never holds it while scanning).
  Mutex watchdog_mu_{lock_rank::kServerWatchdog};
  CondVar watchdog_cv_;
  bool watchdog_stop_ X3_GUARDED_BY(watchdog_mu_) = false;
  /// The one sanctioned raw thread outside ThreadPool: the watchdog
  /// must keep ticking while every pool worker is wedged — running it
  /// on the pool would let the condition it detects starve it.
  std::thread watchdog_;  // x3-lint: allow(raw-thread) -- watchdog must outlive a wedged pool

  /// Declared last: destroyed first, draining every queued task while
  /// the shapes, cache and budget above are still alive.
  std::unique_ptr<ThreadPool> pool_;
};

/// The cache key's normalization: fact path, per-axis (path,
/// relaxations, transform), measure path and aggregate — everything
/// that determines the lattice and fact table, and nothing that does
/// not (axis variable names and iceberg thresholds are excluded, so
/// renamed variables and different HAVING clauses share one shape).
std::string NormalizedQueryKey(const CubeQuery& query);

}  // namespace x3

#endif  // X3_SERVER_X3_SERVER_H_
