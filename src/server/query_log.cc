#include "server/query_log.h"

#include <utility>

#include "util/env.h"
#include "util/string_util.h"

namespace x3 {

QueryLog::QueryLog(size_t capacity)
    : capacity_(capacity < 2 ? 2 : capacity) {}

void QueryLog::Commit(QueryLogRecord record) {
  MutexLock lock(&mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[next_] = std::move(record);
  next_ = (next_ + 1) % capacity_;
}

uint64_t QueryLog::total() const {
  MutexLock lock(&mu_);
  return total_;
}

size_t QueryLog::size() const {
  MutexLock lock(&mu_);
  return ring_.size();
}

std::vector<QueryLogRecord> QueryLog::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<QueryLogRecord> out;
  out.reserve(ring_.size());
  if (total_ <= capacity_) {
    out = ring_;
  } else {
    // Ring has wrapped: the oldest surviving record sits at next_.
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(next_));
  }
  return out;
}

std::string QueryLogRecordToJson(const QueryLogRecord& r) {
  std::string out = "{";
  out += StringPrintf("\"qid\":%llu",
                      static_cast<unsigned long long>(r.qid));
  out += ",\"tenant\":" + JsonQuote(r.tenant);
  out += ",\"shape_key\":" + JsonQuote(r.shape_key);
  out += StringPrintf(",\"queue_ms\":%.3f", r.queue_seconds * 1e3);
  out += StringPrintf(",\"latency_ms\":%.3f", r.latency_seconds * 1e3);
  out += StringPrintf(",\"exact_hits\":%llu",
                      static_cast<unsigned long long>(r.exact_hits));
  out += StringPrintf(",\"rollup_answers\":%llu",
                      static_cast<unsigned long long>(r.rollup_answers));
  out += StringPrintf(",\"computed\":%s", r.computed ? "true" : "false");
  out += StringPrintf(",\"cache_bypassed\":%s",
                      r.cache_bypassed ? "true" : "false");
  out += ",\"algorithm_requested\":";
  out += JsonQuote(CubeAlgorithmToString(r.algorithm_requested));
  out += ",\"algorithm_used\":";
  out += JsonQuote(CubeAlgorithmToString(r.algorithm_used));
  out += StringPrintf(",\"downgraded\":%s", r.downgraded ? "true" : "false");
  out += StringPrintf(",\"budget_peak_bytes\":%llu",
                      static_cast<unsigned long long>(r.budget_peak_bytes));
  out += StringPrintf(",\"spill_bytes\":%llu",
                      static_cast<unsigned long long>(r.spill_bytes));
  out += ",\"stages\":[";
  for (size_t i = 0; i < r.stages.size(); ++i) {
    const QueryStageMs& stage = r.stages[i];
    if (i > 0) out += ",";
    out += "{\"label\":" + JsonQuote(stage.label);
    out += StringPrintf(",\"ms\":%.3f,\"rows\":%llu,\"bytes\":%llu}",
                        stage.ms,
                        static_cast<unsigned long long>(stage.rows),
                        static_cast<unsigned long long>(stage.bytes));
  }
  out += "]";
  out += ",\"status\":";
  out += JsonQuote(StatusCodeToString(r.status));
  out += ",\"error\":" + JsonQuote(r.error);
  out += StringPrintf(",\"slow\":%s", r.slow ? "true" : "false");
  out += ",\"slow_explain\":" + JsonQuote(r.slow_explain);
  out += "}";
  return out;
}

std::string QueryLog::ToJsonLines() const {
  std::vector<QueryLogRecord> records = Snapshot();
  std::string out;
  for (const QueryLogRecord& record : records) {
    out += QueryLogRecordToJson(record);
    out += "\n";
  }
  return out;
}

Status QueryLog::WriteJsonl(Env* env, const std::string& path) const {
  return WriteStringToFile(env, path, ToJsonLines());
}

}  // namespace x3
