#ifndef X3_SERVER_CUBOID_CACHE_H_
#define X3_SERVER_CUBOID_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

#include "cube/view_store.h"
#include "util/thread_annotations.h"

namespace x3 {

/// LRU bookkeeping over the materialized cuboid views of a server.
///
/// The views themselves live in each query shape's CubeViewStore (one
/// store per normalized pattern + aggregate); the cache only decides
/// which of them stay materialized. A cache key is therefore
/// (view store, cuboid id): the store pointer identifies the normalized
/// pattern and aggregate, the cuboid id is the relaxation point — the
/// (pattern, relaxation point, aggregate) cache key of the serving
/// design in one pair.
///
/// Eviction calls CubeViewStore::Evict on the victim. A concurrent
/// AnswerFromViews either still sees the view (the store is internally
/// locked per call) or misses and recomputes; both are correct, so no
/// cross-object lock is needed.
///
/// Thread-safe. Lock order: mu_ (rank kServerCache) is held across the
/// victim store's Evict (rank kViewStore) — a legal low-to-high
/// acquisition.
class CuboidCache {
 public:
  /// capacity_bytes = 0 means unlimited (nothing is ever evicted).
  explicit CuboidCache(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  CuboidCache(const CuboidCache&) = delete;
  CuboidCache& operator=(const CuboidCache&) = delete;

  /// Records a hit: moves the view to most-recently-used. Keys that are
  /// not cached (evicted by a concurrent insert) are ignored.
  void Touch(CubeViewStore* store, CuboidId cuboid) X3_EXCLUDES(mu_);

  /// Accounts a newly materialized view (or refreshes the byte size of
  /// a re-materialized one) and evicts least-recently-used views until
  /// the total fits the capacity. The view being inserted is exempt
  /// from its own insertion's sweep, so an oversized view still serves
  /// repeats of its own query until something else displaces it.
  void Insert(CubeViewStore* store, CuboidId cuboid, size_t bytes)
      X3_EXCLUDES(mu_);

  /// Forgets every entry of `store` WITHOUT evicting the views: the
  /// write path calls this when it swaps a shape's snapshot, so the
  /// cache never keeps keys into a store that is about to be destroyed
  /// (the old snapshot's views die with their snapshot). Not counted as
  /// evictions.
  void DropStore(CubeViewStore* store) X3_EXCLUDES(mu_);

  /// Evicts every cached view (test hook for forced cold starts).
  void Clear() X3_EXCLUDES(mu_);

  size_t bytes() const X3_EXCLUDES(mu_);
  size_t num_views() const X3_EXCLUDES(mu_);
  uint64_t evictions() const X3_EXCLUDES(mu_);

 private:
  struct Entry {
    CubeViewStore* store;
    CuboidId cuboid;
    size_t bytes;
  };
  using Key = std::pair<CubeViewStore*, CuboidId>;
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return std::hash<CubeViewStore*>()(key.first) ^
             (std::hash<uint64_t>()(key.second) * 0x9e3779b97f4a7c15ULL);
    }
  };

  /// Evicts LRU-first until bytes_ <= capacity, never evicting `keep`.
  void EvictOverflowLocked(const Key& keep) X3_REQUIRES(mu_);

  const size_t capacity_bytes_;
  mutable Mutex mu_{lock_rank::kServerCache};
  /// Front = most recently used.
  std::list<Entry> lru_ X3_GUARDED_BY(mu_);
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_
      X3_GUARDED_BY(mu_);
  size_t bytes_ X3_GUARDED_BY(mu_) = 0;
  uint64_t evictions_ X3_GUARDED_BY(mu_) = 0;
};

}  // namespace x3

#endif  // X3_SERVER_CUBOID_CACHE_H_
