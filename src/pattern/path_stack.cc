#include "pattern/path_stack.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"

namespace x3 {

namespace {

/// One stack entry: the data node (with its end label cached) plus the
/// index of the top of the parent-level stack at push time — every
/// entry at or below that index is an ancestor candidate.
struct StackEntry {
  NodeId node;
  NodeId end;
  int parent_top;  // -1 when the parent stack was empty
};

}  // namespace

bool PathStackMatcher::Supports(const TreePattern& pattern) {
  if (pattern.root() == kNoPatternNode) return false;
  PatternNodeId current = pattern.root();
  for (;;) {
    const PatternNode& node = pattern.node(current);
    if (node.optional) return false;
    if (node.children.empty()) return true;
    if (node.children.size() > 1) return false;
    current = node.children[0];
  }
}

Result<std::vector<WitnessTree>> PathStackMatcher::FindMatches(
    const TreePattern& pattern) {
  if (!Supports(pattern)) {
    return Status::InvalidArgument(
        "PathStack evaluates linear chains without optional nodes");
  }

  // The chain, root first.
  std::vector<PatternNodeId> chain;
  for (PatternNodeId id = pattern.root(); id != kNoPatternNode;) {
    chain.push_back(id);
    const PatternNode& node = pattern.node(id);
    id = node.children.empty() ? kNoPatternNode : node.children[0];
  }
  size_t levels = chain.size();

  // Streams: per level, the sorted node list and a cursor. Wildcards
  // stream every node (ids are dense preorder positions).
  std::vector<const std::vector<NodeId>*> streams(levels);
  std::vector<NodeId> all_nodes;
  for (size_t i = 0; i < levels; ++i) {
    const std::string& tag = pattern.node(chain[i]).tag;
    if (tag == "*") {
      if (all_nodes.empty()) {
        all_nodes.resize(db_->node_count());
        for (NodeId id = 0; id < db_->node_count(); ++id) all_nodes[id] = id;
      }
      streams[i] = &all_nodes;
    } else {
      streams[i] = &db_->NodesWithTag(tag);
    }
  }
  std::vector<size_t> cursor(levels, 0);
  std::vector<std::vector<StackEntry>> stacks(levels);

  std::vector<WitnessTree> out;

  // Expands all root-to-leaf chains ending at the given leaf entry.
  auto emit_solutions = [&](const StackEntry& leaf_entry) {
    // positions[i]: index into stacks[i] chosen for level i.
    std::vector<int> positions(levels);
    // Recursive expansion from the leaf level upward.
    std::function<void(size_t, int)> expand = [&](size_t level,
                                                  int max_index) {
      if (max_index < 0) return;
      if (level == 0) {
        for (int j = 0; j <= max_index; ++j) {
          positions[0] = j;
          WitnessTree w;
          w.bindings.assign(pattern.capacity(), kInvalidNodeId);
          // Interior levels come from the stacks; the leaf binding is
          // patched in by the caller (leaves are not stacked).
          for (size_t l = 0; l + 1 < levels; ++l) {
            w.bindings[static_cast<size_t>(chain[l])] =
                stacks[l][static_cast<size_t>(positions[l])].node;
          }
          out.push_back(std::move(w));
          ++stats_.solutions;
        }
        return;
      }
      for (int j = 0; j <= max_index; ++j) {
        positions[level] = j;
        expand(level - 1, stacks[level][static_cast<size_t>(j)].parent_top);
      }
    };
    if (levels == 1) {
      WitnessTree w;
      w.bindings.assign(pattern.capacity(), kInvalidNodeId);
      w.bindings[static_cast<size_t>(chain[0])] = leaf_entry.node;
      out.push_back(std::move(w));
      ++stats_.solutions;
      return;
    }
    // The leaf entry is not on its stack; walk its ancestors directly
    // and patch the leaf binding into each produced witness.
    size_t before = out.size();
    expand(levels - 2, leaf_entry.parent_top);
    for (size_t i = before; i < out.size(); ++i) {
      out[i].bindings[static_cast<size_t>(chain[levels - 1])] =
          leaf_entry.node;
    }
  };

  for (;;) {
    // Find the stream whose head has the minimal start.
    size_t qmin = levels;
    NodeId min_start = kInvalidNodeId;
    for (size_t i = 0; i < levels; ++i) {
      if (cursor[i] >= streams[i]->size()) continue;
      NodeId head = (*streams[i])[cursor[i]];
      if (qmin == levels || head < min_start) {
        qmin = i;
        min_start = head;
      }
    }
    if (qmin == levels) break;  // all streams exhausted
    // If any higher level's stream is exhausted AND its stack is empty,
    // deeper levels can never match again.
    bool hopeless = false;
    for (size_t i = 0; i < qmin; ++i) {
      if (cursor[i] >= streams[i]->size() && stacks[i].empty()) {
        hopeless = true;
        break;
      }
    }
    if (hopeless && qmin > 0) {
      // Nothing above can embrace this node or any later one at qmin.
      ++cursor[qmin];
      continue;
    }

    ++stats_.nodes_scanned;
    NodeRecord rec;
    X3_RETURN_IF_ERROR(db_->GetNode(min_start, &rec));
    // Value predicates prune the stream element here (before it can be
    // pushed or emitted).
    if (pattern.node(chain[qmin]).has_value_filter) {
      X3_ASSIGN_OR_RETURN(
          bool ok, NodeSatisfies(*db_, pattern.node(chain[qmin]), min_start));
      if (!ok) {
        ++cursor[qmin];
        continue;
      }
    }

    // Pop every stack entry whose interval closed before min_start.
    for (size_t i = 0; i < levels; ++i) {
      while (!stacks[i].empty() && stacks[i].back().end < min_start) {
        stacks[i].pop_back();
      }
    }

    int parent_top = -1;
    if (qmin > 0) {
      parent_top = static_cast<int>(stacks[qmin - 1].size()) - 1;
      // The same node may sit in the parent stream when tags repeat
      // along the chain (//a//a); containment must be strict.
      if (parent_top >= 0 &&
          stacks[qmin - 1][static_cast<size_t>(parent_top)].node ==
              min_start) {
        --parent_top;
      }
    }
    StackEntry entry{min_start, rec.end, parent_top};
    if (qmin == 0 || entry.parent_top >= 0) {
      if (qmin == levels - 1) {
        // Leaf level: expand solutions immediately; leaves need not be
        // stacked (nothing nests under a chain's last level usefully —
        // unless the leaf tag repeats along the chain, which the
        // general push below handles).
        emit_solutions(entry);
        if (levels == 1) {
          ++cursor[qmin];
          continue;
        }
      } else {
        stacks[qmin].push_back(entry);
        ++stats_.pushes;
      }
    }
    ++cursor[qmin];
  }

  // Post-filter parent-child edges (evaluated as ancestor-descendant).
  bool has_pc = false;
  for (size_t i = 1; i < levels; ++i) {
    if (pattern.node(chain[i]).edge == StructuralAxis::kChild) {
      has_pc = true;
      break;
    }
  }
  if (has_pc) {
    std::vector<WitnessTree> filtered;
    for (WitnessTree& w : out) {
      bool ok = true;
      for (size_t i = 1; i < levels && ok; ++i) {
        if (pattern.node(chain[i]).edge != StructuralAxis::kChild) continue;
        NodeId child = w.bindings[static_cast<size_t>(chain[i])];
        NodeId parent = w.bindings[static_cast<size_t>(chain[i - 1])];
        NodeRecord child_rec;
        X3_RETURN_IF_ERROR(db_->GetNode(child, &child_rec));
        ok = child_rec.parent == parent;
      }
      if (ok) filtered.push_back(std::move(w));
    }
    out = std::move(filtered);
  }
  return out;
}

}  // namespace x3
