#ifndef X3_PATTERN_JOIN_MATCHER_H_
#define X3_PATTERN_JOIN_MATCHER_H_

#include <vector>

#include "pattern/tree_pattern.h"
#include "pattern/twig_matcher.h"
#include "util/result.h"
#include "xdb/database.h"
#include "xdb/structural_join.h"

namespace x3 {

/// Counters describing a join-plan evaluation.
struct JoinPlanStats {
  uint64_t structural_joins = 0;
  uint64_t join_pairs = 0;
  uint64_t intermediate_tuples = 0;
};

/// Tree-pattern evaluation the way TIMBER does it (§3.4: "A typical way
/// to evaluate a tree pattern is to consider one edge at a time, and
/// evaluate the corresponding structural join"): one stack-based
/// structural join per pattern edge, composed bottom-up into witness
/// tuples.
///
/// For each pattern node (post-order) the matcher holds a relation of
/// partial witnesses for that node's subtree; a parent combines its
/// candidate list with each child relation through the edge's
/// structural join (descendant or child), cross-producting multiple
/// matches and outer-joining optional children.
///
/// Produces exactly the same witness set as TwigMatcher (tests enforce
/// this); the two differ only in evaluation strategy and therefore in
/// cost shape — JoinMatcher is set-at-a-time (bulk joins over the tag
/// indexes), TwigMatcher is node-at-a-time (recursive descent).
class JoinMatcher {
 public:
  explicit JoinMatcher(const Database* db) : db_(db) {}

  /// All witness trees of `pattern`, sorted by root binding (document
  /// order), bindings aligned to pattern node ids like TwigMatcher's.
  Result<std::vector<WitnessTree>> FindMatches(const TreePattern& pattern);

  const JoinPlanStats& stats() const { return stats_; }

 private:
  /// A relation of partial witnesses keyed by the binding of
  /// `anchor` (the subtree root all tuples share).
  struct SubtreeRelation {
    PatternNodeId anchor = kNoPatternNode;
    /// Tuples: full-width binding vectors (capacity-sized).
    std::vector<WitnessTree> tuples;
  };

  Result<SubtreeRelation> EvaluateSubtree(const TreePattern& pattern,
                                          PatternNodeId node);

  const Database* db_;
  JoinPlanStats stats_;
};

}  // namespace x3

#endif  // X3_PATTERN_JOIN_MATCHER_H_
