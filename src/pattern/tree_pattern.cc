#include "pattern/tree_pattern.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace x3 {

PatternNodeId TreePattern::SetRoot(std::string tag) {
  X3_CHECK(root_ == kNoPatternNode) << "root already set";
  PatternNode node;
  node.tag = std::move(tag);
  nodes_.push_back(std::move(node));
  tombstone_.push_back(false);
  root_ = 0;
  live_count_ = 1;
  return root_;
}

PatternNodeId TreePattern::AddNode(PatternNodeId parent, std::string tag,
                                   StructuralAxis edge, bool optional) {
  X3_CHECK(IsLive(parent)) << "AddNode under dead parent";
  PatternNode node;
  node.tag = std::move(tag);
  node.edge = edge;
  node.optional = optional;
  node.parent = parent;
  PatternNodeId id = static_cast<PatternNodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  tombstone_.push_back(false);
  nodes_[static_cast<size_t>(parent)].children.push_back(id);
  ++live_count_;
  return id;
}

Status TreePattern::DeleteLeaf(PatternNodeId id) {
  if (!IsLive(id)) return Status::InvalidArgument("delete of dead node");
  if (id == root_) return Status::InvalidArgument("cannot delete root");
  PatternNode& node = nodes_[static_cast<size_t>(id)];
  if (!node.children.empty()) {
    return Status::InvalidArgument("LND applies only to leaves: " +
                                   node.tag);
  }
  auto& siblings = nodes_[static_cast<size_t>(node.parent)].children;
  siblings.erase(std::remove(siblings.begin(), siblings.end(), id),
                 siblings.end());
  tombstone_[static_cast<size_t>(id)] = true;
  --live_count_;
  return Status::OK();
}

Status TreePattern::PromoteToGrandparent(PatternNodeId id) {
  if (!IsLive(id)) return Status::InvalidArgument("SP of dead node");
  if (id == root_) return Status::InvalidArgument("cannot promote root");
  PatternNode& node = nodes_[static_cast<size_t>(id)];
  PatternNodeId parent = node.parent;
  PatternNodeId grandparent = nodes_[static_cast<size_t>(parent)].parent;
  if (grandparent == kNoPatternNode) {
    return Status::InvalidArgument("SP requires a grandparent: " + node.tag);
  }
  auto& siblings = nodes_[static_cast<size_t>(parent)].children;
  siblings.erase(std::remove(siblings.begin(), siblings.end(), id),
                 siblings.end());
  node.parent = grandparent;
  node.edge = StructuralAxis::kDescendant;
  nodes_[static_cast<size_t>(grandparent)].children.push_back(id);
  return Status::OK();
}

Status TreePattern::GeneralizeEdge(PatternNodeId id) {
  if (!IsLive(id)) return Status::InvalidArgument("PC-AD of dead node");
  if (id == root_) return Status::InvalidArgument("root has no edge");
  nodes_[static_cast<size_t>(id)].edge = StructuralAxis::kDescendant;
  return Status::OK();
}

Status TreePattern::SetValueFilter(PatternNodeId id, std::string value) {
  if (!IsLive(id)) {
    return Status::InvalidArgument("value filter on dead node");
  }
  PatternNode& node = nodes_[static_cast<size_t>(id)];
  node.has_value_filter = true;
  node.value_filter = std::move(value);
  return Status::OK();
}

std::vector<PatternNodeId> TreePattern::LiveNodes() const {
  std::vector<PatternNodeId> out;
  if (root_ == kNoPatternNode) return out;
  std::vector<PatternNodeId> stack{root_};
  while (!stack.empty()) {
    PatternNodeId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    const auto& children = nodes_[static_cast<size_t>(id)].children;
    for (auto it = children.rbegin(); it != children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

std::string TreePattern::CanonicalSubtree(PatternNodeId id,
                                          PatternNodeId mark) const {
  const PatternNode& node = nodes_[static_cast<size_t>(id)];
  std::string out;
  out += (id == root_ || node.edge == StructuralAxis::kChild) ? "/" : "//";
  out += node.tag;
  if (node.optional) out += "?";
  if (node.has_value_filter) out += "{=" + node.value_filter + "}";
  if (id == mark) out += "!";
  if (!node.children.empty()) {
    std::vector<std::string> parts;
    parts.reserve(node.children.size());
    for (PatternNodeId child : node.children) {
      parts.push_back(CanonicalSubtree(child, mark));
    }
    std::sort(parts.begin(), parts.end());
    out += "(";
    out += JoinStrings(parts, ",");
    out += ")";
  }
  return out;
}

std::string TreePattern::CanonicalForm(PatternNodeId mark) const {
  if (root_ == kNoPatternNode) return "";
  return CanonicalSubtree(root_, mark);
}

void TreePattern::RenderNode(PatternNodeId id, std::string* out) const {
  const PatternNode& node = nodes_[static_cast<size_t>(id)];
  if (id != root_) {
    out->append(node.edge == StructuralAxis::kChild ? "/" : "//");
  }
  out->append(node.tag);
  if (node.optional) out->append("?");
  if (node.has_value_filter) {
    out->append("[.=\"" + node.value_filter + "\"]");
  }
  if (node.children.size() == 1) {
    RenderNode(node.children[0], out);
  } else {
    for (PatternNodeId child : node.children) {
      out->append("[.");
      RenderNode(child, out);
      out->append("]");
    }
  }
}

std::string TreePattern::ToString() const {
  if (root_ == kNoPatternNode) return "(empty)";
  std::string out;
  RenderNode(root_, &out);
  return out;
}

}  // namespace x3
