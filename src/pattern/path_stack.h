#ifndef X3_PATTERN_PATH_STACK_H_
#define X3_PATTERN_PATH_STACK_H_

#include <vector>

#include "pattern/tree_pattern.h"
#include "pattern/twig_matcher.h"
#include "util/result.h"
#include "xdb/database.h"

namespace x3 {

/// Counters for a PathStack evaluation.
struct PathStackStats {
  uint64_t nodes_scanned = 0;
  uint64_t pushes = 0;
  uint64_t solutions = 0;
};

/// Holistic path matching à la PathStack (Bruno, Koudas & Srivastava,
/// "Holistic Twig Joins", SIGMOD 2002): evaluates a *linear* pattern
/// (a chain) in one synchronized pass over the per-tag node streams
/// with one stack per pattern level, never materializing binary-join
/// intermediates. This is the third evaluation strategy next to
/// TwigMatcher (node-at-a-time) and JoinMatcher (edge-at-a-time); the
/// three are proven equivalent on chains by property tests.
///
/// Parent-child edges are handled by evaluating the ancestor-descendant
/// relaxation holistically and post-filtering the solutions (the
/// standard practical treatment; PC pruning inside the stacks is an
/// optimization, not a semantic necessity).
class PathStackMatcher {
 public:
  explicit PathStackMatcher(const Database* db) : db_(db) {}

  /// True iff the pattern is a chain without optional nodes (what
  /// PathStack evaluates). Wildcards are fine.
  static bool Supports(const TreePattern& pattern);

  /// All witness trees, bindings aligned to pattern node ids (same
  /// contract as TwigMatcher). Fails with InvalidArgument when
  /// !Supports(pattern).
  Result<std::vector<WitnessTree>> FindMatches(const TreePattern& pattern);

  const PathStackStats& stats() const { return stats_; }

 private:
  const Database* db_;
  PathStackStats stats_;
};

}  // namespace x3

#endif  // X3_PATTERN_PATH_STACK_H_
