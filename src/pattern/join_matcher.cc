#include "pattern/join_matcher.h"

#include <algorithm>
#include <unordered_map>

namespace x3 {

namespace {

WitnessTree EmptyWitness(size_t capacity) {
  WitnessTree w;
  w.bindings.assign(capacity, kInvalidNodeId);
  return w;
}

/// Merges two partial witnesses with disjoint bound node sets.
WitnessTree MergeWitness(const WitnessTree& a, const WitnessTree& b) {
  WitnessTree out = a;
  for (size_t i = 0; i < out.bindings.size(); ++i) {
    if (b.bindings[i] != kInvalidNodeId) out.bindings[i] = b.bindings[i];
  }
  return out;
}

}  // namespace

Result<JoinMatcher::SubtreeRelation> JoinMatcher::EvaluateSubtree(
    const TreePattern& pattern, PatternNodeId node) {
  const PatternNode& pnode = pattern.node(node);

  // Seed relation: one tuple per candidate binding of this node.
  SubtreeRelation relation;
  relation.anchor = node;
  std::vector<NodeId> candidates;
  if (pnode.tag == "*") {
    candidates.resize(db_->node_count());
    for (NodeId id = 0; id < db_->node_count(); ++id) candidates[id] = id;
  } else {
    candidates = db_->NodesWithTag(pnode.tag);
  }
  relation.tuples.reserve(candidates.size());
  for (NodeId id : candidates) {
    if (pnode.has_value_filter) {
      X3_ASSIGN_OR_RETURN(bool ok, NodeSatisfies(*db_, pnode, id));
      if (!ok) continue;
    }
    WitnessTree w = EmptyWitness(pattern.capacity());
    w.bindings[static_cast<size_t>(node)] = id;
    relation.tuples.push_back(std::move(w));
  }

  for (PatternNodeId child : pnode.children) {
    if (relation.tuples.empty() && !pattern.node(child).optional) {
      // Still evaluate nothing: an empty required join stays empty.
      relation.tuples.clear();
      continue;
    }
    X3_ASSIGN_OR_RETURN(SubtreeRelation child_rel,
                        EvaluateSubtree(pattern, child));

    // Distinct sorted anchors on both sides feed the structural join.
    std::vector<NodeId> parent_anchors;
    parent_anchors.reserve(relation.tuples.size());
    for (const WitnessTree& t : relation.tuples) {
      parent_anchors.push_back(t.bindings[static_cast<size_t>(node)]);
    }
    std::sort(parent_anchors.begin(), parent_anchors.end());
    parent_anchors.erase(
        std::unique(parent_anchors.begin(), parent_anchors.end()),
        parent_anchors.end());

    std::vector<NodeId> child_anchors;
    child_anchors.reserve(child_rel.tuples.size());
    for (const WitnessTree& t : child_rel.tuples) {
      child_anchors.push_back(t.bindings[static_cast<size_t>(child)]);
    }
    std::sort(child_anchors.begin(), child_anchors.end());
    child_anchors.erase(
        std::unique(child_anchors.begin(), child_anchors.end()),
        child_anchors.end());

    ++stats_.structural_joins;
    X3_ASSIGN_OR_RETURN(
        std::vector<JoinPair> pairs,
        StructuralJoin(*db_, parent_anchors, child_anchors,
                       pattern.node(child).edge));
    stats_.join_pairs += pairs.size();

    // Index: parent binding -> child bindings; child binding -> tuples.
    std::unordered_map<NodeId, std::vector<NodeId>> children_of;
    for (const JoinPair& p : pairs) {
      children_of[p.ancestor].push_back(p.descendant);
    }
    std::unordered_map<NodeId, std::vector<const WitnessTree*>> tuples_of;
    for (const WitnessTree& t : child_rel.tuples) {
      tuples_of[t.bindings[static_cast<size_t>(child)]].push_back(&t);
    }

    bool optional = pattern.node(child).optional;
    std::vector<WitnessTree> joined;
    for (const WitnessTree& t : relation.tuples) {
      NodeId anchor = t.bindings[static_cast<size_t>(node)];
      auto it = children_of.find(anchor);
      bool matched = false;
      if (it != children_of.end()) {
        for (NodeId child_binding : it->second) {
          auto ct = tuples_of.find(child_binding);
          if (ct == tuples_of.end()) continue;
          for (const WitnessTree* child_tuple : ct->second) {
            joined.push_back(MergeWitness(t, *child_tuple));
            matched = true;
          }
        }
      }
      if (!matched && optional) {
        joined.push_back(t);  // outer join: child subtree stays null
      }
    }
    relation.tuples = std::move(joined);
    stats_.intermediate_tuples += relation.tuples.size();
  }
  return relation;
}

Result<std::vector<WitnessTree>> JoinMatcher::FindMatches(
    const TreePattern& pattern) {
  if (pattern.root() == kNoPatternNode) {
    return Status::InvalidArgument("pattern has no root");
  }
  X3_ASSIGN_OR_RETURN(SubtreeRelation relation,
                      EvaluateSubtree(pattern, pattern.root()));
  std::stable_sort(relation.tuples.begin(), relation.tuples.end(),
                   [&](const WitnessTree& a, const WitnessTree& b) {
                     return a.bindings[static_cast<size_t>(pattern.root())] <
                            b.bindings[static_cast<size_t>(pattern.root())];
                   });
  return std::move(relation.tuples);
}

}  // namespace x3
