#ifndef X3_PATTERN_TREE_PATTERN_H_
#define X3_PATTERN_TREE_PATTERN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "xdb/structural_join.h"

namespace x3 {

/// Index of a node within a TreePattern.
using PatternNodeId = int;
inline constexpr PatternNodeId kNoPatternNode = -1;

/// One node of a tree pattern query.
struct PatternNode {
  /// Element tag or "@attr" for attribute nodes. "*" matches any tag.
  std::string tag;
  /// Relationship to the parent (ignored for the root).
  StructuralAxis edge = StructuralAxis::kChild;
  /// Outer-join node: a witness tree exists even if this node (and its
  /// pattern subtree) has no match; the binding is then kInvalidNodeId.
  bool optional = false;
  /// Value predicate ("[.=\"2003\"]"): when set, only nodes whose value
  /// (element direct text / attribute value) equals this match.
  bool has_value_filter = false;
  std::string value_filter;
  PatternNodeId parent = kNoPatternNode;
  std::vector<PatternNodeId> children;
};

/// A tree (twig) pattern query: a rooted tree of tag-labelled nodes
/// connected by child ("/") or descendant ("//") edges, evaluated
/// against the database to produce witness trees.
///
/// Patterns are small value types; relaxation operators (LND, SP,
/// PC-AD in relax/) produce transformed copies.
class TreePattern {
 public:
  TreePattern() = default;

  /// Creates the root node. Must be called exactly once, first.
  PatternNodeId SetRoot(std::string tag);

  /// Adds a node under `parent`. Returns its id.
  PatternNodeId AddNode(PatternNodeId parent, std::string tag,
                        StructuralAxis edge, bool optional = false);

  /// Deletes a leaf node (it must have no children and not be the
  /// root). Ids of other nodes are preserved; the deleted id becomes
  /// invalid (tombstoned).
  Status DeleteLeaf(PatternNodeId id);

  /// Re-parents the subtree at `id` under its grandparent with a
  /// descendant edge (the SP relaxation primitive).
  Status PromoteToGrandparent(PatternNodeId id);

  /// Changes `id`'s incoming edge to ancestor-descendant.
  Status GeneralizeEdge(PatternNodeId id);

  /// Attaches a value-equality predicate to `id`.
  Status SetValueFilter(PatternNodeId id, std::string value);

  bool IsLive(PatternNodeId id) const {
    return id >= 0 && static_cast<size_t>(id) < nodes_.size() &&
           !tombstone_[static_cast<size_t>(id)];
  }
  bool IsLeaf(PatternNodeId id) const {
    return IsLive(id) && nodes_[static_cast<size_t>(id)].children.empty();
  }

  const PatternNode& node(PatternNodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  PatternNodeId root() const { return root_; }

  /// Number of live nodes.
  size_t size() const { return live_count_; }
  /// Upper bound on node ids (including tombstones).
  size_t capacity() const { return nodes_.size(); }

  /// Live node ids in preorder.
  std::vector<PatternNodeId> LiveNodes() const;

  /// A canonical serialization: structurally identical patterns (up to
  /// sibling order) produce identical strings. Used to deduplicate
  /// relaxation states. `mark`, when live, is annotated in the output so
  /// states differing only in which node is the grouping node stay
  /// distinct.
  std::string CanonicalForm(PatternNodeId mark = kNoPatternNode) const;

  /// XPath-flavoured rendering for diagnostics, e.g.
  /// "publication[./author/name][.//publisher/@id]".
  std::string ToString() const;

 private:
  std::string CanonicalSubtree(PatternNodeId id, PatternNodeId mark) const;
  void RenderNode(PatternNodeId id, std::string* out) const;

  std::vector<PatternNode> nodes_;
  std::vector<bool> tombstone_;
  PatternNodeId root_ = kNoPatternNode;
  size_t live_count_ = 0;
};

}  // namespace x3

#endif  // X3_PATTERN_TREE_PATTERN_H_
