#include "pattern/pattern_parser.h"

#include "util/string_util.h"

namespace x3 {
namespace {

/// Maximum nesting of structural predicates ("[./a[./b[...]]]"). The
/// parser recurses once per level; bounding it turns hostile deeply
/// nested inputs into a ParseError instead of a stack overflow.
constexpr size_t kMaxPredicateDepth = 64;

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
         c == ':';
}

/// Recursive-descent parser for the XPath subset.
class PathParser {
 public:
  explicit PathParser(std::string_view text) : text_(text) {}

  /// Parses the whole text as a path under `parent` (kNoPatternNode for
  /// a fresh absolute pattern whose first step becomes the root).
  Result<std::vector<PatternNodeId>> Parse(TreePattern* pattern,
                                           PatternNodeId parent) {
    X3_ASSIGN_OR_RETURN(std::vector<PatternNodeId> spine,
                        ParseSteps(pattern, parent));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters in pattern");
    }
    return spine;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::ParseError(StringPrintf(
        "pattern parse error at offset %zu in \"%.*s\": %s", pos_,
        static_cast<int>(text_.size()), text_.data(), msg.c_str()));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  /// Parses '/'/'//' + step sequences; returns the spine node ids.
  Result<std::vector<PatternNodeId>> ParseSteps(TreePattern* pattern,
                                                PatternNodeId parent) {
    std::vector<PatternNodeId> spine;
    bool first = true;
    for (;;) {
      SkipSpace();
      StructuralAxis axis = StructuralAxis::kChild;
      if (!AtEnd() && Peek() == '/') {
        ++pos_;
        if (!AtEnd() && Peek() == '/') {
          ++pos_;
          axis = StructuralAxis::kDescendant;
        }
      } else if (first) {
        // Relative first step without a leading slash: child axis.
        axis = StructuralAxis::kChild;
      } else {
        break;  // no more steps
      }
      SkipSpace();
      X3_ASSIGN_OR_RETURN(std::string name, ParseName());
      bool optional = false;
      if (!AtEnd() && Peek() == '?') {
        ++pos_;
        optional = true;
      }
      PatternNodeId node;
      if (parent == kNoPatternNode) {
        if (pattern->root() != kNoPatternNode) {
          return Error("pattern already has a root");
        }
        node = pattern->SetRoot(std::move(name));
        (void)axis;  // the root has no incoming edge
        if (optional) return Error("the root step cannot be optional");
      } else {
        node = pattern->AddNode(parent, std::move(name), axis, optional);
      }
      spine.push_back(node);
      // Predicates attach as extra branches under this step (or as a
      // value filter on it).
      for (;;) {
        SkipSpace();
        if (AtEnd() || Peek() != '[') break;
        ++pos_;
        SkipSpace();
        if (AtEnd() || Peek() != '.') {
          return Error("predicate must start with '.'");
        }
        ++pos_;
        X3_ASSIGN_OR_RETURN(bool was_value,
                            MaybeParseValuePredicate(pattern, node));
        if (!was_value) {
          X3_ASSIGN_OR_RETURN(std::vector<PatternNodeId> branch,
                              ParsePredicateSteps(pattern, node));
          (void)branch;
        }
        SkipSpace();
        if (AtEnd() || Peek() != ']') return Error("expected ']'");
        ++pos_;
      }
      parent = node;
      first = false;
      SkipSpace();
      if (AtEnd() || Peek() != '/') break;
    }
    if (spine.empty()) return Error("empty pattern");
    return spine;
  }

  /// Steps inside a predicate: must begin with '/' or '//'.
  Result<std::vector<PatternNodeId>> ParsePredicateSteps(
      TreePattern* pattern, PatternNodeId parent) {
    if (depth_ >= kMaxPredicateDepth) {
      return Error("predicate nesting exceeds maximum depth");
    }
    ++depth_;
    Result<std::vector<PatternNodeId>> steps =
        ParsePredicateStepsInner(pattern, parent);
    --depth_;
    return steps;
  }

  Result<std::vector<PatternNodeId>> ParsePredicateStepsInner(
      TreePattern* pattern, PatternNodeId parent) {
    if (AtEnd() || Peek() != '/') {
      return Error("expected '/' after '.' in predicate");
    }
    std::vector<PatternNodeId> spine;
    for (;;) {
      SkipSpace();
      if (AtEnd() || Peek() != '/') break;
      ++pos_;
      StructuralAxis axis = StructuralAxis::kChild;
      if (!AtEnd() && Peek() == '/') {
        ++pos_;
        axis = StructuralAxis::kDescendant;
      }
      SkipSpace();
      X3_ASSIGN_OR_RETURN(std::string name, ParseName());
      bool optional = false;
      if (!AtEnd() && Peek() == '?') {
        ++pos_;
        optional = true;
      }
      PatternNodeId node =
          pattern->AddNode(parent, std::move(name), axis, optional);
      spine.push_back(node);
      for (;;) {
        SkipSpace();
        if (AtEnd() || Peek() != '[') break;
        ++pos_;
        SkipSpace();
        if (AtEnd() || Peek() != '.') {
          return Error("predicate must start with '.'");
        }
        ++pos_;
        X3_ASSIGN_OR_RETURN(bool was_value,
                            MaybeParseValuePredicate(pattern, node));
        if (!was_value) {
          X3_ASSIGN_OR_RETURN(std::vector<PatternNodeId> nested,
                              ParsePredicateSteps(pattern, node));
          (void)nested;
        }
        SkipSpace();
        if (AtEnd() || Peek() != ']') return Error("expected ']'");
        ++pos_;
      }
      parent = node;
    }
    if (spine.empty()) return Error("empty predicate path");
    return spine;
  }

  /// After "[." has been consumed: parses '= "value"' if present and
  /// sets the filter on `node`. Returns false when the predicate is a
  /// structural path instead (nothing consumed).
  Result<bool> MaybeParseValuePredicate(TreePattern* pattern,
                                        PatternNodeId node) {
    SkipSpace();
    if (AtEnd() || Peek() != '=') return false;
    ++pos_;
    SkipSpace();
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted value after '.='");
    }
    char quote = Peek();
    ++pos_;
    size_t start = pos_;
    while (!AtEnd() && Peek() != quote) ++pos_;
    if (AtEnd()) return Error("unterminated value predicate");
    std::string value(text_.substr(start, pos_ - start));
    ++pos_;
    X3_RETURN_IF_ERROR(pattern->SetValueFilter(node, std::move(value)));
    return true;
  }

  Result<std::string> ParseName() {
    if (AtEnd()) return Error("expected name");
    std::string name;
    if (Peek() == '@') {
      name += '@';
      ++pos_;
    } else if (Peek() == '*') {
      ++pos_;
      return std::string("*");
    }
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected name");
    name.append(text_.substr(start, pos_ - start));
    return name;
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

}  // namespace

Result<ParsedPattern> ParsePattern(std::string_view text) {
  ParsedPattern out;
  PathParser parser(text);
  X3_ASSIGN_OR_RETURN(out.spine, parser.Parse(&out.pattern, kNoPatternNode));
  return out;
}

Result<std::vector<PatternNodeId>> ParseRelativePath(std::string_view text,
                                                     TreePattern* pattern,
                                                     PatternNodeId parent) {
  if (parent == kNoPatternNode || !pattern->IsLive(parent)) {
    return Status::InvalidArgument("relative path needs a live parent node");
  }
  PathParser parser(text);
  return parser.Parse(pattern, parent);
}

}  // namespace x3
