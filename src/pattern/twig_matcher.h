#ifndef X3_PATTERN_TWIG_MATCHER_H_
#define X3_PATTERN_TWIG_MATCHER_H_

#include <cstdint>
#include <vector>

#include "pattern/tree_pattern.h"
#include "util/result.h"
#include "xdb/database.h"

namespace x3 {

/// One match of a tree pattern: bindings indexed by PatternNodeId
/// (pattern.capacity() entries; tombstoned ids and unmatched optional
/// nodes hold kInvalidNodeId).
struct WitnessTree {
  std::vector<NodeId> bindings;

  bool operator==(const WitnessTree& other) const {
    return bindings == other.bindings;
  }
};

/// Matcher statistics (for cost reporting and tests).
struct MatchStats {
  uint64_t candidates_examined = 0;
  uint64_t witnesses_emitted = 0;
};

/// True iff data node `id` satisfies `pnode`'s tag and value filter
/// (the shared admission test of all three matchers).
Result<bool> NodeSatisfies(const Database& db, const PatternNode& pnode,
                           NodeId id);

/// Evaluates tree patterns against a Database, enumerating witness
/// trees (TAX-style grouping input). Candidate nodes come from the
/// per-tag indexes with interval-range narrowing; structural predicates
/// are verified via the (start,end,level,parent) labels.
///
/// Optional pattern nodes have outer-join semantics: when a required
/// embedding of the optional subtree does not exist under the chosen
/// ancestors, a single witness with kInvalidNodeId bindings for that
/// subtree is produced instead of dropping the match.
class TwigMatcher {
 public:
  /// `db` must outlive the matcher.
  explicit TwigMatcher(const Database* db) : db_(db) {}

  /// All witness trees of `pattern` in the database, in document order
  /// of the root binding. `limit` caps the number of witnesses.
  Result<std::vector<WitnessTree>> FindMatches(const TreePattern& pattern,
                                               size_t limit = SIZE_MAX);

  /// Witness trees with the pattern root bound to `root_binding` (its
  /// tag must match).
  Result<std::vector<WitnessTree>> FindMatchesUnder(const TreePattern& pattern,
                                                    NodeId root_binding,
                                                    size_t limit = SIZE_MAX);

  /// Existential check: does an embedding exist with the given fixed
  /// bindings (pairs of pattern node -> data node)? Non-fixed nodes are
  /// existential; optional nodes never fail the check.
  Result<bool> Embeds(const TreePattern& pattern,
                      const std::vector<std::pair<PatternNodeId, NodeId>>&
                          fixed_bindings);

  const MatchStats& stats() const { return stats_; }

 private:
  /// Enumerates bindings for `pattern_id`'s subtree given the parent's
  /// data binding. Appends per-subtree partial witnesses to `out`
  /// (each sized pattern.capacity()).
  Status MatchSubtree(const TreePattern& pattern, PatternNodeId pattern_id,
                      NodeId binding, std::vector<WitnessTree>* out,
                      size_t limit);

  /// Candidate data nodes for pattern node `pattern_id` under parent
  /// binding `parent_binding`.
  Result<std::vector<NodeId>> Candidates(const TreePattern& pattern,
                                         PatternNodeId pattern_id,
                                         NodeId parent_binding);

  /// Existential subtree check with fixed bindings.
  Result<bool> EmbedsSubtree(const TreePattern& pattern,
                             PatternNodeId pattern_id, NodeId binding,
                             const std::vector<NodeId>& fixed);

  /// Matches the whole pattern with the root bound to `root`, appending
  /// witnesses to `out` and updating stats.
  Status FindUnderInto(const TreePattern& pattern, NodeId root,
                       std::vector<WitnessTree>* out, size_t limit);

  const Database* db_;
  MatchStats stats_;
};

}  // namespace x3

#endif  // X3_PATTERN_TWIG_MATCHER_H_
