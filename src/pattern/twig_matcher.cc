#include "pattern/twig_matcher.h"

#include <algorithm>

#include "util/logging.h"

namespace x3 {

namespace {

/// Merges two partial witness sets by cross product. Bindings must be
/// disjoint (each pattern node bound in exactly one side).
std::vector<WitnessTree> CrossProduct(const std::vector<WitnessTree>& a,
                                      const std::vector<WitnessTree>& b,
                                      size_t limit) {
  std::vector<WitnessTree> out;
  out.reserve(std::min(a.size() * b.size(), limit));
  for (const WitnessTree& wa : a) {
    for (const WitnessTree& wb : b) {
      WitnessTree w = wa;
      for (size_t i = 0; i < w.bindings.size(); ++i) {
        if (wb.bindings[i] != kInvalidNodeId) {
          w.bindings[i] = wb.bindings[i];
        }
      }
      out.push_back(std::move(w));
      if (out.size() >= limit) return out;
    }
  }
  return out;
}

WitnessTree EmptyWitness(size_t capacity) {
  WitnessTree w;
  w.bindings.assign(capacity, kInvalidNodeId);
  return w;
}

}  // namespace

Result<bool> NodeSatisfies(const Database& db, const PatternNode& pnode,
                           NodeId id) {
  NodeRecord rec;
  X3_RETURN_IF_ERROR(db.GetNode(id, &rec));
  if (pnode.tag != "*" && db.tags().Lookup(pnode.tag) != rec.tag_id) {
    return false;
  }
  if (pnode.has_value_filter) {
    if (rec.value_id == kInvalidValueId) return false;
    if (db.values().Lookup(pnode.value_filter) != rec.value_id) {
      return false;
    }
  }
  return true;
}

Result<std::vector<NodeId>> TwigMatcher::Candidates(const TreePattern& pattern,
                                                    PatternNodeId pattern_id,
                                                    NodeId parent_binding) {
  const PatternNode& pnode = pattern.node(pattern_id);
  std::vector<NodeId> candidates;
  if (pnode.tag == "*") {
    // Wildcard: all nodes in the subtree interval (ids are dense
    // preorder positions).
    NodeRecord parent_rec;
    X3_RETURN_IF_ERROR(db_->GetNode(parent_binding, &parent_rec));
    candidates.reserve(parent_rec.end - parent_binding);
    for (NodeId id = parent_binding + 1; id <= parent_rec.end; ++id) {
      candidates.push_back(id);
    }
  } else {
    TagId tag_id = db_->tags().Lookup(pnode.tag);
    if (tag_id == kInvalidTagId) return std::vector<NodeId>{};
    X3_ASSIGN_OR_RETURN(candidates,
                        db_->DescendantsWithTag(parent_binding, tag_id));
  }
  if (pnode.edge == StructuralAxis::kChild) {
    std::vector<NodeId> children;
    children.reserve(candidates.size());
    for (NodeId id : candidates) {
      NodeRecord rec;
      X3_RETURN_IF_ERROR(db_->GetNode(id, &rec));
      if (rec.parent == parent_binding) children.push_back(id);
    }
    candidates = std::move(children);
  }
  if (pnode.has_value_filter) {
    std::vector<NodeId> filtered;
    filtered.reserve(candidates.size());
    for (NodeId id : candidates) {
      X3_ASSIGN_OR_RETURN(bool ok, NodeSatisfies(*db_, pnode, id));
      if (ok) filtered.push_back(id);
    }
    candidates = std::move(filtered);
  }
  stats_.candidates_examined += candidates.size();
  return candidates;
}

Status TwigMatcher::MatchSubtree(const TreePattern& pattern,
                                 PatternNodeId pattern_id, NodeId binding,
                                 std::vector<WitnessTree>* out, size_t limit) {
  // Start with this node's own binding.
  std::vector<WitnessTree> acc;
  WitnessTree self = EmptyWitness(pattern.capacity());
  self.bindings[static_cast<size_t>(pattern_id)] = binding;
  acc.push_back(std::move(self));

  for (PatternNodeId child : pattern.node(pattern_id).children) {
    X3_ASSIGN_OR_RETURN(std::vector<NodeId> candidates,
                        Candidates(pattern, child, binding));
    std::vector<WitnessTree> child_matches;
    for (NodeId cand : candidates) {
      X3_RETURN_IF_ERROR(
          MatchSubtree(pattern, child, cand, &child_matches, limit));
      if (child_matches.size() >= limit) break;
    }
    if (child_matches.empty()) {
      if (pattern.node(child).optional) {
        // Outer join: one all-null witness for the child subtree.
        child_matches.push_back(EmptyWitness(pattern.capacity()));
      } else {
        // Required child failed: this candidate binding produces no
        // witnesses. Earlier candidates' results in *out are kept.
        return Status::OK();
      }
    }
    acc = CrossProduct(acc, child_matches, limit);
    if (acc.empty()) return Status::OK();
  }
  for (WitnessTree& w : acc) {
    out->push_back(std::move(w));
    if (out->size() >= limit) break;
  }
  return Status::OK();
}

Result<std::vector<WitnessTree>> TwigMatcher::FindMatches(
    const TreePattern& pattern, size_t limit) {
  if (pattern.root() == kNoPatternNode) {
    return Status::InvalidArgument("pattern has no root");
  }
  std::vector<WitnessTree> out;
  const PatternNode& root = pattern.node(pattern.root());
  if (root.tag == "*") {
    for (NodeId id = 0; id < db_->node_count() && out.size() < limit; ++id) {
      X3_ASSIGN_OR_RETURN(bool ok, NodeSatisfies(*db_, root, id));
      if (!ok) continue;
      X3_RETURN_IF_ERROR(FindUnderInto(pattern, id, &out, limit));
    }
    return out;
  }
  const std::vector<NodeId>& roots = db_->NodesWithTag(root.tag);
  for (NodeId id : roots) {
    if (out.size() >= limit) break;
    if (root.has_value_filter) {
      X3_ASSIGN_OR_RETURN(bool ok, NodeSatisfies(*db_, root, id));
      if (!ok) continue;
    }
    X3_RETURN_IF_ERROR(FindUnderInto(pattern, id, &out, limit));
  }
  return out;
}

Result<std::vector<WitnessTree>> TwigMatcher::FindMatchesUnder(
    const TreePattern& pattern, NodeId root_binding, size_t limit) {
  if (pattern.root() == kNoPatternNode) {
    return Status::InvalidArgument("pattern has no root");
  }
  X3_ASSIGN_OR_RETURN(
      bool ok, NodeSatisfies(*db_, pattern.node(pattern.root()),
                             root_binding));
  if (!ok) return std::vector<WitnessTree>{};
  std::vector<WitnessTree> out;
  X3_RETURN_IF_ERROR(FindUnderInto(pattern, root_binding, &out, limit));
  return out;
}

Result<bool> TwigMatcher::Embeds(
    const TreePattern& pattern,
    const std::vector<std::pair<PatternNodeId, NodeId>>& fixed_bindings) {
  if (pattern.root() == kNoPatternNode) {
    return Status::InvalidArgument("pattern has no root");
  }
  std::vector<NodeId> fixed(pattern.capacity(), kInvalidNodeId);
  for (const auto& [pid, nid] : fixed_bindings) {
    if (!pattern.IsLive(pid)) {
      return Status::InvalidArgument("fixed binding on dead pattern node");
    }
    fixed[static_cast<size_t>(pid)] = nid;
  }
  NodeId root_fixed = fixed[static_cast<size_t>(pattern.root())];
  if (root_fixed != kInvalidNodeId) {
    X3_ASSIGN_OR_RETURN(
        bool ok,
        NodeSatisfies(*db_, pattern.node(pattern.root()), root_fixed));
    if (!ok) return false;
    return EmbedsSubtree(pattern, pattern.root(), root_fixed, fixed);
  }
  const PatternNode& root = pattern.node(pattern.root());
  const std::vector<NodeId>& roots = db_->NodesWithTag(root.tag);
  for (NodeId id : roots) {
    if (root.has_value_filter) {
      X3_ASSIGN_OR_RETURN(bool sat, NodeSatisfies(*db_, root, id));
      if (!sat) continue;
    }
    X3_ASSIGN_OR_RETURN(bool ok,
                        EmbedsSubtree(pattern, pattern.root(), id, fixed));
    if (ok) return true;
  }
  return false;
}

Result<bool> TwigMatcher::EmbedsSubtree(const TreePattern& pattern,
                                        PatternNodeId pattern_id,
                                        NodeId binding,
                                        const std::vector<NodeId>& fixed) {
  for (PatternNodeId child : pattern.node(pattern_id).children) {
    NodeId child_fixed = fixed[static_cast<size_t>(child)];
    bool matched = false;
    if (child_fixed != kInvalidNodeId) {
      // The fixed node must satisfy the structural edge from `binding`.
      NodeRecord crec;
      X3_RETURN_IF_ERROR(db_->GetNode(child_fixed, &crec));
      const PatternNode& pchild = pattern.node(child);
      bool edge_ok = false;
      if (pchild.edge == StructuralAxis::kChild) {
        edge_ok = crec.parent == binding;
      } else {
        X3_ASSIGN_OR_RETURN(edge_ok, db_->IsAncestor(binding, child_fixed));
      }
      X3_ASSIGN_OR_RETURN(bool tag_ok,
                          NodeSatisfies(*db_, pchild, child_fixed));
      if (edge_ok && tag_ok) {
        X3_ASSIGN_OR_RETURN(matched,
                            EmbedsSubtree(pattern, child, child_fixed, fixed));
      }
    } else {
      X3_ASSIGN_OR_RETURN(std::vector<NodeId> candidates,
                          Candidates(pattern, child, binding));
      for (NodeId cand : candidates) {
        X3_ASSIGN_OR_RETURN(bool ok,
                            EmbedsSubtree(pattern, child, cand, fixed));
        if (ok) {
          matched = true;
          break;
        }
      }
    }
    if (!matched && !pattern.node(child).optional) return false;
    if (!matched && child_fixed != kInvalidNodeId) {
      // A fixed binding that cannot be embedded fails even if optional:
      // the caller asked specifically about this binding.
      return false;
    }
  }
  return true;
}

Status TwigMatcher::FindUnderInto(const TreePattern& pattern, NodeId root,
                                  std::vector<WitnessTree>* out,
                                  size_t limit) {
  size_t before = out->size();
  X3_RETURN_IF_ERROR(MatchSubtree(pattern, pattern.root(), root, out, limit));
  stats_.witnesses_emitted += out->size() - before;
  return Status::OK();
}

}  // namespace x3
