#ifndef X3_PATTERN_PATTERN_PARSER_H_
#define X3_PATTERN_PATTERN_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "pattern/tree_pattern.h"
#include "util/result.h"

namespace x3 {

/// A parsed path pattern: the pattern tree plus the node ids of the
/// "spine" (the main path, in order). The last spine node is the
/// pattern's output/grouping node.
struct ParsedPattern {
  TreePattern pattern;
  std::vector<PatternNodeId> spine;

  PatternNodeId output_node() const {
    return spine.empty() ? kNoPatternNode : spine.back();
  }
};

/// Parses an XPath-subset pattern into a TreePattern.
///
/// Grammar (no whitespace sensitivity):
///   pattern   := ('/' | '//')? step (('/' | '//') step)*
///   step      := name '?'? predicate*
///   name      := NCName | '@' NCName | '*'
///   predicate := '[' '.' ('/' | '//') step (('/' | '//') step)* ']'
///
/// Examples:
///   //publication/author/name
///   publication[./author/name][.//publisher/@id]/year
///   //book/title?          (optional step: outer join)
///
/// A leading '//' makes the first step a descendant of an implicit
/// document context; since the database matches pattern roots anywhere,
/// '/a' and '//a' as the first step are equivalent here.
Result<ParsedPattern> ParsePattern(std::string_view text);

/// Parses a pattern that is relative to an existing pattern node: the
/// steps are appended under `parent` of `pattern`, returning the spine.
Result<std::vector<PatternNodeId>> ParseRelativePath(std::string_view text,
                                                     TreePattern* pattern,
                                                     PatternNodeId parent);

}  // namespace x3

#endif  // X3_PATTERN_PATTERN_PARSER_H_
