#ifndef X3_SCHEMA_DTD_PARSER_H_
#define X3_SCHEMA_DTD_PARSER_H_

#include <string>
#include <string_view>

#include "schema/schema_graph.h"
#include "util/env.h"
#include "util/result.h"

namespace x3 {

/// Parses a DTD fragment into a SchemaGraph.
///
/// Supported declarations:
///   <!ELEMENT name (child1, child2?, (a | b)*, #PCDATA ...)>
///   <!ELEMENT name EMPTY>  <!ELEMENT name ANY>
///   <!ATTLIST name attr CDATA #REQUIRED>   (types are ignored;
///       #REQUIRED -> mandatory, everything else -> optional)
/// Comments (<!-- -->) and parameter entities are skipped; anything
/// else unknown inside <!...> is ignored with a warning rather than
/// rejected, since real-world DTDs (e.g. DBLP's) carry notations we do
/// not need for summarizability analysis.
///
/// Content models are flattened to per-child cardinalities: an item's
/// own cardinality composes with its enclosing groups', and members of
/// a choice group lose the at-least-one guarantee. This abstraction is
/// exactly the information §3.7's property inference consumes.
Result<SchemaGraph> ParseDtd(std::string_view input);

/// Reads and parses a DTD file through `env` (nullptr = Env::Default()).
Result<SchemaGraph> ParseDtdFile(const std::string& path, Env* env = nullptr);

}  // namespace x3

#endif  // X3_SCHEMA_DTD_PARSER_H_
