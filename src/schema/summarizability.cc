#include "schema/summarizability.h"

#include <algorithm>

#include "util/string_util.h"

namespace x3 {

LatticeProperties LatticeProperties::AssumeNothing(
    const CubeLattice& lattice) {
  std::vector<std::vector<SummarizabilityFlags>> flags(lattice.num_axes());
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    flags[a].assign(lattice.axis(a).num_states(), {false, false});
  }
  return LatticeProperties(std::move(flags));
}

LatticeProperties LatticeProperties::AssumeAll(const CubeLattice& lattice) {
  std::vector<std::vector<SummarizabilityFlags>> flags(lattice.num_axes());
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    flags[a].assign(lattice.axis(a).num_states(), {true, true});
  }
  return LatticeProperties(std::move(flags));
}

SummarizabilityFlags LatticeProperties::ForCuboid(const CubeLattice& lattice,
                                                  CuboidId cuboid) const {
  SummarizabilityFlags out{true, true};
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    AxisStateId s = lattice.StateOf(cuboid, a);
    if (!lattice.axis(a).state(s).grouping_present()) continue;
    const SummarizabilityFlags& f = flags_[a][s];
    out.disjoint = out.disjoint && f.disjoint;
    out.covered = out.covered && f.covered;
  }
  return out;
}

bool LatticeProperties::AllHold(const CubeLattice& lattice) const {
  return DisjointEverywhere(lattice) && CoveredEverywhere(lattice);
}

bool LatticeProperties::DisjointEverywhere(const CubeLattice& lattice) const {
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    for (AxisStateId s = 0; s < lattice.axis(a).num_states(); ++s) {
      if (!lattice.axis(a).state(s).grouping_present()) continue;
      if (!flags_[a][s].disjoint) return false;
    }
  }
  return true;
}

bool LatticeProperties::CoveredEverywhere(const CubeLattice& lattice) const {
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    for (AxisStateId s = 0; s < lattice.axis(a).num_states(); ++s) {
      if (!lattice.axis(a).state(s).grouping_present()) continue;
      if (!flags_[a][s].covered) return false;
    }
  }
  return true;
}

std::string LatticeProperties::ToString(const CubeLattice& lattice) const {
  std::string out;
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    for (AxisStateId s = 0; s < lattice.axis(a).num_states(); ++s) {
      const AxisState& state = lattice.axis(a).state(s);
      out += StringPrintf(
          "axis %zu state %u (%s): disjoint=%d covered=%d\n", a, s,
          state.grouping_present() ? state.pattern.ToString().c_str()
                                   : "ABSENT",
          flags_[a][s].disjoint ? 1 : 0, flags_[a][s].covered ? 1 : 0);
    }
  }
  return out;
}

namespace {

/// Aggregate facts about the set of schema paths between two tags under
/// one pattern edge.
struct PathSummary {
  int count = 0;               // capped at kPathCountCap
  bool any_repeatable = false; // some path has a '*'/'+' step
  bool any_mandatory = false;  // some path has all-mandatory steps
  bool overflow = false;       // recursion/ANY/cap hit: treat as "many"
};

constexpr int kPathCountCap = 64;

/// Enumerates simple schema paths `from` -> ... -> `to` of length in
/// [1, max_depth], composing step cardinalities.
void EnumeratePaths(const SchemaGraph& schema, const std::string& from,
                    const std::string& to, int max_depth, bool repeatable,
                    bool mandatory, std::vector<std::string>* on_path,
                    PathSummary* summary) {
  if (max_depth <= 0) return;
  const ElementDecl* decl = schema.Find(from);
  if (decl == nullptr) return;
  if (decl->is_any) {
    summary->overflow = true;
    return;
  }
  for (const ChildSpec& child : schema.ChildrenOf(from)) {
    bool step_rep = repeatable || !child.cardinality.max_one;
    bool step_mand = mandatory && child.cardinality.min_one;
    if (child.tag == to) {
      if (summary->count < kPathCountCap) {
        ++summary->count;
      } else {
        summary->overflow = true;
      }
      summary->any_repeatable = summary->any_repeatable || step_rep;
      summary->any_mandatory = summary->any_mandatory || step_mand;
      // A path may also continue through `to` and reach it again; that
      // is covered by the recursion below.
    }
    // Attributes are leaves.
    if (!child.tag.empty() && child.tag[0] == '@') continue;
    if (std::find(on_path->begin(), on_path->end(), child.tag) !=
        on_path->end()) {
      // Recursive schema: a cycle passing through `child.tag` could
      // generate unboundedly many paths.
      summary->overflow = true;
      continue;
    }
    on_path->push_back(child.tag);
    EnumeratePaths(schema, child.tag, to, max_depth - 1, step_rep, step_mand,
                   on_path, summary);
    on_path->pop_back();
  }
}

PathSummary SummarizeEdge(const SchemaGraph& schema, const std::string& from,
                          const std::string& to, StructuralAxis axis,
                          int max_depth) {
  PathSummary summary;
  if (axis == StructuralAxis::kChild) {
    std::optional<Cardinality> card = schema.ChildCardinality(from, to);
    const ElementDecl* decl = schema.Find(from);
    if (decl != nullptr && decl->is_any) {
      summary.overflow = true;
      return summary;
    }
    if (card.has_value()) {
      summary.count = 1;
      summary.any_repeatable = !card->max_one;
      summary.any_mandatory = card->min_one;
    }
    return summary;
  }
  std::vector<std::string> on_path{from};
  EnumeratePaths(schema, from, to, max_depth, /*repeatable=*/false,
                 /*mandatory=*/true, &on_path, &summary);
  return summary;
}

/// Computes the flags for one axis state.
SummarizabilityFlags AnalyzeState(const SchemaGraph& schema,
                                  const AxisState& state,
                                  const std::string& fact_tag,
                                  int max_depth) {
  SummarizabilityFlags flags;
  const TreePattern& pattern = state.pattern;

  // Undeclared tags anywhere on the pattern: fully conservative (the
  // schema may be incomplete; never claim a property we cannot prove).
  for (PatternNodeId id : pattern.LiveNodes()) {
    const std::string& tag = pattern.node(id).tag;
    if (id == pattern.root()) {
      if (!schema.Contains(fact_tag)) return {false, false};
      continue;
    }
    // Attribute tags are declared as @-children of their parent; check
    // via the parent edge below instead of as standalone elements.
    if (!tag.empty() && tag[0] == '@') continue;
    if (tag == "*" || !schema.Contains(tag)) return {false, false};
  }

  // --- Disjointness: instantiation paths from root to grouping node.
  int64_t total_paths = 1;
  bool repeatable = false;
  bool overflow = false;
  PatternNodeId node = state.grouping_node;
  std::vector<PatternNodeId> spine;
  while (node != kNoPatternNode) {
    spine.push_back(node);
    node = pattern.node(node).parent;
  }
  std::reverse(spine.begin(), spine.end());  // root ... grouping
  for (size_t i = 1; i < spine.size(); ++i) {
    const PatternNode& child = pattern.node(spine[i]);
    const std::string& parent_tag =
        spine[i - 1] == pattern.root() ? fact_tag
                                       : pattern.node(spine[i - 1]).tag;
    PathSummary summary = SummarizeEdge(schema, parent_tag, child.tag,
                                        child.edge, max_depth);
    overflow = overflow || summary.overflow;
    repeatable = repeatable || summary.any_repeatable;
    total_paths *= summary.count;
    if (total_paths > kPathCountCap) {
      overflow = true;
      total_paths = kPathCountCap;
    }
  }
  if (overflow || total_paths > 1 || repeatable) {
    flags.disjoint = false;
  } else {
    flags.disjoint = true;  // 0 or 1 non-repeatable instantiation
  }

  // --- Coverage: every pattern node must have a guaranteed embedding
  // step from its parent, and the grouping spine must be instantiable
  // at all (count >= 1 on every edge).
  flags.covered = true;
  for (PatternNodeId id : pattern.LiveNodes()) {
    if (id == pattern.root()) continue;
    const PatternNode& pnode = pattern.node(id);
    if (pnode.optional) continue;  // outer-joined nodes never drop facts
    if (pnode.has_value_filter) {
      // A DTD constrains structure, never values: a value predicate can
      // always drop facts.
      flags.covered = false;
      break;
    }
    const std::string& parent_tag = pnode.parent == pattern.root()
                                        ? fact_tag
                                        : pattern.node(pnode.parent).tag;
    PathSummary summary =
        SummarizeEdge(schema, parent_tag, pnode.tag, pnode.edge, max_depth);
    if (!summary.any_mandatory) {
      flags.covered = false;
      break;
    }
  }
  return flags;
}

}  // namespace

Result<LatticeProperties> InferLatticeProperties(const SchemaGraph& schema,
                                                 const CubeLattice& lattice,
                                                 const std::string& fact_tag,
                                                 int max_path_depth) {
  std::vector<std::vector<SummarizabilityFlags>> flags(lattice.num_axes());
  for (size_t a = 0; a < lattice.num_axes(); ++a) {
    const AxisLattice& axis = lattice.axis(a);
    flags[a].resize(axis.num_states());
    for (AxisStateId s = 0; s < axis.num_states(); ++s) {
      const AxisState& state = axis.state(s);
      if (!state.grouping_present()) {
        // Absent axis: vacuously both (it groups nothing).
        flags[a][s] = {true, true};
        continue;
      }
      flags[a][s] = AnalyzeState(schema, state, fact_tag, max_path_depth);
    }
  }
  return LatticeProperties(std::move(flags));
}

}  // namespace x3
