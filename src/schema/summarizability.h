#ifndef X3_SCHEMA_SUMMARIZABILITY_H_
#define X3_SCHEMA_SUMMARIZABILITY_H_

#include <string>
#include <vector>

#include "relax/cube_lattice.h"
#include "schema/schema_graph.h"
#include "util/result.h"

namespace x3 {

/// The two summarizability properties of §3.2 at one lattice position.
struct SummarizabilityFlags {
  /// Pairwise disjointness: no fact can have two distinct bindings for
  /// the axis at this state.
  bool disjoint = true;
  /// Total coverage: every fact is guaranteed at least one binding for
  /// the axis at this state.
  bool covered = true;
};

/// Per-axis, per-state property map for a cube lattice, inferred from a
/// schema (§3.7) or measured from data. Cuboid-level properties are the
/// conjunction over the cuboid's present axes.
class LatticeProperties {
 public:
  LatticeProperties() = default;
  explicit LatticeProperties(std::vector<std::vector<SummarizabilityFlags>>
                                 per_axis_per_state)
      : flags_(std::move(per_axis_per_state)) {}

  /// Properties assuming nothing (both false): the safe default that
  /// forces algorithms onto their always-correct paths.
  static LatticeProperties AssumeNothing(const CubeLattice& lattice);
  /// Properties asserting both hold everywhere (the relational case).
  static LatticeProperties AssumeAll(const CubeLattice& lattice);

  const SummarizabilityFlags& At(size_t axis, AxisStateId state) const {
    return flags_[axis][state];
  }
  SummarizabilityFlags* Mutable(size_t axis, AxisStateId state) {
    return &flags_[axis][state];
  }

  /// Conjunction over the present axes of `cuboid`. Absent axes do not
  /// constrain (they group nothing).
  SummarizabilityFlags ForCuboid(const CubeLattice& lattice,
                                 CuboidId cuboid) const;

  /// True iff both properties hold at every state of every axis.
  bool AllHold(const CubeLattice& lattice) const;
  bool DisjointEverywhere(const CubeLattice& lattice) const;
  bool CoveredEverywhere(const CubeLattice& lattice) const;

  std::string ToString(const CubeLattice& lattice) const;

 private:
  /// flags_[axis][state].
  std::vector<std::vector<SummarizabilityFlags>> flags_;
};

/// Infers lattice properties from a DTD-derived schema (§3.7):
///  * An axis state is non-disjoint when the schema admits more than
///    one instantiation path from the fact tag to the grouping tag
///    under that state's pattern, or any step on the path is
///    repeatable ('*' or '+', or several content-model slots).
///  * An axis state is covered when the state's whole pattern has a
///    guaranteed embedding: every pattern node is reachable through
///    steps that are all mandatory ('1' or '+').
/// The inference is sound but conservative: it may report a property as
/// failing when the actual data happens to satisfy it, never the other
/// way around (tests check this against brute-force data scans).
///
/// `fact_tag` is the tag the fact variable binds to. Recursive schemas
/// are handled by bounding descendant-path enumeration at
/// `max_path_depth` steps and treating overflow conservatively.
Result<LatticeProperties> InferLatticeProperties(const SchemaGraph& schema,
                                                 const CubeLattice& lattice,
                                                 const std::string& fact_tag,
                                                 int max_path_depth = 12);

}  // namespace x3

#endif  // X3_SCHEMA_SUMMARIZABILITY_H_
