#include "schema/dtd_parser.h"

#include "util/env.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace x3 {
namespace {

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
         c == ':';
}

/// Maximum nesting of content-model groups "(a,(b,(c,...)))". Bounds
/// ParseGroup's recursion so hostile inputs fail with a ParseError
/// instead of a stack overflow.
constexpr size_t kMaxGroupDepth = 64;

class DtdParser {
 public:
  explicit DtdParser(std::string_view input) : input_(input) {}

  Result<SchemaGraph> Parse() {
    SchemaGraph graph;
    while (!AtEnd()) {
      SkipSpace();
      if (AtEnd()) break;
      if (LookingAt("<!--")) {
        SkipUntil("-->");
        continue;
      }
      if (LookingAt("<!ELEMENT")) {
        pos_ += 9;
        X3_RETURN_IF_ERROR(ParseElementDecl(&graph));
        continue;
      }
      if (LookingAt("<!ATTLIST")) {
        pos_ += 9;
        X3_RETURN_IF_ERROR(ParseAttlistDecl(&graph));
        continue;
      }
      if (LookingAt("<!") || LookingAt("<?")) {
        // ENTITY, NOTATION, PIs: skip to the closing '>'.
        SkipUntil(">");
        continue;
      }
      return Error("unexpected content in DTD");
    }
    return graph;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }

  bool LookingAt(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }

  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      ++pos_;
    }
  }

  void SkipUntil(std::string_view close) {
    size_t found = input_.find(close, pos_);
    pos_ = found == std::string_view::npos ? input_.size()
                                           : found + close.size();
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(
        StringPrintf("DTD parse error at offset %zu: %s", pos_, msg.c_str()));
  }

  Result<std::string> ParseName() {
    SkipSpace();
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Error("expected name");
    return std::string(input_.substr(start, pos_ - start));
  }

  Cardinality ParseCardinalitySuffix() {
    if (AtEnd()) return Cardinality::One();
    switch (Peek()) {
      case '?':
        ++pos_;
        return Cardinality::Optional();
      case '+':
        ++pos_;
        return Cardinality::Plus();
      case '*':
        ++pos_;
        return Cardinality::Star();
      default:
        return Cardinality::One();
    }
  }

  /// Parses a content-model group "( ... )card" and appends flattened
  /// child specs to `decl` with the enclosing cardinality `outer`.
  Status ParseGroup(ElementDecl* decl, Cardinality outer) {
    if (depth_ >= kMaxGroupDepth) {
      return Error("content-model nesting exceeds maximum depth");
    }
    ++depth_;
    Status s = ParseGroupInner(decl, outer);
    --depth_;
    return s;
  }

  Status ParseGroupInner(ElementDecl* decl, Cardinality outer) {
    SkipSpace();
    if (AtEnd() || Peek() != '(') return Error("expected '('");
    ++pos_;
    bool is_choice = false;
    // First pass: record members; we need to know whether it is a
    // choice before finalizing their cardinalities, so collect into a
    // temporary decl.
    ElementDecl members;
    for (;;) {
      SkipSpace();
      if (AtEnd()) return Error("unterminated content model");
      if (Peek() == '#') {
        // #PCDATA
        if (!LookingAt("#PCDATA")) return Error("expected #PCDATA");
        pos_ += 7;
        decl->has_pcdata = true;
      } else if (Peek() == '(') {
        X3_RETURN_IF_ERROR(ParseGroup(&members, Cardinality::One()));
      } else {
        X3_ASSIGN_OR_RETURN(std::string name, ParseName());
        Cardinality card = ParseCardinalitySuffix();
        members.children.push_back({std::move(name), card});
      }
      SkipSpace();
      if (AtEnd()) return Error("unterminated content model");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '|') {
        is_choice = true;
        ++pos_;
        continue;
      }
      if (Peek() == ')') {
        ++pos_;
        break;
      }
      return Error("expected ',', '|' or ')' in content model");
    }
    Cardinality group_card = ParseCardinalitySuffix().Compose(outer);
    for (auto& child : members.children) {
      Cardinality c = child.cardinality;
      if (is_choice) c.min_one = false;  // a choice member may be absent
      decl->children.push_back({std::move(child.tag), group_card.Compose(c)});
    }
    decl->has_pcdata = decl->has_pcdata || members.has_pcdata;
    return Status::OK();
  }

  Status ParseElementDecl(SchemaGraph* graph) {
    X3_ASSIGN_OR_RETURN(std::string name, ParseName());
    ElementDecl decl;
    decl.tag = std::move(name);
    SkipSpace();
    if (LookingAt("EMPTY")) {
      pos_ += 5;
    } else if (LookingAt("ANY")) {
      pos_ += 3;
      decl.is_any = true;
    } else if (!AtEnd() && Peek() == '(') {
      X3_RETURN_IF_ERROR(ParseGroup(&decl, Cardinality::One()));
    } else {
      return Error("expected content model for <!ELEMENT " + decl.tag + ">");
    }
    SkipSpace();
    if (AtEnd() || Peek() != '>') return Error("expected '>'");
    ++pos_;
    graph->AddElement(std::move(decl));
    return Status::OK();
  }

  Status ParseAttlistDecl(SchemaGraph* graph) {
    X3_ASSIGN_OR_RETURN(std::string element, ParseName());
    ElementDecl decl;
    decl.tag = element;
    for (;;) {
      SkipSpace();
      if (AtEnd()) return Error("unterminated ATTLIST");
      if (Peek() == '>') {
        ++pos_;
        break;
      }
      X3_ASSIGN_OR_RETURN(std::string attr, ParseName());
      // Type: a name (CDATA, ID, IDREF, NMTOKEN...) or an enumeration.
      SkipSpace();
      if (!AtEnd() && Peek() == '(') {
        SkipUntil(")");
      } else {
        X3_RETURN_IF_ERROR(ParseName().status());
      }
      // Default declaration.
      SkipSpace();
      bool required = false;
      if (LookingAt("#REQUIRED")) {
        pos_ += 9;
        required = true;
      } else if (LookingAt("#IMPLIED")) {
        pos_ += 8;
      } else if (LookingAt("#FIXED")) {
        pos_ += 6;
        SkipSpace();
        X3_RETURN_IF_ERROR(SkipQuoted());
        required = true;  // fixed attributes are always present
      } else if (!AtEnd() && (Peek() == '"' || Peek() == '\'')) {
        X3_RETURN_IF_ERROR(SkipQuoted());  // defaulted: always present
        required = true;
      } else {
        return Error("expected attribute default for " + attr);
      }
      decl.children.push_back({"@" + attr, required
                                               ? Cardinality::One()
                                               : Cardinality::Optional()});
    }
    graph->AddElement(std::move(decl));
    return Status::OK();
  }

  Status SkipQuoted() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted value");
    }
    char quote = Peek();
    ++pos_;
    while (!AtEnd() && Peek() != quote) ++pos_;
    if (AtEnd()) return Error("unterminated quoted value");
    ++pos_;
    return Status::OK();
  }

  std::string_view input_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

}  // namespace

Result<SchemaGraph> ParseDtd(std::string_view input) {
  DtdParser parser(input);
  return parser.Parse();
}

Result<SchemaGraph> ParseDtdFile(const std::string& path, Env* env) {
  std::string buf;
  X3_RETURN_IF_ERROR(ReadFileToString(env, path, &buf));
  return ParseDtd(buf);
}

}  // namespace x3
