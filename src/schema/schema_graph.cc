#include "schema/schema_graph.h"

#include <algorithm>

#include "util/string_util.h"

namespace x3 {

void SchemaGraph::AddElement(ElementDecl decl) {
  auto it = decls_.find(decl.tag);
  if (it == decls_.end()) {
    decls_.emplace(decl.tag, std::move(decl));
    return;
  }
  // Merge: union child slots, OR the flags.
  ElementDecl& existing = it->second;
  existing.has_pcdata = existing.has_pcdata || decl.has_pcdata;
  existing.is_any = existing.is_any || decl.is_any;
  for (ChildSpec& child : decl.children) {
    existing.children.push_back(std::move(child));
  }
}

const ElementDecl* SchemaGraph::Find(std::string_view tag) const {
  auto it = decls_.find(std::string(tag));
  return it == decls_.end() ? nullptr : &it->second;
}

std::optional<Cardinality> SchemaGraph::ChildCardinality(
    std::string_view parent_tag, std::string_view child_tag) const {
  const ElementDecl* decl = Find(parent_tag);
  if (decl == nullptr) return std::nullopt;
  bool found = false;
  bool min_one = false;
  bool max_one = true;
  int slots = 0;
  for (const ChildSpec& child : decl->children) {
    if (child.tag != child_tag) continue;
    found = true;
    ++slots;
    // Any single guaranteed slot guarantees presence.
    min_one = min_one || child.cardinality.min_one;
    max_one = max_one && child.cardinality.max_one;
  }
  if (!found) return std::nullopt;
  // Multiple slots of the same tag allow repetition.
  if (slots > 1) max_one = false;
  return Cardinality{min_one, max_one};
}

std::vector<ChildSpec> SchemaGraph::ChildrenOf(
    std::string_view parent_tag) const {
  const ElementDecl* decl = Find(parent_tag);
  if (decl == nullptr) return {};
  // Collapse duplicate tags via ChildCardinality.
  std::vector<ChildSpec> out;
  std::vector<std::string> seen;
  for (const ChildSpec& child : decl->children) {
    if (std::find(seen.begin(), seen.end(), child.tag) != seen.end()) {
      continue;
    }
    seen.push_back(child.tag);
    out.push_back({child.tag, *ChildCardinality(parent_tag, child.tag)});
  }
  return out;
}

std::vector<std::string> SchemaGraph::ElementTags() const {
  std::vector<std::string> tags;
  tags.reserve(decls_.size());
  for (const auto& [tag, decl] : decls_) tags.push_back(tag);
  std::sort(tags.begin(), tags.end());
  return tags;
}

std::string SchemaGraph::ToString() const {
  std::string out;
  for (const std::string& tag : ElementTags()) {
    const ElementDecl* decl = Find(tag);
    out += tag;
    out += " -> ";
    if (decl->is_any) {
      out += "ANY";
    } else {
      std::vector<std::string> parts;
      for (const ChildSpec& child : ChildrenOf(tag)) {
        parts.push_back(child.tag + child.cardinality.Symbol());
      }
      if (decl->has_pcdata) parts.push_back("#PCDATA");
      out += JoinStrings(parts, ", ");
    }
    out += "\n";
  }
  return out;
}

}  // namespace x3
