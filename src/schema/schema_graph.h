#ifndef X3_SCHEMA_SCHEMA_GRAPH_H_
#define X3_SCHEMA_SCHEMA_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace x3 {

/// Occurrence bounds of a child within its parent's content model.
/// DTD cardinalities map as: (none)=kOne, '?'=kOptional, '+'=kPlus,
/// '*'=kStar; members of choice groups become optional.
struct Cardinality {
  bool min_one = true;   // guaranteed at least one occurrence
  bool max_one = true;   // at most one occurrence

  static Cardinality One() { return {true, true}; }
  static Cardinality Optional() { return {false, true}; }
  static Cardinality Plus() { return {true, false}; }
  static Cardinality Star() { return {false, false}; }

  /// Composition when a group with cardinality `outer` contains an item
  /// with cardinality `inner`.
  Cardinality Compose(Cardinality inner) const {
    return {min_one && inner.min_one, max_one && inner.max_one};
  }

  const char* Symbol() const {
    if (min_one && max_one) return "1";
    if (!min_one && max_one) return "?";
    if (min_one && !max_one) return "+";
    return "*";
  }

  bool operator==(const Cardinality& other) const {
    return min_one == other.min_one && max_one == other.max_one;
  }
};

/// One child slot of an element declaration. Attribute declarations are
/// folded in as children with tag "@<name>" (REQUIRED -> One,
/// IMPLIED/default -> Optional); this matches the database's uniform
/// treatment of attributes as nodes.
struct ChildSpec {
  std::string tag;
  Cardinality cardinality;
};

/// Declaration of one element type.
struct ElementDecl {
  std::string tag;
  std::vector<ChildSpec> children;
  bool has_pcdata = false;
  bool is_any = false;  // <!ELEMENT x ANY>
};

/// A DTD-derived schema: element declarations and the induced
/// parent/child multigraph with cardinalities, the input to the §3.7
/// summarizability inference.
class SchemaGraph {
 public:
  SchemaGraph() = default;

  /// Adds (or merges, unioning children) a declaration.
  void AddElement(ElementDecl decl);

  const ElementDecl* Find(std::string_view tag) const;
  bool Contains(std::string_view tag) const { return Find(tag) != nullptr; }

  /// Cardinality of `child_tag` within `parent_tag`, accumulated across
  /// all slots mentioning it (two slots of the same tag make it
  /// repeatable). nullopt when not a declared child.
  std::optional<Cardinality> ChildCardinality(std::string_view parent_tag,
                                              std::string_view child_tag) const;

  /// All declared (childTag, cardinality) of a parent; empty for ANY or
  /// undeclared parents.
  std::vector<ChildSpec> ChildrenOf(std::string_view parent_tag) const;

  std::vector<std::string> ElementTags() const;
  size_t size() const { return decls_.size(); }

  /// One line per declaration, for diagnostics.
  std::string ToString() const;

 private:
  std::unordered_map<std::string, ElementDecl> decls_;
};

}  // namespace x3

#endif  // X3_SCHEMA_SCHEMA_GRAPH_H_
