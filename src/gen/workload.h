#ifndef X3_GEN_WORKLOAD_H_
#define X3_GEN_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "cube/cube_spec.h"
#include "gen/treebank_gen.h"
#include "schema/summarizability.h"
#include "util/result.h"

namespace x3 {

/// One experimental setting of §4: which summarizability properties the
/// input is generated to satisfy, cube density, axis count and scale.
struct ExperimentSetting {
  bool coverage_holds = true;
  bool disjointness_holds = true;
  bool dense = false;
  size_t num_axes = 3;
  size_t num_trees = 1000;
  uint64_t seed = 42;
};

/// Derives the generator configuration that realizes a setting:
/// coverage off => optional axis elements; disjointness off => repeated
/// axis elements; dense => tiny value domains (the paper grouped "only
/// the first character of the marked-up text"), sparse => large ones.
TreebankConfig MakeTreebankConfig(const ExperimentSetting& setting);

/// A ready-to-cube workload: lattice + materialized fact table (the
/// database used to build them is transient, as in the paper's
/// pre-evaluation methodology).
struct Workload {
  CubeLattice lattice;
  FactTable facts;
  LatticeProperties properties;

  Workload(CubeLattice lattice_in, FactTable facts_in,
           LatticeProperties properties_in)
      : lattice(std::move(lattice_in)),
        facts(std::move(facts_in)),
        properties(std::move(properties_in)) {}
};

/// Generates Treebank-like data per `setting`, loads it into a scratch
/// database, evaluates the grouping pattern and materializes the fact
/// table. Properties are inferred from the generator's matching DTD.
Result<Workload> BuildTreebankWorkload(const ExperimentSetting& setting);

/// Same pipeline for the DBLP experiment (§4.5): `num_articles` facts,
/// properties inferred from the real DBLP DTD fragment.
Result<Workload> BuildDblpWorkload(size_t num_articles, uint64_t seed = 7);

}  // namespace x3

#endif  // X3_GEN_WORKLOAD_H_
