#ifndef X3_GEN_TREEBANK_GEN_H_
#define X3_GEN_TREEBANK_GEN_H_

#include <cstdint>
#include <string>

#include "cube/cube_spec.h"
#include "util/random.h"
#include "util/result.h"
#include "xdb/database.h"
#include "xml/xml_node.h"

namespace x3 {

/// Configuration of the synthetic Treebank-like generator.
///
/// The original experiments used the UW Treebank dataset (encrypted WSJ
/// text; deep, recursive, heterogeneous) and "configured each experiment
/// by controlling the behavior of the matching input trees according to
/// two properties of summarizability" (§4). This generator exposes those
/// controls directly: per-axis missing probability (coverage) and repeat
/// probability (disjointness), value cardinality and skew (dense vs
/// sparse cubes), and filler subtrees (depth/heterogeneity).
struct TreebankConfig {
  uint64_t seed = 42;
  /// Grouping axes materialized in each tree (max 7, like the paper's
  /// 2–7 axis sweeps). Axis i uses tag TreebankAxisTag(i).
  size_t num_axes = 3;
  /// Distinct values per axis. Large => sparse cube, small => dense.
  size_t value_cardinality = 100;
  /// Zipf skew of value selection (0 = uniform).
  double zipf_theta = 0.0;
  /// Probability that an axis element is absent from a tree. > 0
  /// violates total coverage.
  double missing_probability = 0.0;
  /// Probability that an axis element is repeated (with an independent
  /// value). > 0 violates disjointness.
  double repeat_probability = 0.0;
  /// Max extra repeats when repeating.
  size_t max_extra_repeats = 2;
  /// Probability that an axis element is nested under an intervening
  /// wrapper element instead of being a direct child (exercises PC-AD
  /// relaxation; leave 0 when axes use LND only).
  double nesting_probability = 0.0;
  /// Random filler subtrees per tree and their max depth
  /// (heterogeneity/depth noise, like Treebank's parse structure).
  size_t filler_subtrees = 2;
  size_t filler_max_depth = 3;
  /// Each tree carries a measure element with a value in
  /// [0, measure_range).
  int64_t measure_range = 100;
};

/// Tag of grouping axis `i` ("np", "vp", "pp", ...).
const char* TreebankAxisTag(size_t i);
/// Tag of the wrapper used when nesting ("phr").
const char* TreebankWrapperTag();
/// Root tag of each generated tree ("s").
const char* TreebankRootTag();

/// Deterministic generator of Treebank-like fact trees.
class TreebankGenerator {
 public:
  explicit TreebankGenerator(const TreebankConfig& config);

  /// Generates the next tree.
  XmlDocument NextTree();

  /// Generates `count` trees directly into a database.
  Status LoadInto(Database* db, size_t count);

  /// A DTD matching this configuration, for schema-inference tests:
  /// cardinalities reflect the missing/repeat probabilities (e.g. a
  /// mandatory unique axis declares `axis`, an optional repeatable one
  /// declares `axis*`).
  std::string MatchingDtd() const;

  const TreebankConfig& config() const { return config_; }

 private:
  std::string AxisValue(size_t axis);

  TreebankConfig config_;
  Random rng_;
  uint64_t trees_generated_ = 0;
};

/// The cube query the Treebank experiments run: fact = //s, one axis
/// per generated axis tag with the given relaxations (LND by default,
/// matching Figs. 4-9).
CubeQuery MakeTreebankQuery(const TreebankConfig& config,
                            RelaxationSet per_axis_relaxations =
                                RelaxationSet::Of({RelaxationType::kLND}));

}  // namespace x3

#endif  // X3_GEN_TREEBANK_GEN_H_
