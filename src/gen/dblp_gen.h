#ifndef X3_GEN_DBLP_GEN_H_
#define X3_GEN_DBLP_GEN_H_

#include <cstdint>
#include <string>

#include "cube/cube_spec.h"
#include "util/random.h"
#include "util/result.h"
#include "xdb/database.h"
#include "xml/xml_node.h"

namespace x3 {

/// Configuration of the DBLP-like generator.
///
/// The paper's §4.5 experiment cubes `article` by /author, /month,
/// /year and /journal over 220k input trees, relying on the DBLP DTD
/// facts: "author is possibly repeated and missing, year and journal
/// are mandatory and unique, and month is possibly missing". The
/// generator reproduces exactly those cardinalities.
struct DblpConfig {
  uint64_t seed = 7;
  /// Distinct author names / journals in the pools.
  size_t num_authors = 2000;
  size_t num_journals = 40;
  /// Publication years span [first_year, first_year + num_years).
  int first_year = 1990;
  int num_years = 18;
  /// Author-count distribution: P(k authors) ~ weights[k], k in 0..4.
  /// Index 0 (no author) violates coverage; k >= 2 violates
  /// disjointness — both as in real DBLP.
  double author_count_weights[5] = {0.05, 0.45, 0.30, 0.15, 0.05};
  /// Probability that month is present.
  double month_probability = 0.7;
  /// Zipf skew of author/journal popularity.
  double zipf_theta = 0.5;
};

/// Deterministic generator of DBLP-like `article` records.
class DblpGenerator {
 public:
  explicit DblpGenerator(const DblpConfig& config);

  XmlDocument NextArticle();
  Status LoadInto(Database* db, size_t count);

  const DblpConfig& config() const { return config_; }

 private:
  DblpConfig config_;
  Random rng_;
  uint64_t articles_generated_ = 0;
};

/// The DBLP DTD fragment relevant to the experiment (used for §3.7
/// schema inference: author*, title, month?, year, journal).
std::string DblpDtd();

/// The §4.5 query: cube article by /author, /month, /year, /journal
/// (LND permitted on every axis).
CubeQuery MakeDblpQuery();

}  // namespace x3

#endif  // X3_GEN_DBLP_GEN_H_
