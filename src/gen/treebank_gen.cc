#include "gen/treebank_gen.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace x3 {

namespace {

constexpr const char* kAxisTags[] = {"np", "vp", "pp", "adj",
                                     "nn", "vb", "dt"};
constexpr size_t kMaxAxes = sizeof(kAxisTags) / sizeof(kAxisTags[0]);

constexpr const char* kFillerTags[] = {"x1", "x2", "x3", "x4", "x5"};
constexpr size_t kNumFillerTags =
    sizeof(kFillerTags) / sizeof(kFillerTags[0]);

}  // namespace

const char* TreebankAxisTag(size_t i) {
  X3_CHECK(i < kMaxAxes) << "treebank generator supports at most 7 axes";
  return kAxisTags[i];
}

const char* TreebankWrapperTag() { return "phr"; }
const char* TreebankRootTag() { return "s"; }

TreebankGenerator::TreebankGenerator(const TreebankConfig& config)
    : config_(config), rng_(config.seed) {
  X3_CHECK(config_.num_axes >= 1 && config_.num_axes <= kMaxAxes);
  X3_CHECK(config_.value_cardinality >= 1);
}

std::string TreebankGenerator::AxisValue(size_t axis) {
  uint64_t v = rng_.Zipf(config_.value_cardinality, config_.zipf_theta);
  return StringPrintf("%s%llu", kAxisTags[axis],
                      static_cast<unsigned long long>(v));
}

XmlDocument TreebankGenerator::NextTree() {
  auto root = XmlNode::Element(TreebankRootTag());
  root->SetAttribute(
      "id", StringPrintf("t%llu",
                         static_cast<unsigned long long>(trees_generated_)));
  ++trees_generated_;

  // Measure element.
  root->AddElementWithText(
      "len", StringPrintf("%lld", static_cast<long long>(rng_.Uniform(
                                      static_cast<uint64_t>(
                                          config_.measure_range)))));

  for (size_t a = 0; a < config_.num_axes; ++a) {
    if (rng_.Bernoulli(config_.missing_probability)) continue;
    size_t copies = 1;
    if (rng_.Bernoulli(config_.repeat_probability)) {
      copies += 1 + rng_.Uniform(config_.max_extra_repeats);
    }
    for (size_t c = 0; c < copies; ++c) {
      XmlNode* parent = root.get();
      if (rng_.Bernoulli(config_.nesting_probability)) {
        parent = parent->AddElement(TreebankWrapperTag());
      }
      parent->AddElementWithText(kAxisTags[a], AxisValue(a));
    }
  }

  // Filler noise: random small subtrees of non-axis tags.
  for (size_t fs = 0; fs < config_.filler_subtrees; ++fs) {
    XmlNode* node = root->AddElement(
        kFillerTags[rng_.Uniform(kNumFillerTags)]);
    size_t depth = rng_.Uniform(config_.filler_max_depth + 1);
    for (size_t d = 0; d < depth; ++d) {
      node = node->AddElement(kFillerTags[rng_.Uniform(kNumFillerTags)]);
    }
    node->AddText(StringPrintf(
        "w%llu", static_cast<unsigned long long>(rng_.Uniform(1000))));
  }

  return XmlDocument(std::move(root));
}

Status TreebankGenerator::LoadInto(Database* db, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    XmlDocument doc = NextTree();
    X3_RETURN_IF_ERROR(db->LoadDocument(doc).status());
  }
  return Status::OK();
}

std::string TreebankGenerator::MatchingDtd() const {
  std::string dtd;
  std::string root_children = "len";
  for (size_t a = 0; a < config_.num_axes; ++a) {
    root_children += ", ";
    root_children += kAxisTags[a];
    bool optional = config_.missing_probability > 0;
    bool repeatable = config_.repeat_probability > 0;
    if (optional && repeatable) {
      root_children += "*";
    } else if (optional) {
      root_children += "?";
    } else if (repeatable) {
      root_children += "+";
    }
  }
  root_children += ", x1*, x2*, x3*, x4*, x5*";
  if (config_.nesting_probability > 0) {
    std::string phr_children;
    for (size_t a = 0; a < config_.num_axes; ++a) {
      if (a > 0) phr_children += " | ";
      phr_children += kAxisTags[a];
    }
    dtd += StringPrintf("<!ELEMENT %s (%s)>\n", TreebankWrapperTag(),
                        phr_children.c_str());
    root_children += StringPrintf(", %s*", TreebankWrapperTag());
  }
  dtd += StringPrintf("<!ELEMENT %s (%s)>\n", TreebankRootTag(),
                      root_children.c_str());
  dtd += StringPrintf("<!ATTLIST %s id CDATA #REQUIRED>\n",
                      TreebankRootTag());
  dtd += "<!ELEMENT len (#PCDATA)>\n";
  for (size_t a = 0; a < config_.num_axes; ++a) {
    dtd += StringPrintf("<!ELEMENT %s (#PCDATA)>\n", kAxisTags[a]);
  }
  for (size_t ft = 0; ft < kNumFillerTags; ++ft) {
    dtd += StringPrintf("<!ELEMENT %s (x1?, x2?, x3?, x4?, x5?, #PCDATA)>\n",
                        kFillerTags[ft]);
  }
  return dtd;
}

CubeQuery MakeTreebankQuery(const TreebankConfig& config,
                            RelaxationSet per_axis_relaxations) {
  CubeQuery query;
  query.fact_path = std::string("//") + TreebankRootTag();
  for (size_t a = 0; a < config.num_axes; ++a) {
    AxisSpec axis;
    axis.name = TreebankAxisTag(a);
    axis.path = std::string("/") + TreebankAxisTag(a);
    axis.relaxations = per_axis_relaxations;
    query.axes.push_back(std::move(axis));
  }
  query.aggregate = AggregateFunction::kCount;
  return query;
}

}  // namespace x3
