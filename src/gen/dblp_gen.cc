#include "gen/dblp_gen.h"

#include "util/string_util.h"

namespace x3 {

DblpGenerator::DblpGenerator(const DblpConfig& config)
    : config_(config), rng_(config.seed) {}

XmlDocument DblpGenerator::NextArticle() {
  auto article = XmlNode::Element("article");
  article->SetAttribute(
      "key", StringPrintf("journals/a%llu", static_cast<unsigned long long>(
                                                articles_generated_)));
  ++articles_generated_;

  // Author count from the configured distribution.
  double total = 0;
  for (double w : config_.author_count_weights) total += w;
  double pick = rng_.NextDouble() * total;
  size_t num_authors = 0;
  for (size_t k = 0; k < 5; ++k) {
    pick -= config_.author_count_weights[k];
    if (pick <= 0) {
      num_authors = k;
      break;
    }
  }
  for (size_t k = 0; k < num_authors; ++k) {
    uint64_t a = rng_.Zipf(config_.num_authors, config_.zipf_theta);
    article->AddElementWithText(
        "author",
        StringPrintf("Author %llu", static_cast<unsigned long long>(a)));
  }

  article->AddElementWithText(
      "title", StringPrintf("On Topic %llu", static_cast<unsigned long long>(
                                                 rng_.Uniform(100000))));

  if (rng_.Bernoulli(config_.month_probability)) {
    static constexpr const char* kMonths[] = {
        "January", "February", "March",     "April",   "May",      "June",
        "July",    "August",   "September", "October", "November", "December"};
    article->AddElementWithText("month", kMonths[rng_.Uniform(12)]);
  }

  int year = config_.first_year +
             static_cast<int>(rng_.Uniform(
                 static_cast<uint64_t>(config_.num_years)));
  article->AddElementWithText("year", StringPrintf("%d", year));

  uint64_t j = rng_.Zipf(config_.num_journals, config_.zipf_theta);
  article->AddElementWithText(
      "journal",
      StringPrintf("Journal %llu", static_cast<unsigned long long>(j)));

  return XmlDocument(std::move(article));
}

Status DblpGenerator::LoadInto(Database* db, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    XmlDocument doc = NextArticle();
    X3_RETURN_IF_ERROR(db->LoadDocument(doc).status());
  }
  return Status::OK();
}

std::string DblpDtd() {
  return "<!ELEMENT article (author*, title, month?, year, journal)>\n"
         "<!ATTLIST article key CDATA #REQUIRED>\n"
         "<!ELEMENT author (#PCDATA)>\n"
         "<!ELEMENT title (#PCDATA)>\n"
         "<!ELEMENT month (#PCDATA)>\n"
         "<!ELEMENT year (#PCDATA)>\n"
         "<!ELEMENT journal (#PCDATA)>\n";
}

CubeQuery MakeDblpQuery() {
  CubeQuery query;
  query.fact_path = "//article";
  RelaxationSet lnd = RelaxationSet::Of({RelaxationType::kLND});
  for (const char* axis : {"author", "month", "year", "journal"}) {
    AxisSpec spec;
    spec.name = axis;
    spec.path = std::string("/") + axis;
    spec.relaxations = lnd;
    query.axes.push_back(std::move(spec));
  }
  query.aggregate = AggregateFunction::kCount;
  return query;
}

}  // namespace x3
