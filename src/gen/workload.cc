#include "gen/workload.h"

#include <memory>

#include "gen/dblp_gen.h"
#include "schema/dtd_parser.h"

namespace x3 {

TreebankConfig MakeTreebankConfig(const ExperimentSetting& setting) {
  TreebankConfig config;
  config.seed = setting.seed;
  config.num_axes = setting.num_axes;
  // Dense: tiny domains so most cells are populated. Sparse: domains
  // whose product dwarfs the tree count.
  config.value_cardinality = setting.dense ? 4 : 50;
  config.missing_probability = setting.coverage_holds ? 0.0 : 0.25;
  config.repeat_probability = setting.disjointness_holds ? 0.0 : 0.25;
  config.max_extra_repeats = 2;
  return config;
}

Result<Workload> BuildTreebankWorkload(const ExperimentSetting& setting) {
  TreebankConfig config = MakeTreebankConfig(setting);
  TreebankGenerator generator(config);

  X3_ASSIGN_OR_RETURN(std::unique_ptr<Database> db, Database::Open({}));
  X3_RETURN_IF_ERROR(generator.LoadInto(db.get(), setting.num_trees));

  CubeQuery query = MakeTreebankQuery(config);
  X3_ASSIGN_OR_RETURN(CubeLattice lattice, BuildCubeLattice(query));
  X3_ASSIGN_OR_RETURN(FactTable facts, BuildFactTable(*db, query, lattice));

  X3_ASSIGN_OR_RETURN(SchemaGraph schema, ParseDtd(generator.MatchingDtd()));
  X3_ASSIGN_OR_RETURN(
      LatticeProperties properties,
      InferLatticeProperties(schema, lattice, TreebankRootTag()));

  return Workload(std::move(lattice), std::move(facts),
                  std::move(properties));
}

Result<Workload> BuildDblpWorkload(size_t num_articles, uint64_t seed) {
  DblpConfig config;
  config.seed = seed;
  DblpGenerator generator(config);

  X3_ASSIGN_OR_RETURN(std::unique_ptr<Database> db, Database::Open({}));
  X3_RETURN_IF_ERROR(generator.LoadInto(db.get(), num_articles));

  CubeQuery query = MakeDblpQuery();
  X3_ASSIGN_OR_RETURN(CubeLattice lattice, BuildCubeLattice(query));
  X3_ASSIGN_OR_RETURN(FactTable facts, BuildFactTable(*db, query, lattice));

  X3_ASSIGN_OR_RETURN(SchemaGraph schema, ParseDtd(DblpDtd()));
  X3_ASSIGN_OR_RETURN(LatticeProperties properties,
                      InferLatticeProperties(schema, lattice, "article"));

  return Workload(std::move(lattice), std::move(facts),
                  std::move(properties));
}

}  // namespace x3
