#include "util/trace.h"

#include <chrono>
#include <cstdlib>

#include "util/env.h"
#include "util/query_id.h"
#include "util/string_util.h"

namespace x3 {
namespace {

/// The only raw monotonic-clock read outside util/timer.h (the repo
/// lint pins both): trace timestamps and Timer share one time base.
int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Tracer::Tracer(size_t capacity)
    : capacity_(capacity < 2 ? 2 : capacity) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // x3-lint: allow(raw-new-delete) -- intentionally leaked process singleton
  return *tracer;
}

uint32_t Tracer::CurrentThreadId() {
  static std::atomic<uint32_t> next_id{0};
  thread_local uint32_t id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Tracer::Record(char phase, std::string_view label) {
  if (!enabled()) return;
  // Timestamp before the lock: queueing delay must not inflate span
  // durations. Per-thread timestamp order is still preserved (a thread
  // reads its clock in program order).
  const int64_t ts = NowMicros();
  const uint32_t tid = CurrentThreadId();
  const uint64_t qid = CurrentQueryId();
  MutexLock lock(&mu_);
  Event* slot;
  if (ring_.size() < capacity_) {
    ring_.emplace_back();
    slot = &ring_.back();
  } else {
    slot = &ring_[next_];
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
  size_t len = label.size() < kMaxLabel ? label.size() : kMaxLabel;
  std::memcpy(slot->label, label.data(), len);
  slot->label[len] = '\0';
  slot->ts_us = ts;
  slot->qid = qid;
  slot->tid = tid;
  slot->phase = phase;
}

void Tracer::SetCurrentThreadName(std::string_view name) {
  const uint32_t tid = CurrentThreadId();
  MutexLock lock(&mu_);
  thread_names_[tid] = std::string(name);
}

void Tracer::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
  thread_names_.clear();
}

size_t Tracer::size() const {
  MutexLock lock(&mu_);
  return ring_.size();
}

uint64_t Tracer::dropped() const {
  MutexLock lock(&mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

std::vector<Tracer::Event> Tracer::snapshot() const {
  MutexLock lock(&mu_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (total_ <= capacity_) {
    out = ring_;
  } else {
    // Ring has wrapped: the oldest surviving event sits at next_.
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(next_));
  }
  return out;
}

std::string Tracer::ToChromeTraceJson() const {
  std::vector<Event> events = snapshot();
  std::map<uint32_t, std::string> names;
  {
    MutexLock lock(&mu_);
    names = thread_names_;
  }

  // Repair pass: ring overwrite can leave an 'E' whose 'B' was lost
  // (drop it) or a 'B' whose 'E' is still pending at export time
  // (synthesize an 'E' at the thread's last timestamp). After this
  // every emitted event participates in a matched, properly nested
  // per-thread B/E pairing.
  std::map<uint32_t, std::vector<size_t>> open;  // tid -> stack of B indexes
  std::map<uint32_t, int64_t> last_ts;
  std::vector<bool> keep(events.size(), true);
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    last_ts[e.tid] = e.ts_us;
    if (e.phase == 'B') {
      open[e.tid].push_back(i);
    } else if (open[e.tid].empty()) {
      keep[i] = false;  // orphan end: its begin was overwritten
    } else {
      open[e.tid].pop_back();
    }
  }
  std::vector<Event> synthesized;
  for (auto& [tid, stack] : open) {
    // Close innermost-first so the synthesized ends nest correctly.
    for (size_t j = stack.size(); j-- > 0;) {
      Event e = events[stack[j]];
      e.phase = 'E';
      e.ts_us = last_ts[tid];
      synthesized.push_back(e);
    }
  }

  int64_t base_ts = 0;
  bool have_base = false;
  for (size_t i = 0; i < events.size(); ++i) {
    if (keep[i] && (!have_base || events[i].ts_us < base_ts)) {
      base_ts = events[i].ts_us;
      have_base = true;
    }
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : names) {
    if (!first) out += ",";
    first = false;
    out += StringPrintf(
        "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
        "\"args\":{\"name\":\"",
        tid);
    AppendJsonEscaped(name, &out);
    out += "\"}}";
  }
  auto emit = [&](const Event& e) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    AppendJsonEscaped(e.label, &out);
    out += StringPrintf(
        "\",\"cat\":\"x3\",\"ph\":\"%c\",\"ts\":%lld,\"pid\":1,\"tid\":%u",
        e.phase, static_cast<long long>(e.ts_us - base_ts), e.tid);
    if (e.qid != 0) {
      out += StringPrintf(",\"args\":{\"qid\":%llu}",
                          static_cast<unsigned long long>(e.qid));
    }
    out += "}";
  };
  for (size_t i = 0; i < events.size(); ++i) {
    if (keep[i]) emit(events[i]);
  }
  for (const Event& e : synthesized) emit(e);
  out += "\n]}\n";
  return out;
}

Status Tracer::WriteChromeTrace(Env* env, const std::string& path) const {
  return WriteStringToFile(env, path, ToChromeTraceJson());
}

namespace internal {

namespace {
/// Path from X3_TRACE at startup; empty = not configured.
std::string* g_trace_env_path = nullptr;
}  // namespace

bool InitTraceFromEnv() {
  const char* path = std::getenv("X3_TRACE");
  if (path == nullptr || *path == '\0') return false;
  if (g_trace_env_path == nullptr) g_trace_env_path = new std::string();  // x3-lint: allow(raw-new-delete) -- leaked process singleton
  *g_trace_env_path = path;
  Tracer::Global().SetEnabled(true);
  return true;
}

void FlushTraceAtExit() {
  if (g_trace_env_path == nullptr || g_trace_env_path->empty()) return;
  Status s = Tracer::Global().WriteChromeTrace(Env::Default(),
                                               *g_trace_env_path);
  s.IgnoreError();  // exiting: nowhere to report a late I/O failure
}

namespace {
/// `X3_TRACE=path.json` enables the global tracer for the whole process
/// and dumps a Chrome trace to `path.json` on clean exit — zero code
/// changes needed in tests or benches (README "Observability").
struct TraceEnvHook {
  TraceEnvHook() {
    if (InitTraceFromEnv()) std::atexit(FlushTraceAtExit);
  }
};
TraceEnvHook g_trace_env_hook;
}  // namespace

}  // namespace internal
}  // namespace x3
