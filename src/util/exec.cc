#include "util/exec.h"

#include <algorithm>

#include "util/string_util.h"

namespace x3 {

namespace {

bool LabelMatches(const std::string& label, std::string_view query) {
  if (label.size() == query.size()) return label == query;
  return label.size() > query.size() &&
         label.compare(0, query.size(), query) == 0 &&
         label[query.size()] == '/';
}

}  // namespace

StageTiming* StatsSink::EntryLocked(std::string_view label) {
  mu_.AssertHeld();
  auto it = index_.find(std::string(label));
  if (it != index_.end()) return &timings_[it->second];
  StageTiming entry;
  entry.label = std::string(label);
  index_.emplace(entry.label, timings_.size());
  timings_.push_back(std::move(entry));
  return &timings_.back();
}

void StatsSink::Record(std::string_view label, double seconds, uint64_t rows,
                       uint64_t bytes) {
  MutexLock lock(&mu_);
  StageTiming* entry = EntryLocked(label);
  entry->seconds += seconds;
  entry->max_seconds = std::max(entry->max_seconds, seconds);
  entry->count += 1;
  entry->rows += rows;
  entry->bytes += bytes;
}

void StatsSink::Append(const StatsSink& other) {
  // Snapshot under the source lock, then merge under ours (two sinks,
  // two locks; self-append is not a use case).
  std::vector<StageTiming> copied;
  {
    MutexLock lock(&other.mu_);
    copied = other.timings_;
  }
  MutexLock lock(&mu_);
  for (const StageTiming& t : copied) {
    StageTiming* entry = EntryLocked(t.label);
    entry->seconds += t.seconds;
    entry->max_seconds = std::max(entry->max_seconds, t.max_seconds);
    entry->count += t.count;
    entry->rows += t.rows;
    entry->bytes += t.bytes;
  }
}

double StatsSink::TotalSeconds(std::string_view label) const {
  MutexLock lock(&mu_);
  double total = 0;
  for (const StageTiming& t : timings_) {
    if (LabelMatches(t.label, label)) total += t.seconds;
  }
  return total;
}

size_t StatsSink::CountStages(std::string_view label) const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const StageTiming& t : timings_) {
    if (LabelMatches(t.label, label)) n += t.count;
  }
  return n;
}

std::optional<StageTiming> StatsSink::Find(std::string_view label) const {
  MutexLock lock(&mu_);
  auto it = index_.find(std::string(label));
  if (it == index_.end()) return std::nullopt;
  return timings_[it->second];
}

std::string StatsSink::ToString() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const StageTiming& t : timings_) {
    out += StringPrintf("%s: %.3f ms", t.label.c_str(), t.seconds * 1e3);
    if (t.count > 1) {
      out += StringPrintf(" (x%llu, max %.3f ms)",
                          static_cast<unsigned long long>(t.count),
                          t.max_seconds * 1e3);
    }
    out += "\n";
  }
  return out;
}

std::optional<double> ExecutionContext::RemainingSeconds() const {
  if (!options_.deadline.has_value()) return std::nullopt;
  double remaining =
      std::chrono::duration<double>(*options_.deadline - MonotonicNow())
          .count();
  return remaining > 0 ? remaining : 0;
}

}  // namespace x3
