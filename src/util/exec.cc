#include "util/exec.h"

#include "util/string_util.h"

namespace x3 {

namespace {

bool LabelMatches(const std::string& label, std::string_view query) {
  if (label.size() == query.size()) return label == query;
  return label.size() > query.size() &&
         label.compare(0, query.size(), query) == 0 &&
         label[query.size()] == '/';
}

}  // namespace

void StatsSink::Append(const StatsSink& other) {
  // Snapshot under the source lock, then append under ours (two sinks,
  // two locks; self-append is not a use case).
  std::vector<StageTiming> copied;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    copied = other.timings_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  timings_.insert(timings_.end(), copied.begin(), copied.end());
}

double StatsSink::TotalSeconds(std::string_view label) const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0;
  for (const StageTiming& t : timings_) {
    if (LabelMatches(t.label, label)) total += t.seconds;
  }
  return total;
}

size_t StatsSink::CountStages(std::string_view label) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const StageTiming& t : timings_) {
    if (LabelMatches(t.label, label)) ++n;
  }
  return n;
}

std::string StatsSink::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const StageTiming& t : timings_) {
    out += StringPrintf("%s: %.3f ms\n", t.label.c_str(), t.seconds * 1e3);
  }
  return out;
}

std::optional<double> ExecutionContext::RemainingSeconds() const {
  if (!options_.deadline.has_value()) return std::nullopt;
  double remaining =
      std::chrono::duration<double>(*options_.deadline - Clock::now())
          .count();
  return remaining > 0 ? remaining : 0;
}

}  // namespace x3
