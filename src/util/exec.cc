#include "util/exec.h"

#include "util/string_util.h"

namespace x3 {

namespace {

bool LabelMatches(const std::string& label, std::string_view query) {
  if (label.size() == query.size()) return label == query;
  return label.size() > query.size() &&
         label.compare(0, query.size(), query) == 0 &&
         label[query.size()] == '/';
}

}  // namespace

double StatsSink::TotalSeconds(std::string_view label) const {
  double total = 0;
  for (const StageTiming& t : timings_) {
    if (LabelMatches(t.label, label)) total += t.seconds;
  }
  return total;
}

size_t StatsSink::CountStages(std::string_view label) const {
  size_t n = 0;
  for (const StageTiming& t : timings_) {
    if (LabelMatches(t.label, label)) ++n;
  }
  return n;
}

std::string StatsSink::ToString() const {
  std::string out;
  for (const StageTiming& t : timings_) {
    out += StringPrintf("%s: %.3f ms\n", t.label.c_str(), t.seconds * 1e3);
  }
  return out;
}

std::optional<double> ExecutionContext::RemainingSeconds() const {
  if (!options_.deadline.has_value()) return std::nullopt;
  double remaining =
      std::chrono::duration<double>(*options_.deadline - Clock::now())
          .count();
  return remaining > 0 ? remaining : 0;
}

}  // namespace x3
