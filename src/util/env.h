#ifndef X3_UTIL_ENV_H_
#define X3_UTIL_ENV_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace x3 {

/// How a file is opened through Env::OpenFile.
enum class OpenMode : uint8_t {
  /// Existing file, read-only.
  kReadOnly,
  /// Read/write; created (empty) when missing, existing contents kept.
  kReadWrite,
  /// Read/write; created, existing contents discarded.
  kTruncate,
};

/// A positionally addressed open file. All operations return Status so
/// every failure — including the injected ones — travels the normal
/// error-unwind path. Offsets are uint64_t end to end: the layer never
/// does `long` arithmetic, so files past 2 GiB are safe by construction.
///
/// Not thread-safe per instance (each file object has one owner);
/// distinct File objects may be used from different threads.
class File {
 public:
  virtual ~File() = default;

  /// Reads exactly `n` bytes at `offset`. A short read (EOF included)
  /// is an error.
  virtual Status ReadAt(uint64_t offset, void* out, size_t n) = 0;

  /// Reads up to `n` bytes at `offset`; `*bytes_read` receives the
  /// number actually read (0 at EOF). Short reads are not errors.
  virtual Status ReadAtPartial(uint64_t offset, void* out, size_t n,
                               size_t* bytes_read) = 0;

  /// Writes exactly `n` bytes at `offset`, extending the file as
  /// needed. Partial writes are errors (data past the reported failure
  /// point is unspecified — the torn-write model).
  virtual Status WriteAt(uint64_t offset, const void* data, size_t n) = 0;

  /// Durably flushes written data to the device (real fsync).
  virtual Status Sync() = 0;

  /// Shrinks (or extends, zero-filled) the file to exactly `size`
  /// bytes. The WAL uses this to cut a torn record tail off a segment
  /// during recovery.
  virtual Status Truncate(uint64_t size) = 0;

  /// Current size of the file in bytes.
  virtual Result<uint64_t> Size() = 0;

  /// Closes the file. Idempotent; the destructor closes best-effort.
  virtual Status Close() = 0;
};

/// The storage environment seam: every file operation in src/ goes
/// through an Env so tests can substitute a fault-injecting
/// implementation and enumerate every I/O error path (the CalicoDB /
/// LevelDB Env pattern). The default implementation is POSIX
/// (open/pread/pwrite/fsync/unlink/rename).
///
/// Thread-safe: an Env may be shared by all files of a process.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment (never null, never deleted).
  static Env* Default();

  virtual Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                                 OpenMode mode) = 0;

  /// Removes a file; NotFound when it does not exist.
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Atomically renames `from` to `to` (replacing `to`).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
};

/// Forwards every call to a wrapped Env; the base class for decorators
/// (FaultInjectionEnv, RetryEnv).
class EnvWrapper : public Env {
 public:
  explicit EnvWrapper(Env* target) : target_(target) {}

  Env* target() const { return target_; }

  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         OpenMode mode) override {
    return target_->OpenFile(path, mode);
  }
  Status RemoveFile(const std::string& path) override {
    return target_->RemoveFile(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return target_->RenameFile(from, to);
  }
  Result<uint64_t> FileSize(const std::string& path) override {
    return target_->FileSize(path);
  }
  bool FileExists(const std::string& path) override {
    return target_->FileExists(path);
  }

 private:
  Env* target_;
};

/// Marker carried in the message of Status values describing faults the
/// environment reports as transient (a retry may succeed). The fault
/// injector tags its transient faults with it; RetryEnv keys off it.
inline constexpr std::string_view kTransientFaultMarker = "[transient]";

/// True when `s` is a non-OK status tagged with kTransientFaultMarker.
bool IsTransientFault(const Status& s);

/// Bounded, deterministic retry policy for transient faults. Backoff is
/// pure arithmetic over the attempt number and the sleeper is
/// injectable, so tests drive the whole schedule without a real clock.
struct RetryPolicy {
  /// Total tries per operation (first attempt included). <= 1 disables.
  int max_attempts = 4;
  /// Backoff before retry k (1-based) is `backoff_base_ms << (k - 1)`.
  uint64_t backoff_base_ms = 1;
  /// Called with each backoff duration. nullptr = no sleeping (the
  /// schedule is still computed and reported to `on_backoff_ms`).
  std::function<void(uint64_t ms)> sleep;
};

/// Env decorator that retries operations whose failure is a transient
/// fault (IsTransientFault), with the bounded backoff of RetryPolicy.
/// Non-transient failures surface immediately. Files opened through a
/// RetryEnv retry their ReadAt/ReadAtPartial/WriteAt/Sync the same way.
class RetryEnv : public EnvWrapper {
 public:
  RetryEnv(Env* target, RetryPolicy policy)
      : EnvWrapper(target), policy_(std::move(policy)) {}

  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         OpenMode mode) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Result<uint64_t> FileSize(const std::string& path) override;

  /// Retries attempted so far (beyond first attempts), for tests and
  /// observability.
  uint64_t retries_attempted() const { return retries_; }
  /// Sum of backoff milliseconds scheduled (whether or not a sleeper
  /// was installed) — lets tests assert the deterministic schedule.
  uint64_t backoff_ms_total() const { return backoff_ms_; }

  const RetryPolicy& policy() const { return policy_; }

  /// Runs `op` under the retry policy. Shared by env- and file-level
  /// operations; public for the internal RetryFile decorator, not part
  /// of the user API.
  Status RunWithRetry(const std::function<Status()>& op);

 private:
  RetryPolicy policy_;
  uint64_t retries_ = 0;
  uint64_t backoff_ms_ = 0;
};

/// Buffered sequential writer over an Env file. Append gathers bytes in
/// a user-space buffer and issues large WriteAt calls; Flush() drains
/// the buffer, Sync() additionally fsyncs. Errors are sticky: once a
/// write fails every later call reports the original failure, and
/// Close() never masks it.
class SequentialFileWriter {
 public:
  SequentialFileWriter() = default;
  ~SequentialFileWriter();

  SequentialFileWriter(const SequentialFileWriter&) = delete;
  SequentialFileWriter& operator=(const SequentialFileWriter&) = delete;

  /// Creates/truncates `path` through `env`.
  Status Open(Env* env, const std::string& path);

  Status Append(const void* data, size_t n);
  Status Append(std::string_view data) {
    return Append(data.data(), data.size());
  }

  /// Pushes buffered bytes to the file.
  Status Flush();

  /// Flush + durable sync.
  Status Sync();

  /// Flushes and closes. Safe to call twice.
  Status Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  /// Bytes appended so far (buffered or written).
  uint64_t bytes_appended() const { return offset_ + buffer_.size(); }

 private:
  static constexpr size_t kBufferSize = 1 << 16;

  std::unique_ptr<File> file_;
  std::string path_;
  std::string buffer_;
  uint64_t offset_ = 0;  // file offset of buffer_[0]
  Status status_;        // sticky first error
};

/// Buffered sequential reader over an Env file.
class SequentialFileReader {
 public:
  SequentialFileReader() = default;

  SequentialFileReader(const SequentialFileReader&) = delete;
  SequentialFileReader& operator=(const SequentialFileReader&) = delete;

  /// Opens `path` read-only through `env`.
  Status Open(Env* env, const std::string& path);

  /// Reads exactly `n` bytes; EOF before `n` bytes is an IOError.
  Status Read(void* out, size_t n);

  /// Reads up to `n` bytes; `*bytes_read` is 0 at EOF.
  Status ReadPartial(void* out, size_t n, size_t* bytes_read);

  Status Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  uint64_t offset() const { return offset_ - (buffer_.size() - pos_); }

 private:
  static constexpr size_t kBufferSize = 1 << 16;

  std::unique_ptr<File> file_;
  std::string path_;
  std::string buffer_;
  size_t pos_ = 0;       // next unread byte in buffer_
  uint64_t offset_ = 0;  // file offset just past buffer_
  bool eof_ = false;
};

/// Reads the whole of `path` into `*out` (replacing its contents).
Status ReadFileToString(Env* env, const std::string& path, std::string* out);

/// Creates/truncates `path` with `data` and closes it. `sync` makes the
/// write durable before Close.
Status WriteStringToFile(Env* env, const std::string& path,
                         std::string_view data, bool sync = false);

}  // namespace x3

#endif  // X3_UTIL_ENV_H_
