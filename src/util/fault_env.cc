#include "util/fault_env.h"

#include "util/hash.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace x3 {

namespace {

Counter& FaultsInjectedCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_env_faults_injected_total",
      "Storage faults fired by FaultInjectionEnv schedules");
  return *c;
}

}  // namespace

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEIO:
      return "EIO";
    case FaultKind::kENOSPC:
      return "ENOSPC";
    case FaultKind::kShortRead:
      return "short-read";
    case FaultKind::kShortWrite:
      return "short-write";
    case FaultKind::kSyncFailure:
      return "sync-failure";
    case FaultKind::kTornWriteCrash:
      return "torn-write-crash";
  }
  return "unknown";
}

const char* FaultOpToString(FaultOp op) {
  switch (op) {
    case FaultOp::kOpen:
      return "open";
    case FaultOp::kRead:
      return "read";
    case FaultOp::kWrite:
      return "write";
    case FaultOp::kSync:
      return "sync";
    case FaultOp::kRemove:
      return "remove";
    case FaultOp::kRename:
      return "rename";
    case FaultOp::kSize:
      return "size";
  }
  return "unknown";
}

namespace {

bool IsMetadataOp(FaultOp op) {
  return op == FaultOp::kRemove || op == FaultOp::kRename ||
         op == FaultOp::kSize;
}

/// Degrades a scheduled kind to one the operation can express: e.g. a
/// short-write scheduled onto a read op becomes plain EIO.
FaultKind EffectiveKind(FaultKind kind, FaultOp op) {
  switch (kind) {
    case FaultKind::kShortRead:
      return op == FaultOp::kRead ? kind : FaultKind::kEIO;
    case FaultKind::kShortWrite:
    case FaultKind::kTornWriteCrash:
    case FaultKind::kENOSPC:
      return op == FaultOp::kWrite ? kind : FaultKind::kEIO;
    case FaultKind::kSyncFailure:
      return op == FaultOp::kSync ? kind : FaultKind::kEIO;
    case FaultKind::kEIO:
      return kind;
  }
  return FaultKind::kEIO;
}

}  // namespace

void FaultInjectionEnv::Arm(const Options& options) {
  MutexLock lock(&mu_);
  options_ = options;
  ops_seen_ = 0;
  faults_fired_ = 0;
  crashed_ = false;
  trace_.clear();
}

uint64_t FaultInjectionEnv::ops_seen() const {
  MutexLock lock(&mu_);
  return ops_seen_;
}

uint64_t FaultInjectionEnv::faults_fired() const {
  MutexLock lock(&mu_);
  return faults_fired_;
}

bool FaultInjectionEnv::crashed() const {
  MutexLock lock(&mu_);
  return crashed_;
}

std::vector<FaultOp> FaultInjectionEnv::op_trace() const {
  MutexLock lock(&mu_);
  return trace_;
}

Status FaultInjectionEnv::MakeFaultStatus(FaultKind kind, FaultOp op,
                                          uint64_t index,
                                          bool transient) const {
  std::string msg = StringPrintf(
      "injected %s fault at %s op %llu%s", FaultKindToString(kind),
      FaultOpToString(op), static_cast<unsigned long long>(index),
      transient ? " " : "");
  if (transient) msg += kTransientFaultMarker;
  if (kind == FaultKind::kENOSPC) {
    msg += " (no space left on device)";
    return Status::ResourceExhausted(std::move(msg));
  }
  return Status::IOError(std::move(msg));
}

FaultInjectionEnv::Decision FaultInjectionEnv::NextOp(FaultOp op,
                                                      size_t transfer_len) {
  MutexLock lock(&mu_);
  Decision d;
  if (IsMetadataOp(op) && !options_.count_metadata_ops) {
    return d;  // pass-through, uncounted
  }
  uint64_t index = ops_seen_++;
  trace_.push_back(op);
  if (crashed_) {
    ++faults_fired_;
    FaultsInjectedCounter().Increment();
    d.status = Status::IOError(StringPrintf(
        "injected crash: environment down since torn write (op %llu)",
        static_cast<unsigned long long>(index)));
    return d;
  }
  if (options_.fail_op_index == kNeverFail ||
      index < options_.fail_op_index ||
      (options_.repeat != UINT64_MAX &&
       index >= options_.fail_op_index + options_.repeat)) {
    return d;
  }
  FaultKind kind = EffectiveKind(options_.kind, op);
  ++faults_fired_;
  FaultsInjectedCounter().Increment();
  if (options_.transient && options_.repeat != UINT64_MAX &&
      index + 1 >= options_.fail_op_index + options_.repeat) {
    // Last scheduled firing of a transient fault: disarm so a retry of
    // the same operation (which gets a fresh index) succeeds.
    options_.fail_op_index = kNeverFail;
  }
  d.status = MakeFaultStatus(kind, op, index, options_.transient);
  if (kind == FaultKind::kShortRead || kind == FaultKind::kShortWrite ||
      kind == FaultKind::kTornWriteCrash) {
    // Seeded prefix: 0..transfer_len bytes actually make it through.
    uint64_t r = HashFinalize(options_.seed ^ (index * 0x9e3779b97f4a7c15ULL));
    d.short_transfer = true;
    d.prefix_len = transfer_len == 0
                       ? 0
                       : static_cast<size_t>(r % (transfer_len + 1));
  }
  if (kind == FaultKind::kTornWriteCrash) crashed_ = true;
  return d;
}

namespace {

/// File decorator consulting the owning FaultInjectionEnv before every
/// data operation. Close is deliberately not counted: teardown paths
/// must stay runnable so each sweep iteration can clean up after its
/// injected failure.
class FaultFile : public File {
 public:
  FaultFile(FaultInjectionEnv* env, std::unique_ptr<File> target)
      : env_(env), target_(std::move(target)) {}

  Status ReadAt(uint64_t offset, void* out, size_t n) override {
    FaultInjectionEnv::Decision d = env_->NextOp(FaultOp::kRead, n);
    if (d.status.ok()) return target_->ReadAt(offset, out, n);
    if (d.short_transfer && d.prefix_len > 0) {
      size_t got = 0;
      target_->ReadAtPartial(offset, out, d.prefix_len, &got).IgnoreError();
    }
    return d.status;
  }

  Status ReadAtPartial(uint64_t offset, void* out, size_t n,
                       size_t* bytes_read) override {
    FaultInjectionEnv::Decision d = env_->NextOp(FaultOp::kRead, n);
    if (d.status.ok()) {
      return target_->ReadAtPartial(offset, out, n, bytes_read);
    }
    *bytes_read = 0;
    if (d.short_transfer && d.prefix_len > 0) {
      target_->ReadAtPartial(offset, out, d.prefix_len, bytes_read)
          .IgnoreError();
    }
    return d.status;
  }

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    FaultInjectionEnv::Decision d = env_->NextOp(FaultOp::kWrite, n);
    if (d.status.ok()) return target_->WriteAt(offset, data, n);
    if (d.short_transfer && d.prefix_len > 0) {
      // The torn prefix really lands on disk — that is the point.
      target_->WriteAt(offset, data, d.prefix_len).IgnoreError();
    }
    return d.status;
  }

  Status Sync() override {
    FaultInjectionEnv::Decision d = env_->NextOp(FaultOp::kSync, 0);
    if (!d.status.ok()) return d.status;
    return target_->Sync();
  }

  Status Truncate(uint64_t size) override {
    // Counted as a write (it mutates durable state) with no transfer
    // bytes, so short-transfer kinds degrade to all-or-nothing.
    FaultInjectionEnv::Decision d = env_->NextOp(FaultOp::kWrite, 0);
    if (!d.status.ok()) return d.status;
    return target_->Truncate(size);
  }

  Result<uint64_t> Size() override {
    FaultInjectionEnv::Decision d = env_->NextOp(FaultOp::kSize, 0);
    if (!d.status.ok()) return d.status;
    return target_->Size();
  }

  Status Close() override { return target_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<File> target_;
};

}  // namespace

Result<std::unique_ptr<File>> FaultInjectionEnv::OpenFile(
    const std::string& path, OpenMode mode) {
  Decision d = NextOp(FaultOp::kOpen, 0);
  if (!d.status.ok()) return d.status;
  Result<std::unique_ptr<File>> file = target()->OpenFile(path, mode);
  if (!file.ok()) return file.status();
  return std::unique_ptr<File>(
      std::make_unique<FaultFile>(this, std::move(*file)));
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  Decision d = NextOp(FaultOp::kRemove, 0);
  if (!d.status.ok()) return d.status;
  return target()->RemoveFile(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  Decision d = NextOp(FaultOp::kRename, 0);
  if (!d.status.ok()) return d.status;
  return target()->RenameFile(from, to);
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  Decision d = NextOp(FaultOp::kSize, 0);
  if (!d.status.ok()) return d.status;
  return target()->FileSize(path);
}

}  // namespace x3
