#ifndef X3_UTIL_TIMER_H_
#define X3_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace x3 {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }
  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace x3

#endif  // X3_UTIL_TIMER_H_
