#ifndef X3_UTIL_TIMER_H_
#define X3_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace x3 {

/// The engine's single monotonic clock. Every wall-clock read in src/
/// outside this file and the tracer goes through this seam (the repo
/// lint rule `raw-clock` enforces it), so stage timings, deadlines and
/// trace timestamps all share one time base.
using MonotonicClock = std::chrono::steady_clock;

inline MonotonicClock::time_point MonotonicNow() {
  return MonotonicClock::now();
}

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Reset.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }
  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace x3

#endif  // X3_UTIL_TIMER_H_
