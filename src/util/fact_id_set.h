#ifndef X3_UTIL_FACT_ID_SET_H_
#define X3_UTIL_FACT_ID_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace x3 {

/// A roaring-style compressed set of fact ids (uint32 row indexes).
///
/// The cube algorithms are set-dominated: BUC partitions facts
/// recursively, the view store keeps contributing-fact lists per cell,
/// and iceberg conditions count distinct facts. A `std::vector` or
/// `std::unordered_set` of 4/8-byte ids costs 4-60 bytes per element;
/// this structure keys on the high 16 bits and stores each 64K-chunk
/// in one of two containers chosen by density:
///
///   array container:  sorted uint16 list, <= kArrayContainerMax
///                     (4096) elements — 2 bytes per sparse id.
///   bitmap container: 1024 x uint64 fixed bitmap (8 KB) — 0.125 bits
///                     overhead per possible id once a chunk is dense
///                     (> 4096 elements means < 16 bits per id, so the
///                     bitmap is always smaller past the threshold).
///
/// An array container promotes to a bitmap when an Add grows it past
/// kArrayContainerMax; an intersection that shrinks a bitmap to
/// <= kArrayContainerMax demotes it back. Iteration is always in
/// ascending id order — BUC partition walks preserve their previous
/// sorted-vector semantics exactly.
///
/// Union/intersection/cardinality ops feed x3_factset_*_total counters
/// in the metric registry.
///
/// Not thread-safe; use external synchronization (the view store
/// publishes sets under its own mutex).
class FactIdSet {
 public:
  /// Array containers at most this long; one past it they become
  /// bitmaps. 4096 * 2 bytes = the break-even point vs an 8 KB bitmap.
  static constexpr size_t kArrayContainerMax = 4096;

  FactIdSet() = default;

  /// Builds from any sequence of ids (need not be sorted or unique).
  static FactIdSet FromIds(const std::vector<uint32_t>& ids);

  /// Inserts `id` (idempotent). Amortized O(1) for ascending inserts;
  /// O(container size) worst case for random order into an array
  /// container.
  void Add(uint32_t id);

  bool Contains(uint32_t id) const;

  /// Number of distinct ids. O(1) — maintained incrementally.
  size_t cardinality() const { return cardinality_; }
  bool empty() const { return cardinality_ == 0; }

  void Clear();

  /// this |= other.
  void UnionWith(const FactIdSet& other);
  /// this &= other. Bitmap containers falling to or under
  /// kArrayContainerMax demote back to arrays.
  void IntersectWith(const FactIdSet& other);

  bool operator==(const FactIdSet& other) const;
  bool operator!=(const FactIdSet& other) const { return !(*this == other); }

  /// Calls `fn(uint32_t id)` for every element in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Chunk& chunk : chunks_) {
      uint32_t base = static_cast<uint32_t>(chunk.key) << 16;
      if (chunk.kind == ContainerKind::kArray) {
        for (uint16_t low : chunk.array) fn(base | low);
      } else {
        for (size_t word = 0; word < kBitmapWords; ++word) {
          uint64_t bits = chunk.bitmap[word];
          while (bits != 0) {
            int bit = __builtin_ctzll(bits);
            fn(base | static_cast<uint32_t>(word * 64 + bit));
            bits &= bits - 1;
          }
        }
      }
    }
  }

  /// Flattens to a sorted vector (compatibility shim for callers that
  /// still need contiguous ids, e.g. serialization).
  std::vector<uint32_t> ToVector() const;

  /// Heap bytes of the container storage (for MemoryBudget charging).
  size_t ApproxBytes() const;

 private:
  static constexpr size_t kBitmapWords = 65536 / 64;

  enum class ContainerKind : uint8_t { kArray, kBitmap };

  /// One 64K-aligned chunk of the id space. Exactly one of
  /// `array`/`bitmap` is active, per `kind` (a variant by hand: the
  /// inactive vector stays empty, so the space cost is three pointers).
  struct Chunk {
    uint16_t key = 0;  // id >> 16
    ContainerKind kind = ContainerKind::kArray;
    std::vector<uint16_t> array;   // sorted, unique
    std::vector<uint64_t> bitmap;  // kBitmapWords when active

    size_t Cardinality() const;
  };

  /// Chunk for `key`, created (as an empty array container) on demand.
  Chunk* FindOrCreateChunk(uint16_t key);
  const Chunk* FindChunk(uint16_t key) const;
  static void Promote(Chunk* chunk);
  /// Demotes a bitmap chunk back to an array when it fits.
  static void DemoteIfSmall(Chunk* chunk, size_t cardinality);
  static void UnionChunk(Chunk* dst, const Chunk& src);
  /// Returns the chunk's new cardinality (0 = caller should drop it).
  static size_t IntersectChunk(Chunk* dst, const Chunk& src);

  /// Sorted by key; no empty chunks.
  std::vector<Chunk> chunks_;
  size_t cardinality_ = 0;
};

}  // namespace x3

#endif  // X3_UTIL_FACT_ID_SET_H_
