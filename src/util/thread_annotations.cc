#include "util/thread_annotations.h"

#include <chrono>

#if defined(X3_DEBUG_LOCKS)
#include <cstdint>

#include "util/logging.h"
#endif

namespace x3 {

#if defined(X3_DEBUG_LOCKS)

namespace {

// Stable nonzero id for the calling thread. std::this_thread::get_id()
// is opaque; an address-of-thread_local counter scheme gives us a
// comparable integer without any platform calls.
uint64_t DebugThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local const uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Ranked mutexes this thread currently holds, in acquisition order.
// Unranked (kNone) mutexes are exempt from ordering and never pushed.
//
// A fixed-size POD stack, NOT a std::vector: it must be trivially
// destructible so it stays usable during atexit handlers. The
// X3_TRACE / X3_METRICS flush hooks take ranked mutexes (tracer,
// registry) after the main thread's nontrivial thread_locals have
// already been destroyed — with a vector here that bookkeeping was a
// use-after-free. The rank chain is short by construction, so a small
// constant capacity is plenty; overflow trips a check.
struct HeldStack {
  static constexpr size_t kMax = 64;
  const Mutex* items[kMax];
  size_t size;
};
thread_local HeldStack t_held{};

// Set while a rank-inversion report is being emitted: the fatal path
// itself logs (LogMessage may take the capture-sink mutex), and that
// acquisition must not re-enter the checker.
thread_local bool t_in_report = false;

void CheckRankAgainstHeld(const Mutex* mu) {
  if (t_in_report) return;
  for (size_t i = 0; i < t_held.size; ++i) {
    const Mutex* held = t_held.items[i];
    if (mu->rank() > held->rank()) continue;
    t_in_report = true;
    X3_CHECK(false) << "lock rank inversion: acquiring mutex rank "
                    << mu->rank() << " while holding rank " << held->rank()
                    << " (ranks must strictly increase toward leaf locks; "
                       "see x3::lock_rank in util/thread_annotations.h)";
  }
}

void NoteAcquired(const Mutex* mu, std::atomic<uint64_t>* holder) {
  holder->store(DebugThreadId(), std::memory_order_relaxed);
  if (mu->rank() == lock_rank::kNone || t_in_report) return;
  X3_CHECK(t_held.size < HeldStack::kMax)
      << "held-lock stack overflow: a thread holds " << HeldStack::kMax
      << " ranked mutexes at once";
  t_held.items[t_held.size++] = mu;
}

void NoteReleased(const Mutex* mu, std::atomic<uint64_t>* holder) {
  holder->store(0, std::memory_order_relaxed);
  if (mu->rank() == lock_rank::kNone || t_in_report) return;
  // Almost always the top of the stack, but out-of-order unlock of
  // hand-over-hand patterns is legal, so search from the back.
  for (size_t i = t_held.size; i > 0; --i) {
    if (t_held.items[i - 1] == mu) {
      for (size_t j = i - 1; j + 1 < t_held.size; ++j) {
        t_held.items[j] = t_held.items[j + 1];
      }
      --t_held.size;
      return;
    }
  }
}

}  // namespace

void Mutex::Lock() {
  CheckRankAgainstHeld(this);
  mu_.lock();
  NoteAcquired(this, &holder_);
}

void Mutex::Unlock() {
  NoteReleased(this, &holder_);
  mu_.unlock();
}

bool Mutex::TryLock() {
  // TryLock cannot deadlock, so rank order is not enforced; successful
  // acquisition still joins the held stack so locks taken *after* it
  // are ordered against it.
  if (!mu_.try_lock()) return false;
  NoteAcquired(this, &holder_);
  return true;
}

void Mutex::AssertHeld() const {
  X3_CHECK(holder_.load(std::memory_order_relaxed) == DebugThreadId())
      << "AssertHeld: mutex (rank " << rank_
      << ") is not held by the calling thread";
}

void CondVar::Wait(Mutex* mu) {
  // The underlying wait releases and reacquires mu->mu_; mirror that in
  // the debug bookkeeping so AssertHeld and the rank checker stay
  // truthful across the suspension.
  NoteReleased(mu, &mu->holder_);
  std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);  // x3-lint: allow(raw-mutex)
  cv_.wait(lk);
  lk.release();
  NoteAcquired(mu, &mu->holder_);
}

bool CondVar::WaitFor(Mutex* mu, double seconds) {
  NoteReleased(mu, &mu->holder_);
  std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);  // x3-lint: allow(raw-mutex)
  std::cv_status status =
      cv_.wait_for(lk, std::chrono::duration<double>(seconds));
  lk.release();
  NoteAcquired(mu, &mu->holder_);
  return status == std::cv_status::no_timeout;
}

#else  // !X3_DEBUG_LOCKS

void Mutex::Lock() { mu_.lock(); }
void Mutex::Unlock() { mu_.unlock(); }
bool Mutex::TryLock() { return mu_.try_lock(); }
void Mutex::AssertHeld() const {}

void CondVar::Wait(Mutex* mu) {
  std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);  // x3-lint: allow(raw-mutex)
  cv_.wait(lk);
  lk.release();
}

bool CondVar::WaitFor(Mutex* mu, double seconds) {
  std::unique_lock<std::mutex> lk(mu->mu_, std::adopt_lock);  // x3-lint: allow(raw-mutex)
  std::cv_status status =
      cv_.wait_for(lk, std::chrono::duration<double>(seconds));
  lk.release();
  return status == std::cv_status::no_timeout;
}

#endif  // X3_DEBUG_LOCKS

}  // namespace x3
