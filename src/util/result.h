#ifndef X3_UTIL_RESULT_H_
#define X3_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace x3 {

/// A value-or-error wrapper: either holds a `T` or a non-OK `Status`.
/// Analogous to `arrow::Result` / `absl::StatusOr`.
///
/// Usage:
///   Result<int> ParsePort(std::string_view s);
///   ...
///   X3_ASSIGN_OR_RETURN(int port, ParsePort(arg));
///
/// `[[nodiscard]]`: a dropped `Result` is a dropped error; call sites
/// must consume it (or its `.status()`).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit on purpose, mirrors StatusOr).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. `status.ok()` is a programming
  /// error (a Result must be either a value or an error).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    X3_DCHECK(!status_.ok() && "Result constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  [[nodiscard]] bool ok() const { return value_.has_value(); }

  /// The error status; `Status::OK()` when a value is held.
  [[nodiscard]] const Status& status() const& { return status_; }
  [[nodiscard]] Status status() && { return std::move(status_); }

  /// Accessors require `ok()`.
  [[nodiscard]] const T& value() const& {
    X3_DCHECK(ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    X3_DCHECK(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    X3_DCHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace x3

#endif  // X3_UTIL_RESULT_H_
