#ifndef X3_UTIL_RESULT_H_
#define X3_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace x3 {

/// A value-or-error wrapper: either holds a `T` or a non-OK `Status`.
/// Analogous to `arrow::Result` / `absl::StatusOr`.
///
/// Usage:
///   Result<int> ParsePort(std::string_view s);
///   ...
///   X3_ASSIGN_OR_RETURN(int port, ParsePort(arg));
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit on purpose, mirrors StatusOr).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. `status.ok()` is a programming
  /// error (a Result must be either a value or an error).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  /// The error status; `Status::OK()` when a value is held.
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// Accessors require `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace x3

#endif  // X3_UTIL_RESULT_H_
