#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace x3 {

namespace {

Counter& TasksCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_threadpool_tasks_total", "Tasks executed by thread-pool workers");
  return *c;
}

Histogram& QueueWaitHistogram() {
  static Histogram* h = MetricRegistry::Global().GetHistogram(
      "x3_threadpool_queue_wait_seconds",
      "Time tasks spent queued before a worker picked them up");
  return *h;
}

Gauge& QueueDepthGauge() {
  static Gauge* g = MetricRegistry::Global().GetGauge(
      "x3_threadpool_queue_depth",
      "Tasks queued on thread pools, not yet picked up by a worker");
  return *g;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(num_threads, 1);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  X3_CHECK(task != nullptr);
  {
    MutexLock lock(&mu_);
    X3_CHECK(!stopping_) << "Submit on a stopping ThreadPool";
    queue_.push_back(QueuedTask{std::move(task), Timer()});
  }
  QueueDepthGauge().Add(1);
  cv_.NotifyOne();
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

size_t ThreadPool::DefaultConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  // Name the worker's track in the global tracer so an exported trace
  // shows one labeled lane per pool thread in Perfetto.
  Tracer::Global().SetCurrentThreadName(
      StringPrintf("pool-worker-%zu", worker_index));
  for (;;) {
    QueuedTask task;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) cv_.Wait(&mu_);
      // Drain before exiting: stopping_ only ends the loop once the
      // queue is empty, so every submitted task runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    QueueDepthGauge().Add(-1);
    QueueWaitHistogram().Observe(task.queued.ElapsedSeconds());
    TasksCounter().Increment();
    task.fn();
  }
}

TaskGroup::~TaskGroup() {
  MutexLock lock(&mu_);
  while (pending_ != 0) done_cv_.Wait(&mu_);
}

void TaskGroup::Spawn(std::function<Status()> fn) {
  X3_CHECK(fn != nullptr);
  size_t index;
  {
    MutexLock lock(&mu_);
    X3_CHECK(!waited_) << "Spawn after Wait on a TaskGroup";
    index = statuses_.size();
    statuses_.push_back(Status::OK());
    ++pending_;
  }
  // Submit outside mu_: the pool lock (kThreadPool) ranks above the
  // group lock (kTaskGroup), but not holding mu_ here at all keeps the
  // critical section minimal and lets completions land immediately.
  pool_->Submit([this, index, fn = std::move(fn)] {
    Status status = fn();
    MutexLock lock(&mu_);
    statuses_[index] = std::move(status);
    if (--pending_ == 0) done_cv_.NotifyAll();
  });
}

Status TaskGroup::Wait() {
  MutexLock lock(&mu_);
  while (pending_ != 0) done_cv_.Wait(&mu_);
  waited_ = true;
  for (const Status& status : statuses_) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

}  // namespace x3
