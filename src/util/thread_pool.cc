#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace x3 {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(num_threads, 1);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  X3_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    X3_CHECK(!stopping_) << "Submit on a stopping ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

size_t ThreadPool::DefaultConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain before exiting: stopping_ only ends the loop once the
      // queue is empty, so every submitted task runs.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::Spawn(std::function<Status()> fn) {
  X3_CHECK(fn != nullptr);
  size_t index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    X3_CHECK(!waited_) << "Spawn after Wait on a TaskGroup";
    index = statuses_.size();
    statuses_.push_back(Status::OK());
    ++pending_;
  }
  pool_->Submit([this, index, fn = std::move(fn)] {
    Status status = fn();
    std::lock_guard<std::mutex> lock(mu_);
    statuses_[index] = std::move(status);
    if (--pending_ == 0) done_cv_.notify_all();
  });
}

Status TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  waited_ = true;
  for (const Status& status : statuses_) {
    if (!status.ok()) return status;
  }
  return Status::OK();
}

}  // namespace x3
