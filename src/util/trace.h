#ifndef X3_UTIL_TRACE_H_
#define X3_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace x3 {

class Env;  // util/env.h; used by pointer only

/// Span tracer: a bounded ring buffer of begin/end events with thread
/// ids, exportable as Chrome `trace_event` JSON (loadable in Perfetto
/// and chrome://tracing). Spans nest: each X3_TRACE_SPAN scope emits a
/// 'B' event at entry and an 'E' event at exit on the recording thread,
/// and the exporter pairs them per thread into duration slices.
///
/// Cost model (see DESIGN.md §9): recording is runtime-gated by one
/// relaxed atomic load — a disabled tracer costs one predictable branch
/// per span. An enabled tracer takes a mutex per event; spans are
/// placed at stage granularity (per cuboid, per sort, per spill), never
/// per row, so the lock is uncontended in practice. When the ring is
/// full the oldest events are overwritten (newest-wins, like a flight
/// recorder); `dropped()` reports how many were lost and the exporter
/// repairs the resulting orphan begin/end events so the JSON is always
/// well-formed.
///
/// Thread-safe for concurrent Begin/End/SetCurrentThreadName; Clear()
/// and the exporters take the same mutex, so they may run concurrently
/// with recording too (they see a consistent snapshot).
class Tracer {
 public:
  /// Labels longer than this are truncated (stored inline, no
  /// allocation on the recording path).
  static constexpr size_t kMaxLabel = 47;

  /// Default ring capacity, in events. A full cube run over the paper's
  /// 7-axis lattice emits on the order of 10^4 span events; 1<<16
  /// leaves an order of magnitude of headroom while bounding the ring
  /// at a few MiB.
  static constexpr size_t kDefaultCapacity = 1 << 16;

  struct Event {
    char label[kMaxLabel + 1];  // NUL-terminated, possibly truncated
    int64_t ts_us;              // monotonic-clock microseconds
    uint64_t qid;               // CurrentQueryId() at record time, 0 = none
    uint32_t tid;               // small per-thread id (CurrentThreadId)
    char phase;                 // 'B' = span begin, 'E' = span end
  };

  explicit Tracer(size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer every X3_TRACE_SPAN without an explicit
  /// context records into. Never destroyed.
  static Tracer& Global();

  /// Recording gate. Disabled (the default) makes Begin/End a single
  /// relaxed load; events already in the ring are kept.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Begin(std::string_view label) { Record('B', label); }
  void End(std::string_view label) { Record('E', label); }

  /// Names the calling thread's track in the exported trace (Chrome
  /// "thread_name" metadata). Recorded even while disabled: threads are
  /// usually created before tracing is switched on.
  void SetCurrentThreadName(std::string_view name) X3_EXCLUDES(mu_);

  /// Drops all recorded events, thread names and the dropped count.
  void Clear() X3_EXCLUDES(mu_);

  /// Events currently held (<= capacity).
  size_t size() const X3_EXCLUDES(mu_);
  /// Events overwritten because the ring was full.
  uint64_t dropped() const X3_EXCLUDES(mu_);
  /// Copy of the held events, oldest first.
  std::vector<Event> snapshot() const X3_EXCLUDES(mu_);

  /// Chrome trace_event JSON ({"traceEvents": [...]}): one matched
  /// B/E pair per surviving span, timestamps rebased to the earliest
  /// event, plus thread_name metadata. Span events recorded while a
  /// query id was established carry `"args":{"qid":N}`, so filtering on
  /// qid in Perfetto isolates one query's connected track. Orphans from
  /// ring overwrite are repaired: an end without a begin is dropped, a
  /// begin without an end is closed at its thread's last timestamp — so
  /// the output always satisfies the pairing/monotonicity invariants
  /// the golden tests check.
  std::string ToChromeTraceJson() const X3_EXCLUDES(mu_);

  /// Writes ToChromeTraceJson() to `path` through `env`.
  Status WriteChromeTrace(Env* env, const std::string& path) const
      X3_EXCLUDES(mu_);

  /// Small dense id of the calling thread (0, 1, 2, ... in first-use
  /// order). Stable for the thread's lifetime.
  static uint32_t CurrentThreadId();

 private:
  void Record(char phase, std::string_view label) X3_EXCLUDES(mu_);

  std::atomic<bool> enabled_{false};
  mutable Mutex mu_{lock_rank::kTracer};
  const size_t capacity_;
  /// Grows to capacity_, then wraps.
  std::vector<Event> ring_ X3_GUARDED_BY(mu_);
  size_t next_ X3_GUARDED_BY(mu_) = 0;    // ring slot of the next event
  uint64_t total_ X3_GUARDED_BY(mu_) = 0; // events ever recorded
  std::map<uint32_t, std::string> thread_names_ X3_GUARDED_BY(mu_);
};

#if defined(X3_ENABLE_TRACING)

/// RAII span: emits `label` begin at construction and end at scope
/// exit into `tracer`. Null or disabled tracer = no events. The label
/// is copied inline (no allocation), truncated to Tracer::kMaxLabel.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, std::string_view label)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr) {
    if (tracer_ != nullptr) {
      len_ = label.size() < Tracer::kMaxLabel ? label.size()
                                              : Tracer::kMaxLabel;
      std::memcpy(label_, label.data(), len_);
      tracer_->Begin(std::string_view(label_, len_));
    }
  }
  ~TraceSpan() {
    if (tracer_ != nullptr) tracer_->End(std::string_view(label_, len_));
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  Tracer* tracer_;
  size_t len_ = 0;
  char label_[Tracer::kMaxLabel];
};

#else  // !X3_ENABLE_TRACING

/// Tracing compiled out (X3_ENABLE_TRACING off): the span type is an
/// empty object with inline empty ctor/dtor, so every X3_TRACE_SPAN
/// compiles to nothing — the disabled-build guarantee of DESIGN.md §9.
/// The Tracer class itself stays available (exporters are still
/// testable); only span recording vanishes.
class TraceSpan {
 public:
  TraceSpan(Tracer*, std::string_view) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif  // X3_ENABLE_TRACING

#define X3_TRACE_CONCAT_INNER(a, b) a##b
#define X3_TRACE_CONCAT(a, b) X3_TRACE_CONCAT_INNER(a, b)

/// Opens a nestable trace span for the rest of the enclosing scope:
///   X3_TRACE_SPAN(ctx->tracer(), "compute");
///   X3_TRACE_SPAN(&Tracer::Global(), "spill");
/// Compiles to a no-op when X3_ENABLE_TRACING is off.
#define X3_TRACE_SPAN(tracer, label)                               \
  ::x3::TraceSpan X3_TRACE_CONCAT(x3_trace_span_, __LINE__)((tracer), \
                                                            (label))

namespace internal {

/// Re-reads the X3_TRACE environment variable; when set to a path,
/// enables the global tracer and remembers the path for FlushTraceAtExit.
/// Runs once at static initialization (which also registers the atexit
/// dump); exposed so tests can drive the hook directly.
bool InitTraceFromEnv();

/// Writes the global tracer's Chrome trace to the X3_TRACE path
/// (no-op when X3_TRACE was not set).
void FlushTraceAtExit();

}  // namespace internal
}  // namespace x3

#endif  // X3_UTIL_TRACE_H_
