#ifndef X3_UTIL_MEMORY_BUDGET_H_
#define X3_UTIL_MEMORY_BUDGET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace x3 {

/// Tracks logical memory consumption against a fixed budget.
///
/// The paper's experiments ran on a 1 GB machine with a 512 MB buffer
/// pool; the algorithmic crossovers (COUNTER thrashing into multi-pass
/// mode, TD falling back to external sorts) are driven by the ratio of
/// working-set size to available memory. `MemoryBudget` makes that ratio
/// an explicit, testable parameter: cube algorithms and the external
/// sorter charge their data structures here and switch to out-of-core
/// strategies when a reservation fails.
///
/// Thread-safe: one budget is shared by every worker of a parallel cube
/// execution. `Reserve` enforces the capacity as a hard cap via a CAS
/// loop (concurrent reservations can never overshoot it together);
/// `ForceReserve` remains the documented overshoot path. A
/// WouldFit-then-ForceReserve sequence is not atomic — callers that
/// need the hard cap must use Reserve.
///
/// Deliberately lock-free (no x3::Mutex, no capability annotations):
/// Reserve/Release sit on every allocation-heavy loop, and the atomics
/// carry no invariant that spans more than one word. That also means
/// the budget can be charged while holding ANY engine lock without
/// entering the lock-order ranking — spill paths charge it under the
/// executor scheduler lock and release it from worker unwinds.
///
/// A budget of 0 means "unlimited" (everything stays in memory).
class MemoryBudget {
 public:
  /// Creates a budget of `capacity_bytes`; 0 = unlimited.
  explicit MemoryBudget(size_t capacity_bytes = 0)
      : capacity_(capacity_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Attempts to reserve `bytes`; fails with ResourceExhausted when the
  /// reservation would exceed capacity. Under concurrency the capacity
  /// is a hard cap: of several racing reservations, only those that
  /// together still fit can succeed.
  Status Reserve(size_t bytes);

  /// Reserves unconditionally (used where overshoot is accounted but
  /// unavoidable, e.g. a single oversized record).
  void ForceReserve(size_t bytes);

  /// Releases a prior reservation (clamped at zero).
  void Release(size_t bytes);

  /// True if `bytes` more would still fit. Advisory under concurrency:
  /// another thread may reserve between this check and a follow-up
  /// Reserve/ForceReserve.
  bool WouldFit(size_t bytes) const {
    return capacity_ == 0 ||
           used_.load(std::memory_order_relaxed) + bytes <= capacity_;
  }

  size_t capacity() const { return capacity_; }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t available() const {
    if (capacity_ == 0) return SIZE_MAX;
    size_t used = this->used();
    return used >= capacity_ ? 0 : capacity_ - used;
  }
  bool unlimited() const { return capacity_ == 0; }

  /// Peak usage observed (for reporting).
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  void UpdatePeak(size_t now);

  size_t capacity_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
};

/// RAII reservation helper.
class ScopedReservation {
 public:
  ScopedReservation(MemoryBudget* budget, size_t bytes)
      : budget_(budget), bytes_(bytes) {
    budget_->ForceReserve(bytes_);
  }
  ~ScopedReservation() { budget_->Release(bytes_); }

  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;

 private:
  MemoryBudget* budget_;
  size_t bytes_;
};

}  // namespace x3

#endif  // X3_UTIL_MEMORY_BUDGET_H_
