#ifndef X3_UTIL_MEMORY_BUDGET_H_
#define X3_UTIL_MEMORY_BUDGET_H_

#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace x3 {

/// Tracks logical memory consumption against a fixed budget.
///
/// The paper's experiments ran on a 1 GB machine with a 512 MB buffer
/// pool; the algorithmic crossovers (COUNTER thrashing into multi-pass
/// mode, TD falling back to external sorts) are driven by the ratio of
/// working-set size to available memory. `MemoryBudget` makes that ratio
/// an explicit, testable parameter: cube algorithms and the external
/// sorter charge their data structures here and switch to out-of-core
/// strategies when a reservation fails.
///
/// A budget of 0 means "unlimited" (everything stays in memory).
class MemoryBudget {
 public:
  /// Creates a budget of `capacity_bytes`; 0 = unlimited.
  explicit MemoryBudget(size_t capacity_bytes = 0)
      : capacity_(capacity_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Attempts to reserve `bytes`; fails with ResourceExhausted when the
  /// reservation would exceed capacity.
  Status Reserve(size_t bytes);

  /// Reserves unconditionally (used where overshoot is accounted but
  /// unavoidable, e.g. a single oversized record).
  void ForceReserve(size_t bytes) {
    used_ += bytes;
    if (used_ > peak_) peak_ = used_;
  }

  /// Releases a prior reservation.
  void Release(size_t bytes);

  /// True if `bytes` more would still fit.
  bool WouldFit(size_t bytes) const {
    return capacity_ == 0 || used_ + bytes <= capacity_;
  }

  size_t capacity() const { return capacity_; }
  size_t used() const { return used_; }
  size_t available() const {
    if (capacity_ == 0) return SIZE_MAX;
    return used_ >= capacity_ ? 0 : capacity_ - used_;
  }
  bool unlimited() const { return capacity_ == 0; }

  /// Peak usage observed (for reporting).
  size_t peak() const { return peak_; }

 private:
  size_t capacity_;
  size_t used_ = 0;
  size_t peak_ = 0;
};

/// RAII reservation helper.
class ScopedReservation {
 public:
  ScopedReservation(MemoryBudget* budget, size_t bytes)
      : budget_(budget), bytes_(bytes) {
    budget_->ForceReserve(bytes_);
  }
  ~ScopedReservation() { budget_->Release(bytes_); }

  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;

 private:
  MemoryBudget* budget_;
  size_t bytes_;
};

}  // namespace x3

#endif  // X3_UTIL_MEMORY_BUDGET_H_
