#include "util/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace x3 {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path,
                         int err) {
  return what + " " + path + ": " + std::strerror(err);
}

// Engine-wide I/O metrics (DESIGN.md §9). The counters live in the
// POSIX layer so the Env decorators (fault injection, retry) stack on
// top without double counting: however deep the decorator chain, a
// physical operation lands here exactly once.
Counter& ReadsCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_env_reads_total", "File read calls served by the POSIX Env");
  return *c;
}
Counter& ReadBytesCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_env_read_bytes_total", "Bytes read through the POSIX Env");
  return *c;
}
Counter& WritesCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_env_writes_total", "File write calls served by the POSIX Env");
  return *c;
}
Counter& WrittenBytesCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_env_written_bytes_total", "Bytes written through the POSIX Env");
  return *c;
}
Counter& SyncsCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_env_syncs_total", "fsync calls served by the POSIX Env");
  return *c;
}
Counter& OpensCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_env_opens_total", "Files opened through the POSIX Env");
  return *c;
}
Counter& RemovesCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_env_removes_total", "Files removed through the POSIX Env");
  return *c;
}
Counter& RenamesCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_env_renames_total", "Files renamed through the POSIX Env");
  return *c;
}
Counter& RetriesCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_env_retries_total",
      "Operations retried by RetryEnv after a transient fault");
  return *c;
}

/// POSIX positional file: pread/pwrite with off_t offsets (no seek
/// state, no `long` arithmetic — the pre-Env PageFile overflowed past
/// 2 GiB in exactly that arithmetic).
class PosixFile : public File {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixFile() override { Close().IgnoreError(); }

  Status ReadAt(uint64_t offset, void* out, size_t n) override {
    size_t got = 0;
    X3_RETURN_IF_ERROR(ReadAtPartial(offset, out, n, &got));
    if (got != n) {
      return Status::IOError(StringPrintf(
          "short read of %zu bytes at offset %llu from %s (got %zu)", n,
          static_cast<unsigned long long>(offset), path_.c_str(), got));
    }
    return Status::OK();
  }

  Status ReadAtPartial(uint64_t offset, void* out, size_t n,
                       size_t* bytes_read) override {
    *bytes_read = 0;
    X3_RETURN_IF_ERROR(CheckOpenAndOffset(offset, n));
    ReadsCounter().Increment();
    char* dst = static_cast<char*>(out);
    while (*bytes_read < n) {
      ssize_t rc = ::pread(fd_, dst + *bytes_read, n - *bytes_read,
                           static_cast<off_t>(offset + *bytes_read));
      if (rc < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("read failed on", path_, errno));
      }
      if (rc == 0) break;  // EOF
      *bytes_read += static_cast<size_t>(rc);
    }
    ReadBytesCounter().Increment(*bytes_read);
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    X3_RETURN_IF_ERROR(CheckOpenAndOffset(offset, n));
    WritesCounter().Increment();
    const char* src = static_cast<const char*>(data);
    size_t written = 0;
    while (written < n) {
      ssize_t rc = ::pwrite(fd_, src + written, n - written,
                            static_cast<off_t>(offset + written));
      if (rc < 0) {
        if (errno == EINTR) continue;
        WrittenBytesCounter().Increment(written);
        return Status::IOError(ErrnoMessage("write failed on", path_, errno));
      }
      written += static_cast<size_t>(rc);
    }
    WrittenBytesCounter().Increment(written);
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::Internal("sync on closed file " + path_);
    SyncsCounter().Increment();
    if (::fsync(fd_) != 0) {
      return Status::IOError(ErrnoMessage("fsync failed on", path_, errno));
    }
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    X3_RETURN_IF_ERROR(CheckOpenAndOffset(size, 0));
    WritesCounter().Increment();
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::IOError(ErrnoMessage("ftruncate failed on", path_, errno));
    }
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    if (fd_ < 0) return Status::Internal("size of closed file " + path_);
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IOError(ErrnoMessage("fstat failed on", path_, errno));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::IOError(ErrnoMessage("close failed on", path_, errno));
    }
    return Status::OK();
  }

 private:
  Status CheckOpenAndOffset(uint64_t offset, size_t n) const {
    if (fd_ < 0) return Status::Internal("I/O on closed file " + path_);
    if (offset + n < offset || offset + n > static_cast<uint64_t>(INT64_MAX)) {
      return Status::OutOfRange(StringPrintf(
          "file offset %llu + %zu out of range on %s",
          static_cast<unsigned long long>(offset), n, path_.c_str()));
    }
    return Status::OK();
  }

  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         OpenMode mode) override {
    int flags = 0;
    switch (mode) {
      case OpenMode::kReadOnly:
        flags = O_RDONLY;
        break;
      case OpenMode::kReadWrite:
        flags = O_RDWR | O_CREAT;
        break;
      case OpenMode::kTruncate:
        flags = O_RDWR | O_CREAT | O_TRUNC;
        break;
    }
    int fd = ::open(path.c_str(), flags | O_CLOEXEC, 0644);
    if (fd < 0) {
      if (errno == ENOENT) {
        return Status::NotFound(ErrnoMessage("cannot open", path, errno));
      }
      return Status::IOError(ErrnoMessage("cannot open", path, errno));
    }
    OpensCounter().Increment();
    return std::unique_ptr<File>(std::make_unique<PosixFile>(fd, path));
  }

  Status RemoveFile(const std::string& path) override {
    RemovesCounter().Increment();
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) {
        return Status::NotFound(ErrnoMessage("cannot remove", path, errno));
      }
      return Status::IOError(ErrnoMessage("cannot remove", path, errno));
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    RenamesCounter().Increment();
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError(
          ErrnoMessage("cannot rename", from + " -> " + to, errno));
    }
    return Status::OK();
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) {
        return Status::NotFound(ErrnoMessage("cannot stat", path, errno));
      }
      return Status::IOError(ErrnoMessage("cannot stat", path, errno));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // x3-lint: allow(raw-new-delete) -- intentionally leaked process singleton
  return env;
}

bool IsTransientFault(const Status& s) {
  return !s.ok() &&
         s.message().find(kTransientFaultMarker) != std::string::npos;
}

Status RetryEnv::RunWithRetry(const std::function<Status()>& op) {
  Status s = op();
  for (int attempt = 1; attempt < policy_.max_attempts && IsTransientFault(s);
       ++attempt) {
    uint64_t backoff = policy_.backoff_base_ms
                       << static_cast<unsigned>(attempt - 1);
    backoff_ms_ += backoff;
    if (policy_.sleep) policy_.sleep(backoff);
    ++retries_;
    RetriesCounter().Increment();
    s = op();
  }
  return s;
}

namespace {

/// Retries the wrapped file's operations under the owning RetryEnv's
/// policy. The env must outlive its files (the usual Env contract).
class RetryFile : public File {
 public:
  RetryFile(RetryEnv* env, std::unique_ptr<File> target)
      : env_(env), target_(std::move(target)) {}

  Status ReadAt(uint64_t offset, void* out, size_t n) override {
    return Retry([&] { return target_->ReadAt(offset, out, n); });
  }
  Status ReadAtPartial(uint64_t offset, void* out, size_t n,
                       size_t* bytes_read) override {
    return Retry(
        [&] { return target_->ReadAtPartial(offset, out, n, bytes_read); });
  }
  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    return Retry([&] { return target_->WriteAt(offset, data, n); });
  }
  Status Sync() override {
    return Retry([&] { return target_->Sync(); });
  }
  Status Truncate(uint64_t size) override {
    return Retry([&] { return target_->Truncate(size); });
  }
  Result<uint64_t> Size() override { return target_->Size(); }
  Status Close() override { return target_->Close(); }

 private:
  Status Retry(const std::function<Status()>& op);

  RetryEnv* env_;
  std::unique_ptr<File> target_;
};

Status RetryFile::Retry(const std::function<Status()>& op) {
  return env_->RunWithRetry(op);
}

}  // namespace

Result<std::unique_ptr<File>> RetryEnv::OpenFile(const std::string& path,
                                                 OpenMode mode) {
  Result<std::unique_ptr<File>> result = target()->OpenFile(path, mode);
  for (int attempt = 1;
       attempt < policy_.max_attempts && !result.ok() &&
       IsTransientFault(result.status());
       ++attempt) {
    uint64_t backoff = policy_.backoff_base_ms
                       << static_cast<unsigned>(attempt - 1);
    backoff_ms_ += backoff;
    if (policy_.sleep) policy_.sleep(backoff);
    ++retries_;
    RetriesCounter().Increment();
    result = target()->OpenFile(path, mode);
  }
  if (!result.ok()) return result.status();
  return std::unique_ptr<File>(
      std::make_unique<RetryFile>(this, std::move(*result)));
}

Status RetryEnv::RemoveFile(const std::string& path) {
  return RunWithRetry([&] { return target()->RemoveFile(path); });
}

Status RetryEnv::RenameFile(const std::string& from, const std::string& to) {
  return RunWithRetry([&] { return target()->RenameFile(from, to); });
}

Result<uint64_t> RetryEnv::FileSize(const std::string& path) {
  uint64_t size = 0;
  Status s = RunWithRetry([&]() -> Status {
    Result<uint64_t> r = target()->FileSize(path);
    if (!r.ok()) return r.status();
    size = *r;
    return Status::OK();
  });
  if (!s.ok()) return s;
  return size;
}

SequentialFileWriter::~SequentialFileWriter() { Close().IgnoreError(); }

Status SequentialFileWriter::Open(Env* env, const std::string& path) {
  if (file_ != nullptr) {
    return Status::AlreadyExists("writer already open: " + path_);
  }
  X3_ASSIGN_OR_RETURN(file_, env->OpenFile(path, OpenMode::kTruncate));
  path_ = path;
  buffer_.clear();
  buffer_.reserve(kBufferSize);
  offset_ = 0;
  status_ = Status::OK();
  return Status::OK();
}

Status SequentialFileWriter::Append(const void* data, size_t n) {
  if (!status_.ok()) return status_;
  if (file_ == nullptr) {
    return Status::Internal("append to closed writer " + path_);
  }
  buffer_.append(static_cast<const char*>(data), n);
  if (buffer_.size() >= kBufferSize) return Flush();
  return Status::OK();
}

Status SequentialFileWriter::Flush() {
  if (!status_.ok()) return status_;
  if (file_ == nullptr) {
    return Status::Internal("flush of closed writer " + path_);
  }
  if (buffer_.empty()) return Status::OK();
  status_ = file_->WriteAt(offset_, buffer_.data(), buffer_.size());
  if (!status_.ok()) return status_;
  offset_ += buffer_.size();
  buffer_.clear();
  return Status::OK();
}

Status SequentialFileWriter::Sync() {
  X3_RETURN_IF_ERROR(Flush());
  status_ = file_->Sync();
  return status_;
}

Status SequentialFileWriter::Close() {
  if (file_ == nullptr) return status_;
  Status flush = Flush();
  Status close = file_->Close();
  file_.reset();
  if (!status_.ok()) return status_;
  if (!flush.ok()) return flush;
  return close;
}

Status SequentialFileReader::Open(Env* env, const std::string& path) {
  if (file_ != nullptr) {
    return Status::AlreadyExists("reader already open: " + path_);
  }
  X3_ASSIGN_OR_RETURN(file_, env->OpenFile(path, OpenMode::kReadOnly));
  path_ = path;
  buffer_.clear();
  pos_ = 0;
  offset_ = 0;
  eof_ = false;
  return Status::OK();
}

Status SequentialFileReader::Read(void* out, size_t n) {
  size_t got = 0;
  X3_RETURN_IF_ERROR(ReadPartial(out, n, &got));
  if (got != n) {
    return Status::IOError(StringPrintf(
        "unexpected end of %s: wanted %zu bytes, got %zu", path_.c_str(), n,
        got));
  }
  return Status::OK();
}

Status SequentialFileReader::ReadPartial(void* out, size_t n,
                                         size_t* bytes_read) {
  *bytes_read = 0;
  if (file_ == nullptr) {
    return Status::Internal("read from closed reader " + path_);
  }
  char* dst = static_cast<char*>(out);
  while (*bytes_read < n) {
    if (pos_ < buffer_.size()) {
      size_t take = std::min(n - *bytes_read, buffer_.size() - pos_);
      std::memcpy(dst + *bytes_read, buffer_.data() + pos_, take);
      pos_ += take;
      *bytes_read += take;
      continue;
    }
    if (eof_) break;
    buffer_.resize(kBufferSize);
    size_t got = 0;
    Status s = file_->ReadAtPartial(offset_, buffer_.data(), kBufferSize, &got);
    if (!s.ok()) {
      buffer_.clear();
      pos_ = 0;
      return s;
    }
    buffer_.resize(got);
    pos_ = 0;
    offset_ += got;
    if (got == 0) eof_ = true;
  }
  return Status::OK();
}

Status SequentialFileReader::Close() {
  if (file_ == nullptr) return Status::OK();
  Status s = file_->Close();
  file_.reset();
  buffer_.clear();
  pos_ = 0;
  return s;
}

Status ReadFileToString(Env* env, const std::string& path, std::string* out) {
  if (env == nullptr) env = Env::Default();
  out->clear();
  X3_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      env->OpenFile(path, OpenMode::kReadOnly));
  X3_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  out->resize(static_cast<size_t>(size));
  if (size > 0) {
    Status s = file->ReadAt(0, out->data(), out->size());
    if (!s.ok()) {
      out->clear();
      file->Close().IgnoreError();
      return s;
    }
  }
  return file->Close();
}

Status WriteStringToFile(Env* env, const std::string& path,
                         std::string_view data, bool sync) {
  if (env == nullptr) env = Env::Default();
  X3_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                      env->OpenFile(path, OpenMode::kTruncate));
  Status s = data.empty()
                 ? Status::OK()
                 : file->WriteAt(0, data.data(), data.size());
  if (s.ok() && sync) s = file->Sync();
  Status close = file->Close();
  if (!s.ok()) return s;
  return close;
}

}  // namespace x3
