#ifndef X3_UTIL_COMPRESS_H_
#define X3_UTIL_COMPRESS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace x3 {

/// An LZ4-class byte-oriented block codec, implemented in-repo (the
/// toolchain image carries no compression library). Greedy hash-table
/// match finder over a 64 KB offset window, token format close to LZ4's
/// sequence encoding:
///
///   sequence := token | literal-len-ext* | literals
///               | offset(2, LE) | match-len-ext*
///   token    := (literal_len : 4 bits high) (match_len - 4 : 4 bits low)
///
/// A 4-bit length field of 15 is followed by extension bytes (each
/// adding 0..255, terminated by a byte < 255). The final sequence of a
/// block carries literals only (offset omitted, match nibble 0). Blocks
/// are self-terminating: decompression consumes exactly `src_size`
/// bytes and fails with Corruption on truncated or malformed input
/// instead of reading past either buffer.
///
/// The codec is deliberately frame-less: callers (spill-run blocks in
/// ExternalSorter, the page-body codec in PageFile) add their own
/// raw-size/codec-byte framing and checksums around it.

/// Worst-case compressed size of a `raw_size` block (all-literal
/// encoding plus extension bytes). Compressing into a buffer of this
/// capacity never fails.
constexpr size_t MaxCompressedSize(size_t raw_size) {
  return raw_size + raw_size / 255 + 16;
}

/// Compresses `src[0, src_size)` into `dst[0, dst_capacity)`. Returns
/// the compressed size, or 0 when the encoded block would not fit in
/// `dst_capacity` (callers that must not fail pass
/// MaxCompressedSize(src_size); callers that store raw on expansion
/// pass a tighter capacity and fall back on 0). A zero-length input
/// compresses to an empty block of size 0 as well — disambiguate with
/// src_size == 0 when that matters.
size_t CompressBlock(const uint8_t* src, size_t src_size, uint8_t* dst,
                     size_t dst_capacity);

/// Decompresses a block produced by CompressBlock, consuming exactly
/// `src[0, src_size)`. Returns the decompressed size (<= dst_capacity)
/// or Corruption on malformed input: truncated sequences, offsets past
/// the start of output, or output exceeding `dst_capacity`. Never reads
/// or writes out of bounds on any input.
Result<size_t> DecompressBlock(const uint8_t* src, size_t src_size,
                               uint8_t* dst, size_t dst_capacity);

/// String conveniences for callers that frame with length prefixes.
void CompressString(std::string_view raw, std::string* out);
Result<std::string> DecompressString(std::string_view block,
                                     size_t raw_size);

}  // namespace x3

#endif  // X3_UTIL_COMPRESS_H_
