#ifndef X3_UTIL_QUERY_ID_H_
#define X3_UTIL_QUERY_ID_H_

#include <cstdint>

namespace x3 {

/// Per-thread current query id, the attribution key of the query
/// observability plane (DESIGN.md §13). X3Server::Submit mints a
/// monotonically increasing id per accepted request; ScopedQueryId
/// establishes it on whichever thread is doing that query's work
/// (server worker, parallel-executor pool worker), and the tracer and
/// logger read it implicitly so every span and log line carries a
/// `qid` without threading a parameter through each call signature.
///
/// Id 0 is reserved for "no query" (engine used directly, startup,
/// background maintenance) — consumers skip the annotation for it.
///
/// Header-only and dependency-free on purpose: trace.cc and logging.cc
/// both sit below everything else in the layering and must be able to
/// include this without a cycle.
namespace query_id {

inline thread_local uint64_t g_current_query_id = 0;

}  // namespace query_id

/// Query id attributed to the calling thread, 0 when none.
inline uint64_t CurrentQueryId() { return query_id::g_current_query_id; }

/// RAII: attributes the enclosing scope's work to `qid`, restoring the
/// previous id (usually 0) on exit. Nestable; used at the two places a
/// thread starts running on behalf of a query — X3Server::RunTask and
/// the parallel executor's task bodies.
class ScopedQueryId {
 public:
  explicit ScopedQueryId(uint64_t qid)
      : previous_(query_id::g_current_query_id) {
    query_id::g_current_query_id = qid;
  }
  ~ScopedQueryId() { query_id::g_current_query_id = previous_; }

  ScopedQueryId(const ScopedQueryId&) = delete;
  ScopedQueryId& operator=(const ScopedQueryId&) = delete;

 private:
  uint64_t previous_;
};

}  // namespace x3

#endif  // X3_UTIL_QUERY_ID_H_
