#include "util/status.h"

namespace x3 {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace x3
