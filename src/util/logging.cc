#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <string>

#include "util/query_id.h"
#include "util/thread_annotations.h"

namespace x3 {
namespace {

std::atomic<int> g_log_level{-1};

// Capture sink (test-only). The atomic is the fast-path gate — the
// normal case loads one relaxed bool and never touches the mutex; the
// guarded pair is only read under the lock once the gate says a sink
// may be installed. Constant-initialized (constexpr Mutex), so capture
// works during static init and at exit.
std::atomic<bool> g_capture_installed{false};
constinit Mutex g_capture_mu(lock_rank::kLogCapture);
LogCaptureFn g_capture_fn X3_GUARDED_BY(g_capture_mu) = nullptr;
void* g_capture_arg X3_GUARDED_BY(g_capture_mu) = nullptr;

int InitialLevel() {
  const char* env = std::getenv("X3_LOG_LEVEL");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 0 && v <= 4) return v;
  }
  return static_cast<int>(LogLevel::kWarning);
}

}  // namespace

LogLevel GetLogLevel() {
  int v = g_log_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = InitialLevel();
    g_log_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogCaptureForTest(LogCaptureFn fn, void* arg) {
  MutexLock lock(&g_capture_mu);
  g_capture_fn = fn;
  g_capture_arg = arg;
  g_capture_installed.store(fn != nullptr, std::memory_order_release);
}

namespace internal {

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories for brevity.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  // Attribute the line to the in-flight query when one is established
  // on this thread (ScopedQueryId), mirroring the qid arg on trace
  // spans — grep `qid=N` across stderr and the Chrome trace to follow
  // one query end to end.
  if (uint64_t qid = CurrentQueryId(); qid != 0) {
    stream_ << "qid=" << qid << " ";
  }
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  // Terminal output, not file I/O: the Env seam does not apply. The
  // whole buffered line goes out in ONE stdio call: stderr is
  // unbuffered, so a single fwrite maps to a single write(2) and
  // concurrent loggers can interleave only at line granularity — never
  // mid-line (the torn-log regression in tests/logging_test.cc).
  const std::string line = stream_.str();
  bool captured = false;
  if (g_capture_installed.load(std::memory_order_acquire)) {
    MutexLock lock(&g_capture_mu);
    if (g_capture_fn != nullptr) {
      g_capture_fn(level_, line.data(), line.size(), g_capture_arg);
      captured = true;
    }
  }
  // A fatal line is emitted to stderr even while captured: the abort
  // below means whoever installed the sink never gets to read it.
  if (!captured || level_ == LogLevel::kFatal) {
    size_t written = std::fwrite(line.data(), 1, line.size(), stderr);  // x3-lint: allow(raw-stdio)
    (void)written;  // stderr gone: nothing useful left to do
  }
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);  // x3-lint: allow(raw-stdio) -- stderr
    std::abort();
  }
}

}  // namespace internal
}  // namespace x3
