#ifndef X3_UTIL_STATUS_H_
#define X3_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

namespace x3 {

/// Error categories used across the library. Mirrors the coarse taxonomy
/// used by storage engines (RocksDB/Arrow style): a small closed set of
/// codes plus a free-form message.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kIOError,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kParseError,
  kCancelled,
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. The library does not throw
/// exceptions across API boundaries; fallible operations return `Status`
/// (or `Result<T>`, see result.h).
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// message only on error.
///
/// The class is `[[nodiscard]]`: any call site that drops a returned
/// `Status` on the floor is a build error (-Werror=unused-result).
/// Deliberately ignoring an error must be spelled `.IgnoreError()` so it
/// survives code review and the repo lint (scripts/x3_lint.py forbids
/// discarding via a void cast).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Explicitly consumes an error status. The only sanctioned way to
  /// drop a `Status`: best-effort cleanup paths where the primary error
  /// has already been recorded. Grep-able, unlike `(void)`.
  void IgnoreError() const {}

  /// "OK" or "<Code>: <message>".
  [[nodiscard]] std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace x3

/// Propagates an error status from an expression; evaluates `expr` once.
#define X3_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::x3::Status _x3_status = (expr);             \
    if (!_x3_status.ok()) return _x3_status;      \
  } while (0)

/// Evaluates a Result<T> expression; on error returns the status, on
/// success assigns the value to `lhs`.
#define X3_ASSIGN_OR_RETURN(lhs, expr)            \
  X3_ASSIGN_OR_RETURN_IMPL(                       \
      X3_CONCAT_(_x3_result_, __LINE__), lhs, expr)

#define X3_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr)  \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define X3_CONCAT_(a, b) X3_CONCAT_IMPL_(a, b)
#define X3_CONCAT_IMPL_(a, b) a##b

#endif  // X3_UTIL_STATUS_H_
