#include "util/fact_id_set.h"

#include <algorithm>

#include "util/metrics.h"

namespace x3 {

namespace {

Counter& UnionsCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_factset_unions_total", "FactIdSet union operations");
  return *c;
}

Counter& IntersectionsCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_factset_intersections_total", "FactIdSet intersection operations");
  return *c;
}

Counter& PromotionsCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_factset_container_promotions_total",
      "FactIdSet array containers promoted to bitmaps");
  return *c;
}

inline bool BitmapTest(const std::vector<uint64_t>& bitmap, uint16_t low) {
  return (bitmap[low >> 6] >> (low & 63)) & 1;
}

inline void BitmapSet(std::vector<uint64_t>& bitmap, uint16_t low) {
  bitmap[low >> 6] |= uint64_t{1} << (low & 63);
}

}  // namespace

size_t FactIdSet::Chunk::Cardinality() const {
  if (kind == ContainerKind::kArray) return array.size();
  size_t n = 0;
  for (uint64_t word : bitmap) n += __builtin_popcountll(word);
  return n;
}

FactIdSet FactIdSet::FromIds(const std::vector<uint32_t>& ids) {
  FactIdSet set;
  for (uint32_t id : ids) set.Add(id);
  return set;
}

FactIdSet::Chunk* FactIdSet::FindOrCreateChunk(uint16_t key) {
  auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), key,
      [](const Chunk& chunk, uint16_t k) { return chunk.key < k; });
  if (it != chunks_.end() && it->key == key) return &*it;
  it = chunks_.insert(it, Chunk{});
  it->key = key;
  return &*it;
}

const FactIdSet::Chunk* FactIdSet::FindChunk(uint16_t key) const {
  auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), key,
      [](const Chunk& chunk, uint16_t k) { return chunk.key < k; });
  if (it != chunks_.end() && it->key == key) return &*it;
  return nullptr;
}

void FactIdSet::Promote(Chunk* chunk) {
  std::vector<uint64_t> bitmap(kBitmapWords, 0);
  for (uint16_t low : chunk->array) BitmapSet(bitmap, low);
  chunk->array.clear();
  chunk->array.shrink_to_fit();
  chunk->bitmap = std::move(bitmap);
  chunk->kind = ContainerKind::kBitmap;
  PromotionsCounter().Increment();
}

void FactIdSet::DemoteIfSmall(Chunk* chunk, size_t cardinality) {
  if (chunk->kind != ContainerKind::kBitmap ||
      cardinality > kArrayContainerMax) {
    return;
  }
  std::vector<uint16_t> array;
  array.reserve(cardinality);
  for (size_t word = 0; word < kBitmapWords; ++word) {
    uint64_t bits = chunk->bitmap[word];
    while (bits != 0) {
      int bit = __builtin_ctzll(bits);
      array.push_back(static_cast<uint16_t>(word * 64 + bit));
      bits &= bits - 1;
    }
  }
  chunk->bitmap.clear();
  chunk->bitmap.shrink_to_fit();
  chunk->array = std::move(array);
  chunk->kind = ContainerKind::kArray;
}

void FactIdSet::Add(uint32_t id) {
  Chunk* chunk = FindOrCreateChunk(static_cast<uint16_t>(id >> 16));
  uint16_t low = static_cast<uint16_t>(id);
  if (chunk->kind == ContainerKind::kBitmap) {
    if (BitmapTest(chunk->bitmap, low)) return;
    BitmapSet(chunk->bitmap, low);
    ++cardinality_;
    return;
  }
  // Fast path: ascending inserts append.
  if (chunk->array.empty() || chunk->array.back() < low) {
    chunk->array.push_back(low);
  } else {
    auto it =
        std::lower_bound(chunk->array.begin(), chunk->array.end(), low);
    if (it != chunk->array.end() && *it == low) return;
    chunk->array.insert(it, low);
  }
  ++cardinality_;
  if (chunk->array.size() > kArrayContainerMax) Promote(chunk);
}

bool FactIdSet::Contains(uint32_t id) const {
  const Chunk* chunk = FindChunk(static_cast<uint16_t>(id >> 16));
  if (chunk == nullptr) return false;
  uint16_t low = static_cast<uint16_t>(id);
  if (chunk->kind == ContainerKind::kBitmap) {
    return BitmapTest(chunk->bitmap, low);
  }
  return std::binary_search(chunk->array.begin(), chunk->array.end(), low);
}

void FactIdSet::Clear() {
  chunks_.clear();
  cardinality_ = 0;
}

void FactIdSet::UnionChunk(Chunk* dst, const Chunk& src) {
  if (dst->kind == ContainerKind::kArray &&
      src.kind == ContainerKind::kArray) {
    std::vector<uint16_t> merged;
    merged.reserve(dst->array.size() + src.array.size());
    std::set_union(dst->array.begin(), dst->array.end(), src.array.begin(),
                   src.array.end(), std::back_inserter(merged));
    dst->array = std::move(merged);
    if (dst->array.size() > kArrayContainerMax) Promote(dst);
    return;
  }
  if (dst->kind == ContainerKind::kArray) Promote(dst);
  if (src.kind == ContainerKind::kBitmap) {
    for (size_t word = 0; word < kBitmapWords; ++word) {
      dst->bitmap[word] |= src.bitmap[word];
    }
  } else {
    for (uint16_t low : src.array) BitmapSet(dst->bitmap, low);
  }
}

void FactIdSet::UnionWith(const FactIdSet& other) {
  UnionsCounter().Increment();
  for (const Chunk& src : other.chunks_) {
    Chunk* dst = FindOrCreateChunk(src.key);
    UnionChunk(dst, src);
  }
  cardinality_ = 0;
  for (const Chunk& chunk : chunks_) cardinality_ += chunk.Cardinality();
}

size_t FactIdSet::IntersectChunk(Chunk* dst, const Chunk& src) {
  if (dst->kind == ContainerKind::kArray) {
    std::vector<uint16_t> kept;
    for (uint16_t low : dst->array) {
      bool in_src =
          src.kind == ContainerKind::kBitmap
              ? BitmapTest(src.bitmap, low)
              : std::binary_search(src.array.begin(), src.array.end(), low);
      if (in_src) kept.push_back(low);
    }
    dst->array = std::move(kept);
    return dst->array.size();
  }
  size_t cardinality = 0;
  if (src.kind == ContainerKind::kBitmap) {
    for (size_t word = 0; word < kBitmapWords; ++word) {
      dst->bitmap[word] &= src.bitmap[word];
      cardinality += __builtin_popcountll(dst->bitmap[word]);
    }
  } else {
    std::vector<uint64_t> kept(kBitmapWords, 0);
    for (uint16_t low : src.array) {
      if (BitmapTest(dst->bitmap, low)) {
        BitmapSet(kept, low);
        ++cardinality;
      }
    }
    dst->bitmap = std::move(kept);
  }
  DemoteIfSmall(dst, cardinality);
  return cardinality;
}

void FactIdSet::IntersectWith(const FactIdSet& other) {
  IntersectionsCounter().Increment();
  std::vector<Chunk> kept;
  cardinality_ = 0;
  for (Chunk& dst : chunks_) {
    const Chunk* src = other.FindChunk(dst.key);
    if (src == nullptr) continue;
    size_t cardinality = IntersectChunk(&dst, *src);
    if (cardinality == 0) continue;
    cardinality_ += cardinality;
    kept.push_back(std::move(dst));
  }
  chunks_ = std::move(kept);
}

bool FactIdSet::operator==(const FactIdSet& other) const {
  if (cardinality_ != other.cardinality_) return false;
  // Container kinds may differ for the same logical set (a demoted
  // bitmap vs a built-up array), so compare elementwise.
  bool equal = true;
  ForEach([&](uint32_t id) {
    if (equal && !other.Contains(id)) equal = false;
  });
  return equal;
}

std::vector<uint32_t> FactIdSet::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(cardinality_);
  ForEach([&out](uint32_t id) { out.push_back(id); });
  return out;
}

size_t FactIdSet::ApproxBytes() const {
  size_t bytes = sizeof(*this) + chunks_.capacity() * sizeof(Chunk);
  for (const Chunk& chunk : chunks_) {
    bytes += chunk.array.capacity() * sizeof(uint16_t) +
             chunk.bitmap.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

}  // namespace x3
