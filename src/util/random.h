#ifndef X3_UTIL_RANDOM_H_
#define X3_UTIL_RANDOM_H_

#include <cstdint>

namespace x3 {

/// Deterministic, fast PRNG (xorshift128+ variant, splitmix64-seeded).
/// Every generator in the library takes an explicit seed so experiments
/// are exactly reproducible across runs and platforms.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // splitmix64 to spread the seed across both words.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    s0_ = Mix(&z);
    s1_ = Mix(&z);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo +
           static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-distributed value in [0, n) with skew `theta` in [0,1).
  /// theta = 0 is uniform. Uses the rejection-free inverse-CDF
  /// approximation of Gray et al. (quick and deterministic; adequate for
  /// workload generation).
  uint64_t Zipf(uint64_t n, double theta);

 private:
  static uint64_t Mix(uint64_t* z) {
    uint64_t x = (*z += 0x9e3779b97f4a7c15ULL);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

inline uint64_t Random::Zipf(uint64_t n, double theta) {
  if (n <= 1) return 0;
  if (theta <= 0.0) return Uniform(n);
  // Approximate inverse CDF: P(X <= x) ~ (x/n)^(1-theta).
  double u = NextDouble();
  double x = static_cast<double>(n) *
             __builtin_pow(u, 1.0 / (1.0 - theta));
  uint64_t v = static_cast<uint64_t>(x);
  return v >= n ? n - 1 : v;
}

}  // namespace x3

#endif  // X3_UTIL_RANDOM_H_
