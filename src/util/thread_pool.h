#ifndef X3_UTIL_THREAD_POOL_H_
#define X3_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace x3 {

/// Fixed-size worker pool. All concurrency in the engine goes through
/// this class (the repo lint bans raw std::thread elsewhere in src/):
/// one shared implementation keeps the shutdown, draining and
/// error-propagation rules in a single audited place.
///
/// Submitted tasks are executed FIFO by `num_threads` workers. The
/// destructor drains the queue — every task submitted before
/// destruction runs to completion before the workers join — so a task
/// may safely reference state owned by the pool's owner. Tasks must not
/// throw (the engine is Status-based; an escaping exception terminates,
/// as anywhere else in the codebase).
///
/// Thread safety: the queue is guarded by `mu_` (rank
/// lock_rank::kThreadPool). Submit may legally be called while holding
/// any lower-ranked lock — the plan scheduler in cube/executor.cc does
/// so from its completion handler (rank kExecutorScheduler) — and the
/// lock-order detector enforces exactly that direction. See
/// docs/STATIC_ANALYSIS.md §7 for the full rank table.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Thread-safe; may be called from inside a
  /// running task (that is how the plan scheduler releases dependents).
  void Submit(std::function<void()> task) X3_EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

  /// Tasks currently queued and not yet picked up by a worker. A
  /// point-in-time reading for introspection (statusz); also exported
  /// continuously as the x3_threadpool_queue_depth gauge.
  size_t queue_depth() const X3_EXCLUDES(mu_);

  /// std::thread::hardware_concurrency() with the zero-means-unknown
  /// case clamped to 1. The meaning of `parallelism = 0` knobs.
  static size_t DefaultConcurrency();

 private:
  /// A queued task plus its enqueue stopwatch (the
  /// x3_threadpool_queue_wait_seconds histogram observes the gap
  /// between Submit and the moment a worker picks the task up).
  struct QueuedTask {
    std::function<void()> fn;
    Timer queued;
  };

  void WorkerLoop(size_t worker_index) X3_EXCLUDES(mu_);

  mutable Mutex mu_{lock_rank::kThreadPool};
  CondVar cv_;
  std::deque<QueuedTask> queue_ X3_GUARDED_BY(mu_);
  bool stopping_ X3_GUARDED_BY(mu_) = false;
  /// Immutable after the constructor returns; joined by the destructor.
  std::vector<std::thread> workers_;
};

/// Tracks a batch of Status-returning tasks spawned onto a pool and
/// joins them: Wait() blocks until every spawned task has finished and
/// returns the first non-OK status in *spawn order* (not completion
/// order), so the reported error is deterministic however the workers
/// interleave. Every spawned task always runs — an early failure does
/// not skip the rest; tasks that should stop early must observe a
/// shared CancellationToken / ExecutionContext themselves.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Joins any still-running tasks (their statuses are discarded).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn` on the pool. Must not be called after Wait().
  void Spawn(std::function<Status()> fn) X3_EXCLUDES(mu_);

  /// Blocks until all spawned tasks finished; returns the first non-OK
  /// status in spawn order, or OK when every task succeeded.
  Status Wait() X3_EXCLUDES(mu_);

 private:
  ThreadPool* pool_;
  Mutex mu_{lock_rank::kTaskGroup};
  CondVar done_cv_;
  /// One slot per spawned task, written by the worker that ran it.
  std::vector<Status> statuses_ X3_GUARDED_BY(mu_);
  size_t pending_ X3_GUARDED_BY(mu_) = 0;
  bool waited_ X3_GUARDED_BY(mu_) = false;
};

}  // namespace x3

#endif  // X3_UTIL_THREAD_POOL_H_
