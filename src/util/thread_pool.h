#ifndef X3_UTIL_THREAD_POOL_H_
#define X3_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.h"
#include "util/timer.h"

namespace x3 {

/// Fixed-size worker pool. All concurrency in the engine goes through
/// this class (the repo lint bans raw std::thread elsewhere in src/):
/// one shared implementation keeps the shutdown, draining and
/// error-propagation rules in a single audited place.
///
/// Submitted tasks are executed FIFO by `num_threads` workers. The
/// destructor drains the queue — every task submitted before
/// destruction runs to completion before the workers join — so a task
/// may safely reference state owned by the pool's owner. Tasks must not
/// throw (the engine is Status-based; an escaping exception terminates,
/// as anywhere else in the codebase).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Thread-safe; may be called from inside a
  /// running task (that is how the plan scheduler releases dependents).
  void Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

  /// std::thread::hardware_concurrency() with the zero-means-unknown
  /// case clamped to 1. The meaning of `parallelism = 0` knobs.
  static size_t DefaultConcurrency();

 private:
  /// A queued task plus its enqueue stopwatch (the
  /// x3_threadpool_queue_wait_seconds histogram observes the gap
  /// between Submit and the moment a worker picks the task up).
  struct QueuedTask {
    std::function<void()> fn;
    Timer queued;
  };

  void WorkerLoop(size_t worker_index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Tracks a batch of Status-returning tasks spawned onto a pool and
/// joins them: Wait() blocks until every spawned task has finished and
/// returns the first non-OK status in *spawn order* (not completion
/// order), so the reported error is deterministic however the workers
/// interleave. Every spawned task always runs — an early failure does
/// not skip the rest; tasks that should stop early must observe a
/// shared CancellationToken / ExecutionContext themselves.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}

  /// Joins any still-running tasks (their statuses are discarded).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn` on the pool. Must not be called after Wait().
  void Spawn(std::function<Status()> fn);

  /// Blocks until all spawned tasks finished; returns the first non-OK
  /// status in spawn order, or OK when every task succeeded.
  Status Wait();

 private:
  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable done_cv_;
  /// One slot per spawned task, written by the worker that ran it.
  std::vector<Status> statuses_;
  size_t pending_ = 0;
  bool waited_ = false;
};

}  // namespace x3

#endif  // X3_UTIL_THREAD_POOL_H_
