#ifndef X3_UTIL_METRICS_H_
#define X3_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace x3 {

class Env;  // util/env.h; used by pointer only

/// Monotonically increasing counter. Lock-free; Increment is one
/// relaxed fetch_add, cheap enough for every I/O call site.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written value (plus a CAS max for peak-style gauges).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if larger (peak tracking).
  void SetMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Histogram of non-negative values (typically seconds) over fixed
/// exponential buckets: upper bounds 1e-6 * 4^i, covering 1 µs to ~4.6
/// minutes, last bucket +Inf. Observe is a few relaxed atomics. The sum
/// is accumulated in nanosecond ticks so it stays a lock-free integer
/// (atomic<double> arithmetic is C++20).
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 14;

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const {
    return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }
  /// Cumulative count of observations <= BucketUpperBound(i).
  uint64_t bucket_count(size_t i) const;

  /// Linearly interpolated quantile estimate (the standard Prometheus
  /// histogram_quantile over the exponential buckets). `q` in [0, 1];
  /// returns 0 for an empty histogram and the last finite bound when
  /// the rank lands in the +Inf bucket. The single implementation every
  /// consumer (bench harness report, derived p50/p95/p99 snapshot
  /// gauges, statusz) shares — nobody re-derives percentiles by hand.
  double Quantile(double q) const;
  /// +Inf (represented as infinity) for the last bucket.
  static double BucketUpperBound(size_t i);

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_nanos_{0};
};

/// Process-wide registry of named metrics. Names follow the
/// `x3_<layer>_<name>` convention (DESIGN.md §9) and the Prometheus
/// charset `[a-zA-Z_:][a-zA-Z0-9_:]*` (checked at registration).
///
/// GetCounter/GetGauge/GetHistogram return a stable pointer for the
/// process lifetime — call sites cache it in a function-local static so
/// the hot path is just the atomic op, no map lookup. Registering the
/// same name twice returns the same object; registering it as a
/// different metric type is a checked error.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The registry every engine metric lives in. Never destroyed.
  static MetricRegistry& Global();

  Counter* GetCounter(const std::string& name, const std::string& help)
      X3_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& help)
      X3_EXCLUDES(mu_);
  Histogram* GetHistogram(const std::string& name, const std::string& help)
      X3_EXCLUDES(mu_);

  /// Prometheus text exposition format: exactly one `# HELP` and one
  /// `# TYPE` line per metric, sorted by name.
  std::string ToPrometheusText() const X3_EXCLUDES(mu_);

  /// JSON object {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, buckets: [{le, count}]}}}.
  std::string ToJson() const X3_EXCLUDES(mu_);

  /// name -> integer value for every counter and gauge. Histograms
  /// contribute "<name>_count" plus derived "<name>_p50_us" /
  /// "<name>_p95_us" / "<name>_p99_us" interpolated-quantile entries in
  /// integer microseconds (time-valued like the sum, so the
  /// determinism harness's time-metric name filter drops them too).
  std::map<std::string, int64_t> SnapshotValues() const X3_EXCLUDES(mu_);

  /// Zeroes every registered metric (objects and registration survive,
  /// so cached pointers stay valid). Test isolation only.
  void ResetAllForTest() X3_EXCLUDES(mu_);

  /// Writes ToPrometheusText() to `path` through `env`.
  Status WritePrometheusFile(Env* env, const std::string& path) const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Entry {
    Type type;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetOrCreate(const std::string& name, const std::string& help,
                     Type type) X3_EXCLUDES(mu_);

  mutable Mutex mu_{lock_rank::kMetricRegistry};
  /// Registered metrics. Node addresses are stable (std::map), so the
  /// Counter*/Gauge*/Histogram* handed out by GetOrCreate stay valid
  /// without the lock; only the map structure itself is guarded.
  std::map<std::string, Entry> entries_ X3_GUARDED_BY(mu_);
};

namespace internal {

/// True iff `name` matches the Prometheus metric-name charset.
bool ValidMetricName(std::string_view name);

/// Re-reads the X3_METRICS environment variable; when set to a path,
/// remembers it for FlushMetricsAtExit. Runs once at static
/// initialization (which also registers the atexit dump); exposed so
/// tests can drive the hook directly.
bool InitMetricsFromEnv();

/// Writes the global registry's Prometheus text to the X3_METRICS path
/// (no-op when X3_METRICS was not set).
void FlushMetricsAtExit();

}  // namespace internal
}  // namespace x3

#endif  // X3_UTIL_METRICS_H_
