#ifndef X3_UTIL_LOGGING_H_
#define X3_UTIL_LOGGING_H_

#include <cassert>
#include <cstdlib>
#include <sstream>
#include <string>

namespace x3 {

/// Log severities in increasing order of importance.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum level that is actually emitted. Defaults to
/// kWarning so library users are not spammed; tests/benches raise or
/// lower it explicitly. Reads `X3_LOG_LEVEL` (0-4) from the environment
/// on first use.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Test-only capture sink: while installed, every emitted log line is
/// handed to `fn` (one whole line per call, newline included) instead
/// of written to stderr — so tests can assert on log output without
/// redirecting file descriptors. kFatal lines still go to stderr too
/// (the process is about to abort; the line must not vanish into a
/// sink nobody will read). Install with a function and opaque arg;
/// uninstall with (nullptr, nullptr). The sink is process-global and
/// synchronized internally; `fn` runs under the capture lock, so it
/// must not log and must not block on other threads that log.
using LogCaptureFn = void (*)(LogLevel level, const char* line, size_t len,
                              void* arg);
void SetLogCaptureForTest(LogCaptureFn fn, void* arg);

namespace internal {

/// Stream-style log message; emits on destruction. kFatal aborts.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it; used for disabled levels.
class NullLog {
 public:
  template <typename T>
  NullLog& operator<<(const T&) {
    return *this;
  }
};

/// Binds looser than operator<< so a whole streamed expression can be
/// swallowed into void inside a ternary (the classic glog voidify).
struct Voidify {
  void operator&(const LogMessage&) {}
};

}  // namespace internal
}  // namespace x3

#define X3_LOG(level)                                            \
  (static_cast<int>(::x3::LogLevel::k##level) <                  \
   static_cast<int>(::x3::GetLogLevel()))                        \
      ? (void)0                                                  \
      : ::x3::internal::Voidify() &                              \
            ::x3::internal::LogMessage(::x3::LogLevel::k##level, \
                                       __FILE__, __LINE__)

#define X3_LOG_STREAM(level) \
  ::x3::internal::LogMessage(::x3::LogLevel::k##level, __FILE__, __LINE__)

/// Invariant check that is active in all build types (unlike assert).
/// Use this — not bare `assert` — for invariants whose violation would
/// corrupt data or read out of bounds (page boundaries, slot indexes,
/// buffer-pool pin counts): the repo lint (scripts/x3_lint.py) enforces
/// it in src/.
#define X3_CHECK(cond)                                                   \
  while (!(cond))                                                        \
  ::x3::internal::LogMessage(::x3::LogLevel::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #cond " "

/// Debug-only check; compiled out under NDEBUG. For hot-path sanity
/// checks only, never for conditions that guard memory accesses.
#define X3_DCHECK(cond) assert(cond)

#endif  // X3_UTIL_LOGGING_H_
