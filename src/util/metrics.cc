#include "util/metrics.h"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "util/env.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace x3 {

void Histogram::Observe(double value) {
  if (value < 0) value = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (value <= BucketUpperBound(i)) {
      buckets_[i].fetch_add(1, std::memory_order_relaxed);
      break;
    }
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  // Saturating nanosecond accumulation; overflow would need ~292 years
  // of summed time, but clamp anyway rather than wrap.
  double nanos = value * 1e9;
  int64_t ticks = nanos >= static_cast<double>(
                               std::numeric_limits<int64_t>::max())
                      ? std::numeric_limits<int64_t>::max()
                      : static_cast<int64_t>(nanos);
  sum_nanos_.fetch_add(ticks, std::memory_order_relaxed);
}

uint64_t Histogram::bucket_count(size_t i) const {
  X3_CHECK(i < kNumBuckets);
  uint64_t cumulative = 0;
  for (size_t b = 0; b <= i; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
  }
  return cumulative;
}

double Histogram::BucketUpperBound(size_t i) {
  if (i + 1 >= kNumBuckets) return std::numeric_limits<double>::infinity();
  double bound = 1e-6;
  for (size_t k = 0; k < i; ++k) bound *= 4;
  return bound;
}

double Histogram::Quantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  double rank = q * static_cast<double>(total);
  uint64_t below = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t cumulative = bucket_count(i);
    if (static_cast<double>(cumulative) >= rank) {
      double upper = BucketUpperBound(i);
      double lower = i == 0 ? 0 : BucketUpperBound(i - 1);
      if (!std::isfinite(upper)) return lower;
      uint64_t in_bucket = cumulative - below;
      if (in_bucket == 0) return upper;
      double fraction = (rank - static_cast<double>(below)) /
                        static_cast<double>(in_bucket);
      return lower + (upper - lower) * fraction;
    }
    below = cumulative;
  }
  return BucketUpperBound(kNumBuckets - 2);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();  // x3-lint: allow(raw-new-delete) -- intentionally leaked process singleton
  return *registry;
}

MetricRegistry::Entry* MetricRegistry::GetOrCreate(const std::string& name,
                                                   const std::string& help,
                                                   Type type) {
  X3_CHECK(internal::ValidMetricName(name))
      << "invalid metric name: " << name;
  MutexLock lock(&mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    X3_CHECK(it->second.type == type)
        << "metric " << name << " re-registered with a different type";
    return &it->second;
  }
  Entry entry;
  entry.type = type;
  entry.help = help;
  switch (type) {
    case Type::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Type::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Type::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return &entries_.emplace(name, std::move(entry)).first->second;
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help) {
  return GetOrCreate(name, help, Type::kCounter)->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help) {
  return GetOrCreate(name, help, Type::kGauge)->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& help) {
  return GetOrCreate(name, help, Type::kHistogram)->histogram.get();
}

namespace {

/// Renders `le` bounds the way Prometheus clients conventionally do.
std::string RenderBound(double bound) {
  if (std::isinf(bound)) return "+Inf";
  return StringPrintf("%g", bound);
}

}  // namespace

std::string MetricRegistry::ToPrometheusText() const {
  MutexLock lock(&mu_);
  std::string out;
  // std::map iteration is name-sorted: exposition order is stable.
  for (const auto& [name, entry] : entries_) {
    out += StringPrintf("# HELP %s %s\n", name.c_str(), entry.help.c_str());
    switch (entry.type) {
      case Type::kCounter:
        out += StringPrintf("# TYPE %s counter\n", name.c_str());
        out += StringPrintf("%s %llu\n", name.c_str(),
                            static_cast<unsigned long long>(
                                entry.counter->value()));
        break;
      case Type::kGauge:
        out += StringPrintf("# TYPE %s gauge\n", name.c_str());
        out += StringPrintf("%s %lld\n", name.c_str(),
                            static_cast<long long>(entry.gauge->value()));
        break;
      case Type::kHistogram: {
        const Histogram& h = *entry.histogram;
        out += StringPrintf("# TYPE %s histogram\n", name.c_str());
        for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
          out += StringPrintf(
              "%s_bucket{le=\"%s\"} %llu\n", name.c_str(),
              RenderBound(Histogram::BucketUpperBound(i)).c_str(),
              static_cast<unsigned long long>(h.bucket_count(i)));
        }
        out += StringPrintf("%s_sum %.9f\n", name.c_str(), h.sum());
        out += StringPrintf("%s_count %llu\n", name.c_str(),
                            static_cast<unsigned long long>(h.count()));
        break;
      }
    }
  }
  return out;
}

std::string MetricRegistry::ToJson() const {
  MutexLock lock(&mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, entry] : entries_) {
    switch (entry.type) {
      case Type::kCounter:
        if (!counters.empty()) counters += ",";
        counters += StringPrintf("\"%s\":%llu", name.c_str(),
                                 static_cast<unsigned long long>(
                                     entry.counter->value()));
        break;
      case Type::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += StringPrintf("\"%s\":%lld", name.c_str(),
                               static_cast<long long>(entry.gauge->value()));
        break;
      case Type::kHistogram: {
        const Histogram& h = *entry.histogram;
        if (!histograms.empty()) histograms += ",";
        histograms += StringPrintf(
            "\"%s\":{\"count\":%llu,\"sum\":%.9f,"
            "\"p50\":%.9f,\"p95\":%.9f,\"p99\":%.9f,\"buckets\":[",
            name.c_str(), static_cast<unsigned long long>(h.count()),
            h.sum(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99));
        for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
          if (i > 0) histograms += ",";
          double bound = Histogram::BucketUpperBound(i);
          histograms += StringPrintf(
              "{\"le\":%s,\"count\":%llu}",
              std::isinf(bound) ? "\"+Inf\""
                                : StringPrintf("%g", bound).c_str(),
              static_cast<unsigned long long>(h.bucket_count(i)));
        }
        histograms += "]}";
        break;
      }
    }
  }
  return StringPrintf("{\"counters\":{%s},\"gauges\":{%s},"
                      "\"histograms\":{%s}}\n",
                      counters.c_str(), gauges.c_str(), histograms.c_str());
}

std::map<std::string, int64_t> MetricRegistry::SnapshotValues() const {
  MutexLock lock(&mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, entry] : entries_) {
    switch (entry.type) {
      case Type::kCounter:
        out[name] = static_cast<int64_t>(entry.counter->value());
        break;
      case Type::kGauge:
        out[name] = entry.gauge->value();
        break;
      case Type::kHistogram: {
        const Histogram& h = *entry.histogram;
        out[name + "_count"] = static_cast<int64_t>(h.count());
        out[name + "_p50_us"] = static_cast<int64_t>(h.Quantile(0.50) * 1e6);
        out[name + "_p95_us"] = static_cast<int64_t>(h.Quantile(0.95) * 1e6);
        out[name + "_p99_us"] = static_cast<int64_t>(h.Quantile(0.99) * 1e6);
        break;
      }
    }
  }
  return out;
}

void MetricRegistry::ResetAllForTest() {
  MutexLock lock(&mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.type) {
      case Type::kCounter:
        entry.counter->Reset();
        break;
      case Type::kGauge:
        entry.gauge->Reset();
        break;
      case Type::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

Status MetricRegistry::WritePrometheusFile(Env* env,
                                           const std::string& path) const {
  return WriteStringToFile(env, path, ToPrometheusText());
}

namespace internal {

bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

namespace {
std::string* g_metrics_env_path = nullptr;
}  // namespace

bool InitMetricsFromEnv() {
  const char* path = std::getenv("X3_METRICS");
  if (path == nullptr || *path == '\0') return false;
  if (g_metrics_env_path == nullptr) g_metrics_env_path = new std::string();  // x3-lint: allow(raw-new-delete) -- leaked process singleton
  *g_metrics_env_path = path;
  return true;
}

void FlushMetricsAtExit() {
  if (g_metrics_env_path == nullptr || g_metrics_env_path->empty()) return;
  Status s = MetricRegistry::Global().WritePrometheusFile(
      Env::Default(), *g_metrics_env_path);
  s.IgnoreError();  // exiting: nowhere to report a late I/O failure
}

namespace {
/// `X3_METRICS=path.txt` dumps the Prometheus text exposition of every
/// engine metric on clean exit — no code changes needed in tests or
/// benches (README "Observability").
struct MetricsEnvHook {
  MetricsEnvHook() {
    if (InitMetricsFromEnv()) std::atexit(FlushMetricsAtExit);
  }
};
MetricsEnvHook g_metrics_env_hook;
}  // namespace

}  // namespace internal
}  // namespace x3
