// Clang thread-safety capability annotations and the annotated lock
// primitives used everywhere in src/. Two layers live here:
//
//  1. The X3_* macro set wrapping Clang's `-Wthread-safety` attributes
//     (capability, guarded_by, acquire/release, ...). Under any other
//     compiler the macros expand to nothing, so GCC builds are
//     unaffected; the `clang-tsa` CMake preset compiles with
//     `-Wthread-safety -Wthread-safety-beta -Werror` and turns the
//     annotations into build-breaking invariants.
//
//  2. x3::Mutex / x3::MutexLock / x3::CondVar — thin wrappers over
//     std::mutex / std::condition_variable carrying the annotations,
//     an AssertHeld() debug check, and (in X3_DEBUG_LOCKS builds) a
//     lock-order detector: each Mutex is constructed with a rank from
//     x3::lock_rank, a thread-local stack records the ranked locks a
//     thread holds, and acquiring a mutex whose rank is not strictly
//     greater than every ranked lock already held dies with X3_CHECK.
//     Potential deadlocks thus fail deterministically in any test that
//     exercises the nesting, instead of hanging CI on the interleaving
//     that actually cycles. Unranked mutexes (kNone) skip ordering
//     checks but still get holder bookkeeping for AssertHeld().
//
// The raw-mutex lint rule (scripts/x3_lint.py) bans bare std::mutex /
// std::condition_variable / std::lock_guard in src/ outside this file,
// so every lock in the engine is annotated and rank-checked.
//
// This header must stay dependency-light: logging.cc uses x3::Mutex,
// so we cannot include logging.h here. The checking Lock/Unlock bodies
// live out-of-line in thread_annotations.cc, which may.
#ifndef X3_UTIL_THREAD_ANNOTATIONS_H_
#define X3_UTIL_THREAD_ANNOTATIONS_H_

#include <atomic>
#include <condition_variable>  // x3-lint: allow(raw-mutex)
#include <cstdint>
#include <mutex>  // x3-lint: allow(raw-mutex)

#if defined(__clang__)
#define X3_THREAD_ATTR(x) __attribute__((x))
#else
#define X3_THREAD_ATTR(x)  // no-op under GCC/MSVC
#endif

// Type attributes.
#define X3_CAPABILITY(x) X3_THREAD_ATTR(capability(x))
#define X3_SCOPED_CAPABILITY X3_THREAD_ATTR(scoped_lockable)

// Data-member attributes. GUARDED_BY names the mutex that must be held
// to touch the member; PT_GUARDED_BY guards the pointee instead.
#define X3_GUARDED_BY(x) X3_THREAD_ATTR(guarded_by(x))
#define X3_PT_GUARDED_BY(x) X3_THREAD_ATTR(pt_guarded_by(x))

// Declared acquisition-order hints between mutex members.
#define X3_ACQUIRED_BEFORE(...) X3_THREAD_ATTR(acquired_before(__VA_ARGS__))
#define X3_ACQUIRED_AFTER(...) X3_THREAD_ATTR(acquired_after(__VA_ARGS__))

// Function attributes: caller must hold / must not hold the capability,
// or the function itself acquires/releases it.
#define X3_REQUIRES(...) X3_THREAD_ATTR(requires_capability(__VA_ARGS__))
#define X3_REQUIRES_SHARED(...) \
  X3_THREAD_ATTR(requires_shared_capability(__VA_ARGS__))
#define X3_ACQUIRE(...) X3_THREAD_ATTR(acquire_capability(__VA_ARGS__))
#define X3_RELEASE(...) X3_THREAD_ATTR(release_capability(__VA_ARGS__))
#define X3_TRY_ACQUIRE(...) X3_THREAD_ATTR(try_acquire_capability(__VA_ARGS__))
#define X3_EXCLUDES(...) X3_THREAD_ATTR(locks_excluded(__VA_ARGS__))
#define X3_ASSERT_CAPABILITY(x) X3_THREAD_ATTR(assert_capability(x))
#define X3_RETURN_CAPABILITY(x) X3_THREAD_ATTR(lock_returned(x))
#define X3_NO_THREAD_SAFETY_ANALYSIS X3_THREAD_ATTR(no_thread_safety_analysis)

namespace x3 {

// Lock ranks, increasing toward leaf locks: a thread may acquire a
// ranked mutex only while every ranked mutex it already holds has a
// strictly smaller rank. Gaps of 50 leave room for new layers. Keep
// this table in sync with docs/STATIC_ANALYSIS.md §7.
namespace lock_rank {
inline constexpr uint32_t kNone = 0;  // unranked: exempt from ordering
// The serving layer sits below every engine lock: a server thread may
// hold its session/shape/cache bookkeeping while calling into the
// view store (kViewStore) or submitting to the pool (kThreadPool),
// never the other way around.
inline constexpr uint32_t kServerWatchdog = 15;  // X3Server watchdog wakeup
inline constexpr uint32_t kServerWrite = 20;  // X3Server::write_mu_
inline constexpr uint32_t kDatabaseIngest = 30;  // X3Server::db_mu_
inline constexpr uint32_t kServerSession = 40;  // X3Server::mu_
inline constexpr uint32_t kServerInflight = 50;  // X3Server::inflight_mu_
inline constexpr uint32_t kServerShape = 60;    // ShapeState build latch
inline constexpr uint32_t kServerCache = 80;    // CuboidCache::mu_
inline constexpr uint32_t kServerTicket = 90;   // X3Server::Ticket::mu_
inline constexpr uint32_t kQueryLog = 95;       // QueryLog::mu_
inline constexpr uint32_t kExecutorScheduler = 100;  // executor.cc local
inline constexpr uint32_t kViewStore = 150;          // CubeViewStore::mu_
inline constexpr uint32_t kTaskGroup = 200;          // TaskGroup::mu_
inline constexpr uint32_t kThreadPool = 250;         // ThreadPool::mu_
inline constexpr uint32_t kBufferPool = 300;         // BufferPool::mu_
inline constexpr uint32_t kTempFileManager = 350;    // TempFileManager::mu_
inline constexpr uint32_t kFaultInjectionEnv = 400;  // FaultInjectionEnv::mu_
inline constexpr uint32_t kStatsSink = 450;          // StatsSink::mu_
inline constexpr uint32_t kTracer = 500;             // Tracer::mu_
inline constexpr uint32_t kMetricRegistry = 550;     // MetricRegistry::mu_
inline constexpr uint32_t kLogCapture = 600;         // logging.cc capture sink
}  // namespace lock_rank

// Annotated mutex. Constant-initializable so function-local statics and
// namespace-scope instances need no dynamic init.
class X3_CAPABILITY("mutex") Mutex {
 public:
  explicit constexpr Mutex(uint32_t rank = lock_rank::kNone) : rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() X3_ACQUIRE();
  void Unlock() X3_RELEASE();
  bool TryLock() X3_TRY_ACQUIRE(true);

  // Fatal (X3_CHECK) unless the calling thread holds this mutex. The
  // bookkeeping exists only in X3_DEBUG_LOCKS builds; in Release the
  // call compiles to nothing but still satisfies the static analysis,
  // so X3_REQUIRES'd helpers can assert their contract.
  void AssertHeld() const X3_ASSERT_CAPABILITY(this);

  uint32_t rank() const { return rank_; }

 private:
  friend class CondVar;

  std::mutex mu_;  // x3-lint: allow(raw-mutex)
  const uint32_t rank_;
#if defined(X3_DEBUG_LOCKS)
  // Debug identity of the holding thread (0 = unheld). Written only by
  // the holder under mu_; read racily by AssertHeld, which only ever
  // compares against the *calling* thread's id, so a stale value can
  // not produce a false "held" verdict for another thread.
  mutable std::atomic<uint64_t> holder_{0};
#endif
};

// RAII lock for a whole scope.
class X3_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) X3_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() X3_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable bound to x3::Mutex. Wait() adopts the caller's
// already-held lock for the duration of the underlying wait (the
// LevelDB port idiom), keeping the debug holder bookkeeping honest
// across the suspension.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases *mu, blocks until notified, reacquires *mu.
  // Spurious wakeups happen; callers loop on their predicate or use
  // the predicate overload below.
  void Wait(Mutex* mu) X3_REQUIRES(mu);

  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) X3_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  // Timed wait: like Wait but returns after at most `seconds` even
  // without a notification. Returns true when notified (or spuriously
  // woken) before the timeout, false on timeout; either way *mu is
  // reacquired. Used by periodic background threads (the stuck-query
  // watchdog) that must both tick on an interval and exit promptly on
  // shutdown notification.
  bool WaitFor(Mutex* mu, double seconds) X3_REQUIRES(mu);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // x3-lint: allow(raw-mutex)
};

}  // namespace x3

#endif  // X3_UTIL_THREAD_ANNOTATIONS_H_
