#include "util/compress.h"

#include <cstring>

namespace x3 {

namespace {

constexpr size_t kMinMatch = 4;
/// Matches are not searched within the last kTailLiterals bytes; they
/// are always emitted as the final literal run. Keeps the match loop's
/// 4-byte loads in bounds without per-byte checks.
constexpr size_t kTailLiterals = 12;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Fibonacci hash of the next 4 source bytes into the match table.
inline uint32_t HashSequence(uint32_t word) {
  return (word * 2654435761u) >> (32 - kHashBits);
}

/// Bounds-checked output cursor: Put* return false instead of writing
/// past `end`, so an undersized destination surfaces as "does not fit"
/// (CompressBlock returns 0) rather than an overrun.
struct Writer {
  uint8_t* pos;
  uint8_t* end;

  bool PutByte(uint8_t b) {
    if (pos >= end) return false;
    *pos++ = b;
    return true;
  }
  bool PutBytes(const uint8_t* src, size_t n) {
    if (static_cast<size_t>(end - pos) < n) return false;
    std::memcpy(pos, src, n);
    pos += n;
    return true;
  }
  /// Emits the 0..255 extension bytes of a length field >= 15.
  bool PutLengthExtension(size_t len) {
    while (len >= 255) {
      if (!PutByte(255)) return false;
      len -= 255;
    }
    return PutByte(static_cast<uint8_t>(len));
  }
};

/// Emits one sequence: literal run [lit, lit+lit_len), then (unless
/// final) a match of `match_len` at `offset`.
bool EmitSequence(Writer* out, const uint8_t* lit, size_t lit_len,
                  size_t offset, size_t match_len) {
  size_t match_code = match_len == 0 ? 0 : match_len - kMinMatch;
  uint8_t token =
      static_cast<uint8_t>((lit_len < 15 ? lit_len : 15) << 4 |
                           (match_code < 15 ? match_code : 15));
  if (!out->PutByte(token)) return false;
  if (lit_len >= 15 && !out->PutLengthExtension(lit_len - 15)) return false;
  if (!out->PutBytes(lit, lit_len)) return false;
  if (match_len == 0) return true;  // final literals-only sequence
  if (!out->PutByte(static_cast<uint8_t>(offset & 0xff))) return false;
  if (!out->PutByte(static_cast<uint8_t>(offset >> 8))) return false;
  if (match_code >= 15 && !out->PutLengthExtension(match_code - 15)) {
    return false;
  }
  return true;
}

}  // namespace

size_t CompressBlock(const uint8_t* src, size_t src_size, uint8_t* dst,
                     size_t dst_capacity) {
  if (src_size == 0) return 0;
  Writer out{dst, dst + dst_capacity};
  // Table of source positions keyed by the hash of the 4 bytes there;
  // kInvalidPos marks an empty slot (position 0 is valid).
  constexpr uint32_t kInvalidPos = UINT32_MAX;
  uint32_t table[size_t{1} << kHashBits];
  std::memset(table, 0xff, sizeof(table));

  const uint8_t* const src_end = src + src_size;
  const uint8_t* const match_limit =
      src_size > kTailLiterals ? src_end - kTailLiterals : src;
  const uint8_t* anchor = src;  // start of the pending literal run
  const uint8_t* ip = src;

  while (ip < match_limit) {
    uint32_t hash = HashSequence(Load32(ip));
    uint32_t candidate = table[hash];
    table[hash] = static_cast<uint32_t>(ip - src);
    if (candidate == kInvalidPos ||
        static_cast<size_t>(ip - src) - candidate > kMaxOffset ||
        Load32(src + candidate) != Load32(ip)) {
      ++ip;
      continue;
    }
    // Extend the match forward; the 4 hashed bytes already matched.
    const uint8_t* match = src + candidate;
    size_t match_len = kMinMatch;
    while (ip + match_len < match_limit &&
           ip[match_len] == match[match_len]) {
      ++match_len;
    }
    if (!EmitSequence(&out, anchor, static_cast<size_t>(ip - anchor),
                      static_cast<size_t>(ip - match), match_len)) {
      return 0;
    }
    ip += match_len;
    anchor = ip;
  }
  if (!EmitSequence(&out, anchor, static_cast<size_t>(src_end - anchor),
                    /*offset=*/0, /*match_len=*/0)) {
    return 0;
  }
  return static_cast<size_t>(out.pos - dst);
}

namespace {

/// Reads a 4-bit length field's extension bytes. Returns false on
/// truncation.
bool ReadLengthExtension(const uint8_t** ip, const uint8_t* end,
                         size_t* len) {
  uint8_t byte;
  do {
    if (*ip >= end) return false;
    byte = *(*ip)++;
    *len += byte;
  } while (byte == 255);
  return true;
}

}  // namespace

Result<size_t> DecompressBlock(const uint8_t* src, size_t src_size,
                               uint8_t* dst, size_t dst_capacity) {
  const uint8_t* ip = src;
  const uint8_t* const src_end = src + src_size;
  uint8_t* op = dst;
  uint8_t* const dst_end = dst + dst_capacity;

  while (ip < src_end) {
    uint8_t token = *ip++;
    // Literal run.
    size_t lit_len = token >> 4;
    if (lit_len == 15 && !ReadLengthExtension(&ip, src_end, &lit_len)) {
      return Status::Corruption("compressed block: truncated literal length");
    }
    if (static_cast<size_t>(src_end - ip) < lit_len) {
      return Status::Corruption("compressed block: truncated literals");
    }
    if (static_cast<size_t>(dst_end - op) < lit_len) {
      return Status::Corruption("compressed block: output overflow");
    }
    std::memcpy(op, ip, lit_len);
    ip += lit_len;
    op += lit_len;
    if (ip == src_end) break;  // final literals-only sequence
    // Match.
    if (static_cast<size_t>(src_end - ip) < 2) {
      return Status::Corruption("compressed block: truncated match offset");
    }
    size_t offset = static_cast<size_t>(ip[0]) | size_t{ip[1]} << 8;
    ip += 2;
    if (offset == 0 || offset > static_cast<size_t>(op - dst)) {
      return Status::Corruption("compressed block: match offset out of range");
    }
    size_t match_len = (token & 0x0f) + kMinMatch;
    if ((token & 0x0f) == 15) {
      size_t extension = 0;
      if (!ReadLengthExtension(&ip, src_end, &extension)) {
        return Status::Corruption("compressed block: truncated match length");
      }
      match_len += extension;
    }
    if (static_cast<size_t>(dst_end - op) < match_len) {
      return Status::Corruption("compressed block: output overflow");
    }
    // Byte-wise copy: matches may overlap their own output (offset <
    // match_len replicates a repeating pattern).
    const uint8_t* from = op - offset;
    for (size_t i = 0; i < match_len; ++i) op[i] = from[i];
    op += match_len;
  }
  return static_cast<size_t>(op - dst);
}

void CompressString(std::string_view raw, std::string* out) {
  out->resize(MaxCompressedSize(raw.size()));
  size_t compressed = CompressBlock(
      reinterpret_cast<const uint8_t*>(raw.data()), raw.size(),
      reinterpret_cast<uint8_t*>(out->data()), out->size());
  out->resize(compressed);
}

Result<std::string> DecompressString(std::string_view block,
                                     size_t raw_size) {
  std::string out(raw_size, '\0');
  X3_ASSIGN_OR_RETURN(
      size_t got,
      DecompressBlock(reinterpret_cast<const uint8_t*>(block.data()),
                      block.size(), reinterpret_cast<uint8_t*>(out.data()),
                      out.size()));
  if (got != raw_size) {
    return Status::Corruption("compressed block: size mismatch");
  }
  return out;
}

}  // namespace x3
