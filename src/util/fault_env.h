#ifndef X3_UTIL_FAULT_ENV_H_
#define X3_UTIL_FAULT_ENV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/env.h"
#include "util/thread_annotations.h"

namespace x3 {

/// Classes of injectable storage faults. Kinds that make no sense for
/// the operation they land on degrade to kEIO (so a seeded schedule can
/// assign kinds blindly to operation indexes).
enum class FaultKind : uint8_t {
  /// Operation fails outright (EIO-style), nothing transferred.
  kEIO,
  /// Write fails with a disk-full error, nothing transferred.
  kENOSPC,
  /// Read transfers a seeded prefix, then reports an error.
  kShortRead,
  /// Write persists a seeded prefix of the buffer, then reports an
  /// error (the data past the prefix is torn off).
  kShortWrite,
  /// Sync fails; written data may or may not be durable.
  kSyncFailure,
  /// Write persists a seeded prefix, then the whole environment
  /// "crashes": this and every later data operation fails. Models a
  /// power cut mid-write; reopening with a clean Env afterwards is the
  /// recovery test.
  kTornWriteCrash,
};

const char* FaultKindToString(FaultKind kind);

/// Kinds of operations the injector counts (the fault schedule indexes
/// this sequence).
enum class FaultOp : uint8_t {
  kOpen,
  kRead,
  kWrite,
  kSync,
  kRemove,
  kRename,
  kSize,
};

const char* FaultOpToString(FaultOp op);

/// Deterministic fault-injecting Env decorator: counts data operations
/// (open/read/write/sync by default) and fails the N-th one with a
/// chosen FaultKind. Turns "every I/O error path" into an enumerable
/// matrix: run once to count operations, then replay failing each index
/// in turn (tests/fault_sweep_test.cc).
///
/// Thread-safe: the counter, schedule and trace are mutex-guarded, so
/// the env may back a parallel execution's temp files.
class FaultInjectionEnv : public EnvWrapper {
 public:
  static constexpr uint64_t kNeverFail = UINT64_MAX;

  struct Options {
    /// Index (into the counted-operation sequence, 0-based) of the
    /// operation that fails. kNeverFail = count only.
    uint64_t fail_op_index = kNeverFail;
    FaultKind kind = FaultKind::kEIO;
    /// Tags the injected Status with kTransientFaultMarker and disarms
    /// the schedule after firing, so a retry succeeds.
    bool transient = false;
    /// Number of consecutive operation indexes (starting at
    /// fail_op_index) that fail. UINT64_MAX = every operation from the
    /// index on ("device stays broken").
    uint64_t repeat = 1;
    /// Drives torn/short transfer prefix lengths.
    uint64_t seed = 0;
    /// Also count (and allow faults on) remove/rename/size. Off by
    /// default so inter-iteration cleanup cannot be broken by the
    /// schedule.
    bool count_metadata_ops = false;
  };

  explicit FaultInjectionEnv(Env* target) : EnvWrapper(target) {}
  FaultInjectionEnv(Env* target, const Options& options)
      : EnvWrapper(target), options_(options) {}

  /// Re-arms the schedule and resets every counter and the trace.
  void Arm(const Options& options) X3_EXCLUDES(mu_);

  /// Counted operations so far.
  uint64_t ops_seen() const X3_EXCLUDES(mu_);
  /// Faults injected so far.
  uint64_t faults_fired() const X3_EXCLUDES(mu_);
  /// True once a kTornWriteCrash fault has fired: all further data
  /// operations fail until Arm() is called again.
  bool crashed() const X3_EXCLUDES(mu_);
  /// The kind of every counted operation, in order (for schedule
  /// construction: which indexes are writes, which are syncs, ...).
  std::vector<FaultOp> op_trace() const X3_EXCLUDES(mu_);

  Result<std::unique_ptr<File>> OpenFile(const std::string& path,
                                         OpenMode mode) override;
  Status RemoveFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Result<uint64_t> FileSize(const std::string& path) override;

  /// Outcome of consulting the schedule for one operation. Public for
  /// the internal FaultFile decorator; not part of the user API.
  struct Decision {
    Status status;                // OK = proceed normally
    bool short_transfer = false;  // transfer `prefix_len` bytes first
    size_t prefix_len = 0;
  };

  /// Counts the operation and decides its fate. `transfer_len` is the
  /// byte count of a read/write (for prefix computation). Public for
  /// the internal FaultFile decorator; not part of the user API.
  Decision NextOp(FaultOp op, size_t transfer_len) X3_EXCLUDES(mu_);

 private:
  Status MakeFaultStatus(FaultKind kind, FaultOp op, uint64_t index,
                         bool transient) const;

  mutable Mutex mu_{lock_rank::kFaultInjectionEnv};
  Options options_ X3_GUARDED_BY(mu_);
  uint64_t ops_seen_ X3_GUARDED_BY(mu_) = 0;
  uint64_t faults_fired_ X3_GUARDED_BY(mu_) = 0;
  bool crashed_ X3_GUARDED_BY(mu_) = false;
  std::vector<FaultOp> trace_ X3_GUARDED_BY(mu_);
};

}  // namespace x3

#endif  // X3_UTIL_FAULT_ENV_H_
