#ifndef X3_UTIL_HASH_H_
#define X3_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace x3 {

/// 64-bit FNV-1a over raw bytes. Used for group-key hashing; not
/// cryptographic.
inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

/// Mixes a 64-bit value into a running hash (boost::hash_combine style,
/// with a 64-bit golden-ratio constant).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  return h;
}

/// Finalizer that spreads entropy across all bits (splitmix64 tail).
inline uint64_t HashFinalize(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace x3

#endif  // X3_UTIL_HASH_H_
