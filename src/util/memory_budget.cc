#include "util/memory_budget.h"

#include <algorithm>

#include "util/string_util.h"

namespace x3 {

Status MemoryBudget::Reserve(size_t bytes) {
  if (capacity_ != 0 && used_ + bytes > capacity_) {
    return Status::ResourceExhausted(StringPrintf(
        "memory budget exceeded: used=%zu request=%zu capacity=%zu", used_,
        bytes, capacity_));
  }
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  return Status::OK();
}

void MemoryBudget::Release(size_t bytes) {
  used_ = bytes > used_ ? 0 : used_ - bytes;
}

}  // namespace x3
