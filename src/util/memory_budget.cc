#include "util/memory_budget.h"

#include "util/metrics.h"
#include "util/string_util.h"

namespace x3 {

namespace {

// Engine-wide metrics (DESIGN.md §9): pointers cached once, hot path is
// one relaxed atomic each.
Counter& DenialsCounter() {
  static Counter* c = MetricRegistry::Global().GetCounter(
      "x3_memory_reserve_denials_total",
      "Reservations rejected by the memory budget hard cap");
  return *c;
}

Gauge& PeakGauge() {
  static Gauge* g = MetricRegistry::Global().GetGauge(
      "x3_memory_peak_bytes",
      "Largest tracked working-set size observed by any memory budget");
  return *g;
}

}  // namespace

Status MemoryBudget::Reserve(size_t bytes) {
  if (capacity_ == 0) {
    ForceReserve(bytes);
    return Status::OK();
  }
  // CAS loop so the cap holds under concurrent reservations: the add
  // only lands if the fit check was made against the value the add
  // applies to.
  size_t used = used_.load(std::memory_order_relaxed);
  do {
    if (used + bytes > capacity_) {
      DenialsCounter().Increment();
      return Status::ResourceExhausted(StringPrintf(
          "memory budget exceeded: used=%zu request=%zu capacity=%zu", used,
          bytes, capacity_));
    }
  } while (!used_.compare_exchange_weak(used, used + bytes,
                                        std::memory_order_relaxed));
  UpdatePeak(used + bytes);
  return Status::OK();
}

void MemoryBudget::ForceReserve(size_t bytes) {
  size_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  UpdatePeak(now);
}

void MemoryBudget::Release(size_t bytes) {
  // Clamp at zero (a forced overshoot may release more than is
  // tracked); CAS keeps the clamp exact under concurrent releases.
  size_t used = used_.load(std::memory_order_relaxed);
  while (!used_.compare_exchange_weak(used, bytes > used ? 0 : used - bytes,
                                      std::memory_order_relaxed)) {
  }
}

void MemoryBudget::UpdatePeak(size_t now) {
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now,
                                      std::memory_order_relaxed)) {
  }
  PeakGauge().SetMax(static_cast<int64_t>(now));
}

}  // namespace x3
