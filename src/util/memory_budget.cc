#include "util/memory_budget.h"

#include "util/string_util.h"

namespace x3 {

Status MemoryBudget::Reserve(size_t bytes) {
  if (capacity_ == 0) {
    ForceReserve(bytes);
    return Status::OK();
  }
  // CAS loop so the cap holds under concurrent reservations: the add
  // only lands if the fit check was made against the value the add
  // applies to.
  size_t used = used_.load(std::memory_order_relaxed);
  do {
    if (used + bytes > capacity_) {
      return Status::ResourceExhausted(StringPrintf(
          "memory budget exceeded: used=%zu request=%zu capacity=%zu", used,
          bytes, capacity_));
    }
  } while (!used_.compare_exchange_weak(used, used + bytes,
                                        std::memory_order_relaxed));
  UpdatePeak(used + bytes);
  return Status::OK();
}

void MemoryBudget::Release(size_t bytes) {
  // Clamp at zero (a forced overshoot may release more than is
  // tracked); CAS keeps the clamp exact under concurrent releases.
  size_t used = used_.load(std::memory_order_relaxed);
  while (!used_.compare_exchange_weak(used, bytes > used ? 0 : used - bytes,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace x3
