#ifndef X3_UTIL_EXEC_H_
#define X3_UTIL_EXEC_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/memory_budget.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/timer.h"
#include "util/trace.h"

namespace x3 {

class TempFileManager;  // storage/temp_file.h; held by pointer only

/// Cooperative cancellation flag shared between a query's issuer and
/// its executing thread. The issuer calls Cancel(); long-running loops
/// observe it through ExecutionContext::Poll() and unwind with
/// kCancelled. Thread-safe; Cancel() is idempotent.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    int64_t remaining = trip_after_.load(std::memory_order_relaxed);
    if (remaining >= 0 &&
        trip_after_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Arms the token to trip after `checks` further cancelled() calls —
  /// a deterministic way to cancel mid-computation (tests use it to
  /// prove every algorithm family unwinds cleanly from deep inside its
  /// hot loop, without racing a second thread). Checks are counted
  /// across every thread polling the token, so under parallel
  /// execution the trip still happens after `checks` polls total.
  void CancelAfterChecks(int64_t checks) {
    trip_after_.store(checks, std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  /// -1 = disarmed; >= 0 = remaining checks before auto-cancel.
  mutable std::atomic<int64_t> trip_after_{-1};
};

/// The merged record of every occurrence of one stage label during
/// execution ("materialize", "plan", "compute", "cuboid/12", "pass/2",
/// ...). Same-label occurrences — the COUNTER family times "pass/0"
/// once per parallel batch, a retried stage runs twice — are folded
/// into one entry: `seconds` sums them, `max_seconds` keeps the largest
/// single occurrence, `count` says how many were folded in. `rows` and
/// `bytes` accumulate the optional per-stage output-row and I/O detail
/// that EXPLAIN ANALYZE renders.
struct StageTiming {
  std::string label;
  double seconds = 0;      // summed across occurrences
  double max_seconds = 0;  // largest single occurrence
  uint64_t count = 0;      // occurrences merged into this entry
  uint64_t rows = 0;       // rows/cells produced (0 when not reported)
  uint64_t bytes = 0;      // bytes of I/O performed (0 when not reported)
};

/// Collects per-stage wall-clock timings during a query's execution.
/// Thread-safe for concurrent Record calls (the parallel cube
/// executor's workers share one sink).
///
/// Merge semantics: entries are keyed by exact label. Record and Append
/// fold a same-label occurrence into the existing entry (sum seconds /
/// rows / bytes, max of max_seconds, count += occurrences) instead of
/// appending a duplicate row — so a label timed on N threads reports
/// its total once, not N look-alike rows, and `timings().size()` is the
/// number of distinct labels. Entry order is first-recording order;
/// under parallel execution that order may vary run to run, but the
/// aggregate queries (TotalSeconds/CountStages/Find) are
/// order-independent.
class StatsSink {
 public:
  void Record(std::string_view label, double seconds) {
    Record(label, seconds, 0, 0);
  }

  /// Records one stage occurrence with optional row/byte detail.
  void Record(std::string_view label, double seconds, uint64_t rows,
              uint64_t bytes) X3_EXCLUDES(mu_);

  /// Direct view of the entries. Only safe once concurrent recording
  /// has quiesced (after the execution's join point) — callers that
  /// need a snapshot mid-flight should use the aggregate queries.
  /// Deliberately outside the static analysis: it returns a reference
  /// to guarded state under a quiesce contract the analysis cannot see.
  const std::vector<StageTiming>& timings() const
      X3_NO_THREAD_SAFETY_ANALYSIS {
    return timings_;
  }

  /// Merges every entry of `other` into this sink (per-worker sinks at
  /// a join point) under the label-merge semantics above:
  /// TotalSeconds/CountStages over the merged sink equal the sums over
  /// the parts.
  void Append(const StatsSink& other) X3_EXCLUDES(mu_);

  /// Sum of all stages whose label equals `label` or starts with
  /// "<label>/" (so TotalSeconds("cuboid") sums every per-cuboid entry).
  double TotalSeconds(std::string_view label) const X3_EXCLUDES(mu_);

  /// Total occurrence count over stages with label `label` or prefix
  /// "<label>/" (a label recorded on N threads counts N).
  size_t CountStages(std::string_view label) const X3_EXCLUDES(mu_);

  /// The merged entry for exactly `label`, or nullopt if never
  /// recorded.
  std::optional<StageTiming> Find(std::string_view label) const
      X3_EXCLUDES(mu_);

  void Clear() X3_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    timings_.clear();
    index_.clear();
  }

  /// One "label: 1.234 ms" line per stage (with "xN" and max detail for
  /// merged occurrences), for logs and EXPLAIN ANALYZE style output.
  std::string ToString() const X3_EXCLUDES(mu_);

 private:
  StageTiming* EntryLocked(std::string_view label) X3_REQUIRES(mu_);

  mutable Mutex mu_{lock_rank::kStatsSink};
  std::vector<StageTiming> timings_ X3_GUARDED_BY(mu_);
  /// label -> index into timings_ (stable: entries are never removed
  /// except by Clear).
  std::unordered_map<std::string, size_t> index_ X3_GUARDED_BY(mu_);
};

/// RAII helper: records the elapsed time of a scope into a sink under a
/// fixed label, and opens a trace span of the same label on `tracer`
/// (when tracing is compiled in and the tracer is enabled). A null sink
/// disables recording; a null tracer disables the span. AddRows /
/// AddBytes accumulate the optional per-stage detail that EXPLAIN
/// ANALYZE renders; they are recorded with the timing at scope exit.
class ScopedStageTimer {
 public:
  ScopedStageTimer(StatsSink* sink, std::string label,
                   Tracer* tracer = nullptr)
      : sink_(sink), label_(std::move(label)), span_(tracer, label_) {}
  ~ScopedStageTimer() {
    if (sink_ != nullptr) {
      sink_->Record(label_, timer_.ElapsedSeconds(), rows_, bytes_);
    }
  }

  void AddRows(uint64_t rows) { rows_ += rows; }
  void AddBytes(uint64_t bytes) { bytes_ += bytes; }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  StatsSink* sink_;
  std::string label_;
  TraceSpan span_;
  uint64_t rows_ = 0;
  uint64_t bytes_ = 0;
  Timer timer_;
};

/// The execution environment threaded through a whole query: memory
/// budget, temp-file manager, cooperative cancellation, a monotonic
/// deadline, and the per-stage stats sink. One context per execution,
/// shareable by that execution's worker threads: the budget is atomic,
/// the stats sink synchronizes Record, the cancellation flag and the
/// deadline are immutable-or-atomic, and the deadline poll stride
/// counter is per-thread state — Poll() and CheckInterrupted() may be
/// called concurrently from any worker.
///
/// Cancellation contract: every long-running loop (fact scans, BUC
/// recursion, sort runs, merge passes) calls Poll() and propagates a
/// non-OK status outward without side effects beyond already-merged
/// partial state; all resources are RAII-owned, so an early unwind
/// leaks nothing. Under parallel execution the scheduler additionally
/// drains in-flight tasks before surfacing the interruption, so every
/// worker's budget charges are released by its own unwind. Poll()
/// checks the cancellation flag on every call and the clock only every
/// kDeadlineStride calls per thread (steady_clock reads are too
/// expensive for per-row polling).
class ExecutionContext {
 public:
  using Clock = MonotonicClock;

  struct Options {
    /// Bounds working memory. nullptr = unlimited.
    MemoryBudget* budget = nullptr;
    /// Where sort spills and intermediates live.
    TempFileManager* temp_files = nullptr;
    /// Cooperative cancellation; nullptr = not cancellable.
    const CancellationToken* cancel = nullptr;
    /// Absolute monotonic deadline; nullopt = no deadline.
    std::optional<Clock::time_point> deadline;
    /// Span tracer for this execution; nullptr = the process-global
    /// tracer (the usual case — per-execution tracers are for tests).
    Tracer* tracer = nullptr;
    /// Server-minted query id this execution runs on behalf of; 0 when
    /// the engine is used directly. The parallel executor re-establishes
    /// it (ScopedQueryId) on pool workers so their spans and log lines
    /// stay attributed to the query.
    uint64_t query_id = 0;
  };

  ExecutionContext() = default;
  explicit ExecutionContext(Options options) : options_(options) {}

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  MemoryBudget* budget() const { return options_.budget; }
  TempFileManager* temp_files() const { return options_.temp_files; }
  const CancellationToken* cancellation() const { return options_.cancel; }
  const std::optional<Clock::time_point>& deadline() const {
    return options_.deadline;
  }
  uint64_t query_id() const { return options_.query_id; }

  StatsSink* stats() { return &stats_; }
  const StatsSink& stats() const { return stats_; }

  /// The tracer spans of this execution record into (never null).
  Tracer* tracer() const {
    return options_.tracer != nullptr ? options_.tracer : &Tracer::Global();
  }

  /// Cheap per-iteration check: cancellation flag every call, deadline
  /// every kDeadlineStride calls. OK, kCancelled or kDeadlineExceeded.
  Status Poll() {
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      return Status::Cancelled("execution cancelled");
    }
    if (options_.deadline.has_value()) {
      // Per-thread stride state: each worker of a parallel execution
      // strides its own clock reads, with no shared counter to race on.
      // The counter deliberately spans contexts — it only rations
      // steady_clock reads, so at worst a fresh context's first check
      // lands up to one stride late, same as mid-stride polling.
      static thread_local uint64_t deadline_poll_count = 0;
      if ((++deadline_poll_count % kDeadlineStride) == 0) {
        return CheckDeadline();
      }
    }
    return Status::OK();
  }

  /// Unstrided check (stage boundaries): flag and clock both.
  Status CheckInterrupted() {
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      return Status::Cancelled("execution cancelled");
    }
    if (options_.deadline.has_value()) return CheckDeadline();
    return Status::OK();
  }

  /// Remaining time, clamped at zero; nullopt when no deadline is set.
  std::optional<double> RemainingSeconds() const;

  /// Poll() reads the clock once per this many calls on each thread.
  /// Public so tests can bound "how many polls until an expired
  /// deadline must surface" without hard-coding the number.
  static constexpr uint64_t kDeadlineStride = 512;

 private:
  Status CheckDeadline() const {
    if (MonotonicNow() > *options_.deadline) {
      return Status::DeadlineExceeded("execution deadline exceeded");
    }
    return Status::OK();
  }

  Options options_;
  StatsSink stats_;
};

/// A deadline `seconds` from now on the context clock.
inline ExecutionContext::Clock::time_point DeadlineAfterSeconds(
    double seconds) {
  return MonotonicNow() +
         std::chrono::duration_cast<ExecutionContext::Clock::duration>(
             std::chrono::duration<double>(seconds));
}

}  // namespace x3

#endif  // X3_UTIL_EXEC_H_
