#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace x3 {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty integer");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty double");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("double overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid double: " + buf);
  }
  return v;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StringPrintf("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  AppendJsonEscaped(s, &out);
  out += '"';
  return out;
}

}  // namespace x3
