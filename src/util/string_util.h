#ifndef X3_UTIL_STRING_UTIL_H_
#define X3_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace x3 {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII characters.
std::string ToLowerAscii(std::string_view s);

/// Parses a signed 64-bit integer; the whole string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a double; the whole string must be consumed.
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Escapes XML special characters (& < > " ') for text/attribute output.
std::string XmlEscape(std::string_view s);

/// Appends `s` to `*out` with JSON string-literal escaping (quotes,
/// backslashes, control characters). Shared by every hand-rolled JSON
/// exporter (Chrome trace, metrics, query log, statusz).
void AppendJsonEscaped(std::string_view s, std::string* out);

/// JSON string-literal form of `s` including the surrounding quotes.
std::string JsonQuote(std::string_view s);

}  // namespace x3

#endif  // X3_UTIL_STRING_UTIL_H_
