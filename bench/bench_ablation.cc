// Ablation benchmarks for the design choices DESIGN.md calls out:
//  * stack-based structural join vs the naive nested loop;
//  * BUC's iceberg pruning on vs off;
//  * COUNTER's memory budget swept over a decade (multi-pass onset);
//  * buffer pool size during fact-table materialization (the paged
//    substrate's contribution to pattern-evaluation cost).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "cube/cube_spec.h"
#include "cube/view_store.h"
#include "gen/treebank_gen.h"
#include "xdb/structural_join.h"

namespace x3 {
namespace {

std::unique_ptr<Database> MakeDb(size_t trees, size_t pool_pages) {
  DatabaseOptions db_options;
  db_options.buffer_pool_pages = pool_pages;
  auto db = Database::Open(db_options);
  X3_CHECK(db.ok());
  TreebankConfig config;
  config.num_axes = 4;
  config.missing_probability = 0.2;
  TreebankGenerator gen(config);
  X3_CHECK(gen.LoadInto(db->get(), trees).ok());
  return std::move(*db);
}

void BM_AblationJoinStack(benchmark::State& state) {
  auto db = MakeDb(static_cast<size_t>(state.range(0)), 4096);
  const auto& anc = db->NodesWithTag(TreebankRootTag());
  const auto& desc = db->NodesWithTag(TreebankAxisTag(0));
  for (auto _ : state) {
    auto pairs = StructuralJoin(*db, anc, desc, StructuralAxis::kDescendant);
    X3_CHECK(pairs.ok());
    benchmark::DoNotOptimize(pairs->size());
  }
}
BENCHMARK(BM_AblationJoinStack)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_AblationJoinNestedLoop(benchmark::State& state) {
  auto db = MakeDb(static_cast<size_t>(state.range(0)), 4096);
  const auto& anc = db->NodesWithTag(TreebankRootTag());
  const auto& desc = db->NodesWithTag(TreebankAxisTag(0));
  for (auto _ : state) {
    auto pairs =
        NestedLoopStructuralJoin(*db, anc, desc, StructuralAxis::kDescendant);
    X3_CHECK(pairs.ok());
    benchmark::DoNotOptimize(pairs->size());
  }
}
BENCHMARK(BM_AblationJoinNestedLoop)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_AblationBucIceberg(benchmark::State& state) {
  ExperimentSetting setting;
  setting.num_axes = 5;
  setting.num_trees = 5000;
  setting.dense = false;
  const Workload& workload = bench::CachedTreebankWorkload(setting);
  CubeComputeOptions options;
  options.min_count = state.range(0);
  CubeComputeStats stats;
  for (auto _ : state) {
    auto cube = ComputeCube(CubeAlgorithm::kBUC, workload.facts,
                            workload.lattice, options, &stats);
    X3_CHECK(cube.ok());
    benchmark::DoNotOptimize(cube->TotalCells());
  }
  state.counters["partition_rows"] =
      static_cast<double>(stats.partition_rows);
}
BENCHMARK(BM_AblationBucIceberg)->Arg(0)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_AblationCounterBudget(benchmark::State& state) {
  ExperimentSetting setting;
  setting.num_axes = 5;
  setting.num_trees = 5000;
  setting.dense = false;
  const Workload& workload = bench::CachedTreebankWorkload(setting);
  size_t budget_bytes = static_cast<size_t>(state.range(0)) * 1024;
  CubeComputeStats stats;
  for (auto _ : state) {
    MemoryBudget budget(budget_bytes);
    CubeComputeOptions options;
    options.budget = &budget;
    auto cube = ComputeCube(CubeAlgorithm::kCounter, workload.facts,
                            workload.lattice, options, &stats);
    X3_CHECK(cube.ok());
    benchmark::DoNotOptimize(cube->TotalCells());
  }
  state.counters["passes"] = static_cast<double>(stats.passes);
}
BENCHMARK(BM_AblationCounterBudget)
    ->Arg(16384)  // effectively unbounded: one pass
    ->Arg(2048)
    ->Arg(512)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_AblationViewStore(benchmark::State& state) {
  // Answer every cuboid of a 4-axis non-summarizable cube either from
  // the base table (range 0) or through a materialized finest view
  // with fact-id tracking (range 1) — §3.6's trade-off quantified.
  ExperimentSetting setting;
  setting.num_axes = 4;
  setting.num_trees = 4000;
  setting.coverage_holds = false;
  setting.disjointness_holds = false;
  const Workload& workload = bench::CachedTreebankWorkload(setting);
  bool use_view = state.range(0) != 0;
  CubeViewStore store(&workload.facts, &workload.lattice);
  if (use_view) {
    X3_CHECK(store.Materialize(workload.lattice.FinestCuboid(),
                               /*with_fact_ids=*/true)
                 .ok());
  }
  uint64_t from_base = 0;
  for (auto _ : state) {
    from_base = 0;
    for (CuboidId c = 0; c < workload.lattice.num_cuboids(); ++c) {
      ViewComputeStats stats;
      auto cells = store.Answer(c, AggregateFunction::kCount,
                                &workload.properties, &stats);
      X3_CHECK(cells.ok());
      if (stats.strategy == ViewStrategy::kBase) ++from_base;
      benchmark::DoNotOptimize(cells->size());
    }
  }
  state.counters["from_base"] = static_cast<double>(from_base);
  state.counters["view_bytes"] = static_cast<double>(store.ApproxBytes());
}
BENCHMARK(BM_AblationViewStore)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_AblationBufferPoolSize(benchmark::State& state) {
  size_t pool_pages = static_cast<size_t>(state.range(0));
  auto db = MakeDb(2000, pool_pages);
  TreebankConfig config;
  config.num_axes = 4;
  CubeQuery query = MakeTreebankQuery(config);
  auto lattice = BuildCubeLattice(query);
  X3_CHECK(lattice.ok());
  for (auto _ : state) {
    auto facts = BuildFactTable(*db, query, *lattice);
    X3_CHECK(facts.ok());
    benchmark::DoNotOptimize(facts->size());
  }
  state.counters["pool_hits"] =
      static_cast<double>(db->buffer_stats().hits);
  state.counters["pool_misses"] =
      static_cast<double>(db->buffer_stats().misses);
}
BENCHMARK(BM_AblationBufferPoolSize)->Arg(8)->Arg(64)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace x3

int main(int argc, char** argv) {
  return x3::bench::RunRegisteredBenchmarks(argc, argv);
}
