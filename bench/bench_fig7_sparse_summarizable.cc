// Figure 7: sparse cubes from 10^5 Treebank input trees, total coverage
// AND disjointness hold — the relational-like case, so TDOPTALL runs
// instead of TDOPT. Series: COUNTER, BUC, BUCOPT, TD, TDOPTALL.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  x3::ExperimentSetting base;
  base.coverage_holds = true;
  base.disjointness_holds = true;
  base.dense = false;
  base.num_trees = x3::bench::TreesFor(10000);
  base.seed = 7;

  x3::bench::RegisterFigure(
      "fig7_sparse_summarizable", base,
      {x3::CubeAlgorithm::kCounter, x3::CubeAlgorithm::kBUC,
       x3::CubeAlgorithm::kBUCOpt, x3::CubeAlgorithm::kTD,
       x3::CubeAlgorithm::kTDOptAll});

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
