// Figure 5: sparse cubes from 10^5 Treebank input trees, total coverage
// does NOT hold, disjointness holds. Series: running time vs number of
// axes (2-7) for COUNTER, BUC, BUCOPT, TD, TDOPT.
//
// Together with Figure 4 (10^4 trees) this is the §4.4 scaling pair.
// Default scaled down for CI; X3_BENCH_TREES=100000 for paper scale.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  x3::bench::FigureSpec spec;
  spec.figure = "fig5_sparse";
  spec.coverage_holds = false;
  spec.disjointness_holds = true;
  spec.dense = false;
  spec.default_trees = 10000;
  spec.seed = 5;
  spec.algorithms = {x3::CubeAlgorithm::kCounter, x3::CubeAlgorithm::kBUC,
                     x3::CubeAlgorithm::kBUCOpt, x3::CubeAlgorithm::kTD,
                     x3::CubeAlgorithm::kTDOpt};
  return x3::bench::RunFigureBenchmark(argc, argv, spec);
}
