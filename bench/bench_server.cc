// Closed-loop multi-tenant workload driver for the X3Server serving
// layer (the bench half of scripts/workload_harness.py).
//
// N client threads share one server over one database holding BOTH
// corpora (Treebank trees and DBLP articles — two tenants, two query
// shapes). Each client runs a seeded random query mix — shape, target
// cuboid (or the full cube), algorithm (safe and unsafe variants),
// iceberg threshold — paced to a target aggregate QPS, waiting for each
// answer before issuing the next (closed loop). When the run drains,
// the driver reports p50/p99 latency interpolated from the metric
// registry's x3_server_query_latency_seconds histogram and cache hit
// rates from the x3_server_* counters, as one JSON object on stdout.
//
// Flags (all optional): --clients=N --qps=Q --queries=N --seed=S
// --threads=N --cache-kb=N --trees=N --articles=N

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cube/algorithm.h"
#include "gen/dblp_gen.h"
#include "gen/treebank_gen.h"
#include "gen/workload.h"
#include "schema/dtd_parser.h"
#include "server/x3_server.h"
#include "util/metrics.h"
#include "util/random.h"

namespace {

struct Flags {
  size_t clients = 4;
  double qps = 200;       // aggregate target across all clients
  size_t queries = 400;   // total, split across clients
  uint64_t seed = 1;
  size_t threads = 0;     // server workers; 0 = hardware concurrency
  size_t cache_kb = 256;
  size_t trees = 300;
  size_t articles = 400;
};

uint64_t ParseU64(const char* s) {
  return static_cast<uint64_t>(std::strtoull(s, nullptr, 10));
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr) continue;
    std::string key(arg, eq - arg);
    const char* value = eq + 1;
    if (key == "--clients") flags.clients = ParseU64(value);
    else if (key == "--qps") flags.qps = std::strtod(value, nullptr);
    else if (key == "--queries") flags.queries = ParseU64(value);
    else if (key == "--seed") flags.seed = ParseU64(value);
    else if (key == "--threads") flags.threads = ParseU64(value);
    else if (key == "--cache-kb") flags.cache_kb = ParseU64(value);
    else if (key == "--trees") flags.trees = ParseU64(value);
    else if (key == "--articles") flags.articles = ParseU64(value);
  }
  return flags;
}

struct Tenant {
  x3::CubeQuery query;
  x3::LatticeProperties properties;
  uint64_t num_cuboids = 0;
};

/// Linearly interpolated quantile from the exponential-bucket latency
/// histogram (the standard Prometheus histogram_quantile estimate).
double QuantileSeconds(const x3::Histogram& hist, double q) {
  uint64_t total = hist.count();
  if (total == 0) return 0;
  double rank = q * static_cast<double>(total);
  uint64_t below = 0;
  for (size_t i = 0; i < x3::Histogram::kNumBuckets; ++i) {
    uint64_t cumulative = hist.bucket_count(i);
    if (static_cast<double>(cumulative) >= rank) {
      double upper = x3::Histogram::BucketUpperBound(i);
      double lower = i == 0 ? 0 : x3::Histogram::BucketUpperBound(i - 1);
      if (!std::isfinite(upper)) return lower;
      uint64_t in_bucket = cumulative - below;
      if (in_bucket == 0) return upper;
      double fraction =
          (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * fraction;
    }
    below = cumulative;
  }
  return x3::Histogram::BucketUpperBound(x3::Histogram::kNumBuckets - 2);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  auto db = x3::Database::Open({});
  if (!db.ok()) {
    std::fprintf(stderr, "db open: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // Tenant 1: Treebank with both summarizability properties failing
  // (forces fact-id roll-ups and algorithm downgrades).
  x3::ExperimentSetting setting;
  setting.num_axes = 3;
  setting.num_trees = flags.trees;
  setting.coverage_holds = false;
  setting.disjointness_holds = false;
  setting.dense = true;
  setting.seed = flags.seed;
  x3::TreebankConfig config = x3::MakeTreebankConfig(setting);
  x3::TreebankGenerator treebank_gen(config);
  if (!treebank_gen.LoadInto(db->get(), setting.num_trees).ok()) return 1;

  // Tenant 2: DBLP (§4.5's corpus; author repeats/missing as in real
  // DBLP).
  x3::DblpConfig dblp_config;
  dblp_config.seed = flags.seed + 1;
  x3::DblpGenerator dblp_gen(dblp_config);
  if (!dblp_gen.LoadInto(db->get(), flags.articles).ok()) return 1;

  x3::X3Engine engine(db->get());
  std::vector<Tenant> tenants(2);
  tenants[0].query = x3::MakeTreebankQuery(config);
  tenants[1].query = x3::MakeDblpQuery();
  const std::string dtds[2] = {treebank_gen.MatchingDtd(), x3::DblpDtd()};
  const std::string fact_tags[2] = {x3::TreebankRootTag(), "article"};
  for (int t = 0; t < 2; ++t) {
    auto schema = x3::ParseDtd(dtds[t]);
    if (!schema.ok()) return 1;
    auto prepared = engine.Prepare(tenants[t].query);
    if (!prepared.ok()) return 1;
    tenants[t].num_cuboids = prepared->lattice.num_cuboids();
    auto properties = x3::InferLatticeProperties(*schema, prepared->lattice,
                                                 fact_tags[t]);
    if (!properties.ok()) return 1;
    tenants[t].properties = std::move(*properties);
  }

  x3::X3ServerOptions options;
  options.num_threads = flags.threads;
  options.cache_capacity_bytes = flags.cache_kb << 10;
  x3::X3Server server(db->get(), options);

  const x3::CubeAlgorithm kAlgorithms[] = {
      x3::CubeAlgorithm::kCounter,  x3::CubeAlgorithm::kBUC,
      x3::CubeAlgorithm::kBUCCust,  x3::CubeAlgorithm::kTD,
      x3::CubeAlgorithm::kTDOptAll, x3::CubeAlgorithm::kTDCust,
  };

  std::atomic<uint64_t> ok_count{0}, failed_count{0};
  auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(flags.clients);
  for (size_t c = 0; c < flags.clients; ++c) {
    clients.emplace_back([&, c] {
      size_t quota = flags.queries / flags.clients +
                     (c < flags.queries % flags.clients ? 1 : 0);
      double interval_s =
          flags.qps > 0 ? static_cast<double>(flags.clients) / flags.qps : 0;
      x3::Random rng(flags.seed * 1000 + c);
      auto next_slot = std::chrono::steady_clock::now();
      for (size_t i = 0; i < quota; ++i) {
        // Closed loop with pacing: wait for this client's next slot,
        // issue, block on the answer.
        if (interval_s > 0) {
          std::this_thread::sleep_until(next_slot);
          next_slot += std::chrono::duration_cast<
              std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(interval_s));
        }
        Tenant& tenant = tenants[rng.Uniform(2)];
        x3::ServerRequest request;
        request.query = tenant.query;
        request.properties = &tenant.properties;
        request.algorithm = kAlgorithms[rng.Uniform(6)];
        request.min_count = rng.Bernoulli(0.2) ? 2 : 0;
        if (!rng.Bernoulli(1.0 / 8)) {
          request.target =
              rng.Uniform(static_cast<uint32_t>(tenant.num_cuboids));
        }
        auto answer = server.Execute(std::move(request));
        if (answer.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed_count.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "query failed: %s\n",
                       answer.status().ToString().c_str());
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Reported numbers come from the metrics registry — the same wiring
  // the CI observability gate and a production scrape would read.
  x3::MetricRegistry& registry = x3::MetricRegistry::Global();
  x3::Histogram* latency = registry.GetHistogram(
      "x3_server_query_latency_seconds", "");
  uint64_t hits = registry.GetCounter("x3_server_cache_hits_total", "")->value();
  uint64_t rollups =
      registry.GetCounter("x3_server_rollup_answers_total", "")->value();
  uint64_t misses =
      registry.GetCounter("x3_server_cache_misses_total", "")->value();
  uint64_t served =
      registry.GetCounter("x3_server_cache_served_total", "")->value();
  uint64_t evictions =
      registry.GetCounter("x3_server_cache_evictions_total", "")->value();
  uint64_t queries = registry.GetCounter("x3_server_queries_total", "")->value();
  double served_total = static_cast<double>(served + misses);
  std::printf(
      "{\n"
      "  \"clients\": %zu, \"target_qps\": %.1f, \"queries\": %llu,\n"
      "  \"ok\": %llu, \"failed\": %llu,\n"
      "  \"wall_seconds\": %.3f, \"achieved_qps\": %.1f,\n"
      "  \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"mean_ms\": %.3f,\n"
      "  \"exact_hits\": %llu, \"rollup_answers\": %llu,\n"
      "  \"cache_misses\": %llu, \"cache_served\": %llu,\n"
      "  \"cache_hit_rate\": %.3f, \"evictions\": %llu\n"
      "}\n",
      flags.clients, flags.qps,
      static_cast<unsigned long long>(queries),
      static_cast<unsigned long long>(ok_count.load()),
      static_cast<unsigned long long>(failed_count.load()), wall_seconds,
      static_cast<double>(queries) / wall_seconds,
      QuantileSeconds(*latency, 0.50) * 1e3,
      QuantileSeconds(*latency, 0.99) * 1e3,
      latency->count() > 0
          ? latency->sum() / static_cast<double>(latency->count()) * 1e3
          : 0,
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(rollups),
      static_cast<unsigned long long>(misses),
      static_cast<unsigned long long>(served),
      served_total > 0 ? static_cast<double>(served) / served_total : 0,
      static_cast<unsigned long long>(evictions));
  return failed_count.load() == 0 ? 0 : 2;
}
