// Closed-loop multi-tenant workload driver for the X3Server serving
// layer (the bench half of scripts/workload_harness.py).
//
// N client threads share one server over one database holding BOTH
// corpora (Treebank trees and DBLP articles — two tenants, two query
// shapes). Each client runs a seeded random query mix — shape, target
// cuboid (or the full cube), algorithm (safe and unsafe variants),
// iceberg threshold — paced to a target aggregate QPS, waiting for each
// answer before issuing the next (closed loop). When the run drains,
// the driver reports p50/p95/p99 latency interpolated from the metric
// registry's x3_server_query_latency_seconds histogram and cache hit
// rates from the x3_server_* counters, as one JSON object on stdout.
//
// Observability artifacts (the statusz/query-log half of the
// harness): --query-log-out dumps the server's per-query JSONL log,
// --statusz-out dumps a Statusz() JSON snapshot taken right after the
// run drained, --slow-ms arms the slow-query lane, and --stall-ms
// injects ONE deliberately stalled query (ServerRequest::
// debug_hold_seconds) with the watchdog armed to flag it — the
// end-to-end fixture scripts/check_observability.py validates.
//
// Flags (all optional): --clients=N --qps=Q --queries=N --seed=S
// --threads=N --cache-kb=N --trees=N --articles=N --slow-ms=N
// --stall-ms=N --watchdog-ms=N --statusz-out=PATH --query-log-out=PATH

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cube/algorithm.h"
#include "gen/dblp_gen.h"
#include "gen/treebank_gen.h"
#include "gen/workload.h"
#include "schema/dtd_parser.h"
#include "server/x3_server.h"
#include "util/env.h"
#include "util/metrics.h"
#include "util/random.h"

namespace {

struct Flags {
  size_t clients = 4;
  double qps = 200;       // aggregate target across all clients
  size_t queries = 400;   // total, split across clients
  uint64_t seed = 1;
  size_t threads = 0;     // server workers; 0 = hardware concurrency
  size_t cache_kb = 256;
  size_t trees = 300;
  size_t articles = 400;
  double slow_ms = 0;      // slow-query lane threshold; 0 = disabled
  double stall_ms = 0;     // inject one stalled query of this length
  double watchdog_ms = 0;  // watchdog tick; 0 = derived from stall_ms
  std::string statusz_out;    // write a Statusz() JSON snapshot here
  std::string query_log_out;  // write the query log JSONL here
};

uint64_t ParseU64(const char* s) {
  return static_cast<uint64_t>(std::strtoull(s, nullptr, 10));
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr) continue;
    std::string key(arg, eq - arg);
    const char* value = eq + 1;
    if (key == "--clients") flags.clients = ParseU64(value);
    else if (key == "--qps") flags.qps = std::strtod(value, nullptr);
    else if (key == "--queries") flags.queries = ParseU64(value);
    else if (key == "--seed") flags.seed = ParseU64(value);
    else if (key == "--threads") flags.threads = ParseU64(value);
    else if (key == "--cache-kb") flags.cache_kb = ParseU64(value);
    else if (key == "--trees") flags.trees = ParseU64(value);
    else if (key == "--articles") flags.articles = ParseU64(value);
    else if (key == "--slow-ms") flags.slow_ms = std::strtod(value, nullptr);
    else if (key == "--stall-ms") flags.stall_ms = std::strtod(value, nullptr);
    else if (key == "--watchdog-ms") {
      flags.watchdog_ms = std::strtod(value, nullptr);
    } else if (key == "--statusz-out") {
      flags.statusz_out = value;
    } else if (key == "--query-log-out") {
      flags.query_log_out = value;
    }
  }
  return flags;
}

struct Tenant {
  std::string name;
  x3::CubeQuery query;
  x3::LatticeProperties properties;
  uint64_t num_cuboids = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);

  auto db = x3::Database::Open({});
  if (!db.ok()) {
    std::fprintf(stderr, "db open: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // Tenant 1: Treebank with both summarizability properties failing
  // (forces fact-id roll-ups and algorithm downgrades).
  x3::ExperimentSetting setting;
  setting.num_axes = 3;
  setting.num_trees = flags.trees;
  setting.coverage_holds = false;
  setting.disjointness_holds = false;
  setting.dense = true;
  setting.seed = flags.seed;
  x3::TreebankConfig config = x3::MakeTreebankConfig(setting);
  x3::TreebankGenerator treebank_gen(config);
  if (!treebank_gen.LoadInto(db->get(), setting.num_trees).ok()) return 1;

  // Tenant 2: DBLP (§4.5's corpus; author repeats/missing as in real
  // DBLP).
  x3::DblpConfig dblp_config;
  dblp_config.seed = flags.seed + 1;
  x3::DblpGenerator dblp_gen(dblp_config);
  if (!dblp_gen.LoadInto(db->get(), flags.articles).ok()) return 1;

  x3::X3Engine engine(db->get());
  std::vector<Tenant> tenants(2);
  tenants[0].name = "treebank";
  tenants[0].query = x3::MakeTreebankQuery(config);
  tenants[1].name = "dblp";
  tenants[1].query = x3::MakeDblpQuery();
  const std::string dtds[2] = {treebank_gen.MatchingDtd(), x3::DblpDtd()};
  const std::string fact_tags[2] = {x3::TreebankRootTag(), "article"};
  for (int t = 0; t < 2; ++t) {
    auto schema = x3::ParseDtd(dtds[t]);
    if (!schema.ok()) return 1;
    auto prepared = engine.Prepare(tenants[t].query);
    if (!prepared.ok()) return 1;
    tenants[t].num_cuboids = prepared->lattice.num_cuboids();
    auto properties = x3::InferLatticeProperties(*schema, prepared->lattice,
                                                 fact_tags[t]);
    if (!properties.ok()) return 1;
    tenants[t].properties = std::move(*properties);
  }

  x3::X3ServerOptions options;
  options.num_threads = flags.threads;
  options.cache_capacity_bytes = flags.cache_kb << 10;
  // The validation scripts require one log record per submitted query,
  // so the ring must hold the whole run (+ the injected stall).
  options.query_log_capacity = flags.queries + 16;
  options.slow_query_threshold_seconds = flags.slow_ms / 1e3;
  if (flags.stall_ms > 0 || flags.watchdog_ms > 0) {
    // Watchdog armed for deadline-less queries: the injected stall must
    // cross the stuck threshold while healthy queries stay far below it.
    double watchdog_ms =
        flags.watchdog_ms > 0 ? flags.watchdog_ms : flags.stall_ms / 4;
    options.watchdog_interval_seconds = watchdog_ms / 1e3;
    options.stuck_after_seconds =
        flags.stall_ms > 0 ? flags.stall_ms / 2 / 1e3 : 60.0;
  }
  x3::X3Server server(db->get(), options);

  const x3::CubeAlgorithm kAlgorithms[] = {
      x3::CubeAlgorithm::kCounter,  x3::CubeAlgorithm::kBUC,
      x3::CubeAlgorithm::kBUCCust,  x3::CubeAlgorithm::kTD,
      x3::CubeAlgorithm::kTDOptAll, x3::CubeAlgorithm::kTDCust,
  };

  std::atomic<uint64_t> ok_count{0}, failed_count{0};
  auto wall_start = std::chrono::steady_clock::now();

  // The deliberately stalled query: submitted before the clients so it
  // is in flight while the healthy load runs; the watchdog must flag
  // it (and nothing else).
  std::shared_ptr<x3::X3Server::Ticket> stall_ticket;
  if (flags.stall_ms > 0) {
    x3::ServerRequest stall;
    stall.query = tenants[0].query;
    stall.properties = &tenants[0].properties;
    stall.target = 0;
    stall.tenant = "stall-probe";
    stall.debug_hold_seconds = flags.stall_ms / 1e3;
    stall_ticket = server.Submit(std::move(stall));
  }

  std::vector<std::thread> clients;
  clients.reserve(flags.clients);
  for (size_t c = 0; c < flags.clients; ++c) {
    clients.emplace_back([&, c] {
      size_t quota = flags.queries / flags.clients +
                     (c < flags.queries % flags.clients ? 1 : 0);
      double interval_s =
          flags.qps > 0 ? static_cast<double>(flags.clients) / flags.qps : 0;
      x3::Random rng(flags.seed * 1000 + c);
      auto next_slot = std::chrono::steady_clock::now();
      for (size_t i = 0; i < quota; ++i) {
        // Closed loop with pacing: wait for this client's next slot,
        // issue, block on the answer.
        if (interval_s > 0) {
          std::this_thread::sleep_until(next_slot);
          next_slot += std::chrono::duration_cast<
              std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(interval_s));
        }
        Tenant& tenant = tenants[rng.Uniform(2)];
        x3::ServerRequest request;
        request.query = tenant.query;
        request.properties = &tenant.properties;
        request.algorithm = kAlgorithms[rng.Uniform(6)];
        request.min_count = rng.Bernoulli(0.2) ? 2 : 0;
        request.tenant = tenant.name;
        if (!rng.Bernoulli(1.0 / 8)) {
          request.target =
              rng.Uniform(static_cast<uint32_t>(tenant.num_cuboids));
        }
        auto answer = server.Execute(std::move(request));
        if (answer.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed_count.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "query failed: %s\n",
                       answer.status().ToString().c_str());
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  if (stall_ticket != nullptr) {
    auto answer = stall_ticket->Wait();
    if (answer.ok()) {
      ok_count.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_count.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr, "stall probe failed: %s\n",
                   answer.status().ToString().c_str());
    }
  }
  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Observability artifacts, captured while the server is still alive.
  if (!flags.statusz_out.empty()) {
    x3::StatuszReport statusz = server.Statusz();
    auto s = x3::WriteStringToFile(x3::Env::Default(), flags.statusz_out,
                                   statusz.ToJson() + "\n");
    if (!s.ok()) {
      std::fprintf(stderr, "statusz dump: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!flags.query_log_out.empty()) {
    auto s = server.query_log().WriteJsonl(x3::Env::Default(),
                                           flags.query_log_out);
    if (!s.ok()) {
      std::fprintf(stderr, "query log dump: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // Reported numbers come from the metrics registry — the same wiring
  // the CI observability gate and a production scrape would read.
  x3::MetricRegistry& registry = x3::MetricRegistry::Global();
  x3::Histogram* latency = registry.GetHistogram(
      "x3_server_query_latency_seconds", "");
  uint64_t hits = registry.GetCounter("x3_server_cache_hits_total", "")->value();
  uint64_t rollups =
      registry.GetCounter("x3_server_rollup_answers_total", "")->value();
  uint64_t misses =
      registry.GetCounter("x3_server_cache_misses_total", "")->value();
  uint64_t served =
      registry.GetCounter("x3_server_cache_served_total", "")->value();
  uint64_t evictions =
      registry.GetCounter("x3_server_cache_evictions_total", "")->value();
  uint64_t queries = registry.GetCounter("x3_server_queries_total", "")->value();
  uint64_t slow = registry.GetCounter("x3_server_slow_queries_total", "")->value();
  uint64_t stuck = registry.GetCounter("x3_server_stuck_queries_total", "")->value();
  double served_total = static_cast<double>(served + misses);
  std::printf(
      "{\n"
      "  \"clients\": %zu, \"target_qps\": %.1f, \"queries\": %llu,\n"
      "  \"ok\": %llu, \"failed\": %llu,\n"
      "  \"wall_seconds\": %.3f, \"achieved_qps\": %.1f,\n"
      "  \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, \"mean_ms\": %.3f,\n"
      "  \"exact_hits\": %llu, \"rollup_answers\": %llu,\n"
      "  \"cache_misses\": %llu, \"cache_served\": %llu,\n"
      "  \"cache_hit_rate\": %.3f, \"evictions\": %llu,\n"
      "  \"slow_queries\": %llu, \"stuck_queries\": %llu\n"
      "}\n",
      flags.clients, flags.qps,
      static_cast<unsigned long long>(queries),
      static_cast<unsigned long long>(ok_count.load()),
      static_cast<unsigned long long>(failed_count.load()), wall_seconds,
      static_cast<double>(queries) / wall_seconds,
      latency->Quantile(0.50) * 1e3,
      latency->Quantile(0.95) * 1e3,
      latency->Quantile(0.99) * 1e3,
      latency->count() > 0
          ? latency->sum() / static_cast<double>(latency->count()) * 1e3
          : 0,
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(rollups),
      static_cast<unsigned long long>(misses),
      static_cast<unsigned long long>(served),
      served_total > 0 ? static_cast<double>(served) / served_total : 0,
      static_cast<unsigned long long>(evictions),
      static_cast<unsigned long long>(slow),
      static_cast<unsigned long long>(stuck));
  return failed_count.load() == 0 ? 0 : 2;
}
