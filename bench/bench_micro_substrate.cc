// Substrate micro-benchmarks: the building blocks under the cube
// operator — XML parsing/shredding, buffer-pool node access, structural
// joins, twig matching, external sorting, lattice construction and
// fact-table materialization.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

#include <memory>

#include "cube/cube_spec.h"
#include "gen/treebank_gen.h"
#include "pattern/join_matcher.h"
#include "pattern/path_stack.h"
#include "pattern/pattern_parser.h"
#include "pattern/twig_matcher.h"
#include "storage/external_sorter.h"
#include "storage/temp_file.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"
#include "xdb/database.h"
#include "xdb/structural_join.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace x3 {
namespace {

std::string MakeTreebankXmlCorpus(size_t trees) {
  TreebankConfig config;
  config.num_axes = 4;
  config.missing_probability = 0.2;
  TreebankGenerator gen(config);
  std::string xml = "<corpus>";
  XmlWriteOptions compact;
  compact.indent = false;
  compact.declaration = false;
  for (size_t i = 0; i < trees; ++i) {
    xml += WriteXml(*gen.NextTree().root(), compact);
  }
  xml += "</corpus>";
  return xml;
}

std::unique_ptr<Database> MakeLoadedDb(size_t trees) {
  auto db = Database::Open({});
  X3_CHECK(db.ok());
  TreebankConfig config;
  config.num_axes = 4;
  config.missing_probability = 0.2;
  TreebankGenerator gen(config);
  X3_CHECK(gen.LoadInto(db->get(), trees).ok());
  return std::move(*db);
}

void BM_XmlParse(benchmark::State& state) {
  std::string xml = MakeTreebankXmlCorpus(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto doc = ParseXml(xml);
    X3_CHECK(doc.ok());
    benchmark::DoNotOptimize(doc->NodeCount());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xml.size()));
}
BENCHMARK(BM_XmlParse)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_DocumentShred(benchmark::State& state) {
  std::string xml = MakeTreebankXmlCorpus(static_cast<size_t>(state.range(0)));
  auto doc = ParseXml(xml);
  X3_CHECK(doc.ok());
  for (auto _ : state) {
    auto db = Database::Open({});
    X3_CHECK(db.ok());
    X3_CHECK((*db)->LoadDocument(*doc).ok());
    benchmark::DoNotOptimize((*db)->node_count());
  }
}
BENCHMARK(BM_DocumentShred)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_NodeFetch(benchmark::State& state) {
  auto db = MakeLoadedDb(1000);
  Random rng(1);
  NodeRecord rec;
  for (auto _ : state) {
    NodeId id = static_cast<NodeId>(rng.Uniform(db->node_count()));
    X3_CHECK(db->GetNode(id, &rec).ok());
    benchmark::DoNotOptimize(rec.end);
  }
}
BENCHMARK(BM_NodeFetch);

void BM_StructuralJoin(benchmark::State& state) {
  auto db = MakeLoadedDb(static_cast<size_t>(state.range(0)));
  const auto& roots = db->NodesWithTag(TreebankRootTag());
  const auto& descendants = db->NodesWithTag(TreebankAxisTag(0));
  for (auto _ : state) {
    auto pairs =
        StructuralJoin(*db, roots, descendants, StructuralAxis::kDescendant);
    X3_CHECK(pairs.ok());
    benchmark::DoNotOptimize(pairs->size());
  }
  state.counters["pairs"] = static_cast<double>(
      StructuralJoin(*db, roots, descendants, StructuralAxis::kDescendant)
          ->size());
}
BENCHMARK(BM_StructuralJoin)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_TwigMatch(benchmark::State& state) {
  auto db = MakeLoadedDb(static_cast<size_t>(state.range(0)));
  auto parsed = ParsePattern(StringPrintf("//%s[./%s]/%s", TreebankRootTag(),
                                          TreebankAxisTag(0),
                                          TreebankAxisTag(1)));
  X3_CHECK(parsed.ok());
  TwigMatcher matcher(db.get());
  for (auto _ : state) {
    auto matches = matcher.FindMatches(parsed->pattern);
    X3_CHECK(matches.ok());
    benchmark::DoNotOptimize(matches->size());
  }
}
BENCHMARK(BM_TwigMatch)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

// The three pattern-evaluation strategies on the same chain pattern:
// node-at-a-time recursion, edge-at-a-time structural-join plans, and
// the holistic PathStack.
void BM_MatcherStrategies(benchmark::State& state) {
  auto db = MakeLoadedDb(2000);
  auto parsed = ParsePattern(StringPrintf("//%s//%s", TreebankRootTag(),
                                          TreebankAxisTag(0)));
  X3_CHECK(parsed.ok());
  int strategy = static_cast<int>(state.range(0));
  size_t matches_found = 0;
  for (auto _ : state) {
    if (strategy == 0) {
      TwigMatcher matcher(db.get());
      auto matches = matcher.FindMatches(parsed->pattern);
      X3_CHECK(matches.ok());
      matches_found = matches->size();
    } else if (strategy == 1) {
      JoinMatcher matcher(db.get());
      auto matches = matcher.FindMatches(parsed->pattern);
      X3_CHECK(matches.ok());
      matches_found = matches->size();
    } else {
      PathStackMatcher matcher(db.get());
      auto matches = matcher.FindMatches(parsed->pattern);
      X3_CHECK(matches.ok());
      matches_found = matches->size();
    }
    benchmark::DoNotOptimize(matches_found);
  }
  state.counters["matches"] = static_cast<double>(matches_found);
  state.SetLabel(strategy == 0   ? "twig"
                 : strategy == 1 ? "join-plan"
                                 : "path-stack");
}
BENCHMARK(BM_MatcherStrategies)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_ExternalSort(benchmark::State& state) {
  size_t records = static_cast<size_t>(state.range(0));
  bool external = state.range(1) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    TempFileManager temp;
    MemoryBudget budget(external ? 64 * 1024 : 0);
    ExternalSorter::Options options;
    options.budget = external ? &budget : nullptr;
    options.temp_files = &temp;
    ExternalSorter sorter(options);
    Random rng(7);
    state.ResumeTiming();
    for (size_t i = 0; i < records; ++i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%012llu",
                    static_cast<unsigned long long>(rng.Next() % 1000000));
      X3_CHECK(sorter.Add(buf).ok());
    }
    auto stream = sorter.Finish();
    X3_CHECK(stream.ok());
    std::string rec;
    Status s;
    size_t n = 0;
    while ((*stream)->Next(&rec, &s)) ++n;
    X3_CHECK(s.ok());
    X3_CHECK(n == records);
  }
}
BENCHMARK(BM_ExternalSort)
    ->Args({50000, 0})
    ->Args({50000, 1})
    ->Unit(benchmark::kMillisecond);

void BM_LatticeConstruction(benchmark::State& state) {
  TreebankConfig config;
  config.num_axes = static_cast<size_t>(state.range(0));
  CubeQuery query = MakeTreebankQuery(config, RelaxationSet::All());
  for (auto _ : state) {
    auto lattice = BuildCubeLattice(query);
    X3_CHECK(lattice.ok());
    benchmark::DoNotOptimize(lattice->num_cuboids());
  }
}
BENCHMARK(BM_LatticeConstruction)->Arg(2)->Arg(4)->Arg(7);

void BM_FactTableBuild(benchmark::State& state) {
  auto db = MakeLoadedDb(static_cast<size_t>(state.range(0)));
  TreebankConfig config;
  config.num_axes = 4;
  CubeQuery query = MakeTreebankQuery(config);
  auto lattice = BuildCubeLattice(query);
  X3_CHECK(lattice.ok());
  for (auto _ : state) {
    auto facts = BuildFactTable(*db, query, *lattice);
    X3_CHECK(facts.ok());
    benchmark::DoNotOptimize(facts->size());
  }
}
BENCHMARK(BM_FactTableBuild)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace x3

int main(int argc, char** argv) {
  return x3::bench::RunRegisteredBenchmarks(argc, argv);
}
