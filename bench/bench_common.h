#ifndef X3_BENCH_BENCH_COMMON_H_
#define X3_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cube/algorithm.h"
#include "gen/workload.h"
#include "storage/temp_file.h"
#include "util/env.h"
#include "util/exec.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace x3 {
namespace bench {

/// Tree count for a figure: the paper's count scaled down by default
/// (our substrate is a simulator, shapes are the target), overridable
/// with X3_BENCH_TREES=<n>.
inline size_t TreesFor(size_t default_trees) {
  const char* env = std::getenv("X3_BENCH_TREES");
  if (env != nullptr) {
    long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return default_trees;
}

/// Workloads are expensive to build; cache them per setting across
/// benchmark registrations (benchmarks must not time generation).
inline const Workload& CachedTreebankWorkload(
    const ExperimentSetting& setting) {
  static std::map<std::string, std::unique_ptr<Workload>>* cache =
      new std::map<std::string, std::unique_ptr<Workload>>();
  std::string key = StringPrintf(
      "c%d-d%d-dense%d-a%zu-n%zu-s%llu", setting.coverage_holds ? 1 : 0,
      setting.disjointness_holds ? 1 : 0, setting.dense ? 1 : 0,
      setting.num_axes, setting.num_trees,
      static_cast<unsigned long long>(setting.seed));
  auto it = cache->find(key);
  if (it == cache->end()) {
    auto workload = BuildTreebankWorkload(setting);
    X3_CHECK(workload.ok()) << workload.status();
    it = cache->emplace(key, std::make_unique<Workload>(std::move(*workload)))
             .first;
  }
  return *it->second;
}

inline const Workload& CachedDblpWorkload(size_t articles) {
  static std::map<size_t, std::unique_ptr<Workload>>* cache =
      new std::map<size_t, std::unique_ptr<Workload>>();
  auto it = cache->find(articles);
  if (it == cache->end()) {
    auto workload = BuildDblpWorkload(articles);
    X3_CHECK(workload.ok()) << workload.status();
    it = cache->emplace(articles,
                        std::make_unique<Workload>(std::move(*workload)))
             .first;
  }
  return *it->second;
}

/// Runs one (algorithm, workload) cube computation per iteration, with
/// a working-memory budget proportional to the fact table (the paper's
/// crossovers are functions of the data:memory ratio). Reports the
/// paper-relevant counters. `parallelism` feeds the executor's worker
/// count (1 = the sequential baseline; results are cell-identical at
/// every level, so the timings are comparable).
inline void RunCubeBenchmark(benchmark::State& state, CubeAlgorithm algo,
                             const Workload& workload,
                             size_t parallelism = 1) {
  // The paper's machine fit roughly twice the base data in memory
  // (1 GB RAM, 576 MB loaded Treebank). Scale the budget with the fact
  // table the same way so crossovers land where theirs did: COUNTER is
  // fine until its counters outgrow this, TD spills when a sort does.
  // X3_BENCH_BUDGET_FACTOR overrides the data:memory ratio — the perf
  // capture (scripts/bench_capture.py) runs a constrained configuration
  // (factor < 1) so the spill path is actually exercised and its byte
  // counts land in BENCH_1.json.
  double budget_factor = 2.0;
  if (const char* env = std::getenv("X3_BENCH_BUDGET_FACTOR")) {
    double v = std::atof(env);
    if (v > 0) budget_factor = v;
  }
  size_t budget_bytes = std::max<size_t>(
      static_cast<size_t>(
          static_cast<double>(workload.facts.ApproxBytes()) * budget_factor),
      64 * 1024);
  CubeComputeStats stats;
  uint64_t cells = 0;
  size_t peak_bytes = 0;
  double plan_ms = 0;
  double cuboid_ms = 0;
  double pipe_ms = 0;
  double pass_ms = 0;
  for (auto _ : state) {
    TempFileManager temp;
    MemoryBudget budget(budget_bytes);
    ExecutionContext ctx(
        ExecutionContext::Options{&budget, &temp, nullptr, std::nullopt});
    CubeComputeOptions options;
    options.aggregate = AggregateFunction::kCount;
    options.properties = &workload.properties;
    options.exec = &ctx;
    options.parallelism = parallelism;
    // X3_BENCH_COMPRESS_SPILL=1 runs the TD family with block-compressed
    // spill runs, so the capture can record the on-disk spill bytes the
    // codec actually achieves (results are bit-identical either way).
    if (const char* env = std::getenv("X3_BENCH_COMPRESS_SPILL")) {
      options.compress_spill = std::atoi(env) != 0;
    }
    auto cube =
        ComputeCube(algo, workload.facts, workload.lattice, options, &stats);
    X3_CHECK(cube.ok()) << cube.status();
    cells = cube->TotalCells();
    peak_bytes = budget.peak();
    benchmark::DoNotOptimize(cells);
    plan_ms = ctx.stats()->TotalSeconds("plan") * 1e3;
    cuboid_ms = ctx.stats()->TotalSeconds("cuboid") * 1e3;
    pipe_ms = ctx.stats()->TotalSeconds("pipe") * 1e3;
    pass_ms = ctx.stats()->TotalSeconds("pass") * 1e3;
  }
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["facts"] = static_cast<double>(workload.facts.size());
  state.counters["cuboids"] =
      static_cast<double>(workload.lattice.num_cuboids());
  state.counters["passes"] = static_cast<double>(stats.passes);
  state.counters["sorts"] = static_cast<double>(stats.sorts);
  state.counters["spillMB"] =
      static_cast<double>(stats.spill_bytes) / (1024.0 * 1024.0);
  state.counters["rollups"] = static_cast<double>(stats.rollups);
  // Footprint counters for the perf-trajectory capture
  // (scripts/bench_capture.py): the fact table's resident bytes and the
  // peak MemoryBudget charge of the last iteration's computation.
  state.counters["factKB"] =
      static_cast<double>(workload.facts.ApproxBytes()) / 1024.0;
  state.counters["peakMemKB"] = static_cast<double>(peak_bytes) / 1024.0;
  state.counters["spillKB"] =
      static_cast<double>(stats.spill_bytes) / 1024.0;
  // Stage breakdown from the execution context (last iteration): plan
  // time plus whichever per-stage family the algorithm recorded.
  state.counters["planMs"] = plan_ms;
  state.counters["cuboidMs"] = cuboid_ms;
  state.counters["pipeMs"] = pipe_ms;
  state.counters["passMs"] = pass_ms;
}

/// Registers the per-axis sweep of one figure: for each axis count in
/// [2, max_axes] and each algorithm, one benchmark named
/// "<figure>/<ALGO>/axes:<k>" — the series the paper plots.
inline void RegisterFigure(const std::string& figure,
                           const ExperimentSetting& base,
                           const std::vector<CubeAlgorithm>& algorithms,
                           size_t max_axes = 7) {
  for (size_t axes = 2; axes <= max_axes; ++axes) {
    ExperimentSetting setting = base;
    setting.num_axes = axes;
    for (CubeAlgorithm algo : algorithms) {
      std::string name = StringPrintf("%s/%s/axes:%zu", figure.c_str(),
                                      CubeAlgorithmToString(algo), axes);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [algo, setting](benchmark::State& state) {
            const Workload& workload = CachedTreebankWorkload(setting);
            RunCubeBenchmark(state, algo, workload);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

/// Registers the thread-scaling sweep: for each worker count in
/// `thread_counts` and each algorithm, one benchmark named
/// "<figure>/<ALGO>/threads:<t>" on a fixed workload — the speedup
/// series of the scaling figure. The threads:1 point is the sequential
/// baseline the others are normalized against.
inline void RegisterThreadSweep(const std::string& figure,
                                const ExperimentSetting& setting,
                                const std::vector<CubeAlgorithm>& algorithms,
                                const std::vector<size_t>& thread_counts) {
  for (CubeAlgorithm algo : algorithms) {
    for (size_t threads : thread_counts) {
      std::string name =
          StringPrintf("%s/%s/threads:%zu", figure.c_str(),
                       CubeAlgorithmToString(algo), threads);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [algo, setting, threads](benchmark::State& state) {
            const Workload& workload = CachedTreebankWorkload(setting);
            RunCubeBenchmark(state, algo, workload, threads);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

/// Observability flags shared by every bench binary:
///   --trace-out=<path>    enable the global tracer and export a Chrome
///                         trace JSON (load in Perfetto / about:tracing)
///   --metrics-out=<path>  export the metric registry as Prometheus text
/// Parsed and stripped before benchmark::Initialize (which rejects
/// unknown flags).
struct ObservabilityFlags {
  std::string trace_out;
  std::string metrics_out;
};

inline ObservabilityFlags ParseObservabilityFlags(int* argc, char** argv) {
  ObservabilityFlags flags;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    const std::string kTrace = "--trace-out=";
    const std::string kMetrics = "--metrics-out=";
    if (arg.rfind(kTrace, 0) == 0) {
      flags.trace_out = arg.substr(kTrace.size());
    } else if (arg.rfind(kMetrics, 0) == 0) {
      flags.metrics_out = arg.substr(kMetrics.size());
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  if (!flags.trace_out.empty()) Tracer::Global().SetEnabled(true);
  return flags;
}

/// Writes the requested exports after a bench run; X3_CHECKs on export
/// failure so CI smoke runs fail loudly instead of dropping the files.
inline void WriteObservabilityExports(const ObservabilityFlags& flags) {
  if (!flags.trace_out.empty()) {
    Status s = Tracer::Global().WriteChromeTrace(Env::Default(),
                                                 flags.trace_out);
    X3_CHECK(s.ok()) << "--trace-out export failed: " << s;
  }
  if (!flags.metrics_out.empty()) {
    Status s = MetricRegistry::Global().WritePrometheusFile(
        Env::Default(), flags.metrics_out);
    X3_CHECK(s.ok()) << "--metrics-out export failed: " << s;
  }
}

/// Runs whatever has been registered. The shared tail of every bench
/// main. Handles the observability flags before handing the rest of the
/// command line to the benchmark library.
inline int RunRegisteredBenchmarks(int argc, char** argv) {
  ObservabilityFlags flags = ParseObservabilityFlags(&argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteObservabilityExports(flags);
  return 0;
}

/// Declarative description of one paper figure: the experimental
/// setting axes of §4 plus the algorithm series the figure plots. The
/// per-figure bench binaries are one FigureSpec each (the setup used to
/// be copy-pasted across all of them).
struct FigureSpec {
  std::string figure;
  bool coverage_holds = false;
  bool disjointness_holds = true;
  bool dense = false;
  /// Paper-scale tree count, scaled down by default; X3_BENCH_TREES
  /// overrides (see TreesFor).
  size_t default_trees = 10000;
  uint64_t seed = 42;
  std::vector<CubeAlgorithm> algorithms;
  size_t max_axes = 7;
};

/// Registers `spec`'s sweep and runs it: the whole main() of a
/// per-figure bench binary.
inline int RunFigureBenchmark(int argc, char** argv,
                              const FigureSpec& spec) {
  ExperimentSetting base;
  base.coverage_holds = spec.coverage_holds;
  base.disjointness_holds = spec.disjointness_holds;
  base.dense = spec.dense;
  base.num_trees = TreesFor(spec.default_trees);
  base.seed = spec.seed;
  RegisterFigure(spec.figure, base, spec.algorithms, spec.max_axes);
  return RunRegisteredBenchmarks(argc, argv);
}

}  // namespace bench
}  // namespace x3

#endif  // X3_BENCH_BENCH_COMMON_H_
