// Thread-scaling figure: cube-computation wall time vs worker count on
// a dense, fully summarizable workload (the setting where every family
// schedules many independent plan steps: TDOPTALL rolls up a deep
// chain, TDOPT runs several pipes, REFERENCE/COUNTER/TD fan out per
// cuboid). threads:1 is the sequential baseline; speedup at t workers
// is baseline_ms / threads:t_ms per algorithm. BUC appears as the flat
// control series — its recursive walk is sequential by design (see
// src/cube/buc.cc).
//
// Honest-reporting note: the speedup this figure shows is bounded by
// the *physical* cores of the machine running it. On a single-core
// container every series is flat (scheduling overhead only); the >1 ×
// speedups require real hardware parallelism.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  x3::ExperimentSetting setting;
  setting.coverage_holds = true;
  setting.disjointness_holds = true;
  setting.dense = true;
  setting.num_axes = 5;
  setting.num_trees = x3::bench::TreesFor(4000);
  setting.seed = 42;
  x3::bench::RegisterThreadSweep(
      "threads", setting,
      {x3::CubeAlgorithm::kReference, x3::CubeAlgorithm::kCounter,
       x3::CubeAlgorithm::kTD, x3::CubeAlgorithm::kTDOpt,
       x3::CubeAlgorithm::kTDOptAll, x3::CubeAlgorithm::kTDCust,
       x3::CubeAlgorithm::kBUC},
      {1, 2, 4, 8});
  return x3::bench::RunRegisteredBenchmarks(argc, argv);
}
