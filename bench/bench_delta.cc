// Delta cube maintenance vs full recompute for small-batch ingest
// (ROADMAP item 2 / BENCH_2.json). One Treebank-shaped database takes
// a transactional batch of fresh trees; the benchmark then times the
// three ways the serving layer could bring its materialized cuboids
// up to date:
//
//   DeltaMaintain     clone the fact table, append only the batch's
//                     facts, plan per-view merge/recompute, fold the
//                     delta into every view (the write lane's path);
//   FullRematerialize rebuild the fact table from the whole database
//                     and re-materialize every view from scratch;
//   FullRecomputeTD   rebuild the fact table and run a budget-
//                     constrained TDCUST cube (the pre-write-path
//                     answer: recompute through the spill-capable
//                     compute pipeline).
//
// Cell-exactness of the delta path against the rebuild is checked at
// startup (X3_CHECK), so the timings compare paths that provably
// produce identical cells. scripts/bench_capture.py capture-delta
// snapshots the sweep into BENCH_2.json.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "cube/cube_spec.h"
#include "cube/delta.h"
#include "cube/view_store.h"
#include "gen/treebank_gen.h"
#include "schema/dtd_parser.h"
#include "x3/engine.h"
#include "xdb/database.h"

namespace x3 {
namespace {

/// One ingest scenario: a base corpus, a committed batch of
/// `batch_trees`, the pre-batch view store (every cuboid materialized,
/// half with fact ids), and everything needed to maintain or rebuild.
struct DeltaScenario {
  std::unique_ptr<Database> db;
  CubeQuery query;
  std::unique_ptr<CubeLattice> lattice;
  LatticeProperties properties;
  std::unique_ptr<FactTable> base_facts;
  std::unique_ptr<CubeViewStore> base_store;
  NodeId first_new_node = 0;
  size_t batch_trees = 0;
};

const DeltaScenario& CachedScenario(size_t batch_trees) {
  static std::map<size_t, std::unique_ptr<DeltaScenario>>* cache =
      new std::map<size_t, std::unique_ptr<DeltaScenario>>();
  auto it = cache->find(batch_trees);
  if (it != cache->end()) return *it->second;

  auto scenario = std::make_unique<DeltaScenario>();
  TreebankConfig config;
  config.num_axes = 3;
  TreebankGenerator gen(config);

  auto db = Database::Open({});
  X3_CHECK(db.ok()) << db.status();
  scenario->db = std::move(*db);
  size_t base_trees = bench::TreesFor(400);
  X3_CHECK(gen.LoadInto(scenario->db.get(), base_trees).ok());

  scenario->query = MakeTreebankQuery(config);
  X3Engine engine(scenario->db.get());
  auto prepared = engine.Prepare(scenario->query);
  X3_CHECK(prepared.ok()) << prepared.status();
  scenario->lattice =
      std::make_unique<CubeLattice>(std::move(prepared->lattice));
  scenario->base_facts =
      std::make_unique<FactTable>(std::move(prepared->facts));

  auto schema = ParseDtd(gen.MatchingDtd());
  X3_CHECK(schema.ok()) << schema.status();
  auto properties =
      InferLatticeProperties(*schema, *scenario->lattice, TreebankRootTag());
  X3_CHECK(properties.ok()) << properties.status();
  scenario->properties = std::move(*properties);

  scenario->base_store = std::make_unique<CubeViewStore>(
      scenario->base_facts.get(), scenario->lattice.get());
  std::vector<CuboidId> cuboids = scenario->lattice->TopoOrder();
  for (size_t i = 0; i < cuboids.size(); ++i) {
    X3_CHECK(scenario->base_store
                 ->Materialize(cuboids[i], /*with_fact_ids=*/i % 2 == 0)
                 .ok());
  }

  // The committed small batch the maintenance paths race over.
  scenario->first_new_node = scenario->db->node_count();
  scenario->batch_trees = batch_trees;
  X3_CHECK(scenario->db->BeginBatch().ok());
  X3_CHECK(gen.LoadInto(scenario->db.get(), batch_trees).ok());
  X3_CHECK(scenario->db->CommitBatch().ok());

  it = cache->emplace(batch_trees, std::move(scenario)).first;
  return *it->second;
}

/// Runs the delta path once: clone + append + plan + apply. Returns
/// the maintained store (facts kept alive via the out-params).
std::unique_ptr<CubeViewStore> MaintainOnce(const DeltaScenario& s,
                                            std::unique_ptr<FactTable>* facts,
                                            DeltaStats* stats,
                                            size_t* new_facts) {
  *facts = std::make_unique<FactTable>(s.base_facts->Clone());
  auto appended = AppendNewFacts(*s.db, s.query, *s.lattice, s.first_new_node,
                                 facts->get());
  X3_CHECK(appended.ok()) << appended.status();
  *new_facts = *appended;
  auto store = std::make_unique<CubeViewStore>(facts->get(), s.lattice.get());
  DeltaPlan plan = PlanViewDeltas(*s.base_store, **facts, *s.lattice,
                                  s.properties, s.base_facts->size());
  X3_CHECK(ApplyViewDeltas(*s.base_store, store.get(), plan, stats).ok());
  return store;
}

/// Runs the rebuild path once: fresh fact table + every view from
/// scratch (fact ids mirroring the base store's layout).
std::unique_ptr<CubeViewStore> RematerializeOnce(
    const DeltaScenario& s, std::unique_ptr<FactTable>* facts) {
  auto fresh = BuildFactTable(*s.db, s.query, *s.lattice);
  X3_CHECK(fresh.ok()) << fresh.status();
  *facts = std::make_unique<FactTable>(std::move(*fresh));
  auto store = std::make_unique<CubeViewStore>(facts->get(), s.lattice.get());
  std::vector<CuboidId> cuboids = s.lattice->TopoOrder();
  for (size_t i = 0; i < cuboids.size(); ++i) {
    X3_CHECK(store->Materialize(cuboids[i], /*with_fact_ids=*/i % 2 == 0)
                 .ok());
  }
  return store;
}

/// Startup exactness gate: the delta-maintained store answers every
/// cuboid with exactly the cells a from-scratch rebuild produces.
/// Returns the total answered cells (the `cells` counter).
uint64_t CheckExactAndCountCells(const DeltaScenario& s) {
  std::unique_ptr<FactTable> delta_facts, fresh_facts;
  DeltaStats stats;
  size_t new_facts = 0;
  auto maintained = MaintainOnce(s, &delta_facts, &stats, &new_facts);
  auto rebuilt = RematerializeOnce(s, &fresh_facts);
  uint64_t cells = 0;
  for (CuboidId cuboid : s.lattice->TopoOrder()) {
    auto got = maintained->Answer(cuboid, AggregateFunction::kCount,
                                  &s.properties);
    auto want = rebuilt->Answer(cuboid, AggregateFunction::kCount,
                                &s.properties);
    X3_CHECK(got.ok() && want.ok());
    X3_CHECK(*got == *want) << "delta-maintained cuboid " << cuboid
                            << " diverges from full recompute";
    cells += got->size();
  }
  return cells;
}

void BM_DeltaMaintain(benchmark::State& state) {
  const DeltaScenario& s = CachedScenario(static_cast<size_t>(state.range(0)));
  uint64_t cells = CheckExactAndCountCells(s);
  DeltaStats stats;
  size_t new_facts = 0;
  for (auto _ : state) {
    std::unique_ptr<FactTable> facts;
    stats = DeltaStats{};
    auto store = MaintainOnce(s, &facts, &stats, &new_facts);
    benchmark::DoNotOptimize(store->num_views());
  }
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["facts"] = static_cast<double>(s.base_facts->size());
  state.counters["newFacts"] = static_cast<double>(new_facts);
  state.counters["viewsPatched"] = static_cast<double>(stats.views_patched);
  state.counters["viewsRecomputed"] =
      static_cast<double>(stats.views_recomputed);
  state.counters["factKB"] =
      static_cast<double>(s.base_facts->ApproxBytes()) / 1024.0;
  state.counters["spillKB"] = 0.0;  // the delta path never spills
}
BENCHMARK(BM_DeltaMaintain)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_FullRematerialize(benchmark::State& state) {
  const DeltaScenario& s = CachedScenario(static_cast<size_t>(state.range(0)));
  uint64_t cells = CheckExactAndCountCells(s);
  for (auto _ : state) {
    std::unique_ptr<FactTable> facts;
    auto store = RematerializeOnce(s, &facts);
    benchmark::DoNotOptimize(store->num_views());
  }
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["facts"] = static_cast<double>(s.base_facts->size());
  state.counters["spillKB"] = 0.0;  // in-memory materialization
}
BENCHMARK(BM_FullRematerialize)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_FullRecomputeTD(benchmark::State& state) {
  const DeltaScenario& s = CachedScenario(static_cast<size_t>(state.range(0)));
  CubeComputeStats stats;
  uint64_t cells = 0;
  for (auto _ : state) {
    auto fresh = BuildFactTable(*s.db, s.query, *s.lattice);
    X3_CHECK(fresh.ok());
    // A quarter of the fact table: forces the TD sorts through the
    // external-sort spill path, the configuration BENCH_1 gates.
    MemoryBudget budget(
        std::max<size_t>(fresh->ApproxBytes() / 4, 16 * 1024));
    TempFileManager temp;
    ExecutionContext ctx(
        ExecutionContext::Options{&budget, &temp, nullptr, std::nullopt});
    CubeComputeOptions options;
    options.aggregate = AggregateFunction::kCount;
    options.properties = &s.properties;
    options.exec = &ctx;
    auto cube =
        ComputeCube(CubeAlgorithm::kTDCust, *fresh, *s.lattice, options,
                    &stats);
    X3_CHECK(cube.ok()) << cube.status();
    cells = cube->TotalCells();
    benchmark::DoNotOptimize(cells);
  }
  state.counters["cells"] = static_cast<double>(cells);
  state.counters["spillKB"] =
      static_cast<double>(stats.spill_bytes) / 1024.0;
}
BENCHMARK(BM_FullRecomputeTD)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace x3

int main(int argc, char** argv) {
  return x3::bench::RunRegisteredBenchmarks(argc, argv);
}
