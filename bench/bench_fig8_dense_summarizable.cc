// Figure 8: dense cubes from 10^5 Treebank input trees, total coverage
// AND disjointness hold. The top-down family shines here: TDOPTALL
// computes coarser cuboids from finer aggregates without touching base
// data. Series: COUNTER, BUC, BUCOPT, TD, TDOPTALL.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  x3::bench::FigureSpec spec;
  spec.figure = "fig8_dense_summarizable";
  spec.coverage_holds = true;
  spec.disjointness_holds = true;
  spec.dense = true;
  spec.default_trees = 10000;
  spec.seed = 8;
  spec.algorithms = {x3::CubeAlgorithm::kCounter, x3::CubeAlgorithm::kBUC,
                     x3::CubeAlgorithm::kBUCOpt, x3::CubeAlgorithm::kTD,
                     x3::CubeAlgorithm::kTDOptAll};
  return x3::bench::RunFigureBenchmark(argc, argv, spec);
}
