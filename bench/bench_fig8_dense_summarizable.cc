// Figure 8: dense cubes from 10^5 Treebank input trees, total coverage
// AND disjointness hold. The top-down family shines here: TDOPTALL
// computes coarser cuboids from finer aggregates without touching base
// data. Series: COUNTER, BUC, BUCOPT, TD, TDOPTALL.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  x3::ExperimentSetting base;
  base.coverage_holds = true;
  base.disjointness_holds = true;
  base.dense = true;
  base.num_trees = x3::bench::TreesFor(10000);
  base.seed = 8;

  x3::bench::RegisterFigure(
      "fig8_dense_summarizable", base,
      {x3::CubeAlgorithm::kCounter, x3::CubeAlgorithm::kBUC,
       x3::CubeAlgorithm::kBUCOpt, x3::CubeAlgorithm::kTD,
       x3::CubeAlgorithm::kTDOptAll});

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
