// Figure 9: dense cubes from 10^5 Treebank input trees with NEITHER
// summarizability property holding. BUC and TD are the only correct
// choices; the paper nevertheless timed the OPT variants "just to see
// what the running time would be" (their results are wrong) — so do
// we. Series: COUNTER, BUC, BUCOPT, TD, TDOPT, TDOPTALL.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  x3::ExperimentSetting base;
  base.coverage_holds = false;
  base.disjointness_holds = false;
  base.dense = true;
  base.num_trees = x3::bench::TreesFor(10000);
  base.seed = 9;

  x3::bench::RegisterFigure(
      "fig9_dense_nonsummarizable", base,
      {x3::CubeAlgorithm::kCounter, x3::CubeAlgorithm::kBUC,
       x3::CubeAlgorithm::kBUCOpt, x3::CubeAlgorithm::kTD,
       x3::CubeAlgorithm::kTDOpt, x3::CubeAlgorithm::kTDOptAll});

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
