// Figure 9: dense cubes from 10^5 Treebank input trees with NEITHER
// summarizability property holding. BUC and TD are the only correct
// choices; the paper nevertheless timed the OPT variants "just to see
// what the running time would be" (their results are wrong) — so do
// we. Series: COUNTER, BUC, BUCOPT, TD, TDOPT, TDOPTALL.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  x3::bench::FigureSpec spec;
  spec.figure = "fig9_dense_nonsummarizable";
  spec.coverage_holds = false;
  spec.disjointness_holds = false;
  spec.dense = true;
  spec.default_trees = 10000;
  spec.seed = 9;
  spec.algorithms = {x3::CubeAlgorithm::kCounter, x3::CubeAlgorithm::kBUC,
                     x3::CubeAlgorithm::kBUCOpt, x3::CubeAlgorithm::kTD,
                     x3::CubeAlgorithm::kTDOpt, x3::CubeAlgorithm::kTDOptAll};
  return x3::bench::RunFigureBenchmark(argc, argv, spec);
}
