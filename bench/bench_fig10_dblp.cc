// Figure 10: the DBLP experiment (§4.5) — cube article by /author,
// /month, /year, /journal over 220k input trees (scaled down by
// default; X3_BENCH_TREES=220000 for paper scale). One bar per
// algorithm, including the schema-customized BUCCUST and TDCUST that
// exploit summarizability locally while staying correct.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  size_t articles = x3::bench::TreesFor(20000);

  for (x3::CubeAlgorithm algo :
       {x3::CubeAlgorithm::kCounter, x3::CubeAlgorithm::kBUC,
        x3::CubeAlgorithm::kBUCOpt, x3::CubeAlgorithm::kBUCCust,
        x3::CubeAlgorithm::kTD, x3::CubeAlgorithm::kTDOpt,
        x3::CubeAlgorithm::kTDOptAll, x3::CubeAlgorithm::kTDCust}) {
    std::string name = x3::StringPrintf("fig10_dblp/%s",
                                        x3::CubeAlgorithmToString(algo));
    benchmark::RegisterBenchmark(
        name.c_str(),
        [algo, articles](benchmark::State& state) {
          const x3::Workload& workload =
              x3::bench::CachedDblpWorkload(articles);
          x3::bench::RunCubeBenchmark(state, algo, workload);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }

  return x3::bench::RunRegisteredBenchmarks(argc, argv);
}
