// Figure 6: dense cubes from 10^5 Treebank input trees, total coverage
// does NOT hold, disjointness holds (dense = grouping tiny value
// domains, the paper's "first character of the marked-up text").
// Series: running time vs axes for COUNTER, BUC, BUCOPT, TD, TDOPT.
// In the paper TD/TDOPT/COUNTER failed to finish at 7 axes.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  x3::ExperimentSetting base;
  base.coverage_holds = false;
  base.disjointness_holds = true;
  base.dense = true;
  base.num_trees = x3::bench::TreesFor(10000);
  base.seed = 6;

  x3::bench::RegisterFigure(
      "fig6_dense", base,
      {x3::CubeAlgorithm::kCounter, x3::CubeAlgorithm::kBUC,
       x3::CubeAlgorithm::kBUCOpt, x3::CubeAlgorithm::kTD,
       x3::CubeAlgorithm::kTDOpt});

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
