// Figure 6: dense cubes from 10^5 Treebank input trees, total coverage
// does NOT hold, disjointness holds (dense = grouping tiny value
// domains, the paper's "first character of the marked-up text").
// Series: running time vs axes for COUNTER, BUC, BUCOPT, TD, TDOPT.
// In the paper TD/TDOPT/COUNTER failed to finish at 7 axes.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  x3::bench::FigureSpec spec;
  spec.figure = "fig6_dense";
  spec.coverage_holds = false;
  spec.disjointness_holds = true;
  spec.dense = true;
  spec.default_trees = 10000;
  spec.seed = 6;
  spec.algorithms = {x3::CubeAlgorithm::kCounter, x3::CubeAlgorithm::kBUC,
                     x3::CubeAlgorithm::kBUCOpt, x3::CubeAlgorithm::kTD,
                     x3::CubeAlgorithm::kTDOpt};
  return x3::bench::RunFigureBenchmark(argc, argv, spec);
}
