// Figure 4: sparse cubes from 10^4 Treebank input trees, total coverage
// does NOT hold, disjointness holds. Series: running time vs number of
// axes (2-7) for COUNTER, BUC, BUCOPT, TD, TDOPT.
//
// Default tree count is scaled down for CI; set X3_BENCH_TREES=10000
// for the paper's scale.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  x3::ExperimentSetting base;
  base.coverage_holds = false;
  base.disjointness_holds = true;
  base.dense = false;
  base.num_trees = x3::bench::TreesFor(1000);
  base.seed = 4;

  x3::bench::RegisterFigure(
      "fig4_sparse_small", base,
      {x3::CubeAlgorithm::kCounter, x3::CubeAlgorithm::kBUC,
       x3::CubeAlgorithm::kBUCOpt, x3::CubeAlgorithm::kTD,
       x3::CubeAlgorithm::kTDOpt});

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
