// Figure 4: sparse cubes from 10^4 Treebank input trees, total coverage
// does NOT hold, disjointness holds. Series: running time vs number of
// axes (2-7) for COUNTER, BUC, BUCOPT, TD, TDOPT.
//
// Default tree count is scaled down for CI; set X3_BENCH_TREES=10000
// for the paper's scale.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  x3::bench::FigureSpec spec;
  spec.figure = "fig4_sparse_small";
  spec.coverage_holds = false;
  spec.disjointness_holds = true;
  spec.dense = false;
  spec.default_trees = 1000;
  spec.seed = 4;
  spec.algorithms = {x3::CubeAlgorithm::kCounter, x3::CubeAlgorithm::kBUC,
                     x3::CubeAlgorithm::kBUCOpt, x3::CubeAlgorithm::kTD,
                     x3::CubeAlgorithm::kTDOpt};
  return x3::bench::RunFigureBenchmark(argc, argv, spec);
}
