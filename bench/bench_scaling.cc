// §4.4 scaling experiment: the Fig. 4 vs Fig. 5 pair generalized —
// sparse cube, coverage fails / disjointness holds, 4 axes, input tree
// count swept over a decade. The paper's observations: time grows
// proportionally, and the optimized variants' advantage grows with
// scale while COUNTER starts multi-passing earlier.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  size_t base_trees = x3::bench::TreesFor(1000);

  for (size_t scale : {1, 2, 5, 10}) {
    x3::ExperimentSetting setting;
    setting.coverage_holds = false;
    setting.disjointness_holds = true;
    setting.dense = false;
    setting.num_axes = 4;
    setting.num_trees = base_trees * scale;
    setting.seed = 44;
    for (x3::CubeAlgorithm algo :
         {x3::CubeAlgorithm::kCounter, x3::CubeAlgorithm::kBUC,
          x3::CubeAlgorithm::kBUCOpt, x3::CubeAlgorithm::kTD,
          x3::CubeAlgorithm::kTDOpt}) {
      std::string name = x3::StringPrintf(
          "scaling/%s/trees:%zu", x3::CubeAlgorithmToString(algo),
          setting.num_trees);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [algo, setting](benchmark::State& state) {
            const x3::Workload& workload =
                x3::bench::CachedTreebankWorkload(setting);
            x3::bench::RunCubeBenchmark(state, algo, workload);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }

  return x3::bench::RunRegisteredBenchmarks(argc, argv);
}
