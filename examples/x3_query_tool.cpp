// x3_query_tool: run an X^3 cube query against XML files from the
// command line — the library as a downstream user would drive it.
//
//   x3_query_tool --xml=warehouse.xml [--xml=more.xml ...]
//                 (--query='for $b in ...' | --query-file=q.x3)
//                 [--algorithm=BUC] [--min-count=N] [--out=cube.csv]
//
// Prints the lattice, execution stats, and (without --out) the cube as
// CSV on stdout.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cube/algorithm.h"
#include "cube/cube_spec.h"
#include "pattern/pattern_parser.h"
#include "schema/dtd_parser.h"
#include "schema/summarizability.h"
#include "util/string_util.h"
#include "x3/engine.h"
#include "xdb/database.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --xml=FILE [--xml=FILE ...] --query=QUERY|--query-file=F\n"
      "          [--algorithm=%s|COUNTER|TD|TDOPT|TDOPTALL|TDCUST|BUCOPT|"
      "BUCCUST|REFERENCE]\n"
      "          [--min-count=N] [--out=FILE.csv]\n"
      "          [--dtd=FILE --explain]   (print the TDCUST plan the\n"
      "           schema-inferred summarizability permits, then exit)\n",
      argv0, "BUC");
  return 2;
}

bool GetFlag(const char* arg, const char* name, std::string* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *out = arg + len + 1;
    return true;
  }
  return false;
}

std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string buf(static_cast<size_t>(size > 0 ? size : 0), '\0');
  if (!buf.empty() && std::fread(buf.data(), 1, buf.size(), f) != buf.size()) {
    std::fprintf(stderr, "short read of %s\n", path.c_str());
    std::exit(1);
  }
  std::fclose(f);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> xml_files;
  std::string query_text;
  std::string algorithm_name = "BUC";
  std::string out_path;
  std::string dtd_path;
  bool explain = false;
  long min_count = 0;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (GetFlag(argv[i], "--xml", &value)) {
      xml_files.push_back(value);
    } else if (GetFlag(argv[i], "--query", &value)) {
      query_text = value;
    } else if (GetFlag(argv[i], "--query-file", &value)) {
      query_text = ReadFileOrDie(value);
    } else if (GetFlag(argv[i], "--algorithm", &value)) {
      algorithm_name = value;
    } else if (GetFlag(argv[i], "--out", &value)) {
      out_path = value;
    } else if (GetFlag(argv[i], "--dtd", &value)) {
      dtd_path = value;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (GetFlag(argv[i], "--min-count", &value)) {
      min_count = std::atol(value.c_str());
    } else {
      return Usage(argv[0]);
    }
  }
  if (query_text.empty()) return Usage(argv[0]);
  if (xml_files.empty() && !explain) return Usage(argv[0]);

  if (explain) {
    // Static planning: parse + bind, build the lattice, infer
    // properties from the DTD (if given) and print the TDCUST plan.
    auto db_for_compile = x3::Database::Open({});
    if (!db_for_compile.ok()) return 1;
    x3::X3Engine engine(db_for_compile->get());
    auto query = engine.Compile(query_text);
    if (!query.ok()) {
      std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
      return 1;
    }
    auto lattice = x3::BuildCubeLattice(*query);
    if (!lattice.ok()) {
      std::fprintf(stderr, "%s\n", lattice.status().ToString().c_str());
      return 1;
    }
    x3::LatticeProperties properties =
        x3::LatticeProperties::AssumeNothing(*lattice);
    if (!dtd_path.empty()) {
      auto schema = x3::ParseDtdFile(dtd_path);
      if (!schema.ok()) {
        std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
        return 1;
      }
      auto parsed_fact = x3::ParsePattern(query->fact_path);
      if (!parsed_fact.ok()) return 1;
      const std::string& fact_tag =
          parsed_fact->pattern.node(parsed_fact->output_node()).tag;
      auto inferred =
          x3::InferLatticeProperties(*schema, *lattice, fact_tag);
      if (!inferred.ok()) {
        std::fprintf(stderr, "%s\n", inferred.status().ToString().c_str());
        return 1;
      }
      properties = std::move(*inferred);
    }
    std::fputs(x3::ExplainCustomTopDown(*lattice, properties).c_str(),
               stdout);
    return 0;
  }

  auto algorithm = x3::ParseCubeAlgorithm(algorithm_name);
  if (!algorithm.ok()) {
    std::fprintf(stderr, "%s\n", algorithm.status().ToString().c_str());
    return 2;
  }

  auto db = x3::Database::Open({});
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  for (const std::string& file : xml_files) {
    auto root = (*db)->LoadXmlFile(file);
    if (!root.ok()) {
      std::fprintf(stderr, "loading %s: %s\n", file.c_str(),
                   root.status().ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "loaded %zu document(s), %u nodes\n",
               xml_files.size(), (*db)->node_count());

  x3::X3Engine engine(db->get());
  x3::CubeComputeOptions options;
  options.min_count = min_count;
  auto result = engine.Execute(query_text, *algorithm, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::fprintf(stderr,
               "facts=%zu cuboids=%llu cells=%llu | materialize %.1f ms, "
               "cube %.1f ms (%s)\n",
               result->facts.size(),
               static_cast<unsigned long long>(result->lattice.num_cuboids()),
               static_cast<unsigned long long>(result->cube.TotalCells()),
               result->materialize_seconds * 1e3, result->cube_seconds * 1e3,
               x3::CubeAlgorithmToString(*algorithm));

  std::string csv_path =
      out_path.empty()
          ? x3::StringPrintf("/tmp/x3-query-%d.csv", static_cast<int>(getpid()))
          : out_path;
  if (auto s = result->cube.WriteCsv(csv_path, result->lattice,
                                     result->facts);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (out_path.empty()) {
    std::string csv = ReadFileOrDie(csv_path);
    std::fwrite(csv.data(), 1, csv.size(), stdout);
    std::remove(csv_path.c_str());
  } else {
    std::fprintf(stderr, "cube written to %s\n", out_path.c_str());
  }
  return 0;
}
