// Quickstart: the paper's running example end to end.
//
// Loads the Figure 1 publication warehouse, runs Query 1 (the X^3 cube
// over author name / publisher id / year with per-axis relaxations),
// and prints a few cuboids of the resulting cube.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <map>

#include "cube/algorithm.h"
#include "x3/engine.h"
#include "xdb/database.h"

namespace {

constexpr const char* kWarehouse = R"(
  <database>
    <publication id="1">
      <author id="a1"><name>John</name></author>
      <author id="a2"><name>Jane</name></author>
      <publisher id="p1"/>
      <year>2003</year>
    </publication>
    <publication id="2">
      <author id="a1"><name>John</name></author>
      <publisher id="p2"/>
      <year>2004</year>
      <year>2005</year>
    </publication>
    <publication id="3">
      <authors><author id="a3"><name>Smith</name></author></authors>
      <year>2003</year>
    </publication>
    <publication id="4">
      <author id="a2"><name>Jane</name></author>
      <pubData><publisher id="p1"/><year>2004</year></pubData>
    </publication>
  </database>)";

// Query 1 of the paper, verbatim.
constexpr const char* kQuery1 = R"(
  for $b in doc("book.xml")//publication,
      $n in $b/author/name,
      $p in $b//publisher/@id,
      $y in $b/year
  X^3 $b/@id by $n (LND, SP, PC-AD),
               $p (LND, PC-AD),
               $y (LND)
  return COUNT($b)
)";

}  // namespace

int main() {
  auto db = x3::Database::Open({});
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    return 1;
  }
  if (auto s = (*db)->LoadXmlString(kWarehouse); !s.ok()) {
    std::fprintf(stderr, "load: %s\n", s.status().ToString().c_str());
    return 1;
  }

  x3::X3Engine engine(db->get());
  auto result = engine.Execute(kQuery1, x3::CubeAlgorithm::kBUC);
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Loaded %u nodes; %zu publications become facts.\n",
              (*db)->node_count(), result->facts.size());
  std::printf("Cube lattice: %llu cuboids over %zu axes; %llu result cells.\n",
              static_cast<unsigned long long>(result->lattice.num_cuboids()),
              result->lattice.num_axes(),
              static_cast<unsigned long long>(result->cube.TotalCells()));
  std::printf("Materialize: %.3f ms, cube: %.3f ms (%s)\n\n",
              result->materialize_seconds * 1e3, result->cube_seconds * 1e3,
              x3::CubeAlgorithmToString(x3::CubeAlgorithm::kBUC));

  // Print every cuboid that groups by at most one axis (the classical
  // rollups), with values decoded through the per-axis dictionaries.
  const x3::CubeLattice& lattice = result->lattice;
  for (x3::CuboidId c = 0; c < lattice.num_cuboids(); ++c) {
    std::vector<size_t> present = lattice.PresentAxes(c);
    if (present.size() > 1) continue;
    std::printf("cuboid %llu  %s\n", static_cast<unsigned long long>(c),
                lattice.DescribeCuboid(c).c_str());
    // Sort cells by value name for stable output.
    std::map<std::string, double> rows;
    for (const auto& [key, state] : result->cube.cuboid(c)) {
      std::vector<x3::ValueId> values = x3::UnpackGroupKey(key);
      std::string label = present.empty()
                              ? "(all)"
                              : result->facts.AxisValueName(present[0],
                                                            values[0]);
      rows[label] = state.Value(x3::AggregateFunction::kCount);
    }
    for (const auto& [label, count] : rows) {
      std::printf("    %-10s COUNT=%.0f\n", label.c_str(), count);
    }
  }
  return 0;
}
