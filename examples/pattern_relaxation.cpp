// Tree-pattern relaxation walkthrough (§2.2 / Fig. 3 of the paper):
// builds the Query 1 axis lattices, prints every relaxation state and
// the lattice edges, and shows how each relaxed form changes the set of
// matched publications on the Figure 1 data.
//
//   ./build/examples/pattern_relaxation

#include <cstdio>

#include "pattern/pattern_parser.h"
#include "pattern/twig_matcher.h"
#include "relax/axis_lattice.h"
#include "xdb/database.h"

namespace {

constexpr const char* kWarehouse = R"(
  <database>
    <publication id="1">
      <author id="a1"><name>John</name></author>
      <author id="a2"><name>Jane</name></author>
      <publisher id="p1"/>
      <year>2003</year>
    </publication>
    <publication id="2">
      <author id="a1"><name>John</name></author>
      <publisher id="p2"/>
      <year>2004</year>
      <year>2005</year>
    </publication>
    <publication id="3">
      <authors><author id="a3"><name>Smith</name></author></authors>
      <year>2003</year>
    </publication>
    <publication id="4">
      <author id="a2"><name>Jane</name></author>
      <pubData><publisher id="p1"/><year>2004</year></pubData>
    </publication>
  </database>)";

}  // namespace

int main() {
  auto db = x3::Database::Open({});
  if (!db.ok() || !(*db)->LoadXmlString(kWarehouse).ok()) {
    std::fprintf(stderr, "failed to load warehouse\n");
    return 1;
  }

  // Build the $n axis: $b/author/name with (LND, SP, PC-AD).
  x3::TreePattern base;
  x3::PatternNodeId root = base.SetRoot("publication");
  auto spine = x3::ParseRelativePath("/author/name", &base, root);
  if (!spine.ok()) return 1;

  auto lattice = x3::AxisLattice::Build(base, spine->back(),
                                        x3::RelaxationSet::All(), "n");
  if (!lattice.ok()) {
    std::fprintf(stderr, "%s\n", lattice.status().ToString().c_str());
    return 1;
  }

  std::printf("Axis $n = $b/author/name with (LND, SP, PC-AD)\n");
  std::printf("Relaxation states (%zu):\n", lattice->num_states());

  x3::TwigMatcher matcher(db->get());
  for (x3::AxisStateId s : lattice->topo_order()) {
    const x3::AxisState& state = lattice->state(s);
    std::printf("\n  state %u (%d steps from rigid): %s\n", s,
                state.min_steps,
                state.grouping_present() ? state.pattern.ToString().c_str()
                                         : "ABSENT (dimension removed)");
    if (!state.grouping_present()) continue;
    // Which (publication, name) pairs does this form match?
    auto matches = matcher.FindMatches(state.pattern);
    if (!matches.ok()) return 1;
    std::printf("    matches:");
    for (const x3::WitnessTree& w : *matches) {
      x3::NodeId pub =
          w.bindings[static_cast<size_t>(state.pattern.root())];
      x3::NodeId name =
          w.bindings[static_cast<size_t>(state.grouping_node)];
      x3::NodeRecord rec;
      if (!(*db)->GetNode(pub, &rec).ok()) return 1;
      auto pub_id = (*db)->ChildrenWithTag(pub, (*db)->tags().Lookup("@id"));
      std::string id = pub_id.ok() && !pub_id->empty()
                           ? *(*db)->NodeValue((*pub_id)[0])
                           : "?";
      std::printf(" (pub %s, %s)", id.c_str(),
                  (*db)->NodeValue(name)->c_str());
    }
    std::printf("\n    one-step relaxations:");
    for (x3::AxisStateId t : lattice->successors(s)) {
      const x3::AxisState& next = lattice->state(t);
      std::printf(" -> %s", next.grouping_present()
                                ? next.pattern.ToString().c_str()
                                : "ABSENT");
    }
    std::printf("\n");
  }

  std::printf(
      "\nNote how publication 3's nested author (under <authors>) only\n"
      "appears once PC-AD relaxes the author edge — exactly the paper's\n"
      "semantic-challenge example.\n");
  return 0;
}
