// Warehouse analysis at scale: generates a heterogeneous Treebank-like
// warehouse with controllable summarizability, materializes the fact
// table through the paged database, and contrasts algorithm behaviour
// under a constrained memory budget (COUNTER multipass, TD external
// sorts) — a miniature of the paper's §4.1-§4.3 experiments.
//
//   ./build/examples/warehouse_analysis [num_trees] [num_axes]

#include <cstdio>
#include <cstdlib>

#include "cube/algorithm.h"
#include "gen/workload.h"
#include "storage/temp_file.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  x3::ExperimentSetting setting;
  setting.num_trees = argc > 1 ? static_cast<size_t>(std::atol(argv[1]))
                               : 5000;
  setting.num_axes = argc > 2 ? static_cast<size_t>(std::atol(argv[2])) : 4;
  setting.coverage_holds = false;   // optional elements, like real XML
  setting.disjointness_holds = true;
  setting.dense = false;

  std::printf(
      "Treebank-like warehouse: %zu trees, %zu axes, coverage fails, "
      "disjointness holds (the paper's §4.1 setting)\n",
      setting.num_trees, setting.num_axes);

  // Characterize the generated dataset the way the paper describes its
  // inputs (element counts, depth, size).
  {
    auto db = x3::Database::Open({});
    if (!db.ok()) return 1;
    x3::TreebankGenerator gen(x3::MakeTreebankConfig(setting));
    if (!gen.LoadInto(db->get(), setting.num_trees).ok()) return 1;
    auto stats = (*db)->ComputeStats();
    if (!stats.ok()) return 1;
    std::printf(
        "dataset: %llu nodes (%llu elements, %llu attributes) in %llu "
        "trees; avg depth %.1f, max depth %u; %llu pages (%.1f MiB)\n\n",
        static_cast<unsigned long long>(stats->nodes),
        static_cast<unsigned long long>(stats->elements),
        static_cast<unsigned long long>(stats->attributes),
        static_cast<unsigned long long>(stats->documents),
        stats->avg_depth, stats->max_depth,
        static_cast<unsigned long long>(stats->data_pages),
        static_cast<double>(stats->data_pages) * 8192.0 / (1 << 20));
  }

  x3::Timer timer;
  auto workload = x3::BuildTreebankWorkload(setting);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  std::printf("Materialized %zu facts (%llu cuboids) in %.1f ms\n\n",
              workload->facts.size(),
              static_cast<unsigned long long>(
                  workload->lattice.num_cuboids()),
              timer.ElapsedSeconds() * 1e3);

  // A deliberately small budget, scaled to the data (the paper's box
  // had 1 GB for 10^5 trees; crossovers depend on the ratio).
  size_t budget_bytes = workload->facts.ApproxBytes() / 2 + 16 * 1024;
  std::printf("Working-memory budget: %zu KiB (fact table is %zu KiB)\n\n",
              budget_bytes / 1024, workload->facts.ApproxBytes() / 1024);

  std::printf("%-10s %10s %8s %8s %10s %10s\n", "algorithm", "ms", "passes",
              "sorts", "spilledMB", "peakKiB");
  for (x3::CubeAlgorithm algo :
       {x3::CubeAlgorithm::kCounter, x3::CubeAlgorithm::kBUC,
        x3::CubeAlgorithm::kBUCOpt, x3::CubeAlgorithm::kTD,
        x3::CubeAlgorithm::kTDOpt}) {
    x3::TempFileManager temp;
    x3::MemoryBudget budget(budget_bytes);
    x3::CubeComputeOptions options;
    options.budget = &budget;
    options.temp_files = &temp;
    options.properties = &workload->properties;
    x3::CubeComputeStats stats;
    x3::Timer t;
    auto cube = x3::ComputeCube(algo, workload->facts, workload->lattice,
                                options, &stats);
    if (!cube.ok()) {
      std::fprintf(stderr, "%s: %s\n", x3::CubeAlgorithmToString(algo),
                   cube.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %10.1f %8llu %8llu %10.2f %10llu\n",
                x3::CubeAlgorithmToString(algo), t.ElapsedSeconds() * 1e3,
                static_cast<unsigned long long>(stats.passes),
                static_cast<unsigned long long>(stats.sorts),
                static_cast<double>(stats.spill_bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(stats.peak_memory / 1024));
  }

  std::printf(
      "\nExpected shape (paper §4.6): BUC leads on sparse cubes; COUNTER\n"
      "is competitive until its counters outgrow memory and it goes\n"
      "multi-pass; TD pays an external sort per cuboid and trails.\n");
  return 0;
}
