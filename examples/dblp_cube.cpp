// DBLP experiment (§4.5 of the paper) at example scale: generate
// DBLP-like articles, infer summarizability from the real DTD fragment,
// and run every cube algorithm, printing a mini version of Fig. 10.
//
//   ./build/examples/dblp_cube [num_articles]

#include <cstdio>
#include <cstdlib>

#include "cube/algorithm.h"
#include "gen/dblp_gen.h"
#include "gen/workload.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  size_t articles = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 5000;

  std::printf("Generating %zu DBLP-like articles...\n", articles);
  auto workload = x3::BuildDblpWorkload(articles);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  std::printf("\nDBLP DTD fragment:\n%s\n", x3::DblpDtd().c_str());
  std::printf("Inferred summarizability (rigid states):\n");
  const char* axes[] = {"author", "month", "year", "journal"};
  for (size_t a = 0; a < 4; ++a) {
    const x3::SummarizabilityFlags& f = workload->properties.At(a, 0);
    std::printf("  %-8s disjoint=%s covered=%s\n", axes[a],
                f.disjoint ? "yes" : "NO", f.covered ? "yes" : "NO");
  }

  x3::CubeComputeOptions options;
  options.properties = &workload->properties;

  // Correctness oracle for the "correct?" column.
  auto reference = x3::ComputeCube(x3::CubeAlgorithm::kReference,
                                   workload->facts, workload->lattice,
                                   options);
  if (!reference.ok()) {
    std::fprintf(stderr, "reference: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-10s %10s %8s %8s %8s  %s\n", "algorithm", "ms", "sorts",
              "rollups", "cells", "correct?");
  for (x3::CubeAlgorithm algo :
       {x3::CubeAlgorithm::kCounter, x3::CubeAlgorithm::kBUC,
        x3::CubeAlgorithm::kBUCOpt, x3::CubeAlgorithm::kBUCCust,
        x3::CubeAlgorithm::kTD, x3::CubeAlgorithm::kTDOpt,
        x3::CubeAlgorithm::kTDOptAll, x3::CubeAlgorithm::kTDCust}) {
    x3::CubeComputeStats stats;
    x3::Timer timer;
    auto cube = x3::ComputeCube(algo, workload->facts, workload->lattice,
                                options, &stats);
    double ms = timer.ElapsedSeconds() * 1e3;
    if (!cube.ok()) {
      std::fprintf(stderr, "%s: %s\n", x3::CubeAlgorithmToString(algo),
                   cube.status().ToString().c_str());
      return 1;
    }
    bool correct = reference->Equals(*cube);
    std::printf("%-10s %10.2f %8llu %8llu %8llu  %s\n",
                x3::CubeAlgorithmToString(algo), ms,
                static_cast<unsigned long long>(stats.sorts),
                static_cast<unsigned long long>(stats.rollups),
                static_cast<unsigned long long>(cube->TotalCells()),
                correct ? "yes" : "NO (assumptions violated)");
  }
  std::printf(
      "\nAs in the paper: BUCCUST/TDCUST stay correct by exploiting the\n"
      "schema only where it proves a property; BUCOPT/TDOPT/TDOPTALL are\n"
      "faster but wrong because DBLP authors repeat and months go missing.\n");
  return 0;
}
