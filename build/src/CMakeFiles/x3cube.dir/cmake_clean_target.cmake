file(REMOVE_RECURSE
  "libx3cube.a"
)
