
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cube/aggregate.cc" "src/CMakeFiles/x3cube.dir/cube/aggregate.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/cube/aggregate.cc.o.d"
  "/root/repo/src/cube/algorithm.cc" "src/CMakeFiles/x3cube.dir/cube/algorithm.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/cube/algorithm.cc.o.d"
  "/root/repo/src/cube/buc.cc" "src/CMakeFiles/x3cube.dir/cube/buc.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/cube/buc.cc.o.d"
  "/root/repo/src/cube/counter.cc" "src/CMakeFiles/x3cube.dir/cube/counter.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/cube/counter.cc.o.d"
  "/root/repo/src/cube/cube_result.cc" "src/CMakeFiles/x3cube.dir/cube/cube_result.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/cube/cube_result.cc.o.d"
  "/root/repo/src/cube/cube_spec.cc" "src/CMakeFiles/x3cube.dir/cube/cube_spec.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/cube/cube_spec.cc.o.d"
  "/root/repo/src/cube/fact_table.cc" "src/CMakeFiles/x3cube.dir/cube/fact_table.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/cube/fact_table.cc.o.d"
  "/root/repo/src/cube/reference.cc" "src/CMakeFiles/x3cube.dir/cube/reference.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/cube/reference.cc.o.d"
  "/root/repo/src/cube/topdown.cc" "src/CMakeFiles/x3cube.dir/cube/topdown.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/cube/topdown.cc.o.d"
  "/root/repo/src/cube/view_store.cc" "src/CMakeFiles/x3cube.dir/cube/view_store.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/cube/view_store.cc.o.d"
  "/root/repo/src/gen/dblp_gen.cc" "src/CMakeFiles/x3cube.dir/gen/dblp_gen.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/gen/dblp_gen.cc.o.d"
  "/root/repo/src/gen/treebank_gen.cc" "src/CMakeFiles/x3cube.dir/gen/treebank_gen.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/gen/treebank_gen.cc.o.d"
  "/root/repo/src/gen/workload.cc" "src/CMakeFiles/x3cube.dir/gen/workload.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/gen/workload.cc.o.d"
  "/root/repo/src/pattern/join_matcher.cc" "src/CMakeFiles/x3cube.dir/pattern/join_matcher.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/pattern/join_matcher.cc.o.d"
  "/root/repo/src/pattern/path_stack.cc" "src/CMakeFiles/x3cube.dir/pattern/path_stack.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/pattern/path_stack.cc.o.d"
  "/root/repo/src/pattern/pattern_parser.cc" "src/CMakeFiles/x3cube.dir/pattern/pattern_parser.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/pattern/pattern_parser.cc.o.d"
  "/root/repo/src/pattern/tree_pattern.cc" "src/CMakeFiles/x3cube.dir/pattern/tree_pattern.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/pattern/tree_pattern.cc.o.d"
  "/root/repo/src/pattern/twig_matcher.cc" "src/CMakeFiles/x3cube.dir/pattern/twig_matcher.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/pattern/twig_matcher.cc.o.d"
  "/root/repo/src/relax/axis_lattice.cc" "src/CMakeFiles/x3cube.dir/relax/axis_lattice.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/relax/axis_lattice.cc.o.d"
  "/root/repo/src/relax/cube_lattice.cc" "src/CMakeFiles/x3cube.dir/relax/cube_lattice.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/relax/cube_lattice.cc.o.d"
  "/root/repo/src/relax/relaxation.cc" "src/CMakeFiles/x3cube.dir/relax/relaxation.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/relax/relaxation.cc.o.d"
  "/root/repo/src/schema/dtd_parser.cc" "src/CMakeFiles/x3cube.dir/schema/dtd_parser.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/schema/dtd_parser.cc.o.d"
  "/root/repo/src/schema/schema_graph.cc" "src/CMakeFiles/x3cube.dir/schema/schema_graph.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/schema/schema_graph.cc.o.d"
  "/root/repo/src/schema/summarizability.cc" "src/CMakeFiles/x3cube.dir/schema/summarizability.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/schema/summarizability.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/x3cube.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/external_sorter.cc" "src/CMakeFiles/x3cube.dir/storage/external_sorter.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/storage/external_sorter.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/CMakeFiles/x3cube.dir/storage/page_file.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/storage/page_file.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/CMakeFiles/x3cube.dir/storage/slotted_page.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/storage/slotted_page.cc.o.d"
  "/root/repo/src/storage/temp_file.cc" "src/CMakeFiles/x3cube.dir/storage/temp_file.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/storage/temp_file.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/x3cube.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/util/logging.cc.o.d"
  "/root/repo/src/util/memory_budget.cc" "src/CMakeFiles/x3cube.dir/util/memory_budget.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/util/memory_budget.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/x3cube.dir/util/status.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/x3cube.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/util/string_util.cc.o.d"
  "/root/repo/src/x3/binder.cc" "src/CMakeFiles/x3cube.dir/x3/binder.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/x3/binder.cc.o.d"
  "/root/repo/src/x3/engine.cc" "src/CMakeFiles/x3cube.dir/x3/engine.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/x3/engine.cc.o.d"
  "/root/repo/src/x3/lexer.cc" "src/CMakeFiles/x3cube.dir/x3/lexer.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/x3/lexer.cc.o.d"
  "/root/repo/src/x3/parser.cc" "src/CMakeFiles/x3cube.dir/x3/parser.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/x3/parser.cc.o.d"
  "/root/repo/src/xdb/database.cc" "src/CMakeFiles/x3cube.dir/xdb/database.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/xdb/database.cc.o.d"
  "/root/repo/src/xdb/document_loader.cc" "src/CMakeFiles/x3cube.dir/xdb/document_loader.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/xdb/document_loader.cc.o.d"
  "/root/repo/src/xdb/node_store.cc" "src/CMakeFiles/x3cube.dir/xdb/node_store.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/xdb/node_store.cc.o.d"
  "/root/repo/src/xdb/structural_join.cc" "src/CMakeFiles/x3cube.dir/xdb/structural_join.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/xdb/structural_join.cc.o.d"
  "/root/repo/src/xdb/tag_dictionary.cc" "src/CMakeFiles/x3cube.dir/xdb/tag_dictionary.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/xdb/tag_dictionary.cc.o.d"
  "/root/repo/src/xdb/value_dictionary.cc" "src/CMakeFiles/x3cube.dir/xdb/value_dictionary.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/xdb/value_dictionary.cc.o.d"
  "/root/repo/src/xml/xml_node.cc" "src/CMakeFiles/x3cube.dir/xml/xml_node.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/xml/xml_node.cc.o.d"
  "/root/repo/src/xml/xml_parser.cc" "src/CMakeFiles/x3cube.dir/xml/xml_parser.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/xml/xml_parser.cc.o.d"
  "/root/repo/src/xml/xml_writer.cc" "src/CMakeFiles/x3cube.dir/xml/xml_writer.cc.o" "gcc" "src/CMakeFiles/x3cube.dir/xml/xml_writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
