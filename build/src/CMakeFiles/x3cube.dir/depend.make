# Empty dependencies file for x3cube.
# This may be replaced when dependencies are built.
