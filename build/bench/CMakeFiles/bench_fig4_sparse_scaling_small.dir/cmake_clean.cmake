file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_sparse_scaling_small.dir/bench_fig4_sparse_scaling_small.cc.o"
  "CMakeFiles/bench_fig4_sparse_scaling_small.dir/bench_fig4_sparse_scaling_small.cc.o.d"
  "bench_fig4_sparse_scaling_small"
  "bench_fig4_sparse_scaling_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sparse_scaling_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
