# Empty dependencies file for bench_fig4_sparse_scaling_small.
# This may be replaced when dependencies are built.
