file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_dense_nonsummarizable.dir/bench_fig9_dense_nonsummarizable.cc.o"
  "CMakeFiles/bench_fig9_dense_nonsummarizable.dir/bench_fig9_dense_nonsummarizable.cc.o.d"
  "bench_fig9_dense_nonsummarizable"
  "bench_fig9_dense_nonsummarizable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_dense_nonsummarizable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
