# Empty compiler generated dependencies file for bench_fig9_dense_nonsummarizable.
# This may be replaced when dependencies are built.
