# Empty dependencies file for bench_fig6_dense.
# This may be replaced when dependencies are built.
