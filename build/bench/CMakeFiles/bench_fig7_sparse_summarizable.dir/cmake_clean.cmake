file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_sparse_summarizable.dir/bench_fig7_sparse_summarizable.cc.o"
  "CMakeFiles/bench_fig7_sparse_summarizable.dir/bench_fig7_sparse_summarizable.cc.o.d"
  "bench_fig7_sparse_summarizable"
  "bench_fig7_sparse_summarizable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_sparse_summarizable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
