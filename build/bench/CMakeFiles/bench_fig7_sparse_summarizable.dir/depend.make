# Empty dependencies file for bench_fig7_sparse_summarizable.
# This may be replaced when dependencies are built.
