# Empty dependencies file for bench_fig5_sparse.
# This may be replaced when dependencies are built.
