file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_sparse.dir/bench_fig5_sparse.cc.o"
  "CMakeFiles/bench_fig5_sparse.dir/bench_fig5_sparse.cc.o.d"
  "bench_fig5_sparse"
  "bench_fig5_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
