# Empty dependencies file for bench_fig8_dense_summarizable.
# This may be replaced when dependencies are built.
