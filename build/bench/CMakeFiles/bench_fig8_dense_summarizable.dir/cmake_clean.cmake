file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_dense_summarizable.dir/bench_fig8_dense_summarizable.cc.o"
  "CMakeFiles/bench_fig8_dense_summarizable.dir/bench_fig8_dense_summarizable.cc.o.d"
  "bench_fig8_dense_summarizable"
  "bench_fig8_dense_summarizable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dense_summarizable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
