# Empty compiler generated dependencies file for dblp_cube.
# This may be replaced when dependencies are built.
