file(REMOVE_RECURSE
  "CMakeFiles/dblp_cube.dir/dblp_cube.cpp.o"
  "CMakeFiles/dblp_cube.dir/dblp_cube.cpp.o.d"
  "dblp_cube"
  "dblp_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
