# Empty dependencies file for x3_query_tool.
# This may be replaced when dependencies are built.
