file(REMOVE_RECURSE
  "CMakeFiles/x3_query_tool.dir/x3_query_tool.cpp.o"
  "CMakeFiles/x3_query_tool.dir/x3_query_tool.cpp.o.d"
  "x3_query_tool"
  "x3_query_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x3_query_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
