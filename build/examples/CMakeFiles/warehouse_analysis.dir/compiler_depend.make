# Empty compiler generated dependencies file for warehouse_analysis.
# This may be replaced when dependencies are built.
