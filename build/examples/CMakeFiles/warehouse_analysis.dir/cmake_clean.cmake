file(REMOVE_RECURSE
  "CMakeFiles/warehouse_analysis.dir/warehouse_analysis.cpp.o"
  "CMakeFiles/warehouse_analysis.dir/warehouse_analysis.cpp.o.d"
  "warehouse_analysis"
  "warehouse_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
