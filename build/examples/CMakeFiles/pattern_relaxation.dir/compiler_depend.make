# Empty compiler generated dependencies file for pattern_relaxation.
# This may be replaced when dependencies are built.
