file(REMOVE_RECURSE
  "CMakeFiles/pattern_relaxation.dir/pattern_relaxation.cpp.o"
  "CMakeFiles/pattern_relaxation.dir/pattern_relaxation.cpp.o.d"
  "pattern_relaxation"
  "pattern_relaxation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_relaxation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
