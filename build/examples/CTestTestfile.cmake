# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pattern_relaxation "/root/repo/build/examples/pattern_relaxation")
set_tests_properties(example_pattern_relaxation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dblp_cube "/root/repo/build/examples/dblp_cube" "500")
set_tests_properties(example_dblp_cube PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_warehouse_analysis "/root/repo/build/examples/warehouse_analysis" "500" "3")
set_tests_properties(example_warehouse_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
