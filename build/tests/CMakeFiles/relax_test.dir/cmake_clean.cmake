file(REMOVE_RECURSE
  "CMakeFiles/relax_test.dir/relax_test.cc.o"
  "CMakeFiles/relax_test.dir/relax_test.cc.o.d"
  "relax_test"
  "relax_test.pdb"
  "relax_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relax_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
