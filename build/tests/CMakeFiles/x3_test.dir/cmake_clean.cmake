file(REMOVE_RECURSE
  "CMakeFiles/x3_test.dir/x3_test.cc.o"
  "CMakeFiles/x3_test.dir/x3_test.cc.o.d"
  "x3_test"
  "x3_test.pdb"
  "x3_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
