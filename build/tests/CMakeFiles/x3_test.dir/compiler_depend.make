# Empty compiler generated dependencies file for x3_test.
# This may be replaced when dependencies are built.
