# Empty dependencies file for xdb_test.
# This may be replaced when dependencies are built.
