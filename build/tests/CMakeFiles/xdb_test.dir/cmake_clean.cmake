file(REMOVE_RECURSE
  "CMakeFiles/xdb_test.dir/xdb_test.cc.o"
  "CMakeFiles/xdb_test.dir/xdb_test.cc.o.d"
  "xdb_test"
  "xdb_test.pdb"
  "xdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
