# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/xdb_test[1]_include.cmake")
include("/root/repo/build/tests/pattern_test[1]_include.cmake")
include("/root/repo/build/tests/relax_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/cube_test[1]_include.cmake")
include("/root/repo/build/tests/x3_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/view_store_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
